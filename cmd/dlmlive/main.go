// Command dlmlive runs the goroutine-per-peer DLM runtime and prints the
// layer statistics as they evolve in real time.
//
//	dlmlive -peers 300 -eta 10 -seconds 10
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"dlm/internal/live"
	"dlm/internal/msg"
)

func main() {
	var (
		peers   = flag.Int("peers", 200, "number of peer goroutines")
		eta     = flag.Float64("eta", 10, "target layer size ratio")
		seconds = flag.Int("seconds", 8, "observation time")
		unit    = flag.Duration("unit", 5*time.Millisecond, "real-time length of one protocol time unit")
		churn   = flag.Bool("churn", false, "randomly replace peers while running")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	n := live.NewNet(live.Config{Eta: *eta, Unit: *unit, Seed: *seed})
	defer n.Stop()

	rng := rand.New(rand.NewSource(*seed))
	population := make([]*live.Peer, 0, *peers)
	for i := 0; i < *peers; i++ {
		population = append(population, n.Join(5+rng.ExpFloat64()*50))
	}

	stopChurn := make(chan struct{})
	if *churn {
		go func() {
			t := time.NewTicker(*unit * 4)
			defer t.Stop()
			for {
				select {
				case <-stopChurn:
					return
				case <-t.C:
					i := rng.Intn(len(population))
					n.Leave(population[i])
					population[i] = n.Join(5 + rng.ExpFloat64()*50)
				}
			}
		}()
	}

	fmt.Printf("%d goroutine peers, η=%.0f, 1 unit = %v, churn=%v\n",
		*peers, *eta, *unit, *churn)
	fmt.Printf("%8s %8s %8s %8s %10s %10s\n", "t(s)", "supers", "leaves", "ratio", "capS", "capL")
	start := time.Now()
	for time.Since(start) < time.Duration(*seconds)*time.Second {
		time.Sleep(500 * time.Millisecond)
		s := n.Snapshot()
		fmt.Printf("%8.1f %8d %8d %8.1f %10.1f %10.1f\n",
			time.Since(start).Seconds(), s.NumSupers, s.NumLeaves, s.Ratio,
			s.AvgCapSuper, s.AvgCapLeaf)
	}
	if *churn {
		close(stopChurn)
	}

	fmt.Println("\nmessage plane:")
	for k := msg.Kind(1); int(k) < msg.NumKinds; k++ {
		c, d := n.Messages(k), n.DroppedByKind(k)
		if c == 0 && d == 0 {
			continue
		}
		fmt.Printf("  %-20s %d", k, c)
		if d > 0 {
			fmt.Printf(" (dropped %d)", d)
		}
		fmt.Println()
	}
	fmt.Printf("  dropped: %d\n", n.Dropped())
	fmt.Printf("  decode failures: %d\n", n.DecodeErrors())
}
