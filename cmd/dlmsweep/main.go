// Command dlmsweep runs parameter sweeps with parallel replicated trials
// and emits a CSV: one row per sweep point with mean ± CI for the key
// outcome metrics. It answers "how does DLM behave as η / n / m changes?"
// with proper replication, fanned across CPU cores.
//
//	dlmsweep -param eta -values 5,10,20,40,80 -n 1500 -repeats 4
//	dlmsweep -param n -values 500,1000,2000,4000 -repeats 3 -csv sweep.csv
//	dlmsweep -param m -values 1,2,3,4 -n 1500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dlm"
	"dlm/internal/config"
	"dlm/internal/experiments"
	"dlm/internal/parexp"
	"dlm/internal/stats"
)

type outcome struct {
	ratioMean, ratioRMSE, capSep, ageSep, pao float64
}

func main() {
	var (
		param    = flag.String("param", "eta", "sweep parameter: eta|n|m")
		values   = flag.String("values", "5,10,20,40", "comma-separated sweep values")
		n        = flag.Int("n", 1500, "population (ignored for -param n)")
		repeats  = flag.Int("repeats", 3, "trials per sweep point")
		duration = flag.Float64("duration", 600, "simulated time units")
		seed     = flag.Int64("seed", 1, "base seed")
		csvPath  = flag.String("csv", "", "write results as CSV")
	)
	flag.Parse()

	var points []float64
	for _, part := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -values: %w", err))
		}
		points = append(points, v)
	}

	scenarioFor := func(v float64) config.Scenario {
		size := *n
		if *param == "n" {
			size = int(v)
		}
		sc := dlm.Scaled(size)
		sc.Duration = *duration
		sc.Warmup = *duration / 3
		switch *param {
		case "eta":
			sc.Eta = v
		case "m":
			sc.M = int(v)
		case "n":
		default:
			fatal(fmt.Errorf("unknown -param %q", *param))
		}
		return sc
	}

	results, err := parexp.Sweep(points, *repeats, parexp.Options{BaseSeed: *seed},
		func(v float64, trialSeed int64) (outcome, error) {
			sc := scenarioFor(v)
			sc.Seed = trialSeed*101 + 7
			res, err := experiments.Run(experiments.RunConfig{
				Scenario: sc, Manager: experiments.ManagerDLM,
			})
			if err != nil {
				return outcome{}, err
			}
			from, to := sc.Warmup, sc.Duration
			r := res.Series.Get("ratio")
			return outcome{
				ratioMean: r.MeanOver(from, to),
				ratioRMSE: r.RMSEAgainst(sc.Eta, from, to),
				capSep:    res.Series.Get("cap_super").MeanOver(from, to) / res.Series.Get("cap_leaf").MeanOver(from, to),
				ageSep:    res.Series.Get("age_super").MeanOver(from, to) / res.Series.Get("age_leaf").MeanOver(from, to),
				pao:       res.WindowCounters.PAOOverNLCO(),
			}, nil
		})
	if err != nil {
		fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s,ratio_mean,ratio_mean_ci,ratio_rmse,cap_sep,age_sep,pao_pct\n", *param)
	fmt.Printf("%-10s %-18s %-12s %-10s %-10s %s\n",
		*param, "ratio mean ±CI", "ratio RMSE", "cap sep", "age sep", "PAO%")
	for i, v := range points {
		var rm, rr, cs, as, pao stats.Welford
		for _, o := range results[i] {
			rm.Add(o.ratioMean)
			rr.Add(o.ratioRMSE)
			cs.Add(o.capSep)
			as.Add(o.ageSep)
			pao.Add(o.pao)
		}
		fmt.Printf("%-10g %7.1f ± %-8.1f %-12.1f %-10.2f %-10.2f %.2f\n",
			v, rm.Mean(), rm.CI95(), rr.Mean(), cs.Mean(), as.Mean(), pao.Mean())
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g,%g,%g\n",
			v, rm.Mean(), rm.CI95(), rr.Mean(), cs.Mean(), as.Mean(), pao.Mean())
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("csv written to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlmsweep:", err)
	os.Exit(1)
}
