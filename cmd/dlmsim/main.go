// Command dlmsim runs one super-peer simulation scenario and reports the
// layer statistics, optionally plotting the ratio series and exporting
// CSV/trace artifacts.
//
// Examples:
//
//	dlmsim -n 2000 -duration 600
//	dlmsim -n 5000 -manager preconfigured -plot
//	dlmsim -n 1000 -queries 10 -csv run.csv -trace run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"dlm"
	"dlm/internal/config"
	"dlm/internal/experiments"
	"dlm/internal/plot"
	"dlm/internal/stats"
)

func main() {
	var (
		n        = flag.Int("n", 2000, "steady-state population")
		eta      = flag.Float64("eta", 0, "target layer size ratio (0 = scenario default)")
		manager  = flag.String("manager", "dlm", "layer manager: dlm|preconfigured|static|oracle|none")
		duration = flag.Float64("duration", 0, "simulated time units (0 = scenario default)")
		warmup   = flag.Float64("warmup", 0, "warm-up units before measurement (0 = default)")
		seed     = flag.Int64("seed", 1, "random seed")
		queries  = flag.Float64("queries", 0, "queries per time unit (0 = off)")
		ttl      = flag.Int("ttl", 7, "query TTL")
		doPlot   = flag.Bool("plot", false, "render an ASCII ratio chart")
		csvPath  = flag.String("csv", "", "write the sampled series as CSV")
		tracePth = flag.String("trace", "", "write the lifecycle trace as JSONL")
		dynamic  = flag.Bool("dynamic", false, "apply the paper's Figures 4-6 regime changes")
		confPath = flag.String("config", "", "load the scenario from a JSON file (other scenario flags still override)")
		savePath = flag.String("saveconfig", "", "write the effective scenario as JSON and exit")
	)
	flag.Parse()

	var sc dlm.Scenario
	if *confPath != "" {
		loaded, err := config.LoadFile(*confPath)
		if err != nil {
			fatal(err)
		}
		sc = loaded
	} else {
		sc = dlm.Scaled(*n)
	}
	sc.Seed = *seed
	if *eta > 0 {
		sc.Eta = *eta
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	sc.QueryRate = *queries
	sc.TTL = *ttl

	if *savePath != "" {
		if err := sc.SaveFile(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("scenario written to %s\n", *savePath)
		return
	}

	rc := dlm.RunConfig{
		Scenario: sc,
		Manager:  dlm.ManagerKind(*manager),
		Queries:  *queries > 0,
	}
	if *dynamic {
		rc = experiments.DynamicScenario(sc)
		rc.Manager = dlm.ManagerKind(*manager)
	}

	var traceFile *os.File
	if *tracePth != "" {
		f, err := os.Create(*tracePth)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traceFile = f
		rc.TraceTo = f
	}

	res, err := dlm.Run(rc)
	if err != nil {
		fatal(err)
	}

	f := res.Final
	fmt.Printf("scenario %s  manager=%s  seed=%d\n", sc.Name, res.ManagerName, sc.Seed)
	fmt.Printf("t=%.0f  supers=%d  leaves=%d  ratio=%.2f (target η=%.0f)\n",
		f.Time, f.NumSupers, f.NumLeaves, f.Ratio, sc.Eta)
	fmt.Printf("avg age:      super %.1f   leaf %.1f\n", f.AvgAgeSuper, f.AvgAgeLeaf)
	fmt.Printf("avg capacity: super %.1f   leaf %.1f\n", f.AvgCapSuper, f.AvgCapLeaf)
	fmt.Printf("avg l_nn=%.1f (k_l=%.0f)\n", f.AvgLeafDegree, sc.KL())
	c := res.WindowCounters
	fmt.Printf("window: joins=%d leaves=%d promotions=%d demotions=%d PAO/NLCO=%.2f%%\n",
		c.Joins, c.Leaves, c.Promotions, c.Demotions, c.PAOOverNLCO())
	fmt.Printf("traffic: %s\n", res.Traffic.String())
	if res.QueriesIssued > 0 {
		fmt.Printf("queries: %d issued, %.1f%% success, %.1f msgs/query, %.1f hops to first hit\n",
			res.QueriesIssued, 100*res.QuerySuccess, res.QueryMsgsPer, res.QueryHops)
	}
	if len(res.Invariants) > 0 {
		fmt.Printf("INVARIANT VIOLATIONS: %v\n", res.Invariants)
		os.Exit(1)
	}

	if *doPlot {
		ratio := res.Series.Get("ratio")
		target := stats.NewSeries(fmt.Sprintf("target η=%.0f", sc.Eta))
		if pts := ratio.Points(); len(pts) > 0 {
			target.Add(pts[0].T, sc.Eta)
			target.Add(pts[len(pts)-1].T, sc.Eta)
		}
		fmt.Println(plot.Render(plot.Options{
			Title:  "layer size ratio over time",
			XLabel: "simulation time (minutes)",
			YLabel: "n_l / n_s",
		}, ratio, target))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := res.Series.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
	if traceFile != nil {
		fmt.Printf("trace written to %s\n", traceFile.Name())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlmsim:", err)
	os.Exit(1)
}
