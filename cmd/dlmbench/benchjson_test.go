package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("dlm/internal/sim",
		"BenchmarkEventThroughput-8 \t 267578 \t 13.8 ns/op \t 0 B/op \t 0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if res.Name != "BenchmarkEventThroughput" || res.NsPerOp != 13.8 ||
		res.Iterations != 267578 || res.Package != "dlm/internal/sim" {
		t.Fatalf("parsed %+v", res)
	}
	res, ok = parseBenchLine("p", "BenchmarkFig6-8 5 43.1 ns/op 9.43 ratioRMSE")
	if !ok || res.Metrics["ratioRMSE"] != 9.43 {
		t.Fatalf("custom metric lost: %+v", res)
	}
	if _, ok := parseBenchLine("p", "BenchmarkBroken 5 nonsense"); ok {
		t.Fatal("garbage line parsed")
	}
}

func TestBestResultsCollapsesRepeats(t *testing.T) {
	in := []benchResult{
		{Package: "p", Name: "BenchmarkA", NsPerOp: 20, AllocsOp: 3},
		{Package: "p", Name: "BenchmarkB", NsPerOp: 5},
		{Package: "p", Name: "BenchmarkA", NsPerOp: 14, AllocsOp: 4},
		{Package: "p", Name: "BenchmarkA", NsPerOp: 17, AllocsOp: 2},
	}
	out := bestResults(in)
	if len(out) != 2 {
		t.Fatalf("got %d entries, want 2", len(out))
	}
	if out[0].Name != "BenchmarkA" || out[0].NsPerOp != 14 || out[0].AllocsOp != 2 {
		t.Fatalf("best-of-N wrong: %+v", out[0])
	}
	if out[1].Name != "BenchmarkB" {
		t.Fatalf("first-seen order lost: %+v", out)
	}
}

// writeArtifact drops a minimal benchFile to disk for compare tests.
func writeArtifact(t *testing.T, dir, name string, benches []benchResult) string {
	t.Helper()
	buf, err := json.Marshal(benchFile{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBenchJSONGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeArtifact(t, dir, "old.json", []benchResult{
		{Package: "sim", Name: "BenchmarkEventThroughput", NsPerOp: 100},
		{Package: "sim", Name: "BenchmarkMacro", NsPerOp: 100},
	})

	// Within threshold on the pin, huge regression on a non-pinned macro:
	// reported, but no failure.
	okP := writeArtifact(t, dir, "ok.json", []benchResult{
		{Package: "sim", Name: "BenchmarkEventThroughput", NsPerOp: 110},
		{Package: "sim", Name: "BenchmarkMacro", NsPerOp: 300},
	})
	var sb strings.Builder
	if err := compareBenchJSON(oldP, okP, &sb); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, sb.String())
	}

	// Pinned ns/op regression beyond the threshold fails.
	badP := writeArtifact(t, dir, "bad.json", []benchResult{
		{Package: "sim", Name: "BenchmarkEventThroughput", NsPerOp: 120},
	})
	if err := compareBenchJSON(oldP, badP, &sb); err == nil ||
		!strings.Contains(err.Error(), "BenchmarkEventThroughput") {
		t.Fatalf("want pinned ns/op failure, got %v", err)
	}

	// A pinned allocs/op increase fails even with ns/op flat.
	allocP := writeArtifact(t, dir, "alloc.json", []benchResult{
		{Package: "sim", Name: "BenchmarkEventThroughput", NsPerOp: 100, AllocsOp: 1},
	})
	if err := compareBenchJSON(oldP, allocP, &sb); err == nil ||
		!strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("want allocs failure, got %v", err)
	}

	// A -count=3 stream with one slow repeat passes: best-of-N absorbs it.
	noisyP := writeArtifact(t, dir, "noisy.json", []benchResult{
		{Package: "sim", Name: "BenchmarkEventThroughput", NsPerOp: 180},
		{Package: "sim", Name: "BenchmarkEventThroughput", NsPerOp: 105},
	})
	if err := compareBenchJSON(oldP, noisyP, &sb); err != nil {
		t.Fatalf("best-of-N did not absorb noisy repeat: %v", err)
	}
}
