// Benchmark-artifact mode: `go test -bench` output goes in on stdin, a
// machine-readable JSON summary comes out. scripts/bench.sh uses this to
// produce the checked-in BENCH_*.json regression artifacts:
//
//	go test -run='^$' -bench=. -benchmem ./... | dlmbench -json BENCH_pr1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// benchResult is one benchmark line. The standard ns/op, B/op and
// allocs/op units get dedicated fields; anything else (custom
// b.ReportMetric units such as ratioRMSE) lands in Metrics.
type benchResult struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchEnv records the machine context a benchmark artifact was produced
// under — numbers from different environments are not comparable, and the
// compare mode prints both sides' env so a suspicious diff can be
// attributed.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Commit is the repository HEAD at generation time, best-effort (empty
	// when git is unavailable).
	Commit string `json:"commit,omitempty"`
}

func currentEnv() benchEnv {
	env := benchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		env.Commit = strings.TrimSpace(string(out))
	}
	return env
}

type benchFile struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	Env         benchEnv      `json:"env"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// writeBenchJSON parses `go test -bench` text from r and writes the JSON
// artifact to path. Non-benchmark lines (pkg headers aside) are ignored,
// so the full `go test ./...` stream can be piped through unfiltered.
func writeBenchJSON(r io.Reader, path string) error {
	out := benchFile{
		GeneratedBy: "dlmbench -json",
		GoVersion:   runtime.Version(),
		Env:         currentEnv(),
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(pkg, line)
		if !ok {
			continue
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading bench output: %w", err)
	}
	if len(out.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// parseBenchLine handles the standard text format:
//
//	BenchmarkFloodQuery-8   267578   4401 ns/op   0 B/op   0 allocs/op
//	BenchmarkFigure6LayerSizes-8   5   43.1e6 ns/op   9.430 ratioRMSE   ...
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(pkg, line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{
		Package:    pkg,
		Name:       stripProcSuffix(fields[0]),
		Iterations: iters,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// pinnedBenchmarks are the sim/query micro-benchmarks the benchsmoke CI
// lane gates on: tight, allocation-free loops whose run-to-run noise is
// small enough that a >15% ns/op (or any allocs/op) regression is a real
// signal, not scheduler jitter. Macro benchmarks (full simulation runs)
// are reported in the diff but never fail the compare — they swing more
// than the threshold on a loaded box.
var pinnedBenchmarks = map[string]bool{
	"BenchmarkEventThroughput":        true,
	"BenchmarkEventThroughputSharded": true,
	"BenchmarkFloodQuery":             true,
	"BenchmarkFloodQueryRandom":       true,
}

// pinnedMacroBenchmarks get the same ns/op gate but at a wider threshold
// and without the allocs/op rule: a macro op here is a whole 100k-peer
// maintenance tick, so its per-op time is an average over enough work to
// be stable, but its allocation count legitimately drifts with b.N (churn
// events per tick, slab growth amortization).
var pinnedMacroBenchmarks = map[string]bool{
	"BenchmarkScaleTick": true,
}

// regressionThreshold is the fractional ns/op increase a pinned
// benchmark may show before the compare fails;
// macroRegressionThreshold is the looser bound for pinned macro
// benchmarks.
const (
	regressionThreshold      = 0.15
	macroRegressionThreshold = 0.30
)

func readBenchFile(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// bestResults collapses repeated runs of the same benchmark (a -count=N
// stream) to one entry each, keeping the minimum ns/op and allocs/op
// seen. Min-of-N is the standard answer to scheduler noise on shared
// hardware: the fastest run is the closest observation of what the code
// costs, and a genuine regression raises the minimum too. First-seen
// order is preserved.
func bestResults(in []benchResult) []benchResult {
	idx := make(map[string]int, len(in))
	out := make([]benchResult, 0, len(in))
	for _, b := range in {
		key := b.Package + "." + b.Name
		i, seen := idx[key]
		if !seen {
			idx[key] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = b.NsPerOp
		}
		if b.AllocsOp < out[i].AllocsOp {
			out[i].AllocsOp = b.AllocsOp
		}
	}
	return out
}

// compareBenchJSON diffs two benchmark artifacts, printing per-benchmark
// ns/op and allocs/op deltas, and returns an error if any pinned
// micro-benchmark regressed beyond regressionThreshold (ns/op) or grew
// its allocation count at all. Artifacts holding -count=N repeats are
// collapsed best-of-N on both sides first.
func compareBenchJSON(oldPath, newPath string, w io.Writer) error {
	oldF, err := readBenchFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := readBenchFile(newPath)
	if err != nil {
		return err
	}
	oldBest := bestResults(oldF.Benchmarks)
	newBest := bestResults(newF.Benchmarks)
	old := make(map[string]benchResult, len(oldBest))
	for _, b := range oldBest {
		old[b.Package+"."+b.Name] = b
	}

	fmt.Fprintf(w, "\nbench compare: %s -> %s\n", oldPath, newPath)
	if oldF.Env.Commit != "" || newF.Env.Commit != "" {
		fmt.Fprintf(w, "  commits: %s -> %s\n", orDash(oldF.Env.Commit), orDash(newF.Env.Commit))
	}
	fmt.Fprintf(w, "%-34s %14s %14s %8s %10s %10s %6s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "pin")

	var failures []string
	for _, nb := range newBest {
		ob, ok := old[nb.Package+"."+nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s %10s %10.0f %6s\n",
				nb.Name, "-", nb.NsPerOp, "new", "-", nb.AllocsOp, "")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = nb.NsPerOp/ob.NsPerOp - 1
		}
		pin := ""
		if pinnedBenchmarks[nb.Name] {
			pin = "yes"
			if delta > regressionThreshold {
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op %+.1f%% (%.0f -> %.0f, limit +%.0f%%)",
					nb.Name, delta*100, ob.NsPerOp, nb.NsPerOp, regressionThreshold*100))
			}
			if nb.AllocsOp > ob.AllocsOp {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %.0f -> %.0f", nb.Name, ob.AllocsOp, nb.AllocsOp))
			}
		} else if pinnedMacroBenchmarks[nb.Name] {
			pin = "macro"
			if delta > macroRegressionThreshold {
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op %+.1f%% (%.0f -> %.0f, limit +%.0f%%)",
					nb.Name, delta*100, ob.NsPerOp, nb.NsPerOp, macroRegressionThreshold*100))
			}
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+7.1f%% %10.0f %10.0f %6s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, ob.AllocsOp, nb.AllocsOp, pin)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "no pinned-benchmark regressions (threshold +%.0f%% ns/op)\n", regressionThreshold*100)
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// stripProcSuffix drops the "-N" GOMAXPROCS suffix Go appends to
// benchmark names, but only when the suffix is numeric — a dash inside a
// sub-benchmark case name is part of the name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
