// Benchmark-artifact mode: `go test -bench` output goes in on stdin, a
// machine-readable JSON summary comes out. scripts/bench.sh uses this to
// produce the checked-in BENCH_*.json regression artifacts:
//
//	go test -run='^$' -bench=. -benchmem ./... | dlmbench -json BENCH_pr1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchResult is one benchmark line. The standard ns/op, B/op and
// allocs/op units get dedicated fields; anything else (custom
// b.ReportMetric units such as ratioRMSE) lands in Metrics.
type benchResult struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// writeBenchJSON parses `go test -bench` text from r and writes the JSON
// artifact to path. Non-benchmark lines (pkg headers aside) are ignored,
// so the full `go test ./...` stream can be piped through unfiltered.
func writeBenchJSON(r io.Reader, path string) error {
	out := benchFile{
		GeneratedBy: "dlmbench -json",
		GoVersion:   runtime.Version(),
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(pkg, line)
		if !ok {
			continue
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading bench output: %w", err)
	}
	if len(out.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// parseBenchLine handles the standard text format:
//
//	BenchmarkFloodQuery-8   267578   4401 ns/op   0 B/op   0 allocs/op
//	BenchmarkFigure6LayerSizes-8   5   43.1e6 ns/op   9.430 ratioRMSE   ...
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(pkg, line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{
		Package:    pkg,
		Name:       stripProcSuffix(fields[0]),
		Iterations: iters,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// stripProcSuffix drops the "-N" GOMAXPROCS suffix Go appends to
// benchmark names, but only when the suffix is numeric — a dash inside a
// sub-benchmark case name is part of the name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
