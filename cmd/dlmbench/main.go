// Command dlmbench regenerates every table and figure of the paper's
// evaluation, printing ASCII renditions and writing CSV artifacts.
//
//	dlmbench                  # everything at the default scale
//	dlmbench -run fig7        # one experiment
//	dlmbench -n 5000 -out results/
//
// It also doubles as the benchmark-artifact formatter (see benchjson.go):
//
//	go test -run='^$' -bench=. -benchmem ./... | dlmbench -json BENCH_pr1.json
//
// Scale note: -n sets the population for the figure scenarios; Table 3
// uses its own size ladder (-table3sizes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dlm"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment: all|fig4|fig5|fig6|fig7|fig8|table3|overhead|policy|gain|baselines|search|redundancy|latency|failure|cap|robustness|scale|adversarial (scale and adversarial are opt-in: not part of all)")
		n          = flag.Int("n", 2000, "population for figure scenarios")
		seed       = flag.Int64("seed", 1, "base seed")
		outDir     = flag.String("out", "", "directory for CSV artifacts (empty = no files)")
		t3sizes    = flag.String("table3sizes", "1000,4000,16000", "comma-separated network sizes for Table 3")
		scSizes    = flag.String("scalesizes", "10000,100000,1000000", "comma-separated population sizes for -run scale")
		advSizes   = flag.String("advsizes", "10000,100000,1000000", "comma-separated population sizes for -run adversarial")
		scShards   = flag.String("scaleshards", "1,2,4,8", "comma-separated intra-run shard counts for -run scale (each N runs once per count)")
		workers    = flag.Int("workers", 0, "worker pool cap for parallel sweeps (0 = GOMAXPROCS; results are identical for any value)")
		shards     = flag.Int("shards", 0, "intra-run tick-parallelism workers for every non-scale run (0 = GOMAXPROCS; results are byte-identical for any value)")
		dur        = flag.Float64("duration", dlm.SettledWindowEnd, "figure scenario duration (covers both regime changes)")
		jsonOut    = flag.String("json", "", "parse `go test -bench` output from stdin into a JSON artifact at this path, then exit")
		comparePth = flag.String("compare", "", "with -json: also diff the new artifact against this previous BENCH_*.json and fail on regression")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *jsonOut != "" {
		if err := writeBenchJSON(os.Stdin, *jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("bench json: %s\n", *jsonOut)
		if *comparePth != "" {
			if err := compareBenchJSON(*comparePth, *jsonOut, os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *comparePth != "" {
		// Standalone compare: diff two existing artifacts.
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-compare needs -json (new artifact from stdin) or one positional BENCH_*.json argument"))
		}
		if err := compareBenchJSON(*comparePth, flag.Arg(0), os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *cpuProfile != "" {
		fh, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			fh.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			fh, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer fh.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(fh); err != nil {
				fatal(err)
			}
		}()
	}

	dlm.SetWorkers(*workers)
	k := *shards
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	dlm.SetShards(k)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	sc := dlm.Scaled(*n)
	sc.Seed = *seed
	sc.Duration = *dur
	sc.Warmup = 200
	sc.SampleEvery = 10

	want := func(name string) bool { return *run == "all" || *run == name }
	start := time.Now()

	if want("fig4") {
		figure(sc, "fig4", dlm.Figure4, *outDir)
	}
	if want("fig5") {
		figure(sc, "fig5", dlm.Figure5, *outDir)
	}
	if want("fig6") {
		figure(sc, "fig6", dlm.Figure6, *outDir)
	}
	if want("fig7") {
		qsc := sc
		qsc.QueryRate = 5
		figure(qsc, "fig7", dlm.Figure7, *outDir)
	}
	if want("fig8") {
		figure(sc, "fig8", dlm.Figure8, *outDir)
	}
	if want("table3") {
		var sizes []int
		for _, part := range strings.Split(*t3sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -table3sizes: %w", err))
			}
			sizes = append(sizes, v)
		}
		rows, err := dlm.Table3(sizes, *seed)
		if err != nil {
			fatal(err)
		}
		section("Table 3: Peer Adjustment Overhead Analysis")
		fmt.Print(dlm.FormatTable3(rows))
		writeText(*outDir, "table3.txt", dlm.FormatTable3(rows))
	}
	if want("overhead") {
		osc := sc
		osc.QueryRate = 10
		osc.Duration = 600
		res, err := dlm.Overhead(osc)
		if err != nil {
			fatal(err)
		}
		section("§6 Overhead Study: DLM info exchange vs search traffic")
		fmt.Print(res.Format())
		writeText(*outDir, "overhead.txt", res.Format())
	}
	if want("policy") {
		psc := sc
		psc.Duration = 600
		rows, err := dlm.PolicyAblation(psc, []float64{1, 5, 20})
		if err != nil {
			fatal(err)
		}
		section("Ablation A1: event-driven vs periodic information exchange")
		fmt.Print(dlm.FormatPolicyAblation(rows))
		writeText(*outDir, "policy_ablation.txt", dlm.FormatPolicyAblation(rows))
	}
	if want("gain") {
		gsc := sc
		gsc.Duration = 600
		section("Ablation A2: reconstructed controller gains")
		for _, knob := range []struct {
			name   string
			values []float64
		}{
			{"beta", []float64{0.25, 0.5, 1, 2}},
			{"rategain", []float64{1, 2, 4, 8}},
			{"ratelimit", []float64{0, 1}},
			{"window", []float64{0, 30, 60, 120}},
			{"refresh", []float64{0, 15, 30, 60}},
			{"sharpness", []float64{0, 2, 4}},
		} {
			rows, err := dlm.GainAblation(gsc, knob.name, knob.values)
			if err != nil {
				fatal(err)
			}
			fmt.Print(dlm.FormatGainAblation(rows))
			writeText(*outDir, "gain_"+knob.name+".txt", dlm.FormatGainAblation(rows))
		}
	}
	if want("search") {
		ssc := sc
		ssc.Duration = 400
		ssc.Warmup = 250
		rows, err := dlm.SearchEfficiency(ssc, []int{2, 3, 4, 5, 6, 7}, 300)
		if err != nil {
			fatal(err)
		}
		section("Motivation: search efficiency, pure P2P vs super-peer (same workload)")
		fmt.Print(dlm.FormatSearchRows(rows))
		writeText(*outDir, "search.txt", dlm.FormatSearchRows(rows))
	}
	if want("latency") {
		lsc := sc
		lsc.Duration = 600
		lsc.QueryRate = 2
		rows, err := dlm.LatencyAblation(lsc, []float64{0, 0.05, 0.2, 1})
		if err != nil {
			fatal(err)
		}
		section("Extension: message-latency sweep (stale-by-transit information)")
		fmt.Print(dlm.FormatLatency(rows))
		writeText(*outDir, "latency.txt", dlm.FormatLatency(rows))
	}
	if want("cap") {
		csc := sc
		csc.Duration = 600
		csc.Warmup = 250
		rows, err := dlm.CapAblation(csc, []float64{0, 3, 2, 1.2, 0.8})
		if err != nil {
			fatal(err)
		}
		section("Extension: leaf-degree cap vs the μ signal (deployment warning)")
		fmt.Print(dlm.FormatCap(rows))
		writeText(*outDir, "cap.txt", dlm.FormatCap(rows))
	}
	if want("failure") {
		fsc := sc
		fsc.Duration = 800
		fsc.Warmup = 300
		fsc.QueryRate = 5
		rows, err := dlm.FailureSweep(fsc, []float64{0.25, 0.5, 0.75})
		if err != nil {
			fatal(err)
		}
		section("Extension: correlated super-layer failure and recovery")
		fmt.Print(dlm.FormatFailure(rows))
		writeText(*outDir, "failure.txt", dlm.FormatFailure(rows))
	}
	if want("robustness") {
		asc := sc
		// The ratio converges slowly; measure the settled tail only.
		asc.Warmup = dlm.SettledWindowStart
		rows, err := dlm.Robustness(asc, []float64{0, 1, 5, 10, 20})
		if err != nil {
			fatal(err)
		}
		section("Extension: robustness under message loss/jitter/duplication")
		fmt.Print(dlm.FormatRobustness(rows))
		writeText(*outDir, "robustness.txt", dlm.FormatRobustness(rows))
	}
	if want("redundancy") {
		rsc := sc
		rsc.Duration = 500
		rsc.Warmup = 200
		rows, err := dlm.RedundancySweep(rsc, []int{1, 2, 3, 4})
		if err != nil {
			fatal(err)
		}
		section("Extension: leaf redundancy sweep (what m buys)")
		fmt.Print(dlm.FormatRedundancy(rows))
		writeText(*outDir, "redundancy.txt", dlm.FormatRedundancy(rows))
	}
	if *run == "scale" { // opt-in only: the top size simulates a million peers
		var sizes []int
		for _, part := range strings.Split(*scSizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -scalesizes: %w", err))
			}
			sizes = append(sizes, v)
		}
		var shardCounts []int
		for _, part := range strings.Split(*scShards, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -scaleshards: %w", err))
			}
			shardCounts = append(shardCounts, v)
		}
		rows, err := dlm.Scale(sizes, shardCounts, *seed)
		if err != nil {
			fatal(err)
		}
		section("Scaling: end-to-end throughput vs population size")
		fmt.Print(dlm.FormatScale(rows))
		writeText(*outDir, "scale.txt", dlm.FormatScale(rows))
	}
	if *run == "adversarial" { // opt-in only: the top size simulates a million peers
		var sizes []int
		for _, part := range strings.Split(*advSizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -advsizes: %w", err))
			}
			sizes = append(sizes, v)
		}
		rows, err := dlm.Adversarial(sizes, *seed)
		if err != nil {
			fatal(err)
		}
		section("Extension: adversarial scenario pack (flash crowd, diurnal, partition, liars, mass kill)")
		fmt.Print(dlm.FormatAdversarial(rows))
		writeText(*outDir, "adversarial.txt", dlm.FormatAdversarial(rows))
	}
	if want("baselines") {
		bsc := sc
		bsc.Duration = 600
		rows, err := dlm.BaselineSweep(bsc)
		if err != nil {
			fatal(err)
		}
		section("Ablation A3: policy spectrum (DLM vs preconfigured vs static vs oracle)")
		fmt.Print(dlm.FormatBaselineSweep(rows))
		writeText(*outDir, "baselines.txt", dlm.FormatBaselineSweep(rows))
	}

	fmt.Printf("\ndone in %.1fs\n", time.Since(start).Seconds())
}

func figure(sc dlm.Scenario, id string, f func(dlm.Scenario) (*dlm.FigureResult, error), outDir string) {
	res, err := f(sc)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", id, err))
	}
	section(res.Title)
	fmt.Print(dlm.RenderFigure(res, 72, 18))
	for _, note := range res.Notes {
		fmt.Printf("note: %s\n", note)
	}
	if outDir != "" {
		path := filepath.Join(outDir, id+".csv")
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := dlm.WriteFigureCSV(res, fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("csv: %s\n", path)
	}
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func writeText(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlmbench:", err)
	os.Exit(1)
}
