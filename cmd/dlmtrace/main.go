// Command dlmtrace summarizes a JSONL lifecycle trace produced by
// dlmsim -trace (or any trace.Recorder).
//
//	dlmtrace run.jsonl
//	dlmsim -n 1000 -trace /dev/stdout | dlmtrace -
package main

import (
	"fmt"
	"io"
	"os"

	"dlm/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dlmtrace <trace.jsonl | ->")
		os.Exit(2)
	}
	var rd io.Reader
	if os.Args[1] == "-" {
		rd = os.Stdin
	} else {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rd = f
	}
	events, err := trace.Read(rd)
	if err != nil {
		fatal(err)
	}
	s := trace.Summarize(events)
	fmt.Printf("events:      %d\n", len(events))
	fmt.Printf("joins:       %d\n", s.Joins)
	fmt.Printf("leaves:      %d  (super %d, leaf %d)\n", s.Leaves, s.SuperLeaves, s.LeafLeaves)
	fmt.Printf("promotions:  %d\n", s.Promotions)
	fmt.Printf("demotions:   %d\n", s.Demotions)
	fmt.Printf("flapping peers (>2 role changes): %d\n", s.FlapCount)
	fmt.Printf("mean session at leave: super %.1f units, leaf %.1f units\n",
		s.MeanSuperAgeAtLeave, s.MeanLeafAgeAtLeave)
	if s.LeafLeaves > 0 && s.MeanLeafAgeAtLeave > 0 {
		fmt.Printf("super/leaf session ratio: %.2fx\n", s.MeanSuperAgeAtLeave/s.MeanLeafAgeAtLeave)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlmtrace:", err)
	os.Exit(1)
}
