#!/usr/bin/env bash
# CI lanes. Run all of them before merging:
#
#   scripts/ci.sh            # every lane
#   scripts/ci.sh test       # tier-1 only: format/vet gate + build + test
#   scripts/ci.sh race       # full suite under the race detector
#   scripts/ci.sh benchsmoke # compile + one iteration of every benchmark
#   scripts/ci.sh fuzzsmoke  # short fuzzing pass over codec + protocol + scenarios
#   scripts/ci.sh cover      # coverage floors (protocol >= 85%, experiments >= 70%, total >= 70%)
#   scripts/ci.sh adversarialsmoke # cheap adversarial scenarios + oracles under -race
set -euo pipefail
cd "$(dirname "$0")/.."

lane_test() {
  echo "== lane: build + test =="
  unformatted=$(gofmt -l .)
  if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
  fi
  go build ./...
  go vet ./...
  # The protocol core must stay transport-agnostic: its import graph may
  # not reach the simulation engine or the overlay (see
  # internal/protocol/purity_test.go for the direct-import check; this
  # one is transitive).
  deps=$(go list -deps dlm/internal/protocol)
  for forbidden in dlm/internal/sim dlm/internal/overlay; do
    if echo "$deps" | grep -qx "$forbidden"; then
      echo "import purity: dlm/internal/protocol depends on $forbidden" >&2
      exit 1
    fi
  done
  go test ./...
}

lane_race() {
  echo "== lane: race =="
  go test -race ./...
  # The shard-determinism tests drive real multi-worker lane fan-outs
  # (workers > GOMAXPROCS included); run them by name so the tick-barrier
  # contract is exercised under the race detector even if the full sweep
  # above is ever narrowed. ShardInvariance also matches
  # ShardInvarianceLatency, the latency run whose same-timestamp delivery
  # batches drive the sharded event plane's eval fan-out.
  go test -race -run 'ShardInvariance|CrossPlaneEquivalence|AggregatesMatchScan' \
    ./internal/core ./internal/experiments ./internal/live ./internal/overlay
  # Engine-level event-plane concurrency: the batch eval/commit contract
  # and the shard-count invariance of the lane merge, under -race.
  go test -race -run 'LaneBatchEvalCommit|ShardCountInvariantForBatches|LaneShardingOracle' \
    ./internal/sim
}

lane_benchsmoke() {
  echo "== lane: bench smoke (1 iteration each) =="
  go test -run='^$' -bench=. -benchtime=1x ./...
  # Regression gate: re-run the pinned micro-benchmarks at full benchtime
  # and diff against the newest checked-in artifact. Skipped when no
  # baseline exists (fresh clone pre-PR1).
  baseline=$(ls BENCH_pr*.json 2> /dev/null | sort -V | tail -1 || true)
  if [ -z "$baseline" ]; then
    echo "benchsmoke: no BENCH_pr*.json baseline, skipping regression gate"
    return
  fi
  echo "== lane: bench regression gate (vs $baseline) =="
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  # -count=3: the compare collapses repeats best-of-N, which keeps one
  # slow run on a noisy shared box from failing the gate. BenchmarkScaleTick
  # is the pinned macro benchmark (whole 100k-peer maintenance ticks); it
  # gates on ns/op only, at a wider threshold.
  go test -run='^$' -benchmem -count=3 \
    -bench='^(BenchmarkEventThroughput|BenchmarkEventThroughputSharded|BenchmarkFloodQuery|BenchmarkFloodQueryRandom|BenchmarkScaleTick)$' \
    ./internal/sim ./internal/query ./internal/core | tee "$tmp/bench.txt"
  go run ./cmd/dlmbench -json "$tmp/bench.json" -compare "$baseline" < "$tmp/bench.txt"
}

lane_fuzzsmoke() {
  echo "== lane: fuzz smoke (5s each) =="
  go test -run='^$' -fuzz='^FuzzDecode$' -fuzztime=5s ./internal/msg/
  go test -run='^$' -fuzz='^FuzzMachineHandleMessage$' -fuzztime=5s ./internal/protocol/
  go test -run='^$' -fuzz='^FuzzPendingFaults$' -fuzztime=5s ./internal/protocol/
  go test -run='^$' -fuzz='^FuzzScenarioConfig$' -fuzztime=5s ./internal/scenario/
}

lane_adversarialsmoke() {
  echo "== lane: adversarial smoke (quick scenarios, oracles, -race) =="
  # The two cheapest pack scenarios at n=5000, serial and 4-sharded, with
  # the structural-invariant and trace-determinism oracles checked; -race
  # guards the lane because the sharded tick is the one concurrent path.
  go test -race -run '^TestAdversarialSmoke$|^TestScenarioShardDeterminism$' \
    ./internal/scenario/
}

# pct_at_least PCT FLOOR LABEL: fail the lane when PCT < FLOOR.
pct_at_least() {
  awk -v got="$1" -v floor="$2" -v label="$3" 'BEGIN {
    if (got + 0 < floor + 0) {
      printf "coverage: %s is %.1f%%, floor is %.1f%%\n", label, got, floor > "/dev/stderr"
      exit 1
    }
    printf "coverage: %s %.1f%% (floor %.1f%%)\n", label, got, floor
  }'
}

lane_cover() {
  echo "== lane: coverage floors =="
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  # The protocol core is the correctness-critical package; it carries a
  # higher floor than the repo-wide one.
  go test -short -coverprofile="$tmp/protocol.out" ./internal/protocol/ > /dev/null
  proto_pct=$(go tool cover -func="$tmp/protocol.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
  pct_at_least "$proto_pct" 85 "internal/protocol"
  # The experiment drivers gained their own floor with the adversarial
  # pack: the sweep/format paths must stay exercised in short mode.
  go test -short -coverprofile="$tmp/experiments.out" ./internal/experiments/ > /dev/null
  exp_pct=$(go tool cover -func="$tmp/experiments.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
  pct_at_least "$exp_pct" 70 "internal/experiments"
  go test -short -coverprofile="$tmp/all.out" ./... > /dev/null
  total_pct=$(go tool cover -func="$tmp/all.out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
  pct_at_least "$total_pct" 70 "total"
}

case "${1:-all}" in
  test)             lane_test ;;
  race)             lane_race ;;
  benchsmoke)       lane_benchsmoke ;;
  fuzzsmoke)        lane_fuzzsmoke ;;
  cover)            lane_cover ;;
  adversarialsmoke) lane_adversarialsmoke ;;
  all)              lane_test; lane_race; lane_benchsmoke; lane_fuzzsmoke; lane_cover; lane_adversarialsmoke ;;
  *)                echo "usage: $0 [test|race|benchsmoke|fuzzsmoke|cover|adversarialsmoke|all]" >&2; exit 2 ;;
esac
echo "ci: all requested lanes green"
