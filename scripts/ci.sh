#!/usr/bin/env bash
# CI lanes. Run all of them before merging:
#
#   scripts/ci.sh            # every lane
#   scripts/ci.sh test       # tier-1 only: go build + go test ./...
#   scripts/ci.sh race       # full suite under the race detector
#   scripts/ci.sh benchsmoke # compile + one iteration of every benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

lane_test() {
  echo "== lane: build + test =="
  go build ./...
  go vet ./...
  go test ./...
}

lane_race() {
  echo "== lane: race =="
  go test -race ./...
}

lane_benchsmoke() {
  echo "== lane: bench smoke (1 iteration each) =="
  go test -run='^$' -bench=. -benchtime=1x ./...
}

case "${1:-all}" in
  test)       lane_test ;;
  race)       lane_race ;;
  benchsmoke) lane_benchsmoke ;;
  all)        lane_test; lane_race; lane_benchsmoke ;;
  *)          echo "usage: $0 [test|race|benchsmoke|all]" >&2; exit 2 ;;
esac
echo "ci: all requested lanes green"
