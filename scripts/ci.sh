#!/usr/bin/env bash
# CI lanes. Run all of them before merging:
#
#   scripts/ci.sh            # every lane
#   scripts/ci.sh test       # tier-1 only: format/vet gate + build + test
#   scripts/ci.sh race       # full suite under the race detector
#   scripts/ci.sh benchsmoke # compile + one iteration of every benchmark
#   scripts/ci.sh fuzzsmoke  # short fuzzing pass over codec + protocol
set -euo pipefail
cd "$(dirname "$0")/.."

lane_test() {
  echo "== lane: build + test =="
  unformatted=$(gofmt -l .)
  if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
  fi
  go build ./...
  go vet ./...
  # The protocol core must stay transport-agnostic: its import graph may
  # not reach the simulation engine or the overlay (see
  # internal/protocol/purity_test.go for the direct-import check; this
  # one is transitive).
  deps=$(go list -deps dlm/internal/protocol)
  for forbidden in dlm/internal/sim dlm/internal/overlay; do
    if echo "$deps" | grep -qx "$forbidden"; then
      echo "import purity: dlm/internal/protocol depends on $forbidden" >&2
      exit 1
    fi
  done
  go test ./...
}

lane_race() {
  echo "== lane: race =="
  go test -race ./...
}

lane_benchsmoke() {
  echo "== lane: bench smoke (1 iteration each) =="
  go test -run='^$' -bench=. -benchtime=1x ./...
}

lane_fuzzsmoke() {
  echo "== lane: fuzz smoke (5s each) =="
  go test -run='^$' -fuzz='^FuzzDecode$' -fuzztime=5s ./internal/msg/
  go test -run='^$' -fuzz='^FuzzMachineHandleMessage$' -fuzztime=5s ./internal/protocol/
}

case "${1:-all}" in
  test)       lane_test ;;
  race)       lane_race ;;
  benchsmoke) lane_benchsmoke ;;
  fuzzsmoke)  lane_fuzzsmoke ;;
  all)        lane_test; lane_race; lane_benchsmoke; lane_fuzzsmoke ;;
  *)          echo "usage: $0 [test|race|benchsmoke|fuzzsmoke|all]" >&2; exit 2 ;;
esac
echo "ci: all requested lanes green"
