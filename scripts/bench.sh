#!/usr/bin/env bash
# Run the hot-path benchmark suite and write a machine-readable artifact.
#
#   scripts/bench.sh                            # writes BENCH_pr1.json at the repo root
#   scripts/bench.sh BENCH_pr5.json             # custom artifact name
#   scripts/bench.sh BENCH_pr5.json BENCH_pr1.json
#                                               # also diff against the older artifact and
#                                               # fail on pinned-benchmark regression
#   BENCHTIME=10x scripts/bench.sh              # quicker smoke run
#
# The artifact records ns/op, B/op, allocs/op, any custom metrics
# (e.g. ratioRMSE) and the generating environment (GOMAXPROCS, NumCPU,
# go version, commit) for every benchmark in the packages below; check it
# in next to the PR so regressions diff in review.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr1.json}"
BASELINE="${2:-}"
BENCHTIME="${BENCHTIME:-}"

PKGS=(
  .                  # end-to-end scenario benchmarks (bench_test.go)
  ./internal/sim     # event queue + engine
  ./internal/overlay # membership, links, message delivery
  ./internal/core    # steady-state 100k-peer maintenance tick (ScaleTick)
  ./internal/query   # flood search
  ./internal/msg     # message/ID primitives
)

ARGS=(-run='^$' -bench=. -benchmem)
if [[ -n "$BENCHTIME" ]]; then
  ARGS+=("-benchtime=$BENCHTIME")
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test "${ARGS[@]}" "${PKGS[@]}" | tee "$TMP"
if [[ -n "$BASELINE" ]]; then
  # Compare mode: write the artifact, then diff it against the baseline.
  # dlmbench exits non-zero when a pinned micro-benchmark regresses >15%
  # ns/op (or allocates more), which fails this script — and the CI
  # benchsmoke lane that calls it.
  go run ./cmd/dlmbench -json "$OUT" -compare "$BASELINE" < "$TMP"
else
  go run ./cmd/dlmbench -json "$OUT" < "$TMP"
fi
