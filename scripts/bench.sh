#!/usr/bin/env bash
# Run the hot-path benchmark suite and write a machine-readable artifact.
#
#   scripts/bench.sh                 # writes BENCH_pr1.json at the repo root
#   scripts/bench.sh BENCH_pr2.json  # custom artifact name
#   BENCHTIME=10x scripts/bench.sh   # quicker smoke run
#
# The artifact records ns/op, B/op, allocs/op and any custom metrics
# (e.g. ratioRMSE) for every benchmark in the packages below; check it in
# next to the PR so regressions diff in review.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr1.json}"
BENCHTIME="${BENCHTIME:-}"

PKGS=(
  .                  # end-to-end scenario benchmarks (bench_test.go)
  ./internal/sim     # event queue + engine
  ./internal/overlay # membership, links, message delivery
  ./internal/query   # flood search
  ./internal/msg     # message/ID primitives
)

ARGS=(-run='^$' -bench=. -benchmem)
if [[ -n "$BENCHTIME" ]]; then
  ARGS+=("-benchtime=$BENCHTIME")
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test "${ARGS[@]}" "${PKGS[@]}" | tee "$TMP"
go run ./cmd/dlmbench -json "$OUT" < "$TMP"
