// Churn: reproduce the paper's dynamic scenario on a small network and
// watch DLM adapt. The lifetimes of newly joining peers halve at t=300
// and their capacities double at t=1000 — the exact regime changes behind
// the paper's Figures 4-6 — while the layer ratio is held.
package main

import (
	"fmt"
	"log"

	"dlm"
	"dlm/internal/experiments"
	"dlm/internal/plot"
)

func main() {
	sc := dlm.Scaled(1500)
	sc.Seed = 11
	sc.Duration = 1400 // covers both regime changes
	sc.Warmup = 200
	sc.SampleEvery = 10

	rc := experiments.DynamicScenario(sc)
	res, err := dlm.Run(rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== dynamic network: lifetime x0.5 at t=300, capacity x2 at t=1000 ===")
	fmt.Println(plot.Render(plot.Options{
		Title:  "average age per layer",
		XLabel: "simulation time (minutes)",
		YLabel: "age",
		Width:  72, Height: 14,
	}, res.Series.Get("age_super"), res.Series.Get("age_leaf")))

	fmt.Println(plot.Render(plot.Options{
		Title:  "average capacity per layer",
		XLabel: "simulation time (minutes)",
		YLabel: "KB/s",
		Width:  72, Height: 14,
	}, res.Series.Get("cap_super"), res.Series.Get("cap_leaf")))

	ratio := res.Series.Get("ratio")
	fmt.Printf("ratio during [200,1400]: mean %.1f, min %.1f, max %.1f (target η=%.0f)\n",
		ratio.MeanOver(200, 1400), ratio.MinOver(200, 1400), ratio.MaxOver(200, 1400), sc.Eta)
	fmt.Printf("role changes in the window: %d promotions, %d demotions\n",
		res.WindowCounters.Promotions, res.WindowCounters.Demotions)
}
