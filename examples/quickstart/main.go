// Quickstart: run a DLM-managed super-peer network at laptop scale and
// print what the algorithm achieved — the maintained layer ratio and the
// capacity/age separation between the layers.
package main

import (
	"fmt"
	"log"

	"dlm"
)

func main() {
	// A Table 2-shaped scenario scaled to 2,000 peers.
	sc := dlm.Scaled(2000)
	sc.Seed = 7

	res, err := dlm.Run(dlm.RunConfig{
		Scenario: sc,
		Manager:  dlm.ManagerDLM,
	})
	if err != nil {
		log.Fatal(err)
	}

	f := res.Final
	fmt.Println("=== DLM quickstart ===")
	fmt.Printf("population:   %d peers (%d supers + %d leaves)\n",
		f.NumSupers+f.NumLeaves, f.NumSupers, f.NumLeaves)
	fmt.Printf("layer ratio:  %.1f (protocol target η = %.0f)\n", f.Ratio, sc.Eta)
	fmt.Printf("avg capacity: super-layer %.0f KB/s vs leaf-layer %.0f KB/s (%.1fx)\n",
		f.AvgCapSuper, f.AvgCapLeaf, f.AvgCapSuper/f.AvgCapLeaf)
	fmt.Printf("avg age:      super-layer %.0f min vs leaf-layer %.0f min (%.1fx)\n",
		f.AvgAgeSuper, f.AvgAgeLeaf, f.AvgAgeSuper/f.AvgAgeLeaf)

	c := res.WindowCounters
	fmt.Printf("steady-state churn: %d joins, %d promotions, %d demotions\n",
		c.Joins, c.Promotions, c.Demotions)
	fmt.Printf("peer adjustment overhead: %.2f%% of new-connection cost\n", c.PAOOverNLCO())
}
