// Comparison: DLM versus the preconfigured-threshold policy (Gnutella 0.6
// Ultrapeers) under an oscillating capacity mix — the paper's Figures 7-8
// scenario — with the same search workload running on both, so the layer
// comparison happens at matched query success.
package main

import (
	"fmt"
	"log"

	"dlm"
	"dlm/internal/experiments"
	"dlm/internal/plot"
	"dlm/internal/stats"
)

func main() {
	sc := dlm.Scaled(1500)
	sc.Seed = 23
	sc.Duration = 800
	sc.Warmup = 200
	sc.SampleEvery = 10
	sc.QueryRate = 5

	runOne := func(kind dlm.ManagerKind) *dlm.RunResult {
		rc := experiments.ComparisonScenario(sc, kind)
		res, err := dlm.Run(rc)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	dlmRes := runOne(dlm.ManagerDLM)
	preRes := runOne(dlm.ManagerPreconfigured)

	rename := func(s *stats.Series, name string) *stats.Series {
		out := stats.NewSeries(name)
		for _, p := range s.Points() {
			out.Add(p.T, p.V)
		}
		return out
	}

	fmt.Println("=== oscillating capacity mix: new peers alternate strong/weak ===")
	fmt.Println(plot.Render(plot.Options{
		Title:  "layer size ratio: DLM holds, preconfigured oscillates",
		XLabel: "simulation time (minutes)",
		YLabel: "n_l/n_s",
		Width:  72, Height: 16,
	},
		rename(dlmRes.Series.Get("ratio"), "DLM"),
		rename(preRes.Series.Get("ratio"), "Preconfigured"),
	))

	from, to := sc.Warmup, sc.Duration
	dr := dlmRes.Series.Get("ratio")
	pr := preRes.Series.Get("ratio")
	fmt.Printf("ratio RMSE vs target η=%.0f:  DLM %.2f   preconfigured %.2f\n",
		sc.Eta, dr.RMSEAgainst(sc.Eta, from, to), pr.RMSEAgainst(sc.Eta, from, to))
	fmt.Printf("super-layer mean age:        DLM %.0f   preconfigured %.0f\n",
		dlmRes.Series.Get("age_super").MeanOver(from, to),
		preRes.Series.Get("age_super").MeanOver(from, to))
	fmt.Printf("query success at TTL %d:     DLM %.1f%%   preconfigured %.1f%%\n",
		sc.TTL, 100*dlmRes.QuerySuccess, 100*preRes.QuerySuccess)
	fmt.Printf("search cost (msgs/query):    DLM %.0f   preconfigured %.0f\n",
		dlmRes.QueryMsgsPer, preRes.QueryMsgsPer)
}
