// Calibration: the paper configures its simulator from data collected by
// two instrumented Gnutella clients. This example runs that pipeline on a
// synthetic crawl — log sessions, fit the lifetime distribution by MLE,
// census the bandwidth classes, rebuild a workload profile — and then
// drives a DLM simulation with the *fitted* profile instead of the
// ground truth.
package main

import (
	"fmt"
	"log"

	"dlm"
	"dlm/internal/measure"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

func main() {
	// Ground truth: what the "real network" looks like.
	truth := &workload.StaticProfile{
		Capacity:       workload.SaroiuBandwidthMixture(),
		Lifetime:       workload.LognormalWithMedian(60, 1.2),
		ObjectsPerPeer: workload.DefaultObjects(),
	}

	// Step 1: crawl. (In the paper: two Mutella-based clients, one per
	// layer, logging neighbor sessions.)
	r := sim.NewSource(99)
	crawl := measure.SyntheticCrawl(truth, 30000, r)
	fmt.Printf("collected %d sessions\n", len(crawl.Sessions))

	// Step 2: analyze.
	report, err := crawl.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifetime fit:  lognormal(mu=%.2f, sigma=%.2f) -> median %.1f min (p90 %.0f)\n",
		report.LifetimeFit.Mu, report.LifetimeFit.Sigma, report.LifetimeFit.Median(), report.P90Lifetime)
	fmt.Printf("ultrapeer fraction among observed peers: %.1f%%\n", 100*report.UltraFraction)
	fmt.Println("bandwidth census:")
	for _, c := range report.Classes {
		fmt.Printf("  %-6s %5.1f%%\n", c.Name, 100*c.Fraction)
	}

	// Step 3: rebuild a workload profile from the fits.
	fitted, err := report.Profile()
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: simulate with the fitted profile.
	sc := dlm.Scaled(1200)
	sc.Seed = 5
	rc := dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM, Profile: fitted}
	res, err := dlm.Run(rc)
	if err != nil {
		log.Fatal(err)
	}
	f := res.Final
	fmt.Printf("\nsimulation on the FITTED profile:\n")
	fmt.Printf("  ratio %.1f (target η=%.0f), capacity separation %.1fx, age separation %.1fx\n",
		f.Ratio, sc.Eta, f.AvgCapSuper/f.AvgCapLeaf, f.AvgAgeSuper/f.AvgAgeLeaf)

	// Control: the same simulation on the ground truth.
	res2, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM})
	if err != nil {
		log.Fatal(err)
	}
	g := res2.Final
	fmt.Printf("simulation on the TRUE profile:\n")
	fmt.Printf("  ratio %.1f (target η=%.0f), capacity separation %.1fx, age separation %.1fx\n",
		g.Ratio, sc.Eta, g.AvgCapSuper/g.AvgCapLeaf, g.AvgAgeSuper/g.AvgAgeLeaf)
}
