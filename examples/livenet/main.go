// Livenet: run DLM over real goroutines — one per peer, channels as the
// message plane, wall-clock time units. The same controller math as the
// simulator, but with genuine concurrency: peers join, exchange the two
// DLM message pairs, and promote/demote themselves while you watch.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dlm/internal/live"
	"dlm/internal/msg"
)

func main() {
	cfg := live.Config{
		Eta:  8,
		Unit: 5 * time.Millisecond, // one protocol "minute" = 5ms real time
		Seed: 42,
	}
	n := live.NewNet(cfg)
	defer n.Stop()

	rng := rand.New(rand.NewSource(1))
	const peers = 150
	fmt.Printf("spawning %d peer goroutines (η=%.0f)...\n", peers, cfg.Eta)
	for i := 0; i < peers; i++ {
		// Heterogeneous capacities: a heavy-tailed mix.
		capacity := 5 + rng.ExpFloat64()*50
		n.Join(capacity)
	}

	for i := 1; i <= 6; i++ {
		time.Sleep(500 * time.Millisecond)
		s := n.Snapshot()
		fmt.Printf("t=%3.1fs  supers=%3d  leaves=%3d  ratio=%5.1f  capS=%5.1f capL=%5.1f\n",
			float64(i)*0.5, s.NumSupers, s.NumLeaves, s.Ratio, s.AvgCapSuper, s.AvgCapLeaf)
	}

	fmt.Printf("\nDLM message plane totals:\n")
	for _, k := range []msg.Kind{
		msg.KindNeighNumRequest, msg.KindNeighNumResponse,
		msg.KindValueRequest, msg.KindValueResponse,
	} {
		fmt.Printf("  %-20s %d\n", k, n.Messages(k))
	}
	fmt.Printf("  dropped (full inboxes) %d\n", n.Dropped())

	s := n.Snapshot()
	if s.AvgCapSuper > s.AvgCapLeaf {
		fmt.Printf("\nsuper-layer is %.1fx stronger than the leaf-layer — DLM at work.\n",
			s.AvgCapSuper/s.AvgCapLeaf)
	}
}
