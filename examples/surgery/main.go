// Surgery: a six-peer walkthrough of the paper's Figures 2 and 3 — the
// connection mechanics of promotion and demotion. Promotion keeps every
// existing connection (no Peer Adjustment Overhead); demotion keeps m
// super links, drops the leaves, and each dropped leaf makes exactly one
// replacement connection (the PAO).
package main

import (
	"fmt"
	"sort"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/sim"
)

func main() {
	eng := sim.NewEngine(1)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 4}, nil)

	// Figure 2's scene: supers S1, S2; leaf L with connections to both,
	// plus leaves F, G, I.
	s1 := n.Join(100, 1e9, nil) // bootstrap super
	s2 := n.Join(100, 1e9, nil)
	n.Promote(s2)
	l := n.Join(50, 1e9, nil)
	f := n.Join(10, 1e9, nil)
	g := n.Join(10, 1e9, nil)
	i := n.Join(10, 1e9, nil)
	names := map[msg.PeerID]string{
		s1.ID: "S1", s2.ID: "S2", l.ID: "L", f.ID: "F", g.ID: "G", i.ID: "I",
	}

	dump := func(title string) {
		fmt.Printf("\n%s\n", title)
		ids := []*overlay.Peer{s1, s2, l, f, g, i}
		for _, p := range ids {
			if !p.Alive() {
				continue
			}
			var links []string
			for _, q := range p.SuperLinks() {
				links = append(links, names[q])
			}
			for _, q := range p.LeafLinks() {
				links = append(links, names[q]+"(leaf)")
			}
			sort.Strings(links)
			fmt.Printf("  %-3s [%-5s] -> %v\n", names[p.ID], p.Layer, links)
		}
		c := n.Counters()
		fmt.Printf("  counters: promotions=%d demotions=%d PAO disconnects=%d\n",
			c.Promotions, c.Demotions, c.DemotionDisconnects)
	}

	dump("before promotion (Figure 2a): L is a leaf of S1 and S2")

	// Figure 2b: L is promoted; its super connections persist as
	// super-super links, nobody is disconnected.
	n.Promote(l)
	dump("after promotion (Figure 2b): L joined the super-layer, links kept")

	// Attach some leaves to L so its demotion has something to drop.
	for _, leaf := range []*overlay.Peer{f, g} {
		for _, id := range append([]msg.PeerID(nil), leaf.SuperLinks()...) {
			n.Disconnect(leaf, n.Peer(id))
		}
		n.Connect(leaf, l)
	}
	dump("interlude: F and G re-homed under L (Figure 3a's scene)")

	// Figure 3b: L is demoted; it keeps m=2 super links, F and G are
	// disconnected and each makes exactly one replacement connection.
	n.Demote(l)
	dump("after demotion (Figure 3b): L back in the leaf-layer")

	c := n.Counters()
	fmt.Printf("\nPAO: %d replacement connections for %d dropped leaves — ", c.DemotionDisconnects, 2)
	fmt.Printf("promotion cost 0, exactly as §6 argues.\n")
}
