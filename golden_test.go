package dlm_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dlm"
)

// TestGoldenFigures regenerates every figure CSV with the dlmbench
// defaults and compares the bytes against the committed artifacts in
// results/. This is the determinism pin for the whole pipeline: any
// change that perturbs a random stream, the event order, or the fault
// injection in its disabled state shows up here as a byte diff. The runs
// take tens of seconds, so the test is skipped under -short.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure regeneration is slow; skipped with -short")
	}

	// Regenerate through the sharded tick path: the goldens were produced
	// by dlmbench (which defaults -shards to GOMAXPROCS), and the
	// fixed-lane discipline promises the bytes are identical for any
	// worker count — 4 here pins the multi-worker fan-out regardless of
	// the machine running the test.
	// Cleanup, not defer: the parallel subtests outlive this function body.
	dlm.SetShards(4)
	t.Cleanup(func() { dlm.SetShards(0) })

	// The dlmbench figure defaults (cmd/dlmbench/main.go).
	base := dlm.Scaled(2000)
	base.Seed = 1
	base.Duration = dlm.SettledWindowEnd
	base.Warmup = 200
	base.SampleEvery = 10

	figures := []struct {
		name string
		run  func(dlm.Scenario) (*dlm.FigureResult, error)
		prep func(dlm.Scenario) dlm.Scenario
	}{
		{name: "fig4", run: dlm.Figure4},
		{name: "fig5", run: dlm.Figure5},
		{name: "fig6", run: dlm.Figure6},
		{name: "fig7", run: dlm.Figure7, prep: func(sc dlm.Scenario) dlm.Scenario {
			sc.QueryRate = 5
			return sc
		}},
		{name: "fig8", run: dlm.Figure8},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("results", fig.name+".csv"))
			if err != nil {
				t.Fatalf("missing golden artifact: %v", err)
			}
			sc := base
			if fig.prep != nil {
				sc = fig.prep(sc)
			}
			res, err := fig.run(sc)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := dlm.WriteFigureCSV(res, &got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("%s.csv drifted from the committed golden bytes "+
					"(got %d bytes, want %d); if the change is intentional, "+
					"regenerate with `go run ./cmd/dlmbench -out results`",
					fig.name, got.Len(), len(want))
			}
		})
	}
}
