package dlm_test

import (
	"fmt"

	"dlm"
)

// ExampleRun shows the minimal end-to-end use of the library: build a
// scaled Table 2 scenario, run DLM on it, and read the maintained layer
// ratio. (No Output comment: the exact numbers are seed-dependent by
// design; see examples/quickstart for a runnable program.)
func ExampleRun() {
	sc := dlm.Scaled(500)
	sc.Seed = 7
	sc.Duration = 300

	res, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ratio held near η=%.0f: %v\n", sc.Eta, res.Final.Ratio > sc.Eta/2)
	// Output: ratio held near η=19: true
}

// ExampleFigure7 regenerates the paper's headline comparison figure and
// renders it as an ASCII chart.
func ExampleFigure7() {
	sc := dlm.Scaled(400)
	sc.Seed = 42
	sc.Duration = 300
	sc.Warmup = 100

	fig, err := dlm.Figure7(sc)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(fig.Series) == 2) // DLM and Preconfigured series
	// Output: true
}
