// Benchmarks regenerating each table and figure of the paper at a reduced
// scale. Each benchmark reports, besides time, the headline *shape*
// metric of its artifact via b.ReportMetric — e.g. the ratio RMSE for
// Figure 6 or the age separation for Figure 4 — so that a bench run
// doubles as a quick reproduction check. cmd/dlmbench produces the
// full-size artifacts.
package dlm_test

import (
	"math"
	"testing"

	"dlm"
)

// benchScenario is sized so one iteration costs well under a second.
func benchScenario(seed int64) dlm.Scenario {
	sc := dlm.Scaled(600)
	sc.Seed = seed
	sc.Duration = 400
	sc.Warmup = 150
	sc.SampleEvery = 5
	return sc
}

func BenchmarkFigure4AverageAge(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		f, err := dlm.Figure4(benchScenario(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		sup, leaf := f.Series[0], f.Series[1]
		sep = sup.MeanOver(150, 400) / leaf.MeanOver(150, 400)
	}
	b.ReportMetric(sep, "ageSep_x")
}

func BenchmarkFigure5AverageCapacity(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		f, err := dlm.Figure5(benchScenario(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		sep = f.Series[0].MeanOver(150, 400) / f.Series[1].MeanOver(150, 400)
	}
	b.ReportMetric(sep, "capSep_x")
}

func BenchmarkFigure6LayerSizes(b *testing.B) {
	var rmse float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		res, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM})
		if err != nil {
			b.Fatal(err)
		}
		rmse = res.Series.Get("ratio").RMSEAgainst(sc.Eta, sc.Warmup, sc.Duration)
	}
	b.ReportMetric(rmse, "ratioRMSE")
}

func BenchmarkFigure7RatioComparison(b *testing.B) {
	var dlmRMSE, preRMSE float64
	for i := 0; i < b.N; i++ {
		// The comparison needs a super-layer large enough that DLM's
		// role-change quantization does not dominate its own variance,
		// and a window covering a few population turnovers.
		sc := dlm.Scaled(800)
		sc.Seed = int64(i + 1)
		sc.Eta = 10
		sc.Warmup = 150
		sc.SampleEvery = 5
		sc.Duration = 700
		f, err := dlm.Figure7(sc)
		if err != nil {
			b.Fatal(err)
		}
		dlmRMSE = f.Series[0].RMSEAgainst(sc.Eta, sc.Warmup, sc.Duration)
		preRMSE = f.Series[1].RMSEAgainst(sc.Eta, sc.Warmup, sc.Duration)
	}
	b.ReportMetric(dlmRMSE, "dlmRMSE")
	b.ReportMetric(preRMSE, "preconfRMSE")
}

func BenchmarkFigure8AgeComparison(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		f, err := dlm.Figure8(sc)
		if err != nil {
			b.Fatal(err)
		}
		dlmSuper := f.Series[0].MeanOver(sc.Warmup, sc.Duration)
		preSuper := f.Series[1].MeanOver(sc.Warmup, sc.Duration)
		advantage = dlmSuper / preSuper
	}
	b.ReportMetric(advantage, "superAge_x")
}

func BenchmarkTable3PAO(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := dlm.Table3([]int{400, 1200}, int64(100+i))
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			worst = math.Max(worst, r.PAOOverNLCO)
		}
	}
	b.ReportMetric(worst, "worstPAO_pct")
}

func BenchmarkOverheadStudy(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		sc.QueryRate = 10
		res, err := dlm.Overhead(sc)
		if err != nil {
			b.Fatal(err)
		}
		share = res.MsgShare
	}
	b.ReportMetric(share, "dlmMsgShare_pct")
}

func BenchmarkPolicyAblation(b *testing.B) {
	var eventMsgs float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		sc.Duration = 300
		rows, err := dlm.PolicyAblation(sc, []float64{5})
		if err != nil {
			b.Fatal(err)
		}
		eventMsgs = float64(rows[0].DLMMessages)
	}
	b.ReportMetric(eventMsgs, "eventDrivenMsgs")
}

func BenchmarkGainAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		sc.Duration = 300
		if _, err := dlm.GainAblation(sc, "rategain", []float64{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineSweep(b *testing.B) {
	var dlmCapSep float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		sc.Duration = 300
		rows, err := dlm.BaselineSweep(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Manager == "dlm" {
				dlmCapSep = r.CapSeparation
			}
		}
	}
	b.ReportMetric(dlmCapSep, "dlmCapSep_x")
}

// BenchmarkSearchEfficiency regenerates the motivating pure-vs-super-peer
// search comparison and reports the message-cost advantage at TTL 6.
func BenchmarkSearchEfficiency(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		sc.N = 500
		sc.Warmup = 150
		sc.CatalogSize = 300
		rows, err := dlm.SearchEfficiency(sc, []int{6}, 150)
		if err != nil {
			b.Fatal(err)
		}
		advantage = rows[0].PureMsgsPer / math.Max(rows[0].SuperMsgsPer, 1)
	}
	b.ReportMetric(advantage, "msgAdvantage_x")
}

// BenchmarkRedundancySweep regenerates the leaf-redundancy study and
// reports the under-connection exposure at the paper's m=2.
func BenchmarkRedundancySweep(b *testing.B) {
	var under float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		sc.N = 400
		sc.Duration = 300
		sc.CatalogSize = 300
		rows, err := dlm.RedundancySweep(sc, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		under = rows[0].UnderFrac
	}
	b.ReportMetric(under, "underFrac_m2")
}

// BenchmarkEquationInvariants measures a plain steady-state run and
// reports how closely the measured average leaf degree tracks
// k_l = m·η (Equation a) — the structural identity DLM's μ estimation
// rests on.
func BenchmarkEquationInvariants(b *testing.B) {
	var relErr float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(int64(i + 1))
		res, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerStatic})
		if err != nil {
			b.Fatal(err)
		}
		// Under the static manager the ratio is exact, so measured l_nn
		// should approach m·(actual ratio).
		f := res.Final
		expect := f.AvgSuperDegreeOfLeaves * f.Ratio
		relErr = math.Abs(f.AvgLeafDegree-expect) / expect
	}
	b.ReportMetric(relErr, "eqA_relErr")
}

// BenchmarkSimulationThroughput reports raw simulated peer-minutes per
// second of wall time for the full DLM stack.
func BenchmarkSimulationThroughput(b *testing.B) {
	sc := benchScenario(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM}); err != nil {
			b.Fatal(err)
		}
	}
	peerUnits := float64(sc.N) * sc.Duration
	b.ReportMetric(peerUnits*float64(b.N)/b.Elapsed().Seconds(), "peer-units/s")
}
