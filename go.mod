module dlm

go 1.22
