package config

import (
	"math"
	"strings"
	"testing"
)

func TestTable2MatchesPaper(t *testing.T) {
	s := Table2()
	if err := s.Validate(); err != nil {
		t.Fatalf("Table2 invalid: %v", err)
	}
	if s.Eta != 40 || s.M != 2 || s.KS != 3 {
		t.Fatalf("structure %v/%v/%v, want 40/2/3", s.Eta, s.M, s.KS)
	}
	if s.KL() != 80 {
		t.Fatalf("k_l = %v, want 80 (Table 2)", s.KL())
	}
	if got := s.PreferredSupers(); got != 1220 {
		t.Fatalf("n_s = %d, want 1220 (Table 2)", got)
	}
	if got := s.PreferredLeaves(); got != 48800 {
		t.Fatalf("n_l = %d, want 48800 (Table 2)", got)
	}
}

func TestScaled(t *testing.T) {
	for _, n := range []int{100, 500, 2000, 50020} {
		s := Scaled(n)
		if err := s.Validate(); err != nil {
			t.Fatalf("Scaled(%d) invalid: %v", n, err)
		}
		if s.N != n {
			t.Fatalf("Scaled(%d).N = %d", n, s.N)
		}
		if ns := s.PreferredSupers(); ns < 15 {
			t.Fatalf("Scaled(%d) super-layer too small: %d", n, ns)
		}
	}
	// Large n keeps the paper's eta.
	if Scaled(50020).Eta != 40 {
		t.Fatal("large scaled scenario should keep eta=40")
	}
}

func TestEquationConsistency(t *testing.T) {
	// Equations a and b must be mutually consistent: n_s·k_l ≈ n_l·m.
	for _, s := range []Scenario{Table2(), Scaled(1000), Scaled(300)} {
		lhs := float64(s.PreferredSupers()) * s.KL()
		rhs := float64(s.PreferredLeaves()) * float64(s.M)
		if math.Abs(lhs-rhs)/rhs > 0.01 {
			t.Errorf("%s: out-degree balance %v vs %v", s.Name, lhs, rhs)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := map[string]func(*Scenario){
		"N":        func(s *Scenario) { s.N = 0 },
		"Eta":      func(s *Scenario) { s.Eta = 0 },
		"M":        func(s *Scenario) { s.M = 0 },
		"KS":       func(s *Scenario) { s.KS = 0 },
		"Growth":   func(s *Scenario) { s.GrowthRate = 0 },
		"Duration": func(s *Scenario) { s.Duration = 0 },
		"Sample":   func(s *Scenario) { s.SampleEvery = 0 },
		"Warmup":   func(s *Scenario) { s.Warmup = s.Duration },
		"Lifetime": func(s *Scenario) { s.LifetimeMedian = 0 },
		"Rate":     func(s *Scenario) { s.QueryRate = -1 },
		"TTL":      func(s *Scenario) { s.QueryRate = 1; s.TTL = 0 },
	}
	for name, mutate := range mutations {
		s := Table2()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBaseProfileSamples(t *testing.T) {
	s := Table2()
	p := s.BaseProfile()
	if p.Capacity == nil || p.Lifetime == nil || p.ObjectsPerPeer == nil {
		t.Fatal("profile incomplete")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	want := Scaled(777)
	want.Seed = 99
	var sb strings.Builder
	if err := want.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadJSONRejects(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"N": 0}`)); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/scenario.json"
	want := Table2()
	if err := want.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
