package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the scenario.
func (s Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses and validates a scenario.
func ReadJSON(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("config: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// LoadFile reads a scenario from a JSON file.
func LoadFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveFile writes a scenario to a JSON file.
func (s Scenario) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
