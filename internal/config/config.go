// Package config defines experiment scenarios: the paper's Table 2
// parameters, scaled-down variants for tests and laptop runs, and the
// workload profiles derived from them.
package config

import (
	"fmt"
	"math"

	"dlm/internal/overlay"
	"dlm/internal/workload"
)

// Scenario bundles the structural and workload parameters of one
// simulation run.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed drives all randomness.
	Seed int64

	// N is the steady-state population (Table 2: n ≈ 50,020).
	N int
	// Eta is the target layer size ratio (Table 2: 40).
	Eta float64
	// M is the super connections per leaf (Table 2: 2).
	M int
	// KS is the super-layer degree target (Table 2: 3).
	KS int

	// GrowthRate is joins per time unit during cold start.
	GrowthRate int
	// Duration is the simulated time span after t=0.
	Duration float64
	// SampleEvery is the snapshot interval for time series.
	SampleEvery float64
	// Warmup marks the end of the transient; steady-state summaries and
	// counter windows start here.
	Warmup float64

	// LifetimeMedian and LifetimeSigma parameterize the lognormal session
	// lengths (median ≈ 60 minutes in the measurement studies).
	LifetimeMedian float64
	LifetimeSigma  float64

	// CatalogSize, QueryRate and TTL configure the search workload; a
	// zero QueryRate disables it.
	CatalogSize int
	QueryRate   float64
	TTL         int
}

// Table2 returns the paper's full-scale parameters: n_s = 1,220 preferred
// super-peers, n_l = 48,800 preferred leaf-peers, η = 40, m = 2, k_l = 80,
// k_s = 3.
func Table2() Scenario {
	return Scenario{
		Name:           "table2",
		Seed:           1,
		N:              50020,
		Eta:            40,
		M:              2,
		KS:             3,
		GrowthRate:     5000,
		Duration:       2000,
		SampleEvery:    10,
		Warmup:         400,
		LifetimeMedian: 60,
		LifetimeSigma:  1.2,
		CatalogSize:    10000,
		QueryRate:      0,
		TTL:            7,
	}
}

// Scaled returns a Table 2-shaped scenario resized to n peers with a
// proportional η (so the super-layer stays statistically meaningful at
// small n) and a duration that still covers several churn generations.
func Scaled(n int) Scenario {
	s := Table2()
	s.Name = fmt.Sprintf("scaled-%d", n)
	s.N = n
	// Keep roughly Table 2's super-layer share for large n; shrink η for
	// small n so the super-layer holds at least ~25 peers.
	if float64(n)/(1+s.Eta) < 25 {
		s.Eta = math.Max(4, float64(n)/25-1)
	}
	s.GrowthRate = n/10 + 1
	s.Duration = 600
	s.Warmup = 200
	s.SampleEvery = 5
	return s
}

// Overlay derives the overlay parameters.
func (s Scenario) Overlay() overlay.Config {
	return overlay.Config{M: s.M, KS: s.KS, Eta: s.Eta}
}

// KL returns the optimal leaf degree k_l = m·η (Equation a).
func (s Scenario) KL() float64 { return float64(s.M) * s.Eta }

// PreferredSupers returns n_s = n/(1+η) (Equation b).
func (s Scenario) PreferredSupers() int {
	return int(float64(s.N)/(1+s.Eta) + 0.5)
}

// PreferredLeaves returns n_l = n − n_s.
func (s Scenario) PreferredLeaves() int { return s.N - s.PreferredSupers() }

// BaseProfile builds the stable-network workload profile.
func (s Scenario) BaseProfile() *workload.StaticProfile {
	return &workload.StaticProfile{
		Capacity:       workload.SaroiuBandwidthMixture(),
		Lifetime:       workload.LognormalWithMedian(s.LifetimeMedian, s.LifetimeSigma),
		ObjectsPerPeer: workload.DefaultObjects(),
	}
}

// Validate reports a descriptive error for inconsistent scenarios.
func (s Scenario) Validate() error {
	switch {
	case s.N <= 0:
		return fmt.Errorf("config: N = %d, want > 0", s.N)
	case s.Eta <= 0:
		return fmt.Errorf("config: Eta = %v, want > 0", s.Eta)
	case s.M <= 0 || s.KS <= 0:
		return fmt.Errorf("config: degrees M=%d KS=%d, want > 0", s.M, s.KS)
	case s.GrowthRate <= 0:
		return fmt.Errorf("config: GrowthRate = %d, want > 0", s.GrowthRate)
	case s.Duration <= 0 || s.SampleEvery <= 0:
		return fmt.Errorf("config: Duration=%v SampleEvery=%v, want > 0", s.Duration, s.SampleEvery)
	case s.Warmup < 0 || s.Warmup >= s.Duration:
		return fmt.Errorf("config: Warmup = %v, want in [0, Duration)", s.Warmup)
	case s.LifetimeMedian <= 0 || s.LifetimeSigma < 0:
		return fmt.Errorf("config: lifetime median=%v sigma=%v", s.LifetimeMedian, s.LifetimeSigma)
	case s.QueryRate < 0:
		return fmt.Errorf("config: QueryRate = %v, want >= 0", s.QueryRate)
	case s.QueryRate > 0 && (s.TTL <= 0 || s.CatalogSize <= 0):
		return fmt.Errorf("config: query workload needs TTL and CatalogSize > 0")
	}
	return nil
}
