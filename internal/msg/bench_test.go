package msg

import "testing"

func BenchmarkEncodeValueResponse(b *testing.B) {
	m := ValueResponse(1, 2, 123.5, 42.25)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], &m)
	}
}

func BenchmarkDecodeValueResponse(b *testing.B) {
	m := ValueResponse(1, 2, 123.5, 42.25)
	buf := Encode(nil, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeQuery(b *testing.B) {
	m := NewQuery(1, 2, 99, 777, 7)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], &m)
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
