package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format: a 1-byte kind, 4-byte From, 4-byte To header, then a
// kind-specific payload. All integers are big-endian; floats are IEEE-754
// bits. The format is fixed-size per kind, which keeps the byte accounting
// of the overhead study exact and the codec branch-light.

const headerSize = 1 + 4 + 4

// ErrShortBuffer is returned by Decode when the input is truncated.
var ErrShortBuffer = errors.New("msg: short buffer")

// ErrBadKind is returned by Decode for an unknown kind byte.
var ErrBadKind = errors.New("msg: unknown message kind")

func payloadSize(k Kind) int {
	switch k {
	case KindNeighNumRequest, KindValueRequest, KindPing, KindPong:
		return 0
	case KindNeighNumResponse:
		return 4
	case KindValueResponse:
		return 16
	case KindQuery:
		return 8 + 4 + 1 + 1
	case KindQueryHit:
		return 8 + 4 + 4 + 1
	default:
		return -1
	}
}

func encodedSize(m *Message) int {
	p := payloadSize(m.Kind)
	if p < 0 {
		return 0
	}
	return headerSize + p
}

// Encode appends the wire form of m to dst and returns the extended slice.
// It panics on an invalid kind: building such a message is a logic error.
func Encode(dst []byte, m *Message) []byte {
	p := payloadSize(m.Kind)
	if p < 0 {
		panic(fmt.Sprintf("msg: encode invalid kind %v", m.Kind))
	}
	dst = append(dst, byte(m.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	switch m.Kind {
	case KindNeighNumResponse:
		dst = binary.BigEndian.AppendUint32(dst, m.NeighNum)
	case KindValueResponse:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Capacity))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Age))
	case KindQuery:
		dst = binary.BigEndian.AppendUint64(dst, uint64(m.Query))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Object))
		dst = append(dst, m.TTL, m.Hops)
	case KindQueryHit:
		dst = binary.BigEndian.AppendUint64(dst, uint64(m.Query))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Object))
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Provider))
		dst = append(dst, m.Hops)
	}
	return dst
}

// Decode parses one message from the front of src, returning the message
// and the number of bytes consumed.
func Decode(src []byte) (Message, int, error) {
	if len(src) < headerSize {
		return Message{}, 0, ErrShortBuffer
	}
	k := Kind(src[0])
	p := payloadSize(k)
	if p < 0 {
		return Message{}, 0, ErrBadKind
	}
	total := headerSize + p
	if len(src) < total {
		return Message{}, 0, ErrShortBuffer
	}
	m := Message{
		Kind: k,
		From: PeerID(binary.BigEndian.Uint32(src[1:5])),
		To:   PeerID(binary.BigEndian.Uint32(src[5:9])),
	}
	body := src[headerSize:total]
	switch k {
	case KindNeighNumResponse:
		m.NeighNum = binary.BigEndian.Uint32(body)
	case KindValueResponse:
		m.Capacity = math.Float64frombits(binary.BigEndian.Uint64(body[0:8]))
		m.Age = math.Float64frombits(binary.BigEndian.Uint64(body[8:16]))
	case KindQuery:
		m.Query = QueryID(binary.BigEndian.Uint64(body[0:8]))
		m.Object = ObjectID(binary.BigEndian.Uint32(body[8:12]))
		m.TTL = body[12]
		m.Hops = body[13]
	case KindQueryHit:
		m.Query = QueryID(binary.BigEndian.Uint64(body[0:8]))
		m.Object = ObjectID(binary.BigEndian.Uint32(body[8:12]))
		m.Provider = PeerID(binary.BigEndian.Uint32(body[12:16]))
		m.Hops = body[16]
	}
	return m, total, nil
}
