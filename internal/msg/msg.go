// Package msg defines the protocol messages of the super-peer overlay:
// the two DLM information-exchange pairs from the paper (Table 1) plus the
// query-routing messages of the underlying Gnutella-style protocol.
//
// Messages carry a compact binary wire format so the overhead study of
// the paper's §6 can account in bytes, not just message counts.
package msg

import "fmt"

// Kind enumerates the protocol message types.
type Kind uint8

// Message kinds. The first four are DLM's two message pairs (paper
// Table 1); the rest belong to the search substrate.
const (
	KindInvalid Kind = iota
	// KindNeighNumRequest asks a super-peer for its current number of
	// leaf neighbors (sent leaf -> super).
	KindNeighNumRequest
	// KindNeighNumResponse carries l_nn back to the requesting leaf.
	KindNeighNumResponse
	// KindValueRequest asks a leaf for its capacity and age (sent
	// super -> leaf).
	KindValueRequest
	// KindValueResponse carries the leaf's capacity and age.
	KindValueResponse
	// KindQuery is a flooded content query.
	KindQuery
	// KindQueryHit travels the inverse query path back to the source.
	KindQueryHit
	// KindPing/KindPong are the connection-liveness pair; they exist so
	// DLM's pairs can be piggybacked, as §6 suggests.
	KindPing
	KindPong
	kindSentinel // keep last
)

// NumKinds is the number of valid message kinds.
const NumKinds = int(kindSentinel)

var kindNames = [...]string{
	KindInvalid:          "invalid",
	KindNeighNumRequest:  "neigh_num_request",
	KindNeighNumResponse: "neigh_num_response",
	KindValueRequest:     "value_request",
	KindValueResponse:    "value_response",
	KindQuery:            "query",
	KindQueryHit:         "query_hit",
	KindPing:             "ping",
	KindPong:             "pong",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined message kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindSentinel }

// IsDLM reports whether the kind belongs to DLM's information-exchange
// pairs (as opposed to the search substrate). The overhead study separates
// traffic along this line.
func (k Kind) IsDLM() bool {
	switch k {
	case KindNeighNumRequest, KindNeighNumResponse, KindValueRequest, KindValueResponse:
		return true
	}
	return false
}

// PeerID identifies a peer for the lifetime of one simulation run.
type PeerID uint32

// NoPeer is the zero, invalid peer ID.
const NoPeer PeerID = 0

// ObjectID identifies a content object in the catalog.
type ObjectID uint32

// QueryID identifies a query flood; duplicate suppression keys on it.
type QueryID uint64

// Message is one protocol message. A single struct (rather than one type
// per kind) keeps the hot simulation path free of interface dispatch and
// allocation; unused fields are zero.
type Message struct {
	Kind Kind
	From PeerID
	To   PeerID

	// NeighNum is l_nn in a NeighNumResponse.
	NeighNum uint32
	// Capacity and Age travel in a ValueResponse.
	Capacity float64
	Age      float64

	// Query fields.
	Query  QueryID
	Object ObjectID
	TTL    uint8
	Hops   uint8
	// Provider is the peer holding the object, in a QueryHit.
	Provider PeerID
}

// WireSize returns the encoded size of the message in bytes. DLM's pairs
// are deliberately tiny (§6: "they can have very simple formats and only
// need few bytes").
func (m *Message) WireSize() int { return encodedSize(m) }

// NeighNumRequest builds the leaf->super l_nn request.
func NeighNumRequest(from, to PeerID) Message {
	return Message{Kind: KindNeighNumRequest, From: from, To: to}
}

// NeighNumResponse builds the super->leaf l_nn response.
func NeighNumResponse(from, to PeerID, lnn int) Message {
	return Message{Kind: KindNeighNumResponse, From: from, To: to, NeighNum: uint32(lnn)}
}

// ValueRequest builds the super->leaf capacity/age request.
func ValueRequest(from, to PeerID) Message {
	return Message{Kind: KindValueRequest, From: from, To: to}
}

// ValueResponse builds the leaf->super capacity/age response.
func ValueResponse(from, to PeerID, capacity, age float64) Message {
	return Message{Kind: KindValueResponse, From: from, To: to, Capacity: capacity, Age: age}
}

// NewQuery builds a query flood message with the given TTL.
func NewQuery(from, to PeerID, id QueryID, obj ObjectID, ttl uint8) Message {
	return Message{Kind: KindQuery, From: from, To: to, Query: id, Object: obj, TTL: ttl}
}

// NewQueryHit builds the response routed back along the inverse path;
// hops records the super-layer depth at which the hit occurred.
func NewQueryHit(from, to PeerID, id QueryID, obj ObjectID, provider PeerID, hops uint8) Message {
	return Message{Kind: KindQueryHit, From: from, To: to, Query: id, Object: obj, Provider: provider, Hops: hops}
}
