package msg

import (
	"bytes"
	"testing"
)

// FuzzDecode ensures the codec never panics or over-reads on arbitrary
// input, and that every successfully decoded message re-encodes to the
// exact consumed bytes (decode∘encode is the identity on valid frames).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		NeighNumRequest(1, 2),
		NeighNumResponse(2, 1, 80),
		ValueRequest(3, 4),
		ValueResponse(4, 3, 123.5, 42.25),
		NewQuery(5, 6, 99, 777, 7),
		NewQueryHit(6, 5, 99, 777, 99, 3),
		{Kind: KindPing, From: 7, To: 8},
	}
	for i := range seeds {
		f.Add(Encode(nil, &seeds[i]))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Encode(nil, &m)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], re)
		}
	})
}
