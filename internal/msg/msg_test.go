package msg

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if KindQuery.String() != "query" {
		t.Errorf("KindQuery.String() = %q", KindQuery.String())
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Errorf("unknown kind String() = %q", Kind(200).String())
	}
}

func TestKindValid(t *testing.T) {
	if KindInvalid.Valid() {
		t.Error("KindInvalid reported valid")
	}
	for k := KindNeighNumRequest; k < kindSentinel; k++ {
		if !k.Valid() {
			t.Errorf("kind %v reported invalid", k)
		}
	}
	if kindSentinel.Valid() {
		t.Error("sentinel reported valid")
	}
}

func TestIsDLM(t *testing.T) {
	dlm := []Kind{KindNeighNumRequest, KindNeighNumResponse, KindValueRequest, KindValueResponse}
	for _, k := range dlm {
		if !k.IsDLM() {
			t.Errorf("%v should be DLM traffic", k)
		}
	}
	for _, k := range []Kind{KindQuery, KindQueryHit, KindPing, KindPong} {
		if k.IsDLM() {
			t.Errorf("%v should not be DLM traffic", k)
		}
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Encode(nil, &m)
	if len(buf) != m.WireSize() {
		t.Fatalf("%v: encoded %d bytes, WireSize says %d", m.Kind, len(buf), m.WireSize())
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("%v: decode: %v", m.Kind, err)
	}
	if n != len(buf) {
		t.Fatalf("%v: consumed %d of %d bytes", m.Kind, n, len(buf))
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []Message{
		NeighNumRequest(1, 2),
		NeighNumResponse(2, 1, 80),
		ValueRequest(3, 4),
		ValueResponse(4, 3, 123.5, 42.25),
		NewQuery(5, 6, 0xdeadbeefcafe, 777, 7),
		NewQueryHit(6, 5, 0xdeadbeefcafe, 777, 99, 4),
		{Kind: KindPing, From: 7, To: 8},
		{Kind: KindPong, From: 8, To: 7},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if got != m {
			t.Errorf("round trip %v:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestQueryHopsSurvive(t *testing.T) {
	m := NewQuery(1, 2, 9, 10, 7)
	m.Hops = 3
	if got := roundTrip(t, m); got.Hops != 3 || got.TTL != 7 {
		t.Fatalf("hops/ttl lost: %+v", got)
	}
}

func TestDLMPairsAreTiny(t *testing.T) {
	// §6 argues the DLM pairs "only need few bytes"; lock that in.
	for _, m := range []Message{
		NeighNumRequest(1, 2),
		NeighNumResponse(2, 1, 80),
		ValueRequest(1, 2),
		ValueResponse(2, 1, 1, 1),
	} {
		if s := m.WireSize(); s > 32 {
			t.Errorf("%v wire size %d bytes, want <= 32", m.Kind, s)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrShortBuffer {
		t.Errorf("Decode(nil) err = %v, want ErrShortBuffer", err)
	}
	if _, _, err := Decode([]byte{byte(KindQuery), 0, 0, 0, 1, 0, 0, 0, 2}); err != ErrShortBuffer {
		t.Errorf("truncated query err = %v, want ErrShortBuffer", err)
	}
	bad := make([]byte, 32)
	bad[0] = 250
	if _, _, err := Decode(bad); err != ErrBadKind {
		t.Errorf("bad kind err = %v, want ErrBadKind", err)
	}
}

func TestEncodeInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding an invalid kind did not panic")
		}
	}()
	m := Message{Kind: KindInvalid}
	Encode(nil, &m)
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{0xaa, 0xbb}
	m := NeighNumRequest(1, 2)
	out := Encode(prefix, &m)
	if len(out) != 2+m.WireSize() || out[0] != 0xaa || out[1] != 0xbb {
		t.Fatalf("Encode did not append: %x", out)
	}
}

func TestDecodeStream(t *testing.T) {
	var buf []byte
	want := []Message{
		NeighNumResponse(1, 2, 7),
		ValueResponse(2, 1, 3.5, 9),
		NewQuery(4, 5, 1, 2, 3),
	}
	for i := range want {
		buf = Encode(buf, &want[i])
	}
	var got []Message
	for len(buf) > 0 {
		m, n, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
		buf = buf[n:]
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stream message %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// Property: ValueResponse round-trips arbitrary finite float payloads.
func TestValueResponseRoundTripProperty(t *testing.T) {
	f := func(from, to uint32, capacity, age float64) bool {
		if math.IsNaN(capacity) || math.IsNaN(age) {
			return true // NaN != NaN; comparison below is meaningless
		}
		m := ValueResponse(PeerID(from), PeerID(to), capacity, age)
		buf := Encode(nil, &m)
		got, _, err := Decode(buf)
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every valid-kind message consumes exactly WireSize bytes and
// trailing data is untouched.
func TestDecodeConsumesExactly(t *testing.T) {
	f := func(lnn uint32, tail []byte) bool {
		m := NeighNumResponse(1, 2, int(lnn))
		buf := Encode(nil, &m)
		buf = append(buf, tail...)
		got, n, err := Decode(buf)
		return err == nil && n == m.WireSize() && got.NeighNum == lnn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
