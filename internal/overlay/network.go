package overlay

import (
	"fmt"
	"math"

	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/stats"
)

// Config carries the structural parameters of the overlay (paper §3 and
// Table 2).
type Config struct {
	// M is the number of super-peer connections each leaf maintains.
	M int
	// KS is the target number of super-layer neighbors per super-peer.
	KS int
	// Eta is the protocol-wide target layer size ratio η = n_l / n_s;
	// every peer knows it (paper assumption).
	Eta float64
	// MaxLeafDegree caps a super-peer's leaf neighbors; 0 means no cap
	// (the paper relies on the randomness of neighbor selection).
	MaxLeafDegree int
	// Latency is the one-hop message delivery delay; 0 delivers inline.
	Latency sim.Duration
	// DeferredReconnect makes leaves orphaned by a super-peer's death or
	// demotion wait for the next repair round instead of reconnecting
	// instantly. This models the discovery/handshake delay of finding a
	// replacement super-peer and exposes the search-blackout window that
	// the leaf redundancy m exists to cover (the reliability study).
	DeferredReconnect bool
	// Link is the fault model applied at the delivery point: loss,
	// jitter, duplication, reordering (see link.go). The zero value is a
	// perfect link and leaves the message plane byte-identical to a
	// config without the field.
	Link Link
}

// KL returns k_l = m·η, the optimal average leaf degree of a super-peer
// (paper Equation a).
func (c Config) KL() float64 { return float64(c.M) * c.Eta }

// Validate reports a descriptive error for out-of-range parameters.
func (c Config) Validate() error {
	switch {
	case c.M <= 0:
		return fmt.Errorf("overlay: M = %d, want > 0", c.M)
	case c.KS <= 0:
		return fmt.Errorf("overlay: KS = %d, want > 0", c.KS)
	case c.Eta <= 0 || math.IsNaN(c.Eta) || math.IsInf(c.Eta, 0):
		return fmt.Errorf("overlay: Eta = %v, want finite > 0", c.Eta)
	case c.MaxLeafDegree < 0:
		return fmt.Errorf("overlay: MaxLeafDegree = %d, want >= 0", c.MaxLeafDegree)
	case c.Latency < 0:
		return fmt.Errorf("overlay: Latency = %v, want >= 0", c.Latency)
	}
	return c.Link.Validate()
}

// Counters tallies lifecycle and connection-overhead events. The PAO/NLCO
// analysis of the paper's Table 3 reads these.
type Counters struct {
	Joins  uint64 // peers that entered the network
	Leaves uint64 // peers that departed (lifetime expiry)

	Promotions uint64 // leaf -> super transitions
	Demotions  uint64 // super -> leaf transitions

	// DemotionDisconnects counts leaf-peers disconnected by a demotion;
	// each needs exactly one replacement connection, so this is the PAO
	// numerator in connection units.
	DemotionDisconnects uint64
	// NewLeafConnections counts connections created by joining leaves
	// (m per join): the NLCO denominator.
	NewLeafConnections uint64
	// ChurnReconnects counts leaf connections re-created because a
	// super-peer died (ordinary churn, not PAO).
	ChurnReconnects uint64
	// RepairConnections counts links added by per-tick degree repair.
	RepairConnections uint64

	// PartitionDrops counts messages discarded because sender and
	// destination were on different sides of an active network partition
	// (see Network.SetPartition). Always zero without a partition.
	PartitionDrops uint64

	// LinkDrops and LinkDups count, per message kind, messages lost to
	// and duplicated by the Config.Link fault model. Always zero on a
	// perfect link.
	LinkDrops [msg.NumKinds]uint64
	LinkDups  [msg.NumKinds]uint64
}

// TotalLinkDrops sums the fault-model drops across message kinds.
func (c Counters) TotalLinkDrops() uint64 {
	var total uint64
	for _, v := range c.LinkDrops {
		total += v
	}
	return total
}

// TotalLinkDups sums the fault-model duplications across message kinds.
func (c Counters) TotalLinkDups() uint64 {
	var total uint64
	for _, v := range c.LinkDups {
		total += v
	}
	return total
}

// PAOOverNLCO returns the paper's PAO/NLCO percentage: demotion-caused
// replacement connections relative to join-caused connections.
func (c Counters) PAOOverNLCO() float64 {
	if c.NewLeafConnections == 0 {
		return 0
	}
	return 100 * float64(c.DemotionDisconnects) / float64(c.NewLeafConnections)
}

// MessageHandler consumes delivered protocol messages of one kind.
type MessageHandler func(n *Network, to *Peer, m *msg.Message)

// Network is the overlay state: all peers in a dense slab store, both
// layer membership sets, the incremental layer aggregates, the message
// plane, and the lifecycle/overhead counters.
type Network struct {
	cfg Config
	eng *sim.Engine
	mgr Manager
	rng *sim.Source
	// linkRng feeds the Link fault model only. It is a separate named
	// stream so that enabling faults does not perturb the draws the
	// structural machinery (neighbor selection, shuffles) observes, and a
	// perfect link never touches it.
	linkRng *sim.Source

	store  peerStore
	supers layerSet
	leaves layerSet
	nextID msg.PeerID
	// linkActive caches cfg.Link.Active() — checked on every Send, and
	// the config is immutable after New.
	linkActive bool
	// partition, when non-nil, assigns each peer to a side; Send drops
	// messages whose endpoints map to different sides (see SetPartition).
	partition func(msg.PeerID) uint8

	// agg is the incremental accounting behind O(1) Snapshot; every
	// membership and link mutation below keeps it current.
	agg aggregates
	// deficit tracks peers below their layer's super-degree repair target
	// (M for leaves, KS for supers), maintained at every point that moves
	// a super-degree or a layer threshold — so per-tick Repair visits only
	// the peers with work, not the population.
	deficit deficitSet

	traffic  stats.Traffic
	counters Counters

	handlers  [msg.NumKinds]MessageHandler
	observers []Observer

	// parMgr is mgr when it also implements ParallelManager; nil
	// otherwise. Cached at construction — checked on every queued
	// delivery's Batchable.
	parMgr ParallelManager

	// deliverPools recycle delivery events per lane (plus the global
	// queue's pool at index NumLanes) so the message plane stays
	// zero-alloc without contending on one free-list when same-timestamp
	// deliveries fire lane-parallel. Pools are only touched from the
	// serial phases (Send, Fire, CommitLane), so they need no locking;
	// each is capped so a burst does not pin its peak forever.
	deliverPools [NumLanes + 1][]*deliverEvent

	// laneSend buffers the messages produced by lane-parallel message
	// handling (ParallelManager.HandleMessageLane); each deliverEvent
	// records its [lo,hi) range and the serial commit replays them in
	// firing order. laneEpoch lazily clears a lane's buffer at its first
	// use in each batch (stamped with Engine.BatchID).
	laneSend  [NumLanes][]msg.Message
	laneEpoch [NumLanes]uint64
	// repairScratch is reused by Repair's membership snapshots (repair
	// runs every tick; the snapshot guards against set reordering while
	// links are added, and must not cost an allocation each round).
	// linkScratch and orphanScratch play the same role for the link
	// surgery in Leave and Demote; neither routine is reentrant (link
	// teardown never triggers another leave or demotion inline).
	repairScratch []msg.PeerID
	linkScratch   []msg.PeerID
	orphanScratch []msg.PeerID
}

// ParallelManager is a Manager whose message handling can run
// lane-parallel: HandleMessageLane must mutate only the target peer's own
// protocol state (plus lane-private scratch), draw no randomness, and
// append outgoing messages to out instead of sending them — the overlay
// replays the buffered sends serially, in firing order, at the batch's
// commit. Managers that implement it let queued deliveries to different
// peers at one timestamp fire as a sim.LaneEvent batch.
type ParallelManager interface {
	Manager
	HandleMessageLane(n *Network, to *Peer, m *msg.Message, lane int, out *[]msg.Message)
}

// maxDeliverPool caps each per-lane delivery-event pool; the pool only
// grows past steady state when a burst leaves more carriers in flight
// than ever before, and without a cap that peak is pinned forever.
const maxDeliverPool = 256

// deliverEvent carries one in-flight message; it implements sim.Event for
// latency-delayed delivery and sim.LaneEvent for same-timestamp batched
// delivery. lane is the queue it was scheduled on (the target's lane at
// send time, or the global queue for targets already dead then); lo/hi
// bound its buffered sends in laneSend[lane] between EvalLane and
// CommitLane.
type deliverEvent struct {
	n      *Network
	m      msg.Message
	lane   int32
	lo, hi int32
}

// Fire implements sim.Event.
func (d *deliverEvent) Fire(*sim.Engine) {
	n := d.n
	n.deliver(&d.m)
	n.putDeliver(d)
}

// Batchable reports whether this delivery may fire in split
// eval/commit form: the manager must support lane handling and the kind
// must not have a custom handler (query-plane handlers mutate cross-peer
// flood state). Fault-model and partition draws all happen at Send time
// — original or buffered-commit — so they never constrain batching.
func (d *deliverEvent) Batchable() bool {
	return d.n.parMgr != nil && d.n.handlers[d.m.Kind] == nil
}

// EvalLane runs the lane-local half: the target's protocol state machine
// consumes the message, appending any responses to the lane's send
// buffer. The target is re-looked-up exactly as in Fire — it may have
// died since send; the delivery then evaluates to nothing.
func (d *deliverEvent) EvalLane(e *sim.Engine, lane int) {
	n := d.n
	if n.laneEpoch[lane] != e.BatchID() {
		n.laneEpoch[lane] = e.BatchID()
		n.laneSend[lane] = n.laneSend[lane][:0]
	}
	d.lo = int32(len(n.laneSend[lane]))
	if to := n.store.get(d.m.To); to != nil {
		n.parMgr.HandleMessageLane(n, to, &d.m, lane, &n.laneSend[lane])
	}
	d.hi = int32(len(n.laneSend[lane]))
}

// CommitLane replays the buffered sends through the ordinary Send path —
// traffic accounting, fault draws and scheduling happen here, serially,
// in exactly the order the serial firing would have produced them.
func (d *deliverEvent) CommitLane(*sim.Engine) {
	n := d.n
	buf := n.laneSend[d.lane%NumLanes]
	for i := d.lo; i < d.hi; i++ {
		n.Send(buf[i])
	}
	d.lo, d.hi = 0, 0
	n.putDeliver(d)
}

func (n *Network) getDeliver(lane int32) *deliverEvent {
	pool := &n.deliverPools[lane]
	if l := len(*pool); l > 0 {
		d := (*pool)[l-1]
		(*pool)[l-1] = nil
		*pool = (*pool)[:l-1]
		return d
	}
	return &deliverEvent{n: n, lane: lane}
}

func (n *Network) putDeliver(d *deliverEvent) {
	pool := &n.deliverPools[d.lane]
	if len(*pool) < maxDeliverPool {
		*pool = append(*pool, d)
	}
}

// New creates an empty overlay bound to the engine. It panics on an
// invalid config (construction-time bug).
func New(eng *sim.Engine, cfg Config, mgr Manager) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if mgr == nil {
		mgr = NopManager{}
	}
	nw := &Network{
		cfg:        cfg,
		eng:        eng,
		mgr:        mgr,
		rng:        eng.Rand().Stream("overlay"),
		linkRng:    eng.Rand().Stream("overlay.link"),
		linkActive: cfg.Link.Active(),
	}
	nw.parMgr, _ = mgr.(ParallelManager)
	return nw
}

// Config returns the overlay parameters.
func (n *Network) Config() Config { return n.cfg }

// Engine returns the simulation engine the overlay is bound to.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Manager returns the layer-management policy.
func (n *Network) Manager() Manager { return n.mgr }

// Now returns the current virtual time.
func (n *Network) Now() sim.Time { return n.eng.Now() }

// Rand returns the overlay's random stream.
func (n *Network) Rand() *sim.Source { return n.rng }

// Counters returns a copy of the lifecycle counters.
func (n *Network) Counters() Counters { return n.counters }

// ResetCounters zeroes the lifecycle counters (used to start a measurement
// window after warm-up).
func (n *Network) ResetCounters() { n.counters = Counters{} }

// Traffic returns a snapshot of the message tallies.
func (n *Network) Traffic() stats.Traffic { return n.traffic.Snapshot() }

// Size returns the number of live peers.
func (n *Network) Size() int { return n.store.Len() }

// NumSupers returns the super-layer size n_s.
func (n *Network) NumSupers() int { return n.supers.Len() }

// NumLeaves returns the leaf-layer size n_l.
func (n *Network) NumLeaves() int { return n.leaves.Len() }

// Ratio returns the current layer size ratio η = n_l/n_s, or +Inf when the
// super-layer is empty.
func (n *Network) Ratio() float64 {
	if n.supers.Len() == 0 {
		return math.Inf(1)
	}
	return float64(n.leaves.Len()) / float64(n.supers.Len())
}

// Peer returns the live peer with the given ID, or nil.
func (n *Network) Peer(id msg.PeerID) *Peer { return n.store.get(id) }

// MaxPeerID returns the highest peer ID handed out so far. IDs are drawn
// from a monotonic counter, so every live peer's ID is in (0, MaxPeerID];
// dense per-peer state can be sized from this bound.
func (n *Network) MaxPeerID() msg.PeerID { return n.nextID }

// SuperIDs returns the super-layer membership in deterministic order.
// The slice is shared; callers must not mutate it.
func (n *Network) SuperIDs() []msg.PeerID { return n.supers.items }

// LeafIDs returns the leaf-layer membership in deterministic order.
// The slice is shared; callers must not mutate it.
func (n *Network) LeafIDs() []msg.PeerID { return n.leaves.items }

// RandomSuper returns a uniformly random super-peer, or nil when none.
func (n *Network) RandomSuper() *Peer {
	id, ok := n.supers.Random(n.rng)
	if !ok {
		return nil
	}
	return n.store.get(id)
}

// RandomPeer returns a uniformly random live peer, or nil when empty.
func (n *Network) RandomPeer() *Peer {
	total := n.supers.Len() + n.leaves.Len()
	if total == 0 {
		return nil
	}
	if n.rng.Intn(total) < n.supers.Len() {
		id, _ := n.supers.Random(n.rng)
		return n.store.get(id)
	}
	id, _ := n.leaves.Random(n.rng)
	return n.store.get(id)
}

// Observe registers an observer for structural-change notifications.
func (n *Network) Observe(o Observer) { n.observers = append(n.observers, o) }

// SetPartition installs (or, with nil, heals) a network partition: side
// assigns every peer ID to a partition side, and Send discards any
// message whose endpoints are on different sides, counting it in
// Counters.PartitionDrops. Only message delivery is severed — structural
// operations (join, repair, promotion surgery) are overlay bookkeeping,
// not network traffic, and proceed as usual; messages already in flight
// when the partition rises were "on the wire" and still deliver. The
// check draws no randomness, so runs with a nil partition are
// byte-identical to runs built before the switch existed. The side
// function must be deterministic and is called on the message-plane hot
// path; keep it trivial (the scenario pack bisects by ID parity).
func (n *Network) SetPartition(side func(msg.PeerID) uint8) { n.partition = side }

// Handle registers a message handler for one kind. Kinds without an
// explicit handler are dispatched to the Manager.
func (n *Network) Handle(k msg.Kind, h MessageHandler) {
	if !k.Valid() {
		panic(fmt.Sprintf("overlay: handler for invalid kind %v", k))
	}
	n.handlers[k] = h
}

// Send records and delivers a protocol message. Delivery is dropped when
// the destination has left the network (messages to the dead are still
// counted: the sender spent the bandwidth). The message rides a pooled
// carrier, so steady-state sending does not allocate; handlers must not
// retain the *Message past the handler call.
func (n *Network) Send(m msg.Message) {
	if n.partition != nil && n.partition(m.From) != n.partition(m.To) {
		// The partition severs link delivery only: the sender still spent
		// the bandwidth, and no random draw happens — a nil partition
		// leaves the message plane byte-identical.
		n.traffic.Record(&m)
		n.counters.PartitionDrops++
		return
	}
	if n.linkActive {
		n.sendFaulty(m)
		return
	}
	if n.cfg.Latency <= 0 {
		// Inline delivery still rides a pooled carrier: deliver's manager
		// call is an interface call, so &m would escape and put every Send
		// on the heap. The carrier never enters the event plane, so the
		// global pool serves regardless of the target's lane.
		d := n.getDeliver(sim.GlobalLane)
		d.m = m
		n.traffic.Record(&d.m)
		n.deliver(&d.m)
		n.putDeliver(d)
		return
	}
	d := n.getDeliver(n.laneFor(m.To))
	d.m = m
	n.traffic.Record(&d.m)
	n.eng.AfterLane(int(d.lane), n.cfg.Latency, d)
}

// laneFor returns the event lane for a message addressed to id: the
// target's lane, so its deliveries and timers share a queue with the
// peers the tick walk assigns to that lane — or the global queue when
// the target is already gone (the delivery fires into nothing and has no
// owner to co-locate with).
func (n *Network) laneFor(id msg.PeerID) int32 {
	if p := n.store.get(id); p != nil {
		return int32(n.LaneOf(p))
	}
	return sim.GlobalLane
}

// sendFaulty is Send through the Link fault model. The draw order is
// fixed and part of the determinism contract: the loss draw first (a
// dropped message consumes no further randomness), then the duplication
// draw, then one delay draw per departing copy — all before any copy is
// delivered, since inline delivery can re-enter Send.
func (n *Network) sendFaulty(m msg.Message) {
	link := n.cfg.Link
	// The sender spent the bandwidth whether or not the network delivers.
	n.traffic.Record(&m)
	if link.Loss > 0 && n.linkRng.Float64() < link.Loss {
		n.counters.LinkDrops[m.Kind]++
		return
	}
	copies := 1
	if link.Dup > 0 && n.linkRng.Float64() < link.Dup {
		copies = 2
		n.counters.LinkDups[m.Kind]++
	}
	var delays [2]sim.Duration
	for i := 0; i < copies; i++ {
		delays[i] = n.cfg.Latency + link.delay(n.linkRng)
	}
	for i := 0; i < copies; i++ {
		if delays[i] <= 0 {
			n.deliver(&m)
			continue
		}
		d := n.getDeliver(n.laneFor(m.To))
		d.m = m
		n.eng.AfterLane(int(d.lane), delays[i], d)
	}
}

func (n *Network) deliver(m *msg.Message) {
	to := n.store.get(m.To)
	if to == nil {
		return
	}
	if h := n.handlers[m.Kind]; h != nil {
		h(n, to, m)
		return
	}
	n.mgr.HandleMessage(n, to, m)
}

// Join adds a peer with the given endowment. The manager chooses the
// initial layer, except during bootstrap: while the super-layer is empty,
// the joining peer becomes a super-peer so the network has a backbone.
// It returns the new peer.
func (n *Network) Join(capacity, lifetime float64, objects []msg.ObjectID) *Peer {
	n.nextID++
	p := n.store.acquire(n.nextID)
	p.Capacity = capacity
	p.Lifetime = lifetime
	p.JoinTime = n.eng.Now()
	p.Objects = objects
	p.alive = true
	n.counters.Joins++

	layer := n.mgr.InitialLayer(n, p)
	if n.supers.Len() == 0 {
		layer = LayerSuper // bootstrap: the network needs a backbone
	}
	p.Layer = layer
	n.agg.enroll(p)
	if layer == LayerSuper {
		n.supers.Add(p)
		n.connectToRandomSupers(p, n.cfg.KS, nil)
	} else {
		n.leaves.Add(p)
		added := n.connectToRandomSupers(p, n.cfg.M, nil)
		n.counters.NewLeafConnections += uint64(added)
	}
	// The connects above tracked the deficit link by link, but a join that
	// created none (bootstrap super, exhausted candidates) has not been
	// classified yet.
	n.updateDeficit(p)
	for _, o := range n.observers {
		o.OnJoin(n, p)
	}
	return p
}

// Leave removes the peer from the network, tearing down its links. Leaf
// neighbors of a dying super-peer immediately reconnect to one replacement
// super each (ordinary churn reconnection).
func (n *Network) Leave(p *Peer) {
	if !p.alive {
		return
	}
	p.alive = false
	n.counters.Leaves++

	n.linkScratch = append(n.linkScratch[:0], p.superLinks.items...)
	for _, id := range n.linkScratch {
		n.unlink(p, n.store.get(id))
	}
	orphans := append(n.orphanScratch[:0], p.leafLinks.items...)
	n.orphanScratch = orphans
	for _, id := range orphans {
		n.unlink(p, n.store.get(id))
	}
	n.agg.withdraw(p)
	if p.Layer == LayerSuper {
		n.supers.Remove(p, &n.store)
	} else {
		n.leaves.Remove(p, &n.store)
	}
	// The unlinks above evicted p from the deficit set via updateDeficit
	// (dead peers never qualify), but a peer that died with no super links
	// was never visited; evict explicitly so no dead ID lingers.
	n.deficit.remove(p, &n.store)
	n.store.release(p)

	for _, o := range n.observers {
		o.OnLeave(n, p)
	}

	// Reconnect stranded leaves now that p is out of the candidate set
	// (or leave them for the next repair round under DeferredReconnect).
	if n.cfg.DeferredReconnect {
		return
	}
	for _, id := range orphans {
		q := n.store.get(id)
		if q == nil || !q.alive {
			continue
		}
		if q.SuperDegree() < n.cfg.M {
			if n.connectToRandomSupers(q, q.SuperDegree()+1, nil) > 0 {
				n.counters.ChurnReconnects++
			}
		}
	}
}

// Promote moves a leaf to the super-layer. Its existing super connections
// are kept and become super-layer links (paper Figure 2). Promoting a
// non-leaf is a no-op. No peer is disconnected, so promotion causes no
// PAO.
func (n *Network) Promote(p *Peer) {
	if !p.alive || p.Layer != LayerLeaf {
		return
	}
	old := p.Layer
	n.leaves.Remove(p, &n.store)
	p.Layer = LayerSuper
	n.supers.Add(p)
	n.agg.transfer(p, old)
	for _, id := range p.superLinks.items {
		q := n.store.get(id)
		q.leafLinks.Remove(p.ID)
		n.agg.leafLinkDelta(q, -1)
		q.superLinks.add(p.ID)
		n.agg.superLinkDelta(q, +1)
		n.updateDeficit(q)
	}
	// p's degree did not move, but its repair target rose from M to KS.
	n.updateDeficit(p)
	n.counters.Promotions++
	n.mgr.OnLayerChange(n, p, old)
	for _, o := range n.observers {
		o.OnLayerChange(n, p, old)
	}
}

// Demote moves a super-peer to the leaf-layer (paper Figure 3): it keeps
// at most M of its super links (which become its leaf-to-super
// connections), drops the rest, and drops all leaf neighbors. Each
// dropped leaf immediately creates one replacement connection; these are
// the Peer Adjustment Overhead. Demoting the last super-peer is refused —
// the overlay must keep a backbone. It reports whether the demotion
// happened.
func (n *Network) Demote(p *Peer) bool {
	if !p.alive || p.Layer != LayerSuper {
		return false
	}
	if n.supers.Len() <= 1 {
		return false
	}
	old := p.Layer
	n.supers.Remove(p, &n.store)
	p.Layer = LayerLeaf
	n.leaves.Add(p)
	n.agg.transfer(p, old)

	// Keep at most M super links, chosen uniformly; the kept neighbors
	// re-classify p as a leaf on their side.
	links := append(n.linkScratch[:0], p.superLinks.items...)
	n.linkScratch = links
	n.rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	for i, id := range links {
		q := n.store.get(id)
		if i < n.cfg.M {
			q.superLinks.Remove(p.ID)
			n.agg.superLinkDelta(q, -1)
			q.leafLinks.add(p.ID)
			n.agg.leafLinkDelta(q, +1)
			n.updateDeficit(q)
			continue
		}
		n.unlink(p, q)
	}
	// p's repair target dropped from KS to M and its kept links changed.
	n.updateDeficit(p)

	// Drop all leaves; each reconnects once (PAO).
	orphans := append(n.orphanScratch[:0], p.leafLinks.items...)
	n.orphanScratch = orphans
	for _, id := range orphans {
		n.unlink(p, n.store.get(id))
	}
	n.counters.Demotions++
	for _, id := range orphans {
		q := n.store.get(id)
		if q == nil || !q.alive {
			continue
		}
		n.counters.DemotionDisconnects++
		if !n.cfg.DeferredReconnect {
			n.connectToRandomSupers(q, q.SuperDegree()+1, p)
		}
	}
	n.mgr.OnLayerChange(n, p, old)
	for _, o := range n.observers {
		o.OnLayerChange(n, p, old)
	}
	return true
}

// Connect creates a link between p and q (order irrelevant). It reports
// whether a new link was created. Self-links and duplicate links are
// rejected; linking two leaves is a structural error and panics.
func (n *Network) Connect(p, q *Peer) bool {
	if p == nil || q == nil || p == q || !p.alive || !q.alive {
		return false
	}
	if p.Layer == LayerLeaf && q.Layer == LayerLeaf {
		panic(fmt.Sprintf("overlay: leaf-leaf link %d-%d", p.ID, q.ID))
	}
	if p.HasLink(q.ID) {
		return false
	}
	n.linkInto(p, q)
	n.linkInto(q, p)
	n.mgr.OnConnect(n, p, q)
	for _, o := range n.observers {
		o.OnConnect(n, p, q)
	}
	return true
}

// wantDegree returns p's super-degree repair target: every leaf maintains
// M super connections, every super KS super-layer neighbors.
func (n *Network) wantDegree(p *Peer) int {
	if p.Layer == LayerSuper {
		return n.cfg.KS
	}
	return n.cfg.M
}

// updateDeficit reconciles p's membership in the repair deficit set with
// its current degree, layer and liveness. It is idempotent and O(1), so
// every mutation point below calls it unconditionally.
func (n *Network) updateDeficit(p *Peer) {
	if p.alive && p.SuperDegree() < n.wantDegree(p) {
		n.deficit.add(p)
	} else {
		n.deficit.remove(p, &n.store)
	}
}

// linkInto records q in p's link sets; the caller (Connect) has already
// established that no p<->q link exists.
func (n *Network) linkInto(p, q *Peer) {
	if q.Layer == LayerSuper {
		p.superLinks.add(q.ID)
		n.agg.superLinkDelta(p, +1)
		n.updateDeficit(p)
	} else {
		p.leafLinks.add(q.ID)
		n.agg.leafLinkDelta(p, +1)
	}
}

// unlink removes the p<->q link; either side may already be gone.
func (n *Network) unlink(p, q *Peer) {
	if p == nil || q == nil {
		return
	}
	if p.superLinks.Remove(q.ID) {
		n.agg.superLinkDelta(p, -1)
		n.updateDeficit(p)
	}
	if p.leafLinks.Remove(q.ID) {
		n.agg.leafLinkDelta(p, -1)
	}
	if q.superLinks.Remove(p.ID) {
		n.agg.superLinkDelta(q, -1)
		n.updateDeficit(q)
	}
	if q.leafLinks.Remove(p.ID) {
		n.agg.leafLinkDelta(q, -1)
	}
	n.mgr.OnDisconnect(n, p, q)
	for _, o := range n.observers {
		o.OnDisconnect(n, p, q)
	}
}

// Disconnect tears down the p<->q link if present.
func (n *Network) Disconnect(p, q *Peer) { n.unlink(p, q) }

// connectToRandomSupers raises p's super-degree toward want by linking to
// uniformly random super-peers (excluding p itself, existing neighbors,
// the optional avoid peer, and supers at their leaf-degree cap when p is a
// leaf). It returns the number of links created.
func (n *Network) connectToRandomSupers(p *Peer, want int, avoid *Peer) int {
	created := 0
	attempts := 0
	maxAttempts := 8 * (want + 1)
	for p.SuperDegree() < want && attempts < maxAttempts {
		attempts++
		id, ok := n.supers.Random(n.rng)
		if !ok {
			break
		}
		q := n.store.get(id)
		if q == p || (avoid != nil && q == avoid) || p.HasLink(id) {
			continue
		}
		if p.Layer == LayerLeaf && n.cfg.MaxLeafDegree > 0 && q.LeafDegree() >= n.cfg.MaxLeafDegree {
			continue
		}
		if n.Connect(p, q) {
			created++
		}
	}
	return created
}

// Repair performs one round of degree maintenance: every leaf below M
// super links and every super below KS super links connects to random
// supers. Repair links are counted separately from join and PAO links.
//
// The candidates come from the incrementally maintained deficit set, not
// a population walk: in steady state almost every peer is at target, so
// the full-population scan of earlier revisions paid O(N) per tick — with
// ID-indexed random access on top — to find a handful of deficient peers.
// That scan was the dominant serial cost of million-peer runs. The set is
// snapshotted first because the connects mutate it (and can add newly
// capped peers); a peer whose deficit was filled mid-round (as the
// partner of an earlier candidate) is skipped by the re-check.
func (n *Network) Repair() {
	n.repairScratch = append(n.repairScratch[:0], n.deficit.items...)
	for _, id := range n.repairScratch {
		p := n.store.get(id)
		if p == nil || !p.alive {
			continue
		}
		if want := n.wantDegree(p); p.SuperDegree() < want {
			n.counters.RepairConnections += uint64(n.connectToRandomSupers(p, want, nil))
		}
	}
}

// Tick runs one maintenance round: repair, then the manager's decisions.
func (n *Network) Tick() {
	n.Repair()
	n.mgr.Tick(n, n.eng.Now())
}
