package overlay

import (
	"fmt"
	"math"

	"dlm/internal/msg"
)

// LayerStats is a point-in-time summary of both layers — exactly the
// quantities plotted in the paper's Figures 4-8.
type LayerStats struct {
	Time float64

	NumSupers int
	NumLeaves int
	// Ratio is n_l/n_s; +Inf when the super-layer is empty.
	Ratio float64

	// AvgAgeSuper / AvgAgeLeaf are the layer mean ages (Figure 4).
	AvgAgeSuper float64
	AvgAgeLeaf  float64
	// AvgCapSuper / AvgCapLeaf are the layer mean capacities (Figure 5).
	AvgCapSuper float64
	AvgCapLeaf  float64

	// AvgLeafDegree is the mean l_nn over super-peers, the quantity DLM
	// compares against k_l.
	AvgLeafDegree float64
	// AvgSuperDegreeOfSupers is the mean super-layer degree of supers.
	AvgSuperDegreeOfSupers float64
	// AvgSuperDegreeOfLeaves is the mean number of super connections per
	// leaf (should track M).
	AvgSuperDegreeOfLeaves float64
}

// Snapshot computes the current layer statistics in O(1) from the
// incremental aggregates — no peer is touched, so sampling cost is
// independent of population size. Mean ages come from the sum-of-birth-
// times identity mean(now − join_i) = now − Σjoin_i/n, exact at any
// sample instant.
func (n *Network) Snapshot() LayerStats {
	now := float64(n.eng.Now())
	ns := n.supers.Len()
	nl := n.leaves.Len()
	s := LayerStats{
		Time:      now,
		NumSupers: ns,
		NumLeaves: nl,
		Ratio:     n.Ratio(),
	}
	if ns > 0 {
		fns := float64(ns)
		s.AvgAgeSuper = now - n.agg.sumJoinSuper/fns
		s.AvgCapSuper = n.agg.sumCapSuper / fns
		s.AvgLeafDegree = float64(n.agg.leafDegSupers) / fns
		s.AvgSuperDegreeOfSupers = float64(n.agg.superDegSupers) / fns
	}
	if nl > 0 {
		fnl := float64(nl)
		s.AvgAgeLeaf = now - n.agg.sumJoinLeaf/fnl
		s.AvgCapLeaf = n.agg.sumCapLeaf / fnl
		s.AvgSuperDegreeOfLeaves = float64(n.agg.superDegLeaves) / fnl
	}
	return s
}

// scanAggregates recomputes the incremental sums by brute force — the
// oracle the differential test and CheckInvariants compare against.
func (n *Network) scanAggregates() aggregates {
	var a aggregates
	for _, id := range n.supers.items {
		p := n.store.get(id)
		a.sumJoinSuper += float64(p.JoinTime)
		a.sumCapSuper += p.Capacity
		a.leafDegSupers += int64(p.LeafDegree())
		a.superDegSupers += int64(p.SuperDegree())
	}
	for _, id := range n.leaves.items {
		p := n.store.get(id)
		a.sumJoinLeaf += float64(p.JoinTime)
		a.sumCapLeaf += p.Capacity
		a.superDegLeaves += int64(p.SuperDegree())
	}
	return a
}

// aggEq compares a maintained float sum against its recomputed oracle
// with a relative tolerance: the incremental sum sees one rounding per
// mutation while the scan sees one per element, so exact equality is not
// guaranteed (the integer degree sums, by contrast, must match exactly).
func aggEq(incremental, scanned float64) bool {
	diff := math.Abs(incremental - scanned)
	scale := math.Max(math.Abs(incremental), math.Abs(scanned))
	return diff <= 1e-6*math.Max(scale, 1)
}

// CheckInvariants validates the structural invariants of the overlay —
// store/layer-set consistency, link symmetry, layer typing, and the
// incremental aggregates against a brute-force rescan. It returns a list
// of violations (empty when healthy). It is O(edges) and intended for
// tests and debug builds, not per-tick use at full scale.
func (n *Network) CheckInvariants() []string {
	var bad []string
	addf := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if n.supers.Len()+n.leaves.Len() != n.store.Len() {
		addf("layer sets cover %d peers, store has %d",
			n.supers.Len()+n.leaves.Len(), n.store.Len())
	}
	check := func(id msg.PeerID) {
		p := n.store.get(id)
		if p == nil {
			addf("layer member %d not in store", id)
			return
		}
		if p.ID != id {
			addf("peer %d stored under slot for %d", p.ID, id)
		}
		if !p.alive {
			addf("dead peer %d still in a layer set", p.ID)
		}
		switch p.Layer {
		case LayerSuper:
			if !n.supers.Contains(p) {
				addf("super %d missing from super set", p.ID)
			}
		case LayerLeaf:
			if !n.leaves.Contains(p) {
				addf("leaf %d missing from leaf set", p.ID)
			}
			if p.LeafDegree() != 0 {
				addf("leaf %d has %d leaf links", p.ID, p.LeafDegree())
			}
		}
		if bad := p.superLinks.checkIdx(); bad != "" {
			addf("peer %d superLinks index: %s", p.ID, bad)
		}
		if bad := p.leafLinks.checkIdx(); bad != "" {
			addf("peer %d leafLinks index: %s", p.ID, bad)
		}
		for _, qid := range p.superLinks.items {
			q := n.store.get(qid)
			switch {
			case q == nil:
				addf("peer %d links to dead %d", p.ID, qid)
			case q.Layer != LayerSuper:
				addf("peer %d superLink %d is a %v", p.ID, qid, q.Layer)
			case !q.superLinks.Contains(p.ID) && !q.leafLinks.Contains(p.ID):
				addf("asymmetric link %d->%d", p.ID, qid)
			}
		}
		for _, qid := range p.leafLinks.items {
			q := n.store.get(qid)
			switch {
			case q == nil:
				addf("peer %d links to dead leaf %d", p.ID, qid)
			case q.Layer != LayerLeaf:
				addf("peer %d leafLink %d is a %v", p.ID, qid, q.Layer)
			case !q.superLinks.Contains(p.ID):
				addf("asymmetric leaf link %d->%d", p.ID, qid)
			}
		}
	}
	for _, id := range n.supers.items {
		check(id)
	}
	for _, id := range n.leaves.items {
		check(id)
	}

	// The repair deficit set must be exactly the live peers below their
	// layer's super-degree target, with consistent positions — Repair
	// trusts it instead of scanning the population.
	for i, id := range n.deficit.items {
		p := n.store.get(id)
		switch {
		case p == nil:
			addf("deficit member %d not in store", id)
		case int(p.deficitPos) != i:
			addf("deficit member %d at index %d, deficitPos says %d", id, i, p.deficitPos)
		case p.SuperDegree() >= n.wantDegree(p):
			addf("deficit member %d has degree %d, target %d", id, p.SuperDegree(), n.wantDegree(p))
		}
	}
	n.WalkPeers(func(p *Peer) {
		if p.SuperDegree() < n.wantDegree(p) && p.deficitPos < 0 {
			addf("peer %d below target (%d < %d) but missing from deficit set",
				p.ID, p.SuperDegree(), n.wantDegree(p))
		}
	})

	want := n.scanAggregates()
	got := n.agg
	if got.leafDegSupers != want.leafDegSupers {
		addf("agg leafDegSupers = %d, scan = %d", got.leafDegSupers, want.leafDegSupers)
	}
	if got.superDegSupers != want.superDegSupers {
		addf("agg superDegSupers = %d, scan = %d", got.superDegSupers, want.superDegSupers)
	}
	if got.superDegLeaves != want.superDegLeaves {
		addf("agg superDegLeaves = %d, scan = %d", got.superDegLeaves, want.superDegLeaves)
	}
	if !aggEq(got.sumJoinSuper, want.sumJoinSuper) {
		addf("agg sumJoinSuper = %g, scan = %g", got.sumJoinSuper, want.sumJoinSuper)
	}
	if !aggEq(got.sumJoinLeaf, want.sumJoinLeaf) {
		addf("agg sumJoinLeaf = %g, scan = %g", got.sumJoinLeaf, want.sumJoinLeaf)
	}
	if !aggEq(got.sumCapSuper, want.sumCapSuper) {
		addf("agg sumCapSuper = %g, scan = %g", got.sumCapSuper, want.sumCapSuper)
	}
	if !aggEq(got.sumCapLeaf, want.sumCapLeaf) {
		addf("agg sumCapLeaf = %g, scan = %g", got.sumCapLeaf, want.sumCapLeaf)
	}
	return bad
}
