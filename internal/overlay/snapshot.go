package overlay

import (
	"fmt"

	"dlm/internal/stats"
)

// LayerStats is a point-in-time summary of both layers — exactly the
// quantities plotted in the paper's Figures 4-8.
type LayerStats struct {
	Time float64

	NumSupers int
	NumLeaves int
	// Ratio is n_l/n_s; +Inf when the super-layer is empty.
	Ratio float64

	// AvgAgeSuper / AvgAgeLeaf are the layer mean ages (Figure 4).
	AvgAgeSuper float64
	AvgAgeLeaf  float64
	// AvgCapSuper / AvgCapLeaf are the layer mean capacities (Figure 5).
	AvgCapSuper float64
	AvgCapLeaf  float64

	// AvgLeafDegree is the mean l_nn over super-peers, the quantity DLM
	// compares against k_l.
	AvgLeafDegree float64
	// AvgSuperDegreeOfSupers is the mean super-layer degree of supers.
	AvgSuperDegreeOfSupers float64
	// AvgSuperDegreeOfLeaves is the mean number of super connections per
	// leaf (should track M).
	AvgSuperDegreeOfLeaves float64
}

// Snapshot computes the current layer statistics in one O(n) pass.
func (n *Network) Snapshot() LayerStats {
	now := n.eng.Now()
	s := LayerStats{
		Time:      float64(now),
		NumSupers: n.supers.Len(),
		NumLeaves: n.leaves.Len(),
		Ratio:     n.Ratio(),
	}
	var ageS, ageL, capS, capL, lnn, kss, msl stats.Welford
	for _, id := range n.supers.items {
		p := n.peers[id]
		ageS.Add(p.Age(now))
		capS.Add(p.Capacity)
		lnn.Add(float64(p.LeafDegree()))
		kss.Add(float64(p.SuperDegree()))
	}
	for _, id := range n.leaves.items {
		p := n.peers[id]
		ageL.Add(p.Age(now))
		capL.Add(p.Capacity)
		msl.Add(float64(p.SuperDegree()))
	}
	s.AvgAgeSuper = ageS.Mean()
	s.AvgAgeLeaf = ageL.Mean()
	s.AvgCapSuper = capS.Mean()
	s.AvgCapLeaf = capL.Mean()
	s.AvgLeafDegree = lnn.Mean()
	s.AvgSuperDegreeOfSupers = kss.Mean()
	s.AvgSuperDegreeOfLeaves = msl.Mean()
	return s
}

// CheckInvariants validates the structural invariants of the overlay and
// returns a list of violations (empty when healthy). It is O(edges) and
// intended for tests and debug builds, not per-tick use at full scale.
func (n *Network) CheckInvariants() []string {
	var bad []string
	addf := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if n.supers.Len()+n.leaves.Len() != len(n.peers) {
		addf("layer sets cover %d peers, map has %d",
			n.supers.Len()+n.leaves.Len(), len(n.peers))
	}
	for id, p := range n.peers {
		if id != p.ID {
			addf("peer %d stored under key %d", p.ID, id)
		}
		if !p.alive {
			addf("dead peer %d still in map", p.ID)
		}
		switch p.Layer {
		case LayerSuper:
			if !n.supers.Contains(p.ID) {
				addf("super %d missing from super set", p.ID)
			}
		case LayerLeaf:
			if !n.leaves.Contains(p.ID) {
				addf("leaf %d missing from leaf set", p.ID)
			}
			if p.LeafDegree() != 0 {
				addf("leaf %d has %d leaf links", p.ID, p.LeafDegree())
			}
		}
		for _, qid := range p.superLinks.items {
			q := n.peers[qid]
			switch {
			case q == nil:
				addf("peer %d links to dead %d", p.ID, qid)
			case q.Layer != LayerSuper:
				addf("peer %d superLink %d is a %v", p.ID, qid, q.Layer)
			case !q.superLinks.Contains(p.ID) && !q.leafLinks.Contains(p.ID):
				addf("asymmetric link %d->%d", p.ID, qid)
			}
		}
		for _, qid := range p.leafLinks.items {
			q := n.peers[qid]
			switch {
			case q == nil:
				addf("peer %d links to dead leaf %d", p.ID, qid)
			case q.Layer != LayerLeaf:
				addf("peer %d leafLink %d is a %v", p.ID, qid, q.Layer)
			case !q.superLinks.Contains(p.ID):
				addf("asymmetric leaf link %d->%d", p.ID, qid)
			}
		}
	}
	return bad
}
