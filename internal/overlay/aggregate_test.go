package overlay

import (
	"math"
	"testing"

	"dlm/internal/sim"
)

// TestAggregatesMatchScanAfterRandomChurn is the differential oracle for
// the incremental layer accounting: drive the overlay through thousands
// of randomized joins, leaves, promotions, demotions and repairs, and at
// checkpoints compare every maintained aggregate — and the Snapshot
// derived from them — against a brute-force rescan of the population.
func TestAggregatesMatchScanAfterRandomChurn(t *testing.T) {
	eng := sim.NewEngine(7)
	n := New(eng, Config{M: 2, KS: 3, Eta: 10}, nil)
	rng := eng.Rand().Stream("oracle")

	check := func(step int) {
		t.Helper()
		got, want := n.agg, n.scanAggregates()
		if got.leafDegSupers != want.leafDegSupers ||
			got.superDegSupers != want.superDegSupers ||
			got.superDegLeaves != want.superDegLeaves {
			t.Fatalf("step %d: degree aggregates diverged:\n got %+v\nscan %+v", step, got, want)
		}
		// The lane-parallel rescan must agree too, for worker counts below,
		// at, and above the lane count's useful range: exact on the integer
		// degree sums, aggEq on the float sums (per-lane partials associate
		// differently than the serial scan).
		for _, w := range []int{1, 3, 8} {
			sh := n.scanAggregatesSharded(w)
			if sh.leafDegSupers != want.leafDegSupers ||
				sh.superDegSupers != want.superDegSupers ||
				sh.superDegLeaves != want.superDegLeaves {
				t.Fatalf("step %d: sharded scan (w=%d) degree sums diverged:\n got %+v\nscan %+v", step, w, sh, want)
			}
			if !aggEq(sh.sumJoinSuper, want.sumJoinSuper) ||
				!aggEq(sh.sumJoinLeaf, want.sumJoinLeaf) ||
				!aggEq(sh.sumCapSuper, want.sumCapSuper) ||
				!aggEq(sh.sumCapLeaf, want.sumCapLeaf) {
				t.Fatalf("step %d: sharded scan (w=%d) float sums diverged:\n got %+v\nscan %+v", step, w, sh, want)
			}
		}
		// Lane coverage: the lanes partition the population — every live
		// peer appears in exactly one lane, and WalkPeers sees the union.
		laneCount := 0
		for lane := 0; lane < NumLanes; lane++ {
			n.WalkLane(lane, func(*Peer) { laneCount++ })
		}
		walkCount := 0
		n.WalkPeers(func(*Peer) { walkCount++ })
		if laneCount != n.Size() || walkCount != n.Size() {
			t.Fatalf("step %d: lanes cover %d peers, WalkPeers %d, store has %d",
				step, laneCount, walkCount, n.Size())
		}
		for _, pair := range [][2]float64{
			{got.sumJoinSuper, want.sumJoinSuper},
			{got.sumJoinLeaf, want.sumJoinLeaf},
			{got.sumCapSuper, want.sumCapSuper},
			{got.sumCapLeaf, want.sumCapLeaf},
		} {
			if !aggEq(pair[0], pair[1]) {
				t.Fatalf("step %d: float aggregate %g, scan says %g", step, pair[0], pair[1])
			}
		}
		// And the user-visible form: Snapshot means vs per-peer recompute.
		s := n.Snapshot()
		now := float64(eng.Now())
		var ageSup, capSup, ageLeaf, capLeaf float64
		for _, id := range n.supers.items {
			p := n.store.get(id)
			ageSup += now - float64(p.JoinTime)
			capSup += p.Capacity
		}
		for _, id := range n.leaves.items {
			p := n.store.get(id)
			ageLeaf += now - float64(p.JoinTime)
			capLeaf += p.Capacity
		}
		approx := func(got, wantSum float64, cnt int) bool {
			if cnt == 0 {
				return got == 0
			}
			want := wantSum / float64(cnt)
			return math.Abs(got-want) <= 1e-6*math.Max(math.Abs(want), 1)
		}
		if !approx(s.AvgAgeSuper, ageSup, s.NumSupers) ||
			!approx(s.AvgCapSuper, capSup, s.NumSupers) ||
			!approx(s.AvgAgeLeaf, ageLeaf, s.NumLeaves) ||
			!approx(s.AvgCapLeaf, capLeaf, s.NumLeaves) {
			t.Fatalf("step %d: snapshot means diverged from per-peer scan: %+v", step, s)
		}
	}

	for i := 0; i < 50; i++ {
		n.Join(1+rng.Float64()*99, 1e9, nil)
	}
	for step := 0; step < 4000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			n.Join(1+rng.Float64()*99, 1e9, nil)
		case 3, 4:
			if ids := n.LeafIDs(); len(ids) > 0 && n.Size() > 5 {
				n.Leave(n.Peer(ids[rng.Intn(len(ids))]))
			}
		case 5:
			if ids := n.SuperIDs(); len(ids) > 1 {
				n.Leave(n.Peer(ids[rng.Intn(len(ids))]))
			}
		case 6:
			if ids := n.LeafIDs(); len(ids) > 0 {
				n.Promote(n.Peer(ids[rng.Intn(len(ids))]))
			}
		case 7:
			if ids := n.SuperIDs(); len(ids) > 0 {
				n.Demote(n.Peer(ids[rng.Intn(len(ids))]))
			}
		case 8:
			n.Repair()
		case 9:
			// Advance virtual time so the sum-of-birth-times identity is
			// exercised at many distinct "now" values, and any deferred
			// reconnect events fire.
			if err := eng.RunUntil(eng.Now() + sim.Time(1+rng.Intn(5))); err != nil {
				t.Fatal(err)
			}
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(4000)
	requireHealthy(t, n)
}

// TestSnapshotAllocFree pins the O(1) sampling win: once the network is
// built, taking a layer-statistics sample allocates nothing.
func TestSnapshotAllocFree(t *testing.T) {
	eng := sim.NewEngine(3)
	n := New(eng, Config{M: 2, KS: 3, Eta: 10}, nil)
	for i := 0; i < 300; i++ {
		n.Join(float64(1+i%100), 1e9, nil)
	}
	for i := 0; n.NumSupers() < 20; i++ {
		n.Promote(n.Peer(n.LeafIDs()[0]))
	}
	if avg := testing.AllocsPerRun(100, func() { _ = n.Snapshot() }); avg != 0 {
		t.Fatalf("Snapshot allocates %v per sample, want 0", avg)
	}
}
