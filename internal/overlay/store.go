package overlay

import (
	"dlm/internal/msg"
	"dlm/internal/sim"
)

// The slab hands out peers in pages of fixed size so that *Peer values
// stay address-stable while the store grows (a flat []Peer would move
// every peer on append). Pages are contiguous, so hot-path iteration
// still walks dense memory.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type peerPage [pageSize]Peer

// peerStore is the dense peer table: a paged slab of Peer structs, a
// LIFO free-list of recycled slots, and a flat PeerID->slot index. It
// replaces the map[msg.PeerID]*Peer of earlier revisions: lookups are two
// array indexings instead of a hash probe, departed peers' slots (and
// their link-set and manager-state allocations) are reused by later
// joins, and the ID index stays dense because IDs are drawn from a
// monotonic counter.
type peerStore struct {
	pages []*peerPage
	// free holds recycled slots; the most recently vacated slot is reused
	// first, which keeps the working set compact under churn.
	free []int32
	// ptr maps a PeerID directly to its live peer (nil when dead): get is
	// a single indexed load, the hottest operation in the whole
	// simulation. The slice is indexed by the monotonically assigned ID,
	// so it grows by one word per join ever made.
	ptr []*Peer
	// next is the high-water slot: slots in [0, next) have been handed
	// out at least once.
	next int32
	live int
}

// Len returns the number of live peers.
func (st *peerStore) Len() int { return st.live }

// get returns the live peer with the given ID, or nil.
func (st *peerStore) get(id msg.PeerID) *Peer {
	if int(id) >= len(st.ptr) {
		return nil
	}
	return st.ptr[id]
}

// acquire allocates (or recycles) a slot for id and returns its Peer,
// with identity fields zeroed and link sets empty. The manager-owned
// State field and the link sets' backing arrays survive recycling; all
// other fields are the caller's to set.
func (st *peerStore) acquire(id msg.PeerID) *Peer {
	var slot int32
	if n := len(st.free); n > 0 {
		slot = st.free[n-1]
		st.free = st.free[:n-1]
	} else {
		slot = st.next
		st.next++
		if int(slot)>>pageShift >= len(st.pages) {
			st.pages = append(st.pages, new(peerPage))
		}
	}
	p := &st.pages[slot>>pageShift][slot&pageMask]
	for int(id) >= len(st.ptr) {
		st.ptr = append(st.ptr, nil)
	}
	st.ptr[id] = p
	st.live++
	p.ID = id
	p.slot = slot
	p.layerPos = -1
	p.deficitPos = -1
	p.Objects = nil
	p.MisreportCapFactor = 0
	p.MisreportAgeBoost = 0
	p.superLinks.Clear()
	p.leafLinks.Clear()
	return p
}

// release returns p's slot to the free-list. The caller must already have
// torn down p's links and layer membership.
func (st *peerStore) release(p *Peer) {
	st.ptr[p.ID] = nil
	st.free = append(st.free, p.slot)
	st.live--
}

// layerSet is the membership slice of one layer with O(1) insert, delete,
// and uniform random choice. A member's position is stored on the Peer
// itself (layerPos), so no side index is needed; deletion swaps with the
// last element, keeping order a deterministic function of the operation
// history — which keeps whole simulations reproducible.
type layerSet struct {
	items []msg.PeerID
}

// Len returns the set size.
func (s *layerSet) Len() int { return len(s.items) }

// Add appends p to the membership slice and records its position.
func (s *layerSet) Add(p *Peer) {
	p.layerPos = int32(len(s.items))
	s.items = append(s.items, p.ID)
}

// Remove deletes p via swap-delete, fixing up the moved member's position
// through the store.
func (s *layerSet) Remove(p *Peer, st *peerStore) {
	i := p.layerPos
	last := int32(len(s.items) - 1)
	if i != last {
		moved := s.items[last]
		s.items[i] = moved
		st.get(moved).layerPos = i
	}
	s.items = s.items[:last]
	p.layerPos = -1
}

// Contains reports whether p is currently recorded in this set.
func (s *layerSet) Contains(p *Peer) bool {
	return p.layerPos >= 0 && int(p.layerPos) < len(s.items) && s.items[p.layerPos] == p.ID
}

// deficitSet tracks the peers currently below their layer's super-degree
// repair target, so the per-tick Repair visits exactly the peers with
// work instead of walking the whole population (the O(N)-per-tick scan
// that collapsed million-peer throughput). Same swap-delete discipline as
// layerSet, with the member position on the Peer (deficitPos): insert,
// delete and the "already a member" check are all O(1), so the set can be
// maintained inline at every degree- or layer-mutation point. Order is a
// deterministic function of the mutation history, which keeps the repair
// connection draws — and therefore whole simulations — reproducible.
type deficitSet struct {
	items []msg.PeerID
}

// add appends p unless already present.
func (s *deficitSet) add(p *Peer) {
	if p.deficitPos >= 0 {
		return
	}
	p.deficitPos = int32(len(s.items))
	s.items = append(s.items, p.ID)
}

// remove deletes p via swap-delete if present, fixing up the moved
// member's position through the store.
func (s *deficitSet) remove(p *Peer, st *peerStore) {
	i := p.deficitPos
	if i < 0 {
		return
	}
	last := int32(len(s.items) - 1)
	if i != last {
		moved := s.items[last]
		s.items[i] = moved
		st.get(moved).deficitPos = i
	}
	s.items = s.items[:last]
	p.deficitPos = -1
}

// Random returns a uniformly random member; ok is false when empty.
func (s *layerSet) Random(r *sim.Source) (msg.PeerID, bool) {
	if len(s.items) == 0 {
		return msg.NoPeer, false
	}
	return s.items[r.Intn(len(s.items))], true
}
