package overlay

import (
	"testing"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

func TestTopologyStats(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 5, 25)
	topo := n.Topology(3)
	if topo.SuperComponents < 1 {
		t.Fatalf("components %d", topo.SuperComponents)
	}
	if topo.LargestComponentFrac <= 0 || topo.LargestComponentFrac > 1 {
		t.Fatalf("largest frac %v", topo.LargestComponentFrac)
	}
	if topo.StrandedLeaves != 0 {
		t.Fatalf("stranded %d in a healthy net", topo.StrandedLeaves)
	}
	if topo.SuperDegreeHist.Count() != 5 {
		t.Fatalf("super degree samples %d", topo.SuperDegreeHist.Count())
	}
	if topo.LeafDegreeHist.Count() != 5 {
		t.Fatalf("leaf degree samples %d", topo.LeafDegreeHist.Count())
	}
	// Strand a leaf and recount.
	leaf := n.Peer(n.LeafIDs()[0])
	for _, id := range append([]msg.PeerID(nil), leaf.SuperLinks()...) {
		n.Disconnect(leaf, n.Peer(id))
	}
	topo = n.Topology(0)
	if topo.StrandedLeaves != 1 {
		t.Fatalf("stranded = %d, want 1", topo.StrandedLeaves)
	}
	if topo.UnderConnectedLeaves < 1 {
		t.Fatalf("under-connected = %d", topo.UnderConnectedLeaves)
	}
}

func TestTopologyDisconnectedBackbone(t *testing.T) {
	_, n := newNet(t, testConfig())
	// Two isolated supers.
	a := n.Join(10, 100, nil)
	b := n.Join(10, 100, nil)
	n.Promote(b)
	n.Disconnect(a, b)
	topo := n.Topology(2)
	if topo.SuperComponents != 2 {
		t.Fatalf("components = %d, want 2", topo.SuperComponents)
	}
	if topo.LargestComponentFrac != 0.5 {
		t.Fatalf("largest frac = %v, want 0.5", topo.LargestComponentFrac)
	}
}

func TestTopologyPathLength(t *testing.T) {
	_, n := newNet(t, testConfig())
	// Chain of three supers: mean pairwise distance from BFS > 1.
	a := n.Join(10, 100, nil)
	b := n.Join(10, 100, nil)
	c := n.Join(10, 100, nil)
	n.Promote(b)
	n.Promote(c)
	for _, p := range []*Peer{a, b, c} {
		for _, id := range append([]msg.PeerID(nil), p.SuperLinks()...) {
			n.Disconnect(p, n.Peer(id))
		}
	}
	n.Connect(a, b)
	n.Connect(b, c)
	topo := n.Topology(50)
	if topo.AvgSuperPath <= 1 || topo.AvgSuperPath >= 2 {
		t.Fatalf("avg path %v, want in (1,2) for a 3-chain", topo.AvgSuperPath)
	}
}

func TestLayerString(t *testing.T) {
	if LayerLeaf.String() != "leaf" || LayerSuper.String() != "super" {
		t.Fatal("layer names wrong")
	}
	if Layer(9).String() != "layer(9)" {
		t.Fatal("unknown layer name wrong")
	}
}

func TestNopManagerAndObserverHooks(t *testing.T) {
	// Exercise the no-op implementations via a network that installs
	// both; behavior must be indistinguishable from no hooks at all.
	eng := sim.NewEngine(1)
	n := New(eng, testConfig(), NopManager{})
	n.Observe(NopObserver{})
	if n.Manager().Name() != "nop" {
		t.Fatalf("manager name %q", n.Manager().Name())
	}
	s := n.Join(10, 100, nil)
	leaf := n.Join(1, 10, nil)
	n.Promote(leaf)
	n.Demote(leaf)
	n.Tick()
	n.Manager().HandleMessage(n, s, &msg.Message{Kind: msg.KindPing})
	n.Leave(leaf)
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad)
	}
	if n.Now() != eng.Now() {
		t.Fatal("Now mismatch")
	}
	if n.Rand() == nil {
		t.Fatal("nil rand")
	}
}

func TestDeferredReconnectLeavesOrphans(t *testing.T) {
	cfg := testConfig()
	cfg.DeferredReconnect = true
	eng := sim.NewEngine(2)
	n := New(eng, cfg, nil)
	seedNetwork(t, n, 4, 16)
	var victim *Peer
	for _, id := range n.SuperIDs() {
		if p := n.Peer(id); p.LeafDegree() > 0 {
			victim = p
			break
		}
	}
	orphans := append([]msg.PeerID(nil), victim.LeafLinks()...)
	n.Leave(victim)
	// Under deferred reconnect the orphans stay under-connected...
	under := 0
	for _, id := range orphans {
		if q := n.Peer(id); q != nil && q.SuperDegree() < cfg.M {
			under++
		}
	}
	if under == 0 {
		t.Fatal("no orphan left under-connected before repair")
	}
	// ...until Repair runs.
	n.Repair()
	for _, id := range orphans {
		if q := n.Peer(id); q != nil && q.SuperDegree() != cfg.M {
			t.Fatalf("repair left orphan %d at degree %d", id, q.SuperDegree())
		}
	}
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad)
	}
}

func TestDeferredReconnectOnDemotion(t *testing.T) {
	cfg := testConfig()
	cfg.DeferredReconnect = true
	eng := sim.NewEngine(3)
	n := New(eng, cfg, nil)
	seedNetwork(t, n, 5, 20)
	var victim *Peer
	for _, id := range n.SuperIDs() {
		if p := n.Peer(id); p.LeafDegree() > 0 && p.SuperDegree() > 0 {
			victim = p
			break
		}
	}
	orphans := append([]msg.PeerID(nil), victim.LeafLinks()...)
	if !n.Demote(victim) {
		t.Fatal("demotion refused")
	}
	// PAO still counted even though reconnection is deferred.
	if n.Counters().DemotionDisconnects != uint64(len(orphans)) {
		t.Fatalf("PAO = %d, want %d", n.Counters().DemotionDisconnects, len(orphans))
	}
	n.Repair()
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad)
	}
}
