package overlay

import (
	"fmt"
	"math"

	"dlm/internal/sim"
)

// Link models an adverse network path between any two peers: per-message
// loss, latency jitter, duplication, and reordering. The zero value is a
// perfect link and adds no cost and no randomness to the message plane —
// the determinism baselines (byte-identical results/fig*.csv) depend on
// that, so every knob gates its own draw and the faulty path reads from a
// dedicated RNG stream ("overlay.link") that perfect-link runs never
// touch.
//
// Jitter comes in two shapes, mutually exclusive: a triangular
// min/mode/max distribution (the classic "ping spread" model, cheap and
// bounded) or a lognormal one (heavy upper tail, the shape WAN latency
// studies report). ReorderWindow adds an independent uniform extra delay
// in [0, W) per delivered copy, so messages sent back-to-back can overtake
// each other by up to the window.
type Link struct {
	// Loss is the probability a message is dropped in flight.
	Loss float64
	// Dup is the probability a delivered message arrives twice (the
	// copies take independent delay draws).
	Dup float64
	// JitterMin/JitterMode/JitterMax parameterize triangular latency
	// jitter added on top of Config.Latency; all zero disables. Active
	// when JitterMax > 0.
	JitterMin, JitterMode, JitterMax sim.Duration
	// LogJitterMu/LogJitterSigma select lognormal jitter instead
	// (exp(N(μ,σ)) time units); active when LogJitterSigma > 0.
	LogJitterMu, LogJitterSigma float64
	// ReorderWindow adds a uniform extra delay in [0, ReorderWindow) per
	// delivered copy.
	ReorderWindow sim.Duration
}

// Active reports whether any fault knob is set; inactive links take the
// overlay's original draw-free delivery path.
func (l Link) Active() bool {
	return l.Loss > 0 || l.Dup > 0 || l.JitterMax > 0 || l.LogJitterSigma > 0 ||
		l.ReorderWindow > 0
}

// Validate reports a descriptive error for out-of-range parameters.
func (l Link) Validate() error {
	switch {
	case l.Loss < 0 || l.Loss >= 1 || math.IsNaN(l.Loss):
		return fmt.Errorf("overlay: link loss = %v, want [0,1)", l.Loss)
	case l.Dup < 0 || l.Dup >= 1 || math.IsNaN(l.Dup):
		return fmt.Errorf("overlay: link dup = %v, want [0,1)", l.Dup)
	case l.JitterMin < 0 || l.JitterMode < l.JitterMin || l.JitterMax < l.JitterMode:
		return fmt.Errorf("overlay: link jitter (%v, %v, %v), want 0 <= min <= mode <= max",
			l.JitterMin, l.JitterMode, l.JitterMax)
	case l.LogJitterSigma < 0:
		return fmt.Errorf("overlay: link lognormal sigma = %v, want >= 0", l.LogJitterSigma)
	case l.JitterMax > 0 && l.LogJitterSigma > 0:
		return fmt.Errorf("overlay: link sets both triangular and lognormal jitter")
	case l.ReorderWindow < 0:
		return fmt.Errorf("overlay: link reorder window = %v, want >= 0", l.ReorderWindow)
	}
	return nil
}

// delay draws the extra delivery delay for one copy of a message. The
// draw discipline is fixed: one draw per active jitter family, then one
// per active reorder window — never more, never fewer — so sequences
// stay reproducible as knobs are toggled independently.
func (l Link) delay(rng *sim.Source) sim.Duration {
	var d sim.Duration
	if l.LogJitterSigma > 0 {
		d += sim.Duration(rng.Lognormal(l.LogJitterMu, l.LogJitterSigma))
	} else if l.JitterMax > 0 {
		d += l.triangular(rng)
	}
	if l.ReorderWindow > 0 {
		d += sim.Duration(rng.Float64()) * l.ReorderWindow
	}
	return d
}

// triangular draws from the min/mode/max triangle by inverse CDF.
func (l Link) triangular(rng *sim.Source) sim.Duration {
	a, c, b := float64(l.JitterMin), float64(l.JitterMode), float64(l.JitterMax)
	u := rng.Float64()
	if b <= a {
		return sim.Duration(a)
	}
	if fc := (c - a) / (b - a); u < fc {
		return sim.Duration(a + math.Sqrt(u*(b-a)*(c-a)))
	}
	return sim.Duration(b - math.Sqrt((1-u)*(b-a)*(b-c)))
}
