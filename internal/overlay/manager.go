package overlay

import (
	"dlm/internal/msg"
	"dlm/internal/sim"
)

// Manager is a layer-management policy plugged into the overlay. The
// overlay calls the hooks; the manager decides layers by calling
// Network.Promote / Network.Demote. Managers must restrict themselves to
// peer-local information (the Network pointer gives global access for
// mechanics, but the paper's distributed-knowledge discipline is enforced
// by code review and by the oracle baseline being the only policy allowed
// to peek).
type Manager interface {
	// Name identifies the policy in reports.
	Name() string
	// InitialLayer picks the layer of a joining peer. DLM always starts
	// peers as leaves; the preconfigured baseline thresholds on capacity.
	InitialLayer(n *Network, p *Peer) Layer
	// OnConnect fires when a link between a and b is created. Event-driven
	// information exchange lives here.
	OnConnect(n *Network, a, b *Peer)
	// OnDisconnect fires when a link is torn down (including by death of
	// either endpoint).
	OnDisconnect(n *Network, a, b *Peer)
	// OnLayerChange fires after p moved between layers.
	OnLayerChange(n *Network, p *Peer, old Layer)
	// HandleMessage processes a protocol message addressed to 'to'.
	HandleMessage(n *Network, to *Peer, m *msg.Message)
	// Tick runs once per time unit, after churn and repair for that unit.
	Tick(n *Network, now sim.Time)
}

// Observer receives structural-change notifications without owning layer
// policy. The query subsystem uses it to maintain the leaf indexes at
// super-peers.
type Observer interface {
	// OnJoin fires after p entered the network and made its initial
	// connections.
	OnJoin(n *Network, p *Peer)
	// OnConnect fires after a link between a and b is created.
	OnConnect(n *Network, a, b *Peer)
	// OnDisconnect fires after a link is torn down.
	OnDisconnect(n *Network, a, b *Peer)
	// OnLayerChange fires after p moved between layers.
	OnLayerChange(n *Network, p *Peer, old Layer)
	// OnLeave fires when p departs the network (after its links are
	// gone).
	OnLeave(n *Network, p *Peer)
}

// NopObserver is an embeddable Observer with no-op hooks.
type NopObserver struct{}

// OnJoin implements Observer.
func (NopObserver) OnJoin(*Network, *Peer) {}

// OnConnect implements Observer.
func (NopObserver) OnConnect(*Network, *Peer, *Peer) {}

// OnDisconnect implements Observer.
func (NopObserver) OnDisconnect(*Network, *Peer, *Peer) {}

// OnLayerChange implements Observer.
func (NopObserver) OnLayerChange(*Network, *Peer, Layer) {}

// OnLeave implements Observer.
func (NopObserver) OnLeave(*Network, *Peer) {}

// NopManager is an embeddable Manager with no-op hooks; policies embed it
// and override what they need.
type NopManager struct{}

// Name implements Manager.
func (NopManager) Name() string { return "nop" }

// InitialLayer implements Manager; every peer joins as a leaf.
func (NopManager) InitialLayer(*Network, *Peer) Layer { return LayerLeaf }

// OnConnect implements Manager.
func (NopManager) OnConnect(*Network, *Peer, *Peer) {}

// OnDisconnect implements Manager.
func (NopManager) OnDisconnect(*Network, *Peer, *Peer) {}

// OnLayerChange implements Manager.
func (NopManager) OnLayerChange(*Network, *Peer, Layer) {}

// HandleMessage implements Manager.
func (NopManager) HandleMessage(*Network, *Peer, *msg.Message) {}

// Tick implements Manager.
func (NopManager) Tick(*Network, sim.Time) {}
