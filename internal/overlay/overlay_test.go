package overlay

import (
	"math"
	"testing"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

func testConfig() Config {
	return Config{M: 2, KS: 3, Eta: 10}
}

func newNet(t *testing.T, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, cfg, nil)
}

func requireHealthy(t *testing.T, n *Network) {
	t.Helper()
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariant violations: %v", bad)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []Config{
		{M: 0, KS: 3, Eta: 10},
		{M: 2, KS: 0, Eta: 10},
		{M: 2, KS: 3, Eta: 0},
		{M: 2, KS: 3, Eta: math.NaN()},
		{M: 2, KS: 3, Eta: 10, MaxLeafDegree: -1},
		{M: 2, KS: 3, Eta: 10, Latency: -1},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigKL(t *testing.T) {
	c := Config{M: 2, KS: 3, Eta: 40}
	if c.KL() != 80 {
		t.Fatalf("KL = %v, want 80 (Equation a)", c.KL())
	}
}

func TestBootstrapFirstPeerIsSuper(t *testing.T) {
	_, n := newNet(t, testConfig())
	p := n.Join(10, 100, nil)
	if p.Layer != LayerSuper {
		t.Fatalf("first peer layer = %v, want super", p.Layer)
	}
	if n.NumSupers() != 1 || n.NumLeaves() != 0 {
		t.Fatalf("layer sizes %d/%d", n.NumSupers(), n.NumLeaves())
	}
	requireHealthy(t, n)
}

func TestJoinLeafConnectsToMSupers(t *testing.T) {
	_, n := newNet(t, testConfig())
	// Seed some supers.
	var supers []*Peer
	for i := 0; i < 5; i++ {
		p := n.Join(100, 1000, nil)
		n.Promote(p) // no-op for the bootstrap super, promotes the rest
		supers = append(supers, p)
	}
	if n.NumSupers() != 5 {
		t.Fatalf("supers = %d, want 5", n.NumSupers())
	}
	before := n.Counters().NewLeafConnections
	leaf := n.Join(1, 10, nil)
	if leaf.Layer != LayerLeaf || leaf.SuperDegree() != 2 {
		t.Fatalf("leaf layer=%v super degree=%d, want leaf with 2 links", leaf.Layer, leaf.SuperDegree())
	}
	if got := n.Counters().NewLeafConnections - before; got != 2 {
		t.Fatalf("NewLeafConnections delta = %d, want 2 (m)", got)
	}
	requireHealthy(t, n)
	_ = supers
}

// seedNetwork builds s supers and l leaves deterministically.
func seedNetwork(t *testing.T, n *Network, s, l int) {
	t.Helper()
	for i := 0; i < s; i++ {
		p := n.Join(100, 1000, nil)
		n.Promote(p)
	}
	if n.NumSupers() != s {
		t.Fatalf("seeded %d supers, want %d", n.NumSupers(), s)
	}
	for i := 0; i < l; i++ {
		n.Join(10, 100, nil)
	}
	if n.NumLeaves() != l {
		t.Fatalf("seeded %d leaves, want %d", n.NumLeaves(), l)
	}
}

func TestPromotionKeepsConnections(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 4, 10)
	leafID := n.LeafIDs()[0]
	leaf := n.Peer(leafID)
	before := append([]msg.PeerID(nil), leaf.SuperLinks()...)
	promosBefore := n.Counters().Promotions

	n.Promote(leaf)
	if leaf.Layer != LayerSuper {
		t.Fatal("promotion did not change layer")
	}
	after := leaf.SuperLinks()
	if len(after) != len(before) {
		t.Fatalf("super links %d -> %d; promotion must keep connections", len(before), len(after))
	}
	for _, id := range before {
		q := n.Peer(id)
		if !q.superLinks.Contains(leaf.ID) {
			t.Fatalf("old super %d does not see promoted peer as super neighbor", id)
		}
		if q.leafLinks.Contains(leaf.ID) {
			t.Fatalf("old super %d still lists promoted peer as leaf", id)
		}
	}
	c := n.Counters()
	if c.Promotions != promosBefore+1 {
		t.Fatalf("promotions = %d, want %d", c.Promotions, promosBefore+1)
	}
	if c.DemotionDisconnects != 0 {
		t.Fatal("promotion must cause no PAO")
	}
	requireHealthy(t, n)
}

func TestDemotionSurgeryAndPAO(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 6, 30)
	// Find a super with leaves.
	var victim *Peer
	for _, id := range n.SuperIDs() {
		if p := n.Peer(id); p.LeafDegree() > 0 && p.SuperDegree() > 0 {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no super with leaves found")
	}
	leaves := append([]msg.PeerID(nil), victim.LeafLinks()...)
	if !n.Demote(victim) {
		t.Fatal("demotion refused")
	}
	if victim.Layer != LayerLeaf {
		t.Fatal("layer unchanged")
	}
	if victim.LeafDegree() != 0 {
		t.Fatalf("demoted peer still has %d leaves", victim.LeafDegree())
	}
	if d := victim.SuperDegree(); d > n.Config().M {
		t.Fatalf("demoted peer keeps %d super links, want <= m=%d", d, n.Config().M)
	}
	c := n.Counters()
	if c.Demotions != 1 {
		t.Fatalf("demotions = %d", c.Demotions)
	}
	if c.DemotionDisconnects != uint64(len(leaves)) {
		t.Fatalf("PAO disconnects = %d, want %d", c.DemotionDisconnects, len(leaves))
	}
	// Every orphaned leaf reconnected back to m links.
	for _, id := range leaves {
		q := n.Peer(id)
		if q.SuperDegree() != n.Config().M {
			t.Fatalf("orphan %d has %d super links, want %d", id, q.SuperDegree(), n.Config().M)
		}
		if q.superLinks.Contains(victim.ID) {
			t.Fatalf("orphan %d reconnected to the demoted peer", id)
		}
	}
	requireHealthy(t, n)
}

func TestDemoteLastSuperRefused(t *testing.T) {
	_, n := newNet(t, testConfig())
	p := n.Join(10, 100, nil)
	if n.Demote(p) {
		t.Fatal("demoting the only super must be refused")
	}
	if p.Layer != LayerSuper {
		t.Fatal("refused demotion still changed layer")
	}
}

func TestLeaveReconnectsOrphans(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 5, 20)
	var victim *Peer
	for _, id := range n.SuperIDs() {
		if p := n.Peer(id); p.LeafDegree() > 0 {
			victim = p
			break
		}
	}
	orphans := append([]msg.PeerID(nil), victim.LeafLinks()...)
	sizeBefore := n.Size()
	n.Leave(victim)
	if n.Size() != sizeBefore-1 {
		t.Fatalf("size %d, want %d", n.Size(), sizeBefore-1)
	}
	if n.Peer(victim.ID) != nil {
		t.Fatal("departed peer still resolvable")
	}
	for _, id := range orphans {
		q := n.Peer(id)
		if q == nil {
			continue
		}
		if q.SuperDegree() != n.Config().M {
			t.Fatalf("orphan %d degree %d after super death, want %d", id, q.SuperDegree(), n.Config().M)
		}
	}
	c := n.Counters()
	if c.ChurnReconnects == 0 {
		t.Fatal("churn reconnects not counted")
	}
	if c.DemotionDisconnects != 0 {
		t.Fatal("super death must not count as PAO")
	}
	requireHealthy(t, n)
	// Double leave is a no-op.
	n.Leave(victim)
	if n.Counters().Leaves != 1 {
		t.Fatal("double Leave counted twice")
	}
}

func TestLeafLeafLinkPanics(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 2, 2)
	a := n.Peer(n.LeafIDs()[0])
	b := n.Peer(n.LeafIDs()[1])
	defer func() {
		if recover() == nil {
			t.Fatal("leaf-leaf link did not panic")
		}
	}()
	n.Connect(a, b)
}

func TestConnectRejectsDuplicatesAndSelf(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 3, 1)
	leaf := n.Peer(n.LeafIDs()[0])
	s := n.Peer(leaf.SuperLinks()[0])
	if n.Connect(leaf, s) {
		t.Fatal("duplicate link accepted")
	}
	if n.Connect(leaf, leaf) {
		t.Fatal("self link accepted")
	}
	if n.Connect(nil, s) || n.Connect(leaf, nil) {
		t.Fatal("nil link accepted")
	}
}

func TestMaxLeafDegreeCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxLeafDegree = 3
	_, n := newNet(t, cfg)
	// Two supers; m=2 means every leaf wants both of them.
	seedNetwork(t, n, 2, 0)
	for i := 0; i < 10; i++ {
		n.Join(1, 10, nil)
	}
	for _, id := range n.SuperIDs() {
		if d := n.Peer(id).LeafDegree(); d > 3 {
			t.Fatalf("super %d leaf degree %d exceeds cap", id, d)
		}
	}
	requireHealthy(t, n)
}

func TestRepairRestoresDegrees(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 6, 12)
	leaf := n.Peer(n.LeafIDs()[0])
	s := n.Peer(leaf.SuperLinks()[0])
	n.Disconnect(leaf, s)
	if leaf.SuperDegree() != n.Config().M-1 {
		t.Fatalf("degree after disconnect = %d", leaf.SuperDegree())
	}
	n.Repair()
	if leaf.SuperDegree() != n.Config().M {
		t.Fatalf("repair left degree %d", leaf.SuperDegree())
	}
	if n.Counters().RepairConnections == 0 {
		t.Fatal("repair connections not counted")
	}
	requireHealthy(t, n)
}

func TestSendDeliversAndCountsTraffic(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 2, 1)
	leaf := n.Peer(n.LeafIDs()[0])
	s := n.Peer(leaf.SuperLinks()[0])

	var got []msg.Kind
	n.Handle(msg.KindPing, func(_ *Network, to *Peer, m *msg.Message) {
		if to.ID != m.To {
			t.Errorf("delivered to %d, addressed to %d", to.ID, m.To)
		}
		got = append(got, m.Kind)
	})
	n.Send(msg.Message{Kind: msg.KindPing, From: leaf.ID, To: s.ID})
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	tr := n.Traffic()
	if tr.Count(msg.KindPing) != 1 {
		t.Fatalf("traffic count = %d", tr.Count(msg.KindPing))
	}
	// Message to a dead peer is counted but dropped.
	n.Leave(s)
	n.Send(msg.Message{Kind: msg.KindPing, From: leaf.ID, To: s.ID})
	if len(got) != 1 {
		t.Fatal("message to dead peer was delivered")
	}
	if n.Traffic().Count(msg.KindPing) != 2 {
		t.Fatal("message to dead peer not counted")
	}
}

func TestSendWithLatency(t *testing.T) {
	cfg := testConfig()
	cfg.Latency = 0.5
	eng := sim.NewEngine(1)
	n := New(eng, cfg, nil)
	seedNetwork(t, n, 2, 1)
	leaf := n.Peer(n.LeafIDs()[0])
	s := n.Peer(leaf.SuperLinks()[0])
	var deliveredAt sim.Time
	n.Handle(msg.KindPing, func(_ *Network, _ *Peer, _ *msg.Message) {
		deliveredAt = eng.Now()
	})
	n.Send(msg.Message{Kind: msg.KindPing, From: leaf.ID, To: s.ID})
	if deliveredAt != 0 {
		t.Fatal("latency message delivered synchronously")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveredAt != 0.5 {
		t.Fatalf("delivered at %v, want 0.5", deliveredAt)
	}
}

func TestRandomSelection(t *testing.T) {
	_, n := newNet(t, testConfig())
	if n.RandomPeer() != nil || n.RandomSuper() != nil {
		t.Fatal("empty network returned a peer")
	}
	seedNetwork(t, n, 3, 9)
	counts := map[Layer]int{}
	for i := 0; i < 1000; i++ {
		counts[n.RandomPeer().Layer]++
	}
	if counts[LayerSuper] == 0 || counts[LayerLeaf] == 0 {
		t.Fatalf("random peer never hit one layer: %v", counts)
	}
	// Roughly proportional: 3/12 supers.
	frac := float64(counts[LayerSuper]) / 1000
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("super fraction %.3f, want near 0.25", frac)
	}
	if n.RandomSuper().Layer != LayerSuper {
		t.Fatal("RandomSuper returned a leaf")
	}
}

func TestRatioAndSnapshot(t *testing.T) {
	eng, n := newNet(t, testConfig())
	if !math.IsInf(n.Ratio(), 1) {
		t.Fatal("empty network ratio should be +Inf")
	}
	seedNetwork(t, n, 2, 8)
	if n.Ratio() != 4 {
		t.Fatalf("ratio = %v, want 4", n.Ratio())
	}
	eng.AfterFunc(10, func(*sim.Engine) {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if snap.NumSupers != 2 || snap.NumLeaves != 8 {
		t.Fatalf("snapshot sizes %d/%d", snap.NumSupers, snap.NumLeaves)
	}
	if snap.AvgAgeSuper != 10 || snap.AvgAgeLeaf != 10 {
		t.Fatalf("snapshot ages %v/%v, want 10", snap.AvgAgeSuper, snap.AvgAgeLeaf)
	}
	if snap.AvgCapSuper != 100 || snap.AvgCapLeaf != 10 {
		t.Fatalf("snapshot capacities %v/%v", snap.AvgCapSuper, snap.AvgCapLeaf)
	}
	if snap.AvgSuperDegreeOfLeaves != 2 {
		t.Fatalf("avg leaf->super degree %v, want m=2", snap.AvgSuperDegreeOfLeaves)
	}
	// Total leaf degree of supers equals total super degree of leaves.
	totLnn := snap.AvgLeafDegree * float64(snap.NumSupers)
	totMsl := snap.AvgSuperDegreeOfLeaves * float64(snap.NumLeaves)
	if math.Abs(totLnn-totMsl) > 1e-9 {
		t.Fatalf("degree bookkeeping: %v vs %v", totLnn, totMsl)
	}
}

func TestPAOOverNLCO(t *testing.T) {
	c := Counters{DemotionDisconnects: 5, NewLeafConnections: 100}
	if got := c.PAOOverNLCO(); got != 5 {
		t.Fatalf("PAO/NLCO = %v, want 5%%", got)
	}
	if (Counters{}).PAOOverNLCO() != 0 {
		t.Fatal("empty counters should report 0")
	}
}

func TestLinkSet(t *testing.T) {
	var s linkSet
	if s.Len() != 0 || s.Contains(1) || s.Remove(1) {
		t.Fatal("empty set misbehaves")
	}
	for i := msg.PeerID(1); i <= 10; i++ {
		if !s.Add(i) {
			t.Fatalf("Add(%d) failed", i)
		}
	}
	if s.Add(5) {
		t.Fatal("duplicate Add succeeded")
	}
	if !s.Remove(5) || s.Contains(5) || s.Len() != 9 {
		t.Fatal("Remove misbehaves")
	}
	// Remove the last element path.
	last := s.items[len(s.items)-1]
	if !s.Remove(last) {
		t.Fatal("remove last failed")
	}
	for i := msg.PeerID(1); i <= 10; i++ {
		want := i != 5 && i != last
		if s.Contains(i) != want {
			t.Fatalf("Contains(%d) = %v after removals", i, !want)
		}
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("Clear misbehaves")
	}
}

// TestLinkSetIndexed drives the set past linkIndexThreshold so the
// position index engages, and checks that indexed behavior matches the
// scanned behavior (same membership, same swap-delete order) through
// adds, removes, a Clear, and a regrowth.
func TestLinkSetIndexed(t *testing.T) {
	var s linkSet
	n := msg.PeerID(3 * linkIndexThreshold)
	for i := msg.PeerID(1); i <= n; i++ {
		if !s.Add(i) {
			t.Fatalf("Add(%d) failed", i)
		}
	}
	if s.idx == nil {
		t.Fatalf("index not built at size %d", s.Len())
	}
	if bad := s.checkIdx(); bad != "" {
		t.Fatal(bad)
	}
	if s.Add(n / 2) {
		t.Fatal("duplicate Add succeeded with index")
	}
	// Mirror the order against a scan-only twin: the index must not
	// change which element a removal swaps into place.
	twin := linkSet{items: append([]msg.PeerID(nil), s.items...)}
	for _, id := range []msg.PeerID{1, n, n / 2, 7, 7} {
		if got, want := s.Remove(id), twin.removeScan(id); got != want {
			t.Fatalf("Remove(%d) = %v, scan twin says %v", id, got, want)
		}
		if bad := s.checkIdx(); bad != "" {
			t.Fatal(bad)
		}
	}
	for i, v := range twin.items {
		if s.items[i] != v {
			t.Fatalf("item order diverged at %d: %d != %d", i, s.items[i], v)
		}
	}
	for i := msg.PeerID(1); i <= n; i++ {
		if s.Contains(i) != twin.Contains(i) {
			t.Fatalf("Contains(%d) diverged", i)
		}
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(2) {
		t.Fatal("Clear misbehaves with index")
	}
	if !s.Add(2) || !s.Contains(2) || s.Len() != 1 {
		t.Fatal("regrowth after Clear misbehaves")
	}
	if bad := s.checkIdx(); bad != "" {
		t.Fatal(bad)
	}
}

// removeScan is Remove forced down the linear-scan path, for the twin
// comparison above.
func (s *linkSet) removeScan(id msg.PeerID) bool {
	for i, v := range s.items {
		if v == id {
			last := len(s.items) - 1
			s.items[i] = s.items[last]
			s.items = s.items[:last]
			return true
		}
	}
	return false
}

func TestHandleInvalidKindPanics(t *testing.T) {
	_, n := newNet(t, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("registering handler for invalid kind did not panic")
		}
	}()
	n.Handle(msg.KindInvalid, func(*Network, *Peer, *msg.Message) {})
}

func TestResetCounters(t *testing.T) {
	_, n := newNet(t, testConfig())
	seedNetwork(t, n, 2, 4)
	if n.Counters().Joins == 0 {
		t.Fatal("expected join counts")
	}
	n.ResetCounters()
	if n.Counters() != (Counters{}) {
		t.Fatal("counters not reset")
	}
}
