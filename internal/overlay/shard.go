package overlay

import "dlm/internal/sim"

// Lane-partitioned population walks. The slab store (store.go) already
// keeps peers in dense fixed-size pages; a lane is the set of pages whose
// index is congruent to the lane number mod NumLanes, walked in slot
// order. Two properties make lanes the unit of deterministic intra-run
// parallelism:
//
//  1. Stable assignment. A peer's lane is a pure function of its slab
//     slot, and slots are assigned deterministically (LIFO free-list,
//     then high-water growth), so the lane partition is identical across
//     runs and unchanged by how many workers process it. Striding by
//     *page* rather than by slot keeps each lane's memory contiguous in
//     page-sized chunks — the walk stays cache-friendly.
//
//  2. Worker-count independence. NumLanes is a constant, never derived
//     from GOMAXPROCS or a -shards flag. Consumers give each lane its own
//     RNG stream and result buffer and merge in (lane, slot) order, so a
//     64-worker run and a serial run produce byte-identical output.
//
// NumLanes bounds the parallelism any single run can exploit (64 covers
// every machine this simulator plausibly meets) while keeping the
// per-tick fixed overhead — 64 buffer resets — negligible.
//
// The constant is the engine's: since the event plane sharded, a lane is
// also the unit of event-queue placement (sim.ScheduleLane), and the two
// partitions must be the same partition — a peer's timers and message
// deliveries wait on the queue of the lane that owns the peer.
const NumLanes = sim.NumLanes

// LaneOf returns the event-plane lane that owns p: the lane of its slab
// page. Peer-targeted events (message delivery, per-peer timers) are
// scheduled onto this lane so same-timestamp firings can fan out with the
// same partition the tick walk shards over.
func (n *Network) LaneOf(p *Peer) int {
	return int(p.slot>>pageShift) % NumLanes
}

// Slot returns p's slab slot index. Slot order is the deterministic
// population-walk order (WalkPeers, WalkLane merge), exposed so external
// schedulers — the manager's refresh calendar — can process peer sets in
// exactly that order.
func (p *Peer) Slot() int32 { return p.slot }

// walkLane calls fn for every live peer in the lane, in slot order.
func (st *peerStore) walkLane(lane int, fn func(*Peer)) {
	for pi := lane; pi < len(st.pages); pi += NumLanes {
		pg := st.pages[pi]
		limit := pageSize
		if base := int32(pi) << pageShift; st.next-base < pageSize {
			limit = int(st.next - base)
		}
		for s := 0; s < limit; s++ {
			if p := &pg[s]; p.alive {
				fn(p)
			}
		}
	}
}

// WalkLane calls fn for every live peer whose slab page belongs to the
// lane (page index ≡ lane mod NumLanes), in slot order. Lane membership
// is a deterministic function of the join/leave history, so per-lane
// iteration order is reproducible; fn must not mutate membership.
func (n *Network) WalkLane(lane int, fn func(*Peer)) { n.store.walkLane(lane, fn) }

// WalkPeers calls fn for every live peer in slot order — the serial
// full-population walk, dense in memory where the ID-indexed layer-set
// walks are not. fn must not mutate membership.
func (n *Network) WalkPeers(fn func(*Peer)) {
	st := &n.store
	for pi := range st.pages {
		pg := st.pages[pi]
		limit := pageSize
		if base := int32(pi) << pageShift; st.next-base < pageSize {
			limit = int(st.next - base)
		}
		for s := 0; s < limit; s++ {
			if p := &pg[s]; p.alive {
				fn(p)
			}
		}
	}
}

// scanAggregatesSharded recomputes the aggregate sums with a lane-parallel
// walk: one private accumulator per lane, merged in lane order after the
// fan-out joins. It is the sharded counterpart of scanAggregates and the
// oracle's oracle — the differential test checks maintained aggregates,
// this scan, and the serial scan against each other. The float sums see a
// different association order than the serial scan (per-lane partials),
// so they agree to aggEq tolerance, not bit-exactly; the integer degree
// sums must match exactly.
func (n *Network) scanAggregatesSharded(workers int) aggregates {
	var parts [NumLanes]aggregates
	sim.ForLanes(workers, NumLanes, func(lane int) {
		a := &parts[lane]
		n.store.walkLane(lane, func(p *Peer) {
			if p.Layer == LayerSuper {
				a.sumJoinSuper += float64(p.JoinTime)
				a.sumCapSuper += p.Capacity
				a.leafDegSupers += int64(p.LeafDegree())
				a.superDegSupers += int64(p.SuperDegree())
			} else {
				a.sumJoinLeaf += float64(p.JoinTime)
				a.sumCapLeaf += p.Capacity
				a.superDegLeaves += int64(p.SuperDegree())
			}
		})
	})
	var total aggregates
	for i := range parts {
		total.merge(&parts[i])
	}
	return total
}
