// Package overlay implements the super-peer overlay network substrate:
// peers split into a super-layer and a leaf-layer, connection management,
// join/leave churn, bootstrap, and the promotion/demotion surgery whose
// cost the paper quantifies as Peer Adjustment Overhead (PAO).
//
// The overlay is policy-free: *which* peers change layer and *when* is
// decided by a Manager (internal/core implements DLM; internal/baseline
// implements the preconfigured-threshold and other reference policies).
package overlay

import (
	"fmt"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

// Layer identifies which of the two layers a peer currently occupies.
type Layer uint8

// The two layers of a super-peer architecture.
const (
	LayerLeaf Layer = iota
	LayerSuper
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerLeaf:
		return "leaf"
	case LayerSuper:
		return "super"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Peer is one overlay participant.
type Peer struct {
	ID msg.PeerID

	// Capacity abstracts query-processing ability; the paper instantiates
	// it with bandwidth. It is fixed for the peer's whole session.
	Capacity float64
	// Lifetime is the scheduled session length; the peer leaves when its
	// age reaches it. Only the simulator knows it — protocol code must use
	// Age, mirroring the paper's "no means to know the lifetime".
	Lifetime float64
	// JoinTime is when the peer entered the network.
	JoinTime sim.Time

	// Layer is the current layer.
	Layer Layer

	// Objects is the peer's shared content.
	Objects []msg.ObjectID

	// superLinks holds connections to super-peers: for a leaf these are
	// its m redundant super connections; for a super its super-layer
	// neighbors. leafLinks holds a super's leaf neighbors and is empty
	// for leaves.
	superLinks idSet
	leafLinks  idSet

	// State is per-peer storage owned by the Manager (DLM keeps its
	// related set, scale parameters and counters here).
	State any

	alive bool
}

// Age returns the peer's age at virtual time now (paper Definition 2).
func (p *Peer) Age(now sim.Time) float64 { return float64(now - p.JoinTime) }

// Alive reports whether the peer is still in the network.
func (p *Peer) Alive() bool { return p.alive }

// SuperDegree returns the number of super-peer links.
func (p *Peer) SuperDegree() int { return p.superLinks.Len() }

// LeafDegree returns l_nn, the number of leaf neighbors (always 0 for a
// leaf peer).
func (p *Peer) LeafDegree() int { return p.leafLinks.Len() }

// SuperLinks returns the IDs of the peer's super-layer neighbors in
// deterministic (insertion, swap-remove) order. The slice is shared;
// callers must not mutate it.
func (p *Peer) SuperLinks() []msg.PeerID { return p.superLinks.items }

// LeafLinks returns the IDs of the peer's leaf neighbors. The slice is
// shared; callers must not mutate it.
func (p *Peer) LeafLinks() []msg.PeerID { return p.leafLinks.items }

// HasLink reports whether the peer has a link (of either type) to id.
func (p *Peer) HasLink(id msg.PeerID) bool {
	return p.superLinks.Contains(id) || p.leafLinks.Contains(id)
}

// idSet is a set of peer IDs with O(1) insert, delete, membership, and
// random choice, plus deterministic iteration order. Deletion swaps with
// the last element, so order is a function of the operation history only —
// which keeps whole simulations reproducible.
type idSet struct {
	items []msg.PeerID
	index map[msg.PeerID]int
}

// Len returns the set size.
func (s *idSet) Len() int { return len(s.items) }

// Contains reports membership.
func (s *idSet) Contains(id msg.PeerID) bool {
	_, ok := s.index[id]
	return ok
}

// Add inserts id; it reports whether the id was newly added.
func (s *idSet) Add(id msg.PeerID) bool {
	if s.index == nil {
		s.index = make(map[msg.PeerID]int)
	}
	if _, ok := s.index[id]; ok {
		return false
	}
	s.index[id] = len(s.items)
	s.items = append(s.items, id)
	return true
}

// Remove deletes id; it reports whether the id was present.
func (s *idSet) Remove(id msg.PeerID) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	last := len(s.items) - 1
	if i != last {
		moved := s.items[last]
		s.items[i] = moved
		s.index[moved] = i
	}
	s.items = s.items[:last]
	delete(s.index, id)
	return true
}

// Random returns a uniformly random member; ok is false when empty.
func (s *idSet) Random(r *sim.Source) (msg.PeerID, bool) {
	if len(s.items) == 0 {
		return msg.NoPeer, false
	}
	return s.items[r.Intn(len(s.items))], true
}

// Clone returns a copy of the member slice.
func (s *idSet) Clone() []msg.PeerID {
	return append([]msg.PeerID(nil), s.items...)
}
