// Package overlay implements the super-peer overlay network substrate:
// peers split into a super-layer and a leaf-layer, connection management,
// join/leave churn, bootstrap, and the promotion/demotion surgery whose
// cost the paper quantifies as Peer Adjustment Overhead (PAO).
//
// The overlay is policy-free: *which* peers change layer and *when* is
// decided by a Manager (internal/core implements DLM; internal/baseline
// implements the preconfigured-threshold and other reference policies).
package overlay

import (
	"fmt"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

// Layer identifies which of the two layers a peer currently occupies.
type Layer uint8

// The two layers of a super-peer architecture.
const (
	LayerLeaf Layer = iota
	LayerSuper
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerLeaf:
		return "leaf"
	case LayerSuper:
		return "super"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Peer is one overlay participant. Peers live in the network's slab store
// (see store.go): the struct is recycled when a departed peer's slot is
// reused, so a *Peer must not be dereferenced after Leave except through
// the Alive check.
type Peer struct {
	ID msg.PeerID

	// Capacity abstracts query-processing ability; the paper instantiates
	// it with bandwidth. It is fixed for the peer's whole session.
	Capacity float64
	// Lifetime is the scheduled session length; the peer leaves when its
	// age reaches it. Only the simulator knows it — protocol code must use
	// Age, mirroring the paper's "no means to know the lifetime".
	Lifetime float64
	// JoinTime is when the peer entered the network.
	JoinTime sim.Time

	// Layer is the current layer.
	Layer Layer

	// Objects is the peer's shared content.
	Objects []msg.ObjectID

	// superLinks holds connections to super-peers: for a leaf these are
	// its m redundant super connections; for a super its super-layer
	// neighbors. leafLinks holds a super's leaf neighbors and is empty
	// for leaves.
	superLinks linkSet
	leafLinks  linkSet

	// State is per-peer storage owned by the Manager (DLM keeps its
	// related set, scale parameters and counters here). It survives slot
	// recycling so managers can reuse their allocations; a manager that
	// stores state must therefore re-initialize it when a peer joins
	// (core does this in InitialLayer).
	State any

	// slot is the peer's index in the slab store; layerPos is its index
	// in the layer membership slice (swap-delete bookkeeping).
	slot     int32
	layerPos int32

	alive bool
}

// Age returns the peer's age at virtual time now (paper Definition 2).
func (p *Peer) Age(now sim.Time) float64 { return float64(now - p.JoinTime) }

// Alive reports whether the peer is still in the network.
func (p *Peer) Alive() bool { return p.alive }

// SuperDegree returns the number of super-peer links.
func (p *Peer) SuperDegree() int { return p.superLinks.Len() }

// LeafDegree returns l_nn, the number of leaf neighbors (always 0 for a
// leaf peer).
func (p *Peer) LeafDegree() int { return p.leafLinks.Len() }

// SuperLinks returns the IDs of the peer's super-layer neighbors in
// deterministic (insertion, swap-remove) order. The slice is shared;
// callers must not mutate it.
func (p *Peer) SuperLinks() []msg.PeerID { return p.superLinks.items }

// LeafLinks returns the IDs of the peer's leaf neighbors. The slice is
// shared; callers must not mutate it.
func (p *Peer) LeafLinks() []msg.PeerID { return p.leafLinks.items }

// HasLink reports whether the peer has a link (of either type) to id.
func (p *Peer) HasLink(id msg.PeerID) bool {
	return p.superLinks.Contains(id) || p.leafLinks.Contains(id)
}

// linkSet is a small set of peer IDs backed by a plain slice. Overlay
// degrees are bounded (m for leaves, k_s + k_l for supers), so a linear
// scan beats a map at every realistic size while costing zero allocations
// beyond the slice itself — and the backing array survives peer-slot
// recycling. Deletion swaps with the last element, so iteration order is
// a function of the operation history only, exactly like the map-backed
// set it replaced — which keeps whole simulations reproducible.
type linkSet struct {
	items []msg.PeerID
}

// Len returns the set size.
func (s *linkSet) Len() int { return len(s.items) }

// Contains reports membership.
func (s *linkSet) Contains(id msg.PeerID) bool {
	for _, v := range s.items {
		if v == id {
			return true
		}
	}
	return false
}

// Add inserts id; it reports whether the id was newly added.
func (s *linkSet) Add(id msg.PeerID) bool {
	if s.Contains(id) {
		return false
	}
	s.items = append(s.items, id)
	return true
}

// Remove deletes id; it reports whether the id was present.
func (s *linkSet) Remove(id msg.PeerID) bool {
	for i, v := range s.items {
		if v == id {
			last := len(s.items) - 1
			s.items[i] = s.items[last]
			s.items = s.items[:last]
			return true
		}
	}
	return false
}

// add appends id without the membership scan — for callers that have
// already established absence (Connect checks HasLink before linking
// either side; the symmetry invariant makes one check cover both).
func (s *linkSet) add(id msg.PeerID) { s.items = append(s.items, id) }

// Clear empties the set in place, keeping the backing array.
func (s *linkSet) Clear() { s.items = s.items[:0] }
