// Package overlay implements the super-peer overlay network substrate:
// peers split into a super-layer and a leaf-layer, connection management,
// join/leave churn, bootstrap, and the promotion/demotion surgery whose
// cost the paper quantifies as Peer Adjustment Overhead (PAO).
//
// The overlay is policy-free: *which* peers change layer and *when* is
// decided by a Manager (internal/core implements DLM; internal/baseline
// implements the preconfigured-threshold and other reference policies).
package overlay

import (
	"fmt"

	"dlm/internal/flatidx"
	"dlm/internal/msg"
	"dlm/internal/sim"
)

// Layer identifies which of the two layers a peer currently occupies.
type Layer uint8

// The two layers of a super-peer architecture.
const (
	LayerLeaf Layer = iota
	LayerSuper
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerLeaf:
		return "leaf"
	case LayerSuper:
		return "super"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Peer is one overlay participant. Peers live in the network's slab store
// (see store.go): the struct is recycled when a departed peer's slot is
// reused, so a *Peer must not be dereferenced after Leave except through
// the Alive check.
type Peer struct {
	ID msg.PeerID

	// Capacity abstracts query-processing ability; the paper instantiates
	// it with bandwidth. It is fixed for the peer's whole session.
	Capacity float64
	// Lifetime is the scheduled session length; the peer leaves when its
	// age reaches it. Only the simulator knows it — protocol code must use
	// Age, mirroring the paper's "no means to know the lifetime".
	Lifetime float64
	// JoinTime is when the peer entered the network.
	JoinTime sim.Time

	// Layer is the current layer.
	Layer Layer

	// Objects is the peer's shared content.
	Objects []msg.ObjectID

	// MisreportCapFactor and MisreportAgeBoost make the peer a liar in the
	// adversarial scenarios (internal/scenario): a non-zero factor
	// multiplies the capacity the peer *claims* in protocol messages and
	// its own promotion evaluations, and the boost inflates its claimed
	// age — while the true Capacity and Age keep feeding the overlay
	// aggregates, so the layer-quality damage the lie causes stays
	// measurable. Zero values (the default) mean an honest peer and leave
	// every reported value bit-identical to the true one.
	MisreportCapFactor float64
	MisreportAgeBoost  float64

	// superLinks holds connections to super-peers: for a leaf these are
	// its m redundant super connections; for a super its super-layer
	// neighbors. leafLinks holds a super's leaf neighbors and is empty
	// for leaves.
	superLinks linkSet
	leafLinks  linkSet

	// State is per-peer storage owned by the Manager (DLM keeps its
	// related set, scale parameters and counters here). It survives slot
	// recycling so managers can reuse their allocations; a manager that
	// stores state must therefore re-initialize it when a peer joins
	// (core does this in InitialLayer).
	State any

	// slot is the peer's index in the slab store; layerPos is its index
	// in the layer membership slice (swap-delete bookkeeping), and
	// deficitPos its index in the network's repair deficit set (-1 when
	// not deficient).
	slot       int32
	layerPos   int32
	deficitPos int32

	alive bool
}

// Age returns the peer's age at virtual time now (paper Definition 2).
func (p *Peer) Age(now sim.Time) float64 { return float64(now - p.JoinTime) }

// ReportedCapacity returns the capacity the peer claims to others: the
// true capacity for an honest peer, inflated for a liar.
func (p *Peer) ReportedCapacity() float64 {
	if p.MisreportCapFactor > 0 {
		return p.Capacity * p.MisreportCapFactor
	}
	return p.Capacity
}

// ReportedAge returns the age the peer claims at time now; the boost is
// zero for an honest peer, making this exactly Age.
func (p *Peer) ReportedAge(now sim.Time) float64 {
	return p.Age(now) + p.MisreportAgeBoost
}

// Liar reports whether the peer misreports either metric.
func (p *Peer) Liar() bool { return p.MisreportCapFactor > 0 || p.MisreportAgeBoost > 0 }

// Alive reports whether the peer is still in the network.
func (p *Peer) Alive() bool { return p.alive }

// SuperDegree returns the number of super-peer links.
func (p *Peer) SuperDegree() int { return p.superLinks.Len() }

// LeafDegree returns l_nn, the number of leaf neighbors (always 0 for a
// leaf peer).
func (p *Peer) LeafDegree() int { return p.leafLinks.Len() }

// SuperLinks returns the IDs of the peer's super-layer neighbors in
// deterministic (insertion, swap-remove) order. The slice is shared;
// callers must not mutate it.
func (p *Peer) SuperLinks() []msg.PeerID { return p.superLinks.items }

// LeafLinks returns the IDs of the peer's leaf neighbors. The slice is
// shared; callers must not mutate it.
func (p *Peer) LeafLinks() []msg.PeerID { return p.leafLinks.items }

// HasLink reports whether the peer has a link (of either type) to id.
func (p *Peer) HasLink(id msg.PeerID) bool {
	return p.superLinks.Contains(id) || p.leafLinks.Contains(id)
}

// linkSet is a set of peer IDs backed by a plain slice. Typical overlay
// degrees are small (m for leaves, k_s for a super's super links), and at
// those sizes a linear scan over dense memory beats a map probe while
// costing zero allocations beyond the slice itself — and the backing
// array survives peer-slot recycling. But a super's leaf degree is
// unbounded, and million-peer bootstrap concentrates enormous leaf sets
// on the earliest supers; once a set grows past linkIndexThreshold it
// builds a position index and Contains/Remove become O(1). The index is
// pure acceleration: iteration order stays the slice's
// (insertion, swap-remove) order — a function of the operation history
// only — and Remove deletes the same element the scan would, so indexed
// and scanned sets behave byte-identically. It's a flatidx.Map rather
// than a runtime map: link maintenance is the hottest loop of the
// million-peer runs, and the flat table roughly halves its probe cost.
type linkSet struct {
	items []msg.PeerID
	idx   *flatidx.Map
}

// linkIndexThreshold is the set size past which the position index is
// built; below it the scan wins (and allocates nothing).
const linkIndexThreshold = 32

// Len returns the set size.
func (s *linkSet) Len() int { return len(s.items) }

// Contains reports membership.
func (s *linkSet) Contains(id msg.PeerID) bool {
	if s.idx != nil {
		_, ok := s.idx.Get(uint32(id))
		return ok
	}
	for _, v := range s.items {
		if v == id {
			return true
		}
	}
	return false
}

// Add inserts id; it reports whether the id was newly added.
func (s *linkSet) Add(id msg.PeerID) bool {
	if s.Contains(id) {
		return false
	}
	s.add(id)
	return true
}

// Remove deletes id; it reports whether the id was present.
func (s *linkSet) Remove(id msg.PeerID) bool {
	i := -1
	if s.idx != nil {
		p, ok := s.idx.Get(uint32(id))
		if !ok {
			return false
		}
		i = int(p)
	} else {
		for j, v := range s.items {
			if v == id {
				i = j
				break
			}
		}
		if i < 0 {
			return false
		}
	}
	last := len(s.items) - 1
	moved := s.items[last]
	s.items[i] = moved
	s.items = s.items[:last]
	if s.idx != nil {
		s.idx.Delete(uint32(id))
		if i < last {
			s.idx.Put(uint32(moved), int32(i))
		}
	}
	return true
}

// add appends id without the membership scan — for callers that have
// already established absence (Connect checks HasLink before linking
// either side; the symmetry invariant makes one check cover both).
func (s *linkSet) add(id msg.PeerID) {
	s.items = append(s.items, id)
	if s.idx != nil {
		s.idx.Put(uint32(id), int32(len(s.items)-1))
	} else if len(s.items) > linkIndexThreshold {
		s.idx = new(flatidx.Map)
		for i, v := range s.items {
			s.idx.Put(uint32(v), int32(i))
		}
	}
}

// Clear empties the set in place, keeping the backing array (and the
// index's buckets, for slot recycling).
func (s *linkSet) Clear() {
	s.items = s.items[:0]
	if s.idx != nil {
		s.idx.Clear()
	}
}

// checkIdx verifies the position index against the slice; it returns a
// description of the first inconsistency, or "". Part of the
// CheckInvariants oracle.
func (s *linkSet) checkIdx() string {
	if s.idx == nil {
		return ""
	}
	if s.idx.Len() != len(s.items) {
		return fmt.Sprintf("index holds %d ids, slice %d", s.idx.Len(), len(s.items))
	}
	for i, v := range s.items {
		if p, ok := s.idx.Get(uint32(v)); !ok || int(p) != i {
			return fmt.Sprintf("id %d at slice position %d, index disagrees", v, i)
		}
	}
	return ""
}
