package overlay

import (
	"testing"
	"testing/quick"

	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

type listAssigner struct{ next msg.ObjectID }

func (a *listAssigner) AssignObjects(count int, _ *sim.Source) []msg.ObjectID {
	out := make([]msg.ObjectID, count)
	for i := range out {
		a.next++
		out[i] = a.next
	}
	return out
}

func TestChurnGrowsToTargetAndHolds(t *testing.T) {
	eng := sim.NewEngine(7)
	n := New(eng, testConfig(), nil)
	profile := &workload.StaticProfile{
		Capacity:       workload.Uniform{Lo: 1, Hi: 100},
		Lifetime:       workload.Exponential{MeanVal: 30},
		ObjectsPerPeer: workload.Constant(3),
	}
	c := &Churn{
		Net:        n,
		Profile:    profile,
		TargetSize: 200,
		GrowthRate: 50,
		Catalog:    &listAssigner{},
	}
	c.Start()
	if err := eng.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 200 {
		t.Fatalf("size after growth = %d, want 200", n.Size())
	}
	// Steady state: population constant, but churn continues.
	leavesBefore := n.Counters().Leaves
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 200 {
		t.Fatalf("steady-state size = %d, want 200", n.Size())
	}
	if n.Counters().Leaves == leavesBefore {
		t.Fatal("no churn occurred in 96 time units with mean lifetime 30")
	}
	if n.Counters().Joins != n.Counters().Leaves+200 {
		t.Fatalf("join/leave bookkeeping: %d joins, %d leaves",
			n.Counters().Joins, n.Counters().Leaves)
	}
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad[:min(len(bad), 5)])
	}
	// Peers carry objects.
	found := false
	for _, id := range n.LeafIDs() {
		if len(n.Peer(id).Objects) == 3 {
			found = true
			break
		}
	}
	if !found && n.NumLeaves() > 0 {
		t.Fatal("no leaf carries assigned objects")
	}
}

func TestChurnPanicsOnBadParams(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig(), nil)
	p := &workload.StaticProfile{Capacity: workload.Constant(1), Lifetime: workload.Constant(1)}
	for name, c := range map[string]*Churn{
		"size": {Net: n, Profile: p, TargetSize: 0, GrowthRate: 1},
		"rate": {Net: n, Profile: p, TargetSize: 1, GrowthRate: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			c.Start()
		}()
	}
}

func TestChurnDeterminism(t *testing.T) {
	run := func() (int, uint64, uint64) {
		eng := sim.NewEngine(123)
		n := New(eng, testConfig(), nil)
		c := &Churn{
			Net: n,
			Profile: &workload.StaticProfile{
				Capacity: workload.Uniform{Lo: 1, Hi: 100},
				Lifetime: workload.Exponential{MeanVal: 20},
			},
			TargetSize: 100,
			GrowthRate: 25,
		}
		c.Start()
		if err := eng.RunUntil(50); err != nil {
			t.Fatal(err)
		}
		cnt := n.Counters()
		tr := n.Traffic()
		return n.NumSupers(), cnt.Joins, tr.TotalMessages()
	}
	s1, j1, m1 := run()
	s2, j2, m2 := run()
	if s1 != s2 || j1 != j2 || m1 != m2 {
		t.Fatalf("runs diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, j1, m1, s2, j2, m2)
	}
}

// Property: under arbitrary short churn schedules the structural
// invariants hold and leaf super-degrees never exceed M after repair.
func TestChurnInvariantProperty(t *testing.T) {
	f := func(seed int64, sizeRaw, lifeRaw uint8) bool {
		size := 20 + int(sizeRaw)%80
		life := 5 + float64(lifeRaw%20)
		eng := sim.NewEngine(seed)
		n := New(eng, testConfig(), nil)
		c := &Churn{
			Net: n,
			Profile: &workload.StaticProfile{
				Capacity: workload.Uniform{Lo: 1, Hi: 10},
				Lifetime: workload.Exponential{MeanVal: life},
			},
			TargetSize: size,
			GrowthRate: 10,
		}
		c.Start()
		eng.Ticker(1, func(e *sim.Engine) bool {
			n.Repair()
			return e.Now() < 30
		})
		if err := eng.RunUntil(30); err != nil {
			return false
		}
		if len(n.CheckInvariants()) > 0 {
			return false
		}
		for _, id := range n.LeafIDs() {
			if n.Peer(id).SuperDegree() > n.Config().M {
				return false
			}
		}
		return n.Size() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
