package overlay

import (
	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// Churn drives the population process of the paper's simulations: the
// network starts cold, grows to a target size as peers arrive, and then
// holds its size constant — "whenever a peer dies, a new peer is created
// and joins the network".
type Churn struct {
	Net     *Network
	Profile workload.Profile
	// TargetSize is the steady-state population n.
	TargetSize int
	// GrowthRate is the number of joins per time unit during the cold
	// start (spread uniformly within each unit).
	GrowthRate int
	// Catalog assigns shared objects to joining peers; nil disables
	// content assignment.
	Catalog ObjectAssigner

	rng *sim.Source
	// pool recycles churnEvents whose lineage ended (a peer removed
	// out-of-band, e.g. by a failure experiment, triggers no replacement,
	// so its event retires here for the next external join).
	pool []*churnEvent
}

// churnEvent is one lineage's reusable event carrier: it fires first as
// the initial join, then alternates death -> replacement join forever,
// so steady-state churn schedules zero allocations. Deaths are keyed by
// PeerID, not *Peer: peer structs live in the network's recycling slab
// store, and an ID is never reused, so a stale death (the peer was
// already removed out-of-band) resolves to nil instead of to the slot's
// next tenant.
type churnEvent struct {
	c *Churn
	// id is NoPeer for a join event, or the peer whose death this is.
	id msg.PeerID
}

// Fire implements sim.Event.
func (ev *churnEvent) Fire(*sim.Engine) {
	c := ev.c
	if ev.id == msg.NoPeer {
		c.joinOne(ev)
		return
	}
	p := c.Net.Peer(ev.id)
	if p == nil || !p.Alive() {
		// Removed out-of-band; no replacement (matching the historical
		// "dead peers don't respawn twice" behavior).
		ev.id = msg.NoPeer
		c.pool = append(c.pool, ev)
		return
	}
	c.Net.Leave(p)
	c.joinOne(ev) // one-for-one replacement
}

func (c *Churn) getEvent() *churnEvent {
	if n := len(c.pool); n > 0 {
		ev := c.pool[n-1]
		c.pool = c.pool[:n-1]
		return ev
	}
	return &churnEvent{c: c}
}

// ObjectAssigner draws the object IDs a joining peer shares.
type ObjectAssigner interface {
	AssignObjects(count int, r *sim.Source) []msg.ObjectID
}

// Start schedules the growth phase and the death/replacement loop on the
// network's engine. It panics on a non-positive target size or growth
// rate (construction bugs).
func (c *Churn) Start() {
	if c.TargetSize <= 0 {
		panic("overlay: churn with non-positive target size")
	}
	if c.GrowthRate <= 0 {
		panic("overlay: churn with non-positive growth rate")
	}
	c.rng = c.Net.Engine().Rand().Stream("churn")
	eng := c.Net.Engine()

	remaining := c.TargetSize
	unit := sim.Time(0)
	for remaining > 0 {
		batch := c.GrowthRate
		if batch > remaining {
			batch = remaining
		}
		for i := 0; i < batch; i++ {
			at := unit + sim.Time(float64(i)/float64(batch))
			eng.Schedule(at, c.getEvent())
		}
		remaining -= batch
		unit++
	}
}

// joinOne admits a freshly drawn peer and schedules its death on the
// lineage's event carrier, which in turn schedules a replacement join —
// keeping the population constant after the growth phase.
func (c *Churn) joinOne(ev *churnEvent) {
	eng := c.Net.Engine()
	sample := c.Profile.NewPeer(eng.Now(), c.rng)
	var objects []msg.ObjectID
	if c.Catalog != nil && sample.Objects > 0 {
		objects = c.Catalog.AssignObjects(sample.Objects, c.rng)
	}
	p := c.Net.Join(sample.Capacity, sample.Lifetime, objects)
	life := sim.Duration(sample.Lifetime)
	if life <= 0 {
		life = 1e-3
	}
	if ev == nil {
		ev = c.getEvent()
	}
	ev.id = p.ID
	// The death timer is a peer-targeted event: it waits on the lane that
	// owns the new peer's slab page. Firing order is engine-global (the
	// insertion sequence is shared across lanes), so routing changes only
	// which queue carries the timer. Churn events never batch — Leave and
	// the replacement Join draw from shared streams and mutate cross-peer
	// structure — they just keep the per-lane queues shallow.
	eng.AfterLane(c.Net.LaneOf(p), life, ev)
}
