package overlay

import (
	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// Churn drives the population process of the paper's simulations: the
// network starts cold, grows to a target size as peers arrive, and then
// holds its size constant — "whenever a peer dies, a new peer is created
// and joins the network".
type Churn struct {
	Net     *Network
	Profile workload.Profile
	// TargetSize is the steady-state population n.
	TargetSize int
	// GrowthRate is the number of joins per time unit during the cold
	// start (spread uniformly within each unit).
	GrowthRate int
	// Catalog assigns shared objects to joining peers; nil disables
	// content assignment.
	Catalog ObjectAssigner

	rng *sim.Source
}

// ObjectAssigner draws the object IDs a joining peer shares.
type ObjectAssigner interface {
	AssignObjects(count int, r *sim.Source) []msg.ObjectID
}

// Start schedules the growth phase and the death/replacement loop on the
// network's engine. It panics on a non-positive target size or growth
// rate (construction bugs).
func (c *Churn) Start() {
	if c.TargetSize <= 0 {
		panic("overlay: churn with non-positive target size")
	}
	if c.GrowthRate <= 0 {
		panic("overlay: churn with non-positive growth rate")
	}
	c.rng = c.Net.Engine().Rand().Stream("churn")
	eng := c.Net.Engine()

	remaining := c.TargetSize
	unit := sim.Time(0)
	for remaining > 0 {
		batch := c.GrowthRate
		if batch > remaining {
			batch = remaining
		}
		for i := 0; i < batch; i++ {
			at := unit + sim.Time(float64(i)/float64(batch))
			eng.Schedule(at, sim.EventFunc(func(e *sim.Engine) { c.joinOne() }))
		}
		remaining -= batch
		unit++
	}
}

// joinOne admits a freshly drawn peer and schedules its death, which in
// turn schedules a replacement join — keeping the population constant
// after the growth phase.
func (c *Churn) joinOne() {
	eng := c.Net.Engine()
	sample := c.Profile.NewPeer(eng.Now(), c.rng)
	var objects []msg.ObjectID
	if c.Catalog != nil && sample.Objects > 0 {
		objects = c.Catalog.AssignObjects(sample.Objects, c.rng)
	}
	p := c.Net.Join(sample.Capacity, sample.Lifetime, objects)
	life := sim.Duration(sample.Lifetime)
	if life <= 0 {
		life = 1e-3
	}
	eng.After(life, sim.EventFunc(func(e *sim.Engine) {
		if p.Alive() {
			c.Net.Leave(p)
			c.joinOne() // one-for-one replacement
		}
	}))
}
