package overlay

import (
	"testing"

	"dlm/internal/sim"
	"dlm/internal/workload"
)

// benchNetwork builds a steady network of the given size for hot-path
// benchmarks.
func benchNetwork(b *testing.B, size int) *Network {
	b.Helper()
	eng := sim.NewEngine(1)
	n := New(eng, Config{M: 2, KS: 3, Eta: 20}, nil)
	c := &Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.Uniform{Lo: 1, Hi: 100},
			Lifetime: workload.Constant(1e9),
		},
		TargetSize: size,
		GrowthRate: size,
	}
	c.Start()
	if err := eng.RunUntil(2); err != nil {
		b.Fatal(err)
	}
	// Promote ~size/21 peers for a realistic layer split.
	for i := 0; n.NumSupers() < size/21; i++ {
		n.Promote(n.Peer(n.LeafIDs()[0]))
	}
	return n
}

func BenchmarkJoinLeave(b *testing.B) {
	n := benchNetwork(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.Join(50, 1e9, nil)
		n.Leave(p)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	n := benchNetwork(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Snapshot()
	}
}

func BenchmarkRepair(b *testing.B) {
	n := benchNetwork(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Repair()
	}
}

func BenchmarkPromoteDemote(b *testing.B) {
	n := benchNetwork(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.Peer(n.LeafIDs()[0])
		n.Promote(p)
		n.Demote(p)
	}
}

func BenchmarkTopology(b *testing.B) {
	n := benchNetwork(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Topology(4)
	}
}
