package overlay

// aggregates is the incremental accounting behind O(1) layer statistics.
// Every join/leave/promote/demote and every link mutation updates these
// sums in place, so a metrics sample never scans the population — the
// cost that made million-peer runs infeasible when Snapshot was a full
// pass.
//
// Age aggregates are kept as sums of birth times: the layer's mean age at
// time t is t − sumJoin/count, exact at any sample instant without
// touching a peer. Degree sums are integers and therefore exact; the
// float sums accumulate one rounding per mutation, which the differential
// oracle test bounds against a brute-force scan.
//
// Invariants (checked by CheckInvariants):
//
//	sumJoinSuper  = Σ JoinTime    over supers     (resp. leaves)
//	sumCapSuper   = Σ Capacity    over supers     (resp. leaves)
//	leafDegSupers = Σ LeafDegree  over supers
//	superDegSupers= Σ SuperDegree over supers
//	superDegLeaves= Σ SuperDegree over leaves
//
// During demotion surgery a peer is briefly a leaf that still owns leaf
// links; the accounting classifies every mutation by the peer's *current*
// layer, and the layer flip transfers the peer's whole contribution, so
// the transient never corrupts the sums (leaf-side leaf-degree is not
// tracked — it is zero whenever it is observable).
type aggregates struct {
	sumJoinSuper float64
	sumJoinLeaf  float64
	sumCapSuper  float64
	sumCapLeaf   float64

	leafDegSupers  int64
	superDegSupers int64
	superDegLeaves int64
}

// enroll adds p's scalar endowment to its current layer.
func (a *aggregates) enroll(p *Peer) {
	if p.Layer == LayerSuper {
		a.sumJoinSuper += float64(p.JoinTime)
		a.sumCapSuper += p.Capacity
	} else {
		a.sumJoinLeaf += float64(p.JoinTime)
		a.sumCapLeaf += p.Capacity
	}
}

// withdraw removes p's scalar endowment from its current layer.
func (a *aggregates) withdraw(p *Peer) {
	if p.Layer == LayerSuper {
		a.sumJoinSuper -= float64(p.JoinTime)
		a.sumCapSuper -= p.Capacity
	} else {
		a.sumJoinLeaf -= float64(p.JoinTime)
		a.sumCapLeaf -= p.Capacity
	}
}

// transfer moves p's whole contribution (scalars and current degrees)
// from layer old to p.Layer. It must run at the instant the layer flips,
// before any link surgery for the transition.
func (a *aggregates) transfer(p *Peer, old Layer) {
	superDeg := int64(p.SuperDegree())
	leafDeg := int64(p.LeafDegree())
	if old == LayerSuper {
		a.sumJoinSuper -= float64(p.JoinTime)
		a.sumCapSuper -= p.Capacity
		a.superDegSupers -= superDeg
		a.leafDegSupers -= leafDeg
	} else {
		a.sumJoinLeaf -= float64(p.JoinTime)
		a.sumCapLeaf -= p.Capacity
		a.superDegLeaves -= superDeg
	}
	if p.Layer == LayerSuper {
		a.sumJoinSuper += float64(p.JoinTime)
		a.sumCapSuper += p.Capacity
		a.superDegSupers += superDeg
		a.leafDegSupers += leafDeg
	} else {
		a.sumJoinLeaf += float64(p.JoinTime)
		a.sumCapLeaf += p.Capacity
		a.superDegLeaves += superDeg
	}
}

// merge folds another accumulator into a — used by the lane-parallel
// rescan, which sums one private aggregates per lane and merges them in
// lane order (a fixed association order, so the result is deterministic).
func (a *aggregates) merge(b *aggregates) {
	a.sumJoinSuper += b.sumJoinSuper
	a.sumJoinLeaf += b.sumJoinLeaf
	a.sumCapSuper += b.sumCapSuper
	a.sumCapLeaf += b.sumCapLeaf
	a.leafDegSupers += b.leafDegSupers
	a.superDegSupers += b.superDegSupers
	a.superDegLeaves += b.superDegLeaves
}

// superLinkDelta accounts a ±1 change of p's super-link degree.
func (a *aggregates) superLinkDelta(p *Peer, d int64) {
	if p.Layer == LayerSuper {
		a.superDegSupers += d
	} else {
		a.superDegLeaves += d
	}
}

// leafLinkDelta accounts a ±1 change of p's leaf-link degree. Leaf-side
// leaf links exist only transiently inside demotion surgery and are
// untracked (see the type comment), so only supers contribute.
func (a *aggregates) leafLinkDelta(p *Peer, d int64) {
	if p.Layer == LayerSuper {
		a.leafDegSupers += d
	}
}
