package overlay

import (
	"testing"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

// TestDeliverPoolCapped pins satellite #1 on the overlay side: the
// per-lane delivery-event pools stop growing at maxDeliverPool, so a
// burst of in-flight messages does not pin its peak carrier count for
// the network's whole lifetime.
func TestDeliverPoolCapped(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{M: 2, KS: 3, Eta: 10, Latency: 0.5}, nil)

	// Direct pool exercise: more carriers in flight than the cap admits
	// back.
	const burst = 4 * maxDeliverPool
	carriers := make([]*deliverEvent, burst)
	for i := range carriers {
		carriers[i] = n.getDeliver(3)
	}
	for _, d := range carriers {
		n.putDeliver(d)
	}
	if got := len(n.deliverPools[3]); got > maxDeliverPool {
		t.Errorf("lane pool holds %d carriers after burst, cap is %d", got, maxDeliverPool)
	}

	// End-to-end: a latency network with a message burst bounded per lane
	// after the queue drains.
	p := n.Join(10, 100, nil)
	q := n.Join(10, 100, nil)
	for i := 0; i < burst; i++ {
		n.Send(msg.ValueRequest(p.ID, q.ID))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for lane, pool := range n.deliverPools {
		if len(pool) > maxDeliverPool {
			t.Errorf("pool %d holds %d carriers after drain, cap is %d", lane, len(pool), maxDeliverPool)
		}
	}
}
