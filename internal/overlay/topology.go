package overlay

import (
	"dlm/internal/msg"
	"dlm/internal/stats"
)

// TopologyStats summarizes the overlay's graph health — the reliability
// dimensions (backbone connectivity, leaf redundancy) that the super-peer
// design literature the paper builds on is concerned with.
type TopologyStats struct {
	// SuperComponents is the number of connected components of the
	// super-layer graph; 1 means the backbone is whole.
	SuperComponents int
	// LargestComponentFrac is the fraction of super-peers in the largest
	// component.
	LargestComponentFrac float64
	// StrandedLeaves counts leaves with zero super connections (they
	// cannot search at all until repair).
	StrandedLeaves int
	// UnderConnectedLeaves counts leaves below the redundancy target M.
	UnderConnectedLeaves int
	// AvgSuperPath is the mean shortest-path length between sampled
	// super-peer pairs within the largest component (query hops scale
	// with it).
	AvgSuperPath float64
	// SuperDegreeHist is the super-layer degree distribution.
	SuperDegreeHist *stats.Histogram
	// LeafDegreeHist is the distribution of l_nn over supers.
	LeafDegreeHist *stats.Histogram
}

// Topology computes graph statistics in O(V+E) plus sampled BFS.
func (n *Network) Topology(pathSamples int) TopologyStats {
	t := TopologyStats{
		SuperDegreeHist: stats.NewHistogram(0, 20, 20),
		LeafDegreeHist:  stats.NewHistogram(0, 4*n.cfg.KL()+1, 32),
	}

	// Components of the super graph via BFS.
	visited := make(map[msg.PeerID]int, n.supers.Len())
	comp := 0
	largest := 0
	for _, start := range n.supers.items {
		if _, seen := visited[start]; seen {
			continue
		}
		comp++
		size := 0
		queue := []msg.PeerID{start}
		visited[start] = comp
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			size++
			for _, nb := range n.store.get(id).superLinks.items {
				if n.store.get(nb).Layer != LayerSuper {
					continue
				}
				if _, seen := visited[nb]; !seen {
					visited[nb] = comp
					queue = append(queue, nb)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	t.SuperComponents = comp
	if n.supers.Len() > 0 {
		t.LargestComponentFrac = float64(largest) / float64(n.supers.Len())
	}

	for _, id := range n.supers.items {
		p := n.store.get(id)
		superDeg := 0
		for _, nb := range p.superLinks.items {
			if n.store.get(nb).Layer == LayerSuper {
				superDeg++
			}
		}
		t.SuperDegreeHist.Add(float64(superDeg))
		t.LeafDegreeHist.Add(float64(p.LeafDegree()))
	}
	for _, id := range n.leaves.items {
		p := n.store.get(id)
		switch {
		case p.SuperDegree() == 0:
			t.StrandedLeaves++
			t.UnderConnectedLeaves++
		case p.SuperDegree() < n.cfg.M:
			t.UnderConnectedLeaves++
		}
	}

	// Sampled BFS for mean super-layer path length.
	if pathSamples > 0 && n.supers.Len() > 1 {
		var acc stats.Welford
		for s := 0; s < pathSamples; s++ {
			src, ok := n.supers.Random(n.rng)
			if !ok {
				break
			}
			dist := map[msg.PeerID]int{src: 0}
			queue := []msg.PeerID{src}
			for len(queue) > 0 {
				id := queue[0]
				queue = queue[1:]
				for _, nb := range n.store.get(id).superLinks.items {
					if n.store.get(nb).Layer != LayerSuper {
						continue
					}
					if _, seen := dist[nb]; !seen {
						dist[nb] = dist[id] + 1
						queue = append(queue, nb)
					}
				}
			}
			for id, d := range dist {
				if id != src {
					acc.Add(float64(d))
				}
			}
		}
		t.AvgSuperPath = acc.Mean()
	}
	return t
}
