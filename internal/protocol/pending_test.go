package protocol

import (
	"testing"

	"dlm/internal/msg"
)

// pendingParams returns params with an easy-to-reason-about timeout
// discipline: deadline 5 units out, one retry, small related-set cap.
func pendingParams() Params {
	p := DefaultParams()
	p.RequestTimeout = 5
	p.MaxRetries = 1
	p.MaxRelatedSet = 3 // pending cap 6
	return p
}

// TestPendingFaultPatterns drives the pending-request table through the
// message-level fault patterns the adverse network produces: silence
// (drop), duplicated responses, responses racing a retry (reorder), and
// a refresh superseding an outstanding request.
func TestPendingFaultPatterns(t *testing.T) {
	self := Self{ID: 1, Capacity: 10, Age: 5}
	tests := []struct {
		name string
		run  func(t *testing.T, ma *Machine, ep *captureEndpoint)
	}{
		{
			// The response never arrives: the entry retries until the
			// budget is spent, then is abandoned, and each phase is
			// visible in the counters.
			name: "drop-all",
			run: func(t *testing.T, ma *Machine, ep *captureEndpoint) {
				ma.Expect(2, msg.KindNeighNumRequest, 0)
				if r, d := ma.ExpirePending(self, 4, ep); r != 0 || d != 0 {
					t.Fatalf("expired before deadline: retries=%d drops=%d", r, d)
				}
				if r, d := ma.ExpirePending(self, 5, ep); r != 1 || d != 0 {
					t.Fatalf("first deadline: retries=%d drops=%d, want 1,0", r, d)
				}
				if len(ep.sent) != 1 || ep.sent[0] != msg.NeighNumRequest(1, 2) {
					t.Fatalf("retry frame = %+v", ep.sent)
				}
				if r, d := ma.ExpirePending(self, 10, ep); r != 0 || d != 1 {
					t.Fatalf("budget spent: retries=%d drops=%d, want 0,1", r, d)
				}
				if ma.PendingRequests() != 0 {
					t.Fatal("abandoned entry still pending")
				}
				if ma.TimeoutRetries() != 1 || ma.TimeoutDrops() != 1 {
					t.Fatalf("counters = %d,%d want 1,1",
						ma.TimeoutRetries(), ma.TimeoutDrops())
				}
			},
		},
		{
			// A duplicated response settles the entry once; the copy finds
			// no entry and must not disturb the table or the related set.
			name: "duplicate-response",
			run: func(t *testing.T, ma *Machine, ep *captureEndpoint) {
				ma.Expect(2, msg.KindValueRequest, 0)
				vr := msg.ValueResponse(2, 1, 50, 20)
				ma.HandleMessage(self, &vr, 1, ep)
				if ma.PendingRequests() != 0 {
					t.Fatal("response did not settle the entry")
				}
				ma.HandleMessage(self, &vr, 1, ep) // the duplicate
				if ma.PendingRequests() != 0 || ma.Size() != 1 {
					t.Fatalf("duplicate disturbed state: pending=%d related=%d",
						ma.PendingRequests(), ma.Size())
				}
				// Nothing times out later: the settled pair stays settled.
				if r, d := ma.ExpirePending(self, 100, ep); r != 0 || d != 0 {
					t.Fatalf("settled entry expired: retries=%d drops=%d", r, d)
				}
			},
		},
		{
			// The original response arrives after a retry already went out
			// (reordering): it settles the retried entry, and the eventual
			// duplicate answer to the retry is absorbed.
			name: "response-races-retry",
			run: func(t *testing.T, ma *Machine, ep *captureEndpoint) {
				ma.Expect(2, msg.KindNeighNumRequest, 0)
				if r, _ := ma.ExpirePending(self, 5, ep); r != 1 {
					t.Fatalf("retry not sent: %d", r)
				}
				nn := msg.NeighNumResponse(2, 1, 9)
				ma.HandleMessage(self, &nn, 6, ep) // late original answer
				if ma.PendingRequests() != 0 {
					t.Fatal("late response did not settle the retried entry")
				}
				ma.HandleMessage(self, &nn, 7, ep) // answer to the retry
				if ma.PendingRequests() != 0 {
					t.Fatal("duplicate answer re-created an entry")
				}
				if r, d := ma.ExpirePending(self, 100, ep); r != 0 || d != 0 {
					t.Fatalf("ghost expiry: retries=%d drops=%d", r, d)
				}
			},
		},
		{
			// A refresh re-request supersedes the outstanding one: a single
			// entry with a fresh deadline and a fresh retry budget.
			name: "supersede",
			run: func(t *testing.T, ma *Machine, ep *captureEndpoint) {
				ma.Expect(2, msg.KindValueRequest, 0)
				if r, _ := ma.ExpirePending(self, 5, ep); r != 1 {
					t.Fatal("first deadline did not retry")
				}
				ma.Expect(2, msg.KindValueRequest, 6) // refresh supersedes
				if ma.PendingRequests() != 1 {
					t.Fatalf("superseding Expect stacked entries: %d",
						ma.PendingRequests())
				}
				// Budget was reset: the superseded entry retries again
				// instead of being abandoned.
				ep.sent = nil
				if r, d := ma.ExpirePending(self, 11, ep); r != 1 || d != 0 {
					t.Fatalf("superseded entry: retries=%d drops=%d, want 1,0", r, d)
				}
				if len(ep.sent) != 1 || ep.sent[0].Kind != msg.KindValueRequest {
					t.Fatalf("resend frame = %+v", ep.sent)
				}
			},
		},
		{
			// Losing the peer clears both of its outstanding entries.
			name: "peer-drop-clears",
			run: func(t *testing.T, ma *Machine, ep *captureEndpoint) {
				ma.Expect(2, msg.KindNeighNumRequest, 0)
				ma.Expect(2, msg.KindValueRequest, 0)
				ma.Expect(3, msg.KindValueRequest, 0)
				ma.Drop(2)
				if ma.PendingRequests() != 1 {
					t.Fatalf("pending after Drop(2) = %d, want 1",
						ma.PendingRequests())
				}
				if r, _ := ma.ExpirePending(self, 5, ep); r != 1 {
					t.Fatal("survivor entry did not retry")
				}
				if ep.sent[0].To != 3 {
					t.Fatalf("retry addressed to %d, want 3", ep.sent[0].To)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := pendingParams()
			ma := NewMachine(&p, 0)
			ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{2: true, 3: true}}
			tc.run(t, ma, ep)
			if bad := ma.CheckInvariants(); bad != "" {
				t.Fatal(bad)
			}
		})
	}
}

func TestPendingTableBounded(t *testing.T) {
	p := pendingParams() // MaxRelatedSet 3 -> cap 6
	ma := NewMachine(&p, 0)
	for i := 0; i < 20; i++ {
		ma.Expect(msg.PeerID(i+1), msg.KindNeighNumRequest, Time(i))
		ma.Expect(msg.PeerID(i+1), msg.KindValueRequest, Time(i))
	}
	if got := ma.PendingRequests(); got != 6 {
		t.Fatalf("pending = %d, want cap 6", got)
	}
	// FIFO: only the newest three peers survive.
	ep := &captureEndpoint{}
	ma.ExpirePending(Self{ID: 1}, 1000, ep)
	for _, m := range ep.sent {
		if m.To < 18 {
			t.Fatalf("evicted peer %d still pending", m.To)
		}
	}
	if bad := ma.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestPendingDisabledByZeroTimeout(t *testing.T) {
	p := pendingParams()
	p.RequestTimeout = 0
	ma := NewMachine(&p, 0)
	ma.Expect(2, msg.KindNeighNumRequest, 0)
	if ma.PendingRequests() != 0 {
		t.Fatal("Expect registered with RequestTimeout 0")
	}
	ep := &captureEndpoint{}
	if r, d := ma.ExpirePending(Self{ID: 1}, 1000, ep); r != 0 || d != 0 {
		t.Fatalf("disabled table expired: %d,%d", r, d)
	}
}

func TestPendingIgnoresNonRequestKinds(t *testing.T) {
	p := pendingParams()
	ma := NewMachine(&p, 0)
	ma.Expect(2, msg.KindNeighNumResponse, 0)
	ma.Expect(2, msg.KindQuery, 0)
	ma.Expect(2, msg.KindPing, 0)
	if ma.PendingRequests() != 0 {
		t.Fatal("non-request kind registered an entry")
	}
}

func TestPendingResetSemantics(t *testing.T) {
	p := pendingParams()
	ma := NewMachine(&p, 0)
	ep := &captureEndpoint{}
	ma.Expect(2, msg.KindNeighNumRequest, 0)
	ma.ExpirePending(Self{ID: 1}, 5, ep)  // one retry
	ma.ExpirePending(Self{ID: 1}, 10, ep) // one abandon
	ma.Expect(3, msg.KindValueRequest, 11)
	ma.Reset(12)
	// The table is protocol state and clears on a role change; the
	// timeout counters are transport diagnostics and survive.
	if ma.PendingRequests() != 0 {
		t.Fatal("Reset kept pending entries")
	}
	if ma.TimeoutRetries() != 1 || ma.TimeoutDrops() != 1 {
		t.Fatalf("Reset cleared counters: %d,%d",
			ma.TimeoutRetries(), ma.TimeoutDrops())
	}
	if bad := ma.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

// TestPendingRelatedSetOracle cross-checks the two tables: responses that
// settle pending entries feed the related set through the normal handler
// path, so after a lossy-but-eventually-delivered conversation the
// related set holds exactly the peers that answered, regardless of
// duplication.
func TestPendingRelatedSetOracle(t *testing.T) {
	p := pendingParams()
	ma := NewMachine(&p, 0)
	ep := &captureEndpoint{}
	self := Self{ID: 1, Capacity: 10, Age: 5}

	answered := map[msg.PeerID]bool{2: true, 4: true}
	for _, id := range []msg.PeerID{2, 3, 4} {
		ma.Expect(id, msg.KindValueRequest, 0)
	}
	for id := range answered {
		vr := msg.ValueResponse(id, 1, 50, 20)
		ma.HandleMessage(self, &vr, 1, ep)
		ma.HandleMessage(self, &vr, 1, ep) // duplicated delivery
	}
	if ma.PendingRequests() != 1 {
		t.Fatalf("pending = %d, want 1 (the silent peer)", ma.PendingRequests())
	}
	for _, id := range []msg.PeerID{2, 3, 4} {
		if ma.Has(id) != answered[id] {
			t.Fatalf("related set wrong for peer %d: has=%v want=%v",
				id, ma.Has(id), answered[id])
		}
	}
	if bad := ma.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}
