package protocol

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProtocolImportPurity enforces the package's core guarantee: the
// protocol state machine knows nothing about schedulers, overlays, or
// goroutine machinery, so any backend can drive it. scripts/ci.sh checks
// the same property transitively with go list.
func TestProtocolImportPurity(t *testing.T) {
	forbidden := []string{
		"dlm/internal/sim",
		"dlm/internal/overlay",
		"dlm/internal/core",
		"dlm/internal/live",
		"sync",
		"time",
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, bad := range forbidden {
				if path == bad {
					t.Errorf("%s imports %s; the protocol core must stay transport-agnostic", name, path)
				}
			}
		}
	}
}
