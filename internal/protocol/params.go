// Package protocol implements the transport-agnostic core of DLM, the
// paper's Dynamic Layer Management algorithm: one per-peer state machine
// that is driven identically by the discrete-event simulation plane
// (internal/core over internal/overlay) and the goroutine-per-peer live
// plane (internal/live). Every DLM decision is computable from peer-local
// state alone, so the whole protocol fits in a Machine that knows nothing
// about schedulers, networks, or goroutines — hosts bind it to a
// transport through the small Endpoint, Rand, and Self surfaces.
//
// The four phases of the paper map onto this package as follows:
//
//	Phase 1 (information collection)  -> machine.go HandleMessage
//	Phase 2 (ratio estimation, μ)     -> decision.go Mu
//	Phase 3 (scaled comparison, X/Y)  -> decision.go ScaleFor / counting
//	Phase 4 (promotion/demotion, Z)   -> machine.go Evaluate
//
// The package deliberately imports neither internal/sim nor
// internal/overlay (enforced by TestProtocolImportPurity and a go
// list-based CI gate): any backend that can deliver msg frames and read a
// clock can drive the identical protocol.
package protocol

import "fmt"

// Time is a point on the protocol clock, measured in abstract protocol
// time units (the paper's unit is one minute). The simulation plane maps
// it to virtual time; the live plane maps it to wall-clock units.
type Time float64

// Duration is a span of protocol time.
type Duration = Time

// ExchangePolicy selects when peers exchange DLM information.
type ExchangePolicy uint8

const (
	// EventDriven exchanges information whenever a new leaf-super
	// connection is created — the policy the paper selects after finding
	// it cheapest at equal accuracy.
	EventDriven ExchangePolicy = iota
	// Periodic exchanges information with all current neighbors every
	// PeriodicInterval time units instead (the ablation policy).
	Periodic
)

// String implements fmt.Stringer.
func (p ExchangePolicy) String() string {
	switch p {
	case EventDriven:
		return "event-driven"
	case Periodic:
		return "periodic"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Params are DLM's tunables. The paper specifies the directions in which
// the scale parameters (X) and thresholds (Z) respond to the ratio skew μ
// but not the functional forms; the forms here (exponential for X, affine
// for Z, both clamped) are the reconstruction documented in DESIGN.md,
// with every gain exposed for the ablation benches.
type Params struct {
	// LambdaCapa and LambdaAge are the gains of the scale parameters:
	// X = clamp(exp(-λ·μ), XMin, XMax).
	LambdaCapa float64
	LambdaAge  float64
	// XMin and XMax clamp the scale parameters.
	XMin, XMax float64

	// ZPromote0 is the base promotion threshold: at μ=0 a leaf promotes
	// when fewer than this fraction of its related supers beat it on both
	// metrics. ZDemote0 is the base demotion threshold: a super demotes
	// when more than this fraction of its leaves beat it on both metrics.
	ZPromote0 float64
	ZDemote0  float64
	// The affine gains of the per-metric thresholds (the paper keeps
	// Z_capa and Z_age distinct): Z = clamp(Z0 + β·μ, ZMin, ZMax). The
	// age gains are the ratio-control channel — under a super-layer
	// shortage the age bar drops fast, because any sufficiently strong
	// peer can be recruited young. The capacity gains stay small so the
	// capacity filter remains selective even while the ratio controller
	// is recruiting; otherwise a persistent mild shortage would let
	// weak-capacity peers into the super-layer.
	BetaPromoteCapa float64
	BetaPromoteAge  float64
	BetaDemoteCapa  float64
	BetaDemoteAge   float64
	// ZMin and ZMax clamp all four thresholds.
	ZMin, ZMax float64

	// MuMax clamps the estimated ratio skew to [-MuMax, MuMax].
	MuMax float64

	// MinRelatedSet is the minimum related-set size before a peer makes
	// decisions (too little evidence otherwise).
	MinRelatedSet int
	// MaxRelatedSet caps a leaf's related set; the oldest entry is
	// evicted first. Zero means unbounded (the paper keeps every super
	// contacted since join).
	MaxRelatedSet int
	// LeafWindow is T_l, the recency window for a leaf's related set;
	// entries not seen within the window are pruned at decision time.
	// Zero disables pruning.
	LeafWindow Duration

	// DecisionCooldown is the minimum time between a peer's role changes
	// (and after join) before it may change layer; it prevents flapping.
	DecisionCooldown Duration
	// DemotionCooldown additionally delays comparison-based demotion
	// after a peer becomes a super-peer. A fresh super-peer's leaf set
	// takes tens of time units to fill, so its own l_nn reads as "too
	// many supers" until then; without this guard promotions flap
	// straight back.
	DemotionCooldown Duration
	// EvalProbability staggers decisions: each peer evaluates per tick
	// with this probability, so the layer does not move in lock-step.
	EvalProbability float64
	// EmptyGDemoteAfter demotes a super-peer that has attracted no leaf
	// neighbors for this long (it contributes nothing to the backbone and
	// cannot run the comparison). Zero disables.
	EmptyGDemoteAfter Duration

	// RateLimit enables deficit-proportional switching: an eligible leaf
	// promotes with probability (l_nn/k_l − 1)/η and an eligible super
	// demotes with probability 1 − l_nn/k_l, both clamped to [0,1]. The
	// quantities are computable from purely local information (η and m
	// are protocol constants), and the expected number of switches per
	// tick then matches the estimated layer deficit — preventing the
	// thundering herd where every eligible peer switches at once. This is
	// a reconstruction; see DESIGN.md.
	RateLimit bool
	// RateGain multiplies the deficit-proportional *promotion*
	// probability. Values above 1 reduce the steady-state ratio offset
	// that a purely proportional response leaves behind (promotion flux
	// must offset super-peer deaths), at the cost of more aggressive
	// corrections.
	RateGain float64
	// DemoteRateGain is the demotion-side multiplier, kept small: a
	// misjudged demotion disconnects ~k_l leaves (the PAO), whereas a
	// misjudged non-demotion costs nothing — the super-layer also shrinks
	// through ordinary deaths. Demotion only needs to trim genuine
	// sustained surpluses.
	DemoteRateGain float64
	// SelectionSharpness biases *which* eligible peers switch without
	// throttling total switch flux: an eligible leaf's promotion
	// probability is weighted by (1−Y_capa)^k and an eligible super's
	// demotion probability by (Y_capa)^k, with k this exponent. The
	// strongest candidates relative to their own related set — still
	// purely local information — switch first, so capacity selection
	// survives even when a shortage has relaxed the eligibility
	// thresholds. Zero disables the weighting.
	SelectionSharpness float64

	// Exchange selects the information-collection policy.
	Exchange ExchangePolicy
	// PeriodicInterval is the exchange period under Periodic.
	PeriodicInterval Duration
	// RefreshInterval makes leaves re-request l_nn (and values) from
	// their current supers this often even under EventDriven, keeping μ
	// fresh on long-lived connections (§6 notes these can piggyback on
	// keepalives). Zero disables refresh.
	RefreshInterval Duration

	// RequestTimeout is the deadline a peer attaches to each Phase 1
	// request it sends (see Expect/ExpirePending in pending.go): a request
	// unanswered for this long is retried, giving the exchange bounded
	// at-least-once semantics over lossy transports. Deadlines are
	// computed from the host-supplied clock only, so the protocol core
	// stays transport- and time-import free. Zero disables the pending
	// table entirely.
	RequestTimeout Duration
	// MaxRetries is the number of times a timed-out request is re-sent
	// before being abandoned (so a request is transmitted at most
	// 1+MaxRetries times). Zero retries means timeouts go straight to the
	// abandon count.
	MaxRetries int

	// DefenseMaxCapacity enables the bounded-sanity misreport defense used
	// by the adversarial scenarios (internal/scenario). When positive:
	// (a) a ValueResponse claiming a capacity above this bound — or an age
	// exceeding the protocol clock, which no peer can truthfully have — is
	// rejected instead of admitted to the related set, so implausible
	// liars vanish from honest peers' comparisons; and (b) a leaf whose
	// own claimed capacity or age fails the same plausibility test never
	// promotes (its counterparts would reject the claim), checked before
	// the rate-limit draw so the draw discipline is unchanged. Only
	// promotion is gated — suppressing demotion would entrench a lying
	// super-peer, the opposite of a defense. Liars whose claims stay
	// within the bound remain undetectable by design: the defense bounds
	// the damage, it cannot eliminate it. Zero disables every check, and
	// no draw or comparison differs, so defense-off runs stay
	// byte-identical to builds without the field.
	DefenseMaxCapacity float64

	// LnnSmoothing is the EWMA coefficient a super-peer applies to its
	// own l_nn before using it in demotion decisions. Leaf attachment is
	// a random arrival process, so instantaneous l_nn fluctuates around
	// k_l; unsmoothed, those fluctuations read as ratio skew and cause
	// the misjudged demotions the paper's Table 3 discussion predicts at
	// small scale. Zero disables smoothing.
	LnnSmoothing float64
}

// DefaultParams returns the tuning used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		LambdaCapa: 1.0,
		LambdaAge:  1.0,
		XMin:       0.2,
		XMax:       5,

		ZPromote0:       0.30,
		ZDemote0:        0.70,
		BetaPromoteCapa: 1.0,
		BetaPromoteAge:  2.0,
		BetaDemoteCapa:  0.3,
		BetaDemoteAge:   1.0,
		ZMin:            0.02,
		ZMax:            0.98,

		MuMax: 2,

		MinRelatedSet: 1,
		MaxRelatedSet: 64,
		LeafWindow:    60,

		DecisionCooldown:   5,
		DemotionCooldown:   100,
		EvalProbability:    0.25,
		EmptyGDemoteAfter:  30,
		RateLimit:          true,
		RateGain:           8,
		DemoteRateGain:     2,
		SelectionSharpness: 2,

		Exchange:         EventDriven,
		PeriodicInterval: 5,
		RefreshInterval:  30,
		RequestTimeout:   5,
		MaxRetries:       2,
		LnnSmoothing:     0.08,
	}
}

// Validate reports a descriptive error for out-of-range parameters.
func (p Params) Validate() error {
	switch {
	case p.LambdaCapa < 0 || p.LambdaAge < 0:
		return fmt.Errorf("protocol: negative lambda (%v, %v)", p.LambdaCapa, p.LambdaAge)
	case !(p.XMin > 0) || !(p.XMax >= p.XMin):
		return fmt.Errorf("protocol: bad X clamp [%v, %v]", p.XMin, p.XMax)
	case !(p.ZMin > 0) || !(p.ZMax >= p.ZMin) || p.ZMax >= 1:
		return fmt.Errorf("protocol: bad Z clamp [%v, %v]", p.ZMin, p.ZMax)
	case p.ZPromote0 <= 0 || p.ZPromote0 >= 1 || p.ZDemote0 <= 0 || p.ZDemote0 >= 1:
		return fmt.Errorf("protocol: base thresholds (%v, %v) outside (0,1)", p.ZPromote0, p.ZDemote0)
	case p.BetaPromoteCapa < 0 || p.BetaPromoteAge < 0 || p.BetaDemoteCapa < 0 || p.BetaDemoteAge < 0:
		return fmt.Errorf("protocol: negative threshold gain")
	case p.MuMax <= 0:
		return fmt.Errorf("protocol: MuMax = %v, want > 0", p.MuMax)
	case p.MinRelatedSet < 1:
		return fmt.Errorf("protocol: MinRelatedSet = %d, want >= 1", p.MinRelatedSet)
	case p.MaxRelatedSet < 0:
		return fmt.Errorf("protocol: MaxRelatedSet = %d, want >= 0", p.MaxRelatedSet)
	case p.EvalProbability <= 0 || p.EvalProbability > 1:
		return fmt.Errorf("protocol: EvalProbability = %v, want (0,1]", p.EvalProbability)
	case p.DecisionCooldown < 0 || p.DemotionCooldown < 0 || p.LeafWindow < 0 ||
		p.EmptyGDemoteAfter < 0 || p.RefreshInterval < 0 || p.RequestTimeout < 0:
		return fmt.Errorf("protocol: negative duration parameter")
	case p.MaxRetries < 0:
		return fmt.Errorf("protocol: MaxRetries = %d, want >= 0", p.MaxRetries)
	case p.SelectionSharpness < 0:
		return fmt.Errorf("protocol: SelectionSharpness = %v, want >= 0", p.SelectionSharpness)
	case p.DefenseMaxCapacity < 0:
		return fmt.Errorf("protocol: DefenseMaxCapacity = %v, want >= 0", p.DefenseMaxCapacity)
	case p.LnnSmoothing < 0 || p.LnnSmoothing > 1:
		return fmt.Errorf("protocol: LnnSmoothing = %v, want [0,1]", p.LnnSmoothing)
	case p.Exchange == Periodic && p.PeriodicInterval <= 0:
		return fmt.Errorf("protocol: periodic policy needs PeriodicInterval > 0")
	}
	return nil
}
