package protocol

import (
	"math"
	"testing"
	"testing/quick"

	"dlm/internal/msg"
)

func TestParamsValidateRejectsBadValues(t *testing.T) {
	mutations := map[string]func(*Params){
		"negative lambda":   func(p *Params) { p.LambdaCapa = -1 },
		"bad X clamp":       func(p *Params) { p.XMin = 0 },
		"inverted X clamp":  func(p *Params) { p.XMin = 5; p.XMax = 1 },
		"bad Z clamp":       func(p *Params) { p.ZMax = 1.5 },
		"bad ZPromote0":     func(p *Params) { p.ZPromote0 = 0 },
		"bad ZDemote0":      func(p *Params) { p.ZDemote0 = 1 },
		"bad MuMax":         func(p *Params) { p.MuMax = 0 },
		"bad MinRelatedSet": func(p *Params) { p.MinRelatedSet = 0 },
		"bad MaxRelatedSet": func(p *Params) { p.MaxRelatedSet = -1 },
		"bad EvalProb":      func(p *Params) { p.EvalProbability = 0 },
		"negative cooldown": func(p *Params) { p.DecisionCooldown = -1 },
		"bad smoothing":     func(p *Params) { p.LnnSmoothing = 2 },
		"periodic no intvl": func(p *Params) { p.Exchange = Periodic; p.PeriodicInterval = 0 },
	}
	for name, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMu(t *testing.T) {
	p := DefaultParams()
	if mu := p.Mu(80, 80); mu != 0 {
		t.Errorf("Mu(kl,kl) = %v, want 0", mu)
	}
	if mu := p.Mu(160, 80); math.Abs(mu-math.Log(2)) > 1e-12 {
		t.Errorf("Mu(2kl,kl) = %v, want ln 2", mu)
	}
	if mu := p.Mu(40, 80); math.Abs(mu+math.Log(2)) > 1e-12 {
		t.Errorf("Mu(kl/2,kl) = %v, want -ln 2", mu)
	}
	// Clamping.
	if mu := p.Mu(1e9, 1); mu != p.MuMax {
		t.Errorf("huge skew mu = %v, want clamp %v", mu, p.MuMax)
	}
	if mu := p.Mu(1e-9, 1); mu != -p.MuMax {
		t.Errorf("tiny skew mu = %v, want clamp %v", mu, -p.MuMax)
	}
	// Degenerate inputs read as "too many supers".
	if mu := p.Mu(0, 80); mu != -p.MuMax {
		t.Errorf("Mu(0,kl) = %v", mu)
	}
}

func TestScaleDirections(t *testing.T) {
	p := DefaultParams()
	xc0, xa0 := p.ScaleFor(0)
	if xc0 != 1 || xa0 != 1 {
		t.Fatalf("X at mu=0 is (%v,%v), want (1,1)", xc0, xa0)
	}
	xcPos, _ := p.ScaleFor(1)
	xcNeg, _ := p.ScaleFor(-1)
	if !(xcPos < 1 && xcNeg > 1) {
		t.Fatalf("X directions wrong: X(+1)=%v X(-1)=%v", xcPos, xcNeg)
	}
}

func TestThresholdDirections(t *testing.T) {
	p := DefaultParams()
	// μ>0 (need supers): promotion easier (higher Zp), demotion harder
	// (higher Zd). μ<0: the reverse. Both metrics' thresholds move in the
	// same direction; the age channel moves faster (it carries the
	// ratio-control response).
	for _, z := range []func(float64) float64{p.ZPromoteCapa, p.ZPromoteAge, p.ZDemoteCapa, p.ZDemoteAge} {
		if !(z(1) > z(0) && z(0) > z(-1)) {
			t.Error("threshold not increasing in mu")
		}
	}
	// Probe inside the clamp region: at large μ both thresholds saturate.
	if !(p.ZPromoteAge(0.1)-p.ZPromoteAge(0) > p.ZPromoteCapa(0.1)-p.ZPromoteCapa(0)) {
		t.Error("age threshold should respond faster than capacity threshold")
	}
	// Clamps hold at extremes.
	if z := p.ZPromoteAge(100); z != p.ZMax {
		t.Errorf("ZPromoteAge clamp: %v", z)
	}
	if z := p.ZDemoteAge(-100); z != p.ZMin {
		t.Errorf("ZDemoteAge clamp: %v", z)
	}
}

// Property: X and Z are monotone in μ and always inside their clamps.
func TestControllerMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	f := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 1000
		b := float64(bRaw) / 1000
		if a > b {
			a, b = b, a
		}
		xcA, xaA := p.ScaleFor(a)
		xcB, xaB := p.ScaleFor(b)
		if xcA < xcB-1e-12 || xaA < xaB-1e-12 {
			return false // X must be non-increasing in mu
		}
		for _, x := range []float64{xcA, xaA, xcB, xaB} {
			if x < p.XMin || x > p.XMax {
				return false
			}
		}
		if p.ZPromoteAge(a) > p.ZPromoteAge(b)+1e-12 || p.ZDemoteAge(a) > p.ZDemoteAge(b)+1e-12 ||
			p.ZPromoteCapa(a) > p.ZPromoteCapa(b)+1e-12 || p.ZDemoteCapa(a) > p.ZDemoteCapa(b)+1e-12 {
			return false // Z must be non-decreasing in mu
		}
		for _, z := range []float64{p.ZPromoteAge(a), p.ZDemoteAge(b), p.ZPromoteCapa(a), p.ZDemoteCapa(b)} {
			if z < p.ZMin || z > p.ZMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingMatchesPaperPseudocode(t *testing.T) {
	p := DefaultParams()
	now := Time(100)
	ma := NewMachine(&p, 0)
	// Three entries: capacities 10, 20, 30; ages 10, 20, 30.
	for i, c := range []float64{10, 20, 30} {
		ma.observe(uintID(i), c, c, now, 0)
	}
	// Self: capacity 20, age 20, X = 1.
	yc, ya := ma.counting(20, 20, now, 1, 1)
	if math.Abs(yc-1.0/3) > 1e-12 || math.Abs(ya-1.0/3) > 1e-12 {
		t.Fatalf("Y = (%v,%v), want (1/3,1/3)", yc, ya)
	}
	// X = 2 doubles everyone else's metrics: 20,40,60 vs self 20 -> 2/3.
	yc, ya = ma.counting(20, 20, now, 2, 2)
	if math.Abs(yc-2.0/3) > 1e-12 || math.Abs(ya-2.0/3) > 1e-12 {
		t.Fatalf("scaled Y = (%v,%v), want (2/3,2/3)", yc, ya)
	}
	// Empty set.
	empty := NewMachine(&p, 0)
	if yc, ya := empty.counting(1, 1, now, 1, 1); yc != 0 || ya != 0 {
		t.Fatal("empty set should give zero counters")
	}
}

func TestAgeExtrapolation(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	// Observed at t=50 with age 20 -> joined at t=30.
	ma.observe(7, 100, 20, 50, 0)
	if _, age, ok := ma.Related(7, 80); !ok || age != 50 {
		t.Fatalf("extrapolated age = %v,%v, want 50,true", age, ok)
	}
}

const klMu0 = 20 // any matching lnn=kl pair gives mu=0

func TestDecideConditions(t *testing.T) {
	p := DefaultParams()
	now := Time(100)

	// A strong leaf among weak supers must promote at mu=0.
	ma := NewMachine(&p, 0)
	for i := 0; i < 10; i++ {
		ma.observe(uintID(i), 10, 10, now, 0)
	}
	d := ma.Decide(100, 100, now, klMu0, klMu0, true)
	if !d.ShouldSwitch {
		t.Fatalf("strong leaf not promoted: %+v", d)
	}
	// A weak leaf must not promote.
	d = ma.Decide(1, 1, now, klMu0, klMu0, true)
	if d.ShouldSwitch {
		t.Fatalf("weak leaf promoted: %+v", d)
	}
	// A weak super among strong leaves must demote at mu=0.
	maS := NewMachine(&p, 0)
	for i := 0; i < 10; i++ {
		maS.observe(uintID(i), 100, 100, now, 0)
	}
	d = maS.Decide(1, 1, now, klMu0, klMu0, false)
	if !d.ShouldSwitch {
		t.Fatalf("weak super not demoted: %+v", d)
	}
	// A strong super must stay.
	d = maS.Decide(1000, 1000, now, klMu0, klMu0, false)
	if d.ShouldSwitch {
		t.Fatalf("strong super demoted: %+v", d)
	}
}

// TestScaledComparisonOvercomesRank reproduces the paper's motivating
// scenario for scaled comparison: the system needs more super-peers but
// every leaf is weaker than every super. Direct comparison would block
// all promotions; the scaled comparison must let the leaf through.
func TestScaledComparisonOvercomesRank(t *testing.T) {
	p := DefaultParams()
	now := Time(100)
	ma := NewMachine(&p, 0)
	// Supers all moderately stronger than the leaf (ratio 1.5 on both
	// metrics).
	for i := 0; i < 10; i++ {
		ma.observe(uintID(i), 15, 15, now, 0)
	}
	// Direct comparison at mu=0: Y=1 -> no promotion.
	d := ma.Decide(10, 10, now, 20, 20, true)
	if d.ShouldSwitch {
		t.Fatal("promotion should fail at mu=0 for a weaker leaf")
	}
	// Strong shortage (lnn far above kl -> mu at clamp): X shrinks the
	// supers' metrics enough for the leaf to win.
	d = ma.Decide(10, 10, now, 20*math.E*math.E, 20, true)
	if d.XCapa >= 1 {
		t.Fatalf("X should shrink under shortage, got %v", d.XCapa)
	}
	if !d.ShouldSwitch {
		t.Fatalf("scaled comparison failed to promote under shortage: %+v", d)
	}
}

func uintID(i int) msg.PeerID { return msg.PeerID(1000 + i) }

func TestEvaluateStandaloneMatchesDecide(t *testing.T) {
	p := DefaultParams()
	related := []Candidate{
		{Capacity: 10, Age: 50},
		{Capacity: 100, Age: 200},
		{Capacity: 40, Age: 120},
	}
	self := Candidate{Capacity: 60, Age: 150}
	d := p.EvaluateStandalone(self, related, 30, 20, true)
	// Replicate through the machine path.
	now := Time(1000)
	ma := NewMachine(&p, 0)
	for i, r := range related {
		ma.observe(uintID(i), r.Capacity, r.Age, now, 0)
	}
	d2 := ma.Decide(self.Capacity, self.Age, now, 30, 20, true)
	if d != d2 {
		t.Fatalf("standalone and machine-backed decisions diverge:\n%+v\n%+v", d, d2)
	}
	// Empty related set: counters zero, decision from thresholds alone.
	d = p.EvaluateStandalone(self, nil, 30, 20, true)
	if d.YCapa != 0 || d.YAge != 0 {
		t.Fatalf("empty set counters %v/%v", d.YCapa, d.YAge)
	}
}

func TestSwitchProbability(t *testing.T) {
	p := DefaultParams()
	p.SelectionSharpness = 0
	// Balanced network: no switching either way.
	if got := p.SwitchProbability(20, 20, 10, 0, true); got != 0 {
		t.Fatalf("promote prob at r=1: %v", got)
	}
	if got := p.SwitchProbability(20, 20, 10, 0, false); got != 0 {
		t.Fatalf("demote prob at r=1: %v", got)
	}
	// Shortage: promotion probability positive, demotion zero.
	pp := p.SwitchProbability(30, 20, 10, 0, true)
	if !(pp > 0 && pp <= 1) {
		t.Fatalf("promote prob at r=1.5: %v", pp)
	}
	if got := p.SwitchProbability(30, 20, 10, 0, false); got != 0 {
		t.Fatalf("demote prob at r=1.5: %v", got)
	}
	// Surplus: the reverse.
	if got := p.SwitchProbability(10, 20, 10, 0, true); got != 0 {
		t.Fatalf("promote prob at r=0.5: %v", got)
	}
	if got := p.SwitchProbability(10, 20, 10, 0, false); got <= 0 {
		t.Fatalf("demote prob at r=0.5: %v", got)
	}
	// Rate limit off: always 1.
	p.RateLimit = false
	if got := p.SwitchProbability(20, 20, 10, 0.5, true); got != 1 {
		t.Fatalf("ratelimit off prob: %v", got)
	}
}

func TestSwitchProbabilitySelectionWeighting(t *testing.T) {
	p := DefaultParams() // sharpness 2
	// A leaf that beats all its supers (Y_capa=0) must switch with a
	// higher probability than a marginal one (Y_capa=0.6).
	strong := p.SwitchProbability(30, 20, 10, 0, true)
	weak := p.SwitchProbability(30, 20, 10, 0.6, true)
	if !(strong > weak) {
		t.Fatalf("selection weighting inverted: strong %v vs weak %v", strong, weak)
	}
	// Demotion is the mirror: the weakest super (high Y_capa) goes first.
	weakSuper := p.SwitchProbability(10, 20, 10, 0.9, false)
	strongSuper := p.SwitchProbability(10, 20, 10, 0.1, false)
	if !(weakSuper > strongSuper) {
		t.Fatalf("demote weighting inverted: %v vs %v", weakSuper, strongSuper)
	}
}
