package protocol

import "dlm/internal/msg"

// The pending-request table gives Phase 1 a bounded at-least-once
// discipline over lossy transports: the host registers a deadline before
// every request it sends (Expect), responses settle the entry inside
// HandleMessage, and the host folds ExpirePending into its existing
// per-tick scheduling to retry or abandon whatever is still outstanding.
// Deadlines are computed purely from the host-supplied protocol clock, so
// the package stays free of time imports (see TestProtocolImportPurity);
// no draws happen anywhere on this path, so the table is invisible to the
// determinism baselines when the transport is lossless.

// pendingPair identifies one of DLM's Phase 1 request/response pairs.
type pendingPair uint8

const (
	pairNeighNum pendingPair = iota
	pairValue
)

// pendingKey identifies one outstanding request: at most one entry per
// (counterpart, pair) exists, so a refresh re-request supersedes the
// outstanding one instead of stacking behind it.
type pendingKey struct {
	peer msg.PeerID
	pair pendingPair
}

// pendingEntry is the retry state of one outstanding request.
type pendingEntry struct {
	deadline Time
	retries  int
}

// pendingRec is one pending-table row: key and retry state together, so
// the table's scans and compactions touch one array instead of two.
type pendingRec struct {
	key   pendingKey
	entry pendingEntry
}

// pendingCap bounds the table: a leaf talks to at most MaxRelatedSet
// supers at a time and each conversation spans the two pairs, so
// 2·MaxRelatedSet outstanding requests cover every legitimate pattern.
// Zero (MaxRelatedSet unbounded) leaves the table unbounded too.
func (ma *Machine) pendingCap() int {
	if ma.p.MaxRelatedSet <= 0 {
		return 0
	}
	return 2 * ma.p.MaxRelatedSet
}

// Expect registers the response deadline for a Phase 1 request the host
// is about to send to peer; kind is the request kind (KindNeighNumRequest
// or KindValueRequest; other kinds are ignored). It MUST be called before
// the request frame departs: delivery may be synchronous, and an entry
// registered after an inline response has already been handled would
// never be cleared and would retry spuriously. A second Expect for the
// same (peer, pair) resets the deadline and the retry budget — the newer
// request supersedes the older one. RequestTimeout 0 disables the table.
func (ma *Machine) Expect(peer msg.PeerID, kind msg.Kind, now Time) {
	if ma.p.RequestTimeout <= 0 {
		return
	}
	var pr pendingPair
	switch kind {
	case msg.KindNeighNumRequest:
		pr = pairNeighNum
	case msg.KindValueRequest:
		pr = pairValue
	default:
		return
	}
	k := pendingKey{peer: peer, pair: pr}
	entry := pendingEntry{deadline: now + ma.p.RequestTimeout}
	if i := ma.pendIndex(k); i >= 0 {
		ma.pending[i].entry = entry
		return
	}
	if cap := ma.pendingCap(); cap > 0 && len(ma.pending) >= cap {
		last := len(ma.pending) - 1
		copy(ma.pending, ma.pending[1:])
		ma.pending = ma.pending[:last]
	}
	ma.pending = append(ma.pending, pendingRec{key: k, entry: entry})
}

// pendIndex returns k's position in the pending table, or -1.
func (ma *Machine) pendIndex(k pendingKey) int {
	for i := range ma.pending {
		if ma.pending[i].key == k {
			return i
		}
	}
	return -1
}

// clearPending settles the outstanding request matching a received
// response. Duplicated responses find no entry and change nothing.
func (ma *Machine) clearPending(peer msg.PeerID, pr pendingPair) {
	if len(ma.pending) == 0 {
		return
	}
	k := pendingKey{peer: peer, pair: pr}
	i := ma.pendIndex(k)
	if i < 0 {
		return
	}
	ma.pending = append(ma.pending[:i], ma.pending[i+1:]...)
}

// ExpirePending retries or abandons requests whose deadline has passed:
// an entry with retry budget left is re-sent with a fresh deadline; one
// whose budget is spent is dropped from the table. It returns the number
// of retries sent and requests abandoned by this call (the cumulative
// tallies are TimeoutRetries/TimeoutDrops). The scan is two-phase — the
// table is fully updated before any frame departs — because a re-sent
// request can be answered synchronously, re-entering HandleMessage and
// mutating the table mid-call.
func (ma *Machine) ExpirePending(self Self, now Time, ep Endpoint) (retries, drops int) {
	if ma.p.RequestTimeout <= 0 || len(ma.pending) == 0 {
		return 0, 0
	}
	keep := 0
	ma.pendScratch = ma.pendScratch[:0]
	for i := range ma.pending {
		r := ma.pending[i]
		if now < r.entry.deadline {
			ma.pending[keep] = r
			keep++
			continue
		}
		if r.entry.retries >= ma.p.MaxRetries {
			drops++
			continue
		}
		r.entry.retries++
		r.entry.deadline = now + ma.p.RequestTimeout
		ma.pending[keep] = r
		keep++
		ma.pendScratch = append(ma.pendScratch, r.key)
		retries++
	}
	ma.pending = ma.pending[:keep]
	ma.timeoutRetries += uint64(retries)
	ma.timeoutDrops += uint64(drops)
	for _, k := range ma.pendScratch {
		switch k.pair {
		case pairNeighNum:
			ep.Send(msg.NeighNumRequest(self.ID, k.peer))
		case pairValue:
			ep.Send(msg.ValueRequest(self.ID, k.peer))
		}
	}
	return retries, drops
}

// PendingRequests returns the number of outstanding Phase 1 requests;
// hosts use it as the fast path to skip ExpirePending entirely.
func (ma *Machine) PendingRequests() int { return len(ma.pending) }

// TimeoutRetries returns the cumulative count of timed-out requests this
// machine re-sent. The counter survives Reset: it is a diagnostic of the
// transport, not protocol state.
func (ma *Machine) TimeoutRetries() uint64 { return ma.timeoutRetries }

// TimeoutDrops returns the cumulative count of requests abandoned after
// the retry budget was spent. Like TimeoutRetries it survives Reset.
func (ma *Machine) TimeoutDrops() uint64 { return ma.timeoutDrops }

// dropPending removes both outstanding entries toward id (the peer is
// gone; retrying at it is pointless).
func (ma *Machine) dropPending(id msg.PeerID) {
	ma.clearPending(id, pairNeighNum)
	ma.clearPending(id, pairValue)
}

// checkPendingInvariants verifies the pending-table bookkeeping; it
// extends CheckInvariants and returns "" when consistent.
func (ma *Machine) checkPendingInvariants() string {
	seen := make(map[pendingKey]bool, len(ma.pending))
	for i := range ma.pending {
		if seen[ma.pending[i].key] {
			return "duplicate key in pending table"
		}
		seen[ma.pending[i].key] = true
		if ma.pending[i].entry.retries > ma.p.MaxRetries {
			return "pending entry over retry budget"
		}
	}
	if cap := ma.pendingCap(); cap > 0 && len(ma.pending) > cap {
		return "pending table over capacity"
	}
	return ""
}
