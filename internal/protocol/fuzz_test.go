package protocol

import (
	"testing"

	"dlm/internal/msg"
)

// FuzzMachineHandleMessage drives the Phase 1 handler with arbitrary
// decoded message streams, in both roles, and asserts the machine never
// panics and never corrupts its related-set invariants. It lives here
// rather than in internal/msg because msg cannot import protocol (the
// dependency points the other way).
func FuzzMachineHandleMessage(f *testing.F) {
	seedMsgs := []msg.Message{
		msg.NeighNumRequest(2, 1),
		msg.NeighNumResponse(2, 1, 80),
		msg.ValueRequest(2, 1),
		msg.ValueResponse(2, 1, 123.5, 42.25),
		msg.ValueResponse(3, 1, -1, 1e300),
		msg.NewQuery(5, 1, 99, 777, 7),
		{Kind: msg.KindPing, From: 7, To: 1},
	}
	var stream []byte
	for i := range seedMsgs {
		seed := msg.Encode(nil, &seedMsgs[i])
		f.Add(seed, false, uint16(10))
		f.Add(seed, true, uint16(500))
		stream = msg.Encode(stream, &seedMsgs[i])
	}
	f.Add(stream, false, uint16(100))
	f.Add(stream, true, uint16(100))
	f.Add([]byte{}, false, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, isSuper bool, nowRaw uint16) {
		p := DefaultParams()
		p.MaxRelatedSet = 4 // small cap so the fuzzer reaches eviction fast
		ma := NewMachine(&p, 0)
		ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{2: true, 3: true}}
		self := Self{ID: 1, Capacity: 10, Age: 5, IsSuper: isSuper, LeafDegree: 3}
		now := Time(nowRaw)

		// Feed the whole stream of decodable frames through the handler,
		// advancing the clock so pruning and extrapolation paths run.
		for len(data) > 0 {
			m, n, err := msg.Decode(data)
			if err != nil {
				break
			}
			data = data[n:]
			ma.HandleMessage(self, &m, now, ep)
			now++
		}

		if bad := ma.CheckInvariants(); bad != "" {
			t.Fatalf("invariants violated: %s", bad)
		}
		if !isSuper && p.MaxRelatedSet > 0 && ma.Size() > p.MaxRelatedSet {
			t.Fatalf("related set %d exceeds cap %d", ma.Size(), p.MaxRelatedSet)
		}
		// The decision path must also tolerate whatever state the stream
		// built up.
		rng := &fixedRand{v: 0.5}
		_ = ma.Evaluate(self, now+Time(p.DemotionCooldown), 20, 10, rng)
		_, _ = ma.AvgLnn()
		if bad := ma.CheckInvariants(); bad != "" {
			t.Fatalf("invariants violated after evaluate: %s", bad)
		}
	})
}
