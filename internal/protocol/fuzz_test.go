package protocol

import (
	"testing"

	"dlm/internal/msg"
)

// FuzzMachineHandleMessage drives the Phase 1 handler with arbitrary
// decoded message streams, in both roles, and asserts the machine never
// panics and never corrupts its related-set invariants. It lives here
// rather than in internal/msg because msg cannot import protocol (the
// dependency points the other way).
func FuzzMachineHandleMessage(f *testing.F) {
	seedMsgs := []msg.Message{
		msg.NeighNumRequest(2, 1),
		msg.NeighNumResponse(2, 1, 80),
		msg.ValueRequest(2, 1),
		msg.ValueResponse(2, 1, 123.5, 42.25),
		msg.ValueResponse(3, 1, -1, 1e300),
		msg.NewQuery(5, 1, 99, 777, 7),
		{Kind: msg.KindPing, From: 7, To: 1},
	}
	var stream []byte
	for i := range seedMsgs {
		seed := msg.Encode(nil, &seedMsgs[i])
		f.Add(seed, false, uint16(10))
		f.Add(seed, true, uint16(500))
		stream = msg.Encode(stream, &seedMsgs[i])
	}
	f.Add(stream, false, uint16(100))
	f.Add(stream, true, uint16(100))
	f.Add([]byte{}, false, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, isSuper bool, nowRaw uint16) {
		p := DefaultParams()
		p.MaxRelatedSet = 4 // small cap so the fuzzer reaches eviction fast
		p.RequestTimeout = 3
		p.MaxRetries = 1
		ma := NewMachine(&p, 0)
		ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{2: true, 3: true}}
		self := Self{ID: 1, Capacity: 10, Age: 5, IsSuper: isSuper, LeafDegree: 3}
		now := Time(nowRaw)

		// Feed the whole stream of decodable frames through the handler,
		// advancing the clock so pruning and extrapolation paths run.
		// Interleave the pending-request lifecycle: register an expectation
		// toward each sender (a no-op for non-request kinds) and let the
		// expiry scan run every few frames so timeouts, retries, and
		// abandonment all mix with the deliveries.
		step := 0
		for len(data) > 0 {
			m, n, err := msg.Decode(data)
			if err != nil {
				break
			}
			data = data[n:]
			ma.Expect(m.From, m.Kind, now)
			ma.HandleMessage(self, &m, now, ep)
			if step%3 == 2 {
				ma.ExpirePending(self, now, ep)
			}
			step++
			now++
		}
		ma.ExpirePending(self, now+Time(p.RequestTimeout), ep)

		if bad := ma.CheckInvariants(); bad != "" {
			t.Fatalf("invariants violated: %s", bad)
		}
		if !isSuper && p.MaxRelatedSet > 0 && ma.Size() > p.MaxRelatedSet {
			t.Fatalf("related set %d exceeds cap %d", ma.Size(), p.MaxRelatedSet)
		}
		if ma.PendingRequests() > 2*p.MaxRelatedSet {
			t.Fatalf("pending table %d exceeds bound %d",
				ma.PendingRequests(), 2*p.MaxRelatedSet)
		}
		// The decision path must also tolerate whatever state the stream
		// built up.
		rng := &fixedRand{v: 0.5}
		_ = ma.Evaluate(self, now+Time(p.DemotionCooldown), 20, 10, rng)
		_, _ = ma.AvgLnn()
		if bad := ma.CheckInvariants(); bad != "" {
			t.Fatalf("invariants violated after evaluate: %s", bad)
		}
	})
}

// FuzzPendingFaults drives the pending-request table alone with an
// arbitrary op script — expectations, (possibly duplicated) responses,
// clock jumps, expiry scans, peer drops, and role resets — and asserts
// the table bookkeeping never desynchronizes and the timeout counters
// stay monotone. Each script byte is one op: the low 3 bits pick the op,
// the rest parameterize it.
func FuzzPendingFaults(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x0a, 0x03, 0x1c, 0x05, 0x0e, 0x07})
	f.Add([]byte{0x00, 0x08, 0x10, 0x18, 0x03, 0x03, 0x03})
	f.Add([]byte{0x06, 0x00, 0x04, 0x02, 0x05})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, script []byte) {
		p := DefaultParams()
		p.MaxRelatedSet = 3 // pending cap 6
		p.RequestTimeout = 4
		p.MaxRetries = 2
		ma := NewMachine(&p, 0)
		ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{1: true, 2: true, 3: true}}
		self := Self{ID: 1, Capacity: 10, Age: 5}
		now := Time(0)
		var lastRetries, lastDrops uint64

		for _, op := range script {
			peer := msg.PeerID(op>>3&0x07) + 1
			switch op & 0x07 {
			case 0: // expect a NeighNum answer
				ma.Expect(peer, msg.KindNeighNumRequest, now)
			case 1: // expect a Value answer
				ma.Expect(peer, msg.KindValueRequest, now)
			case 2: // deliver a NeighNum response
				nn := msg.NeighNumResponse(peer, 1, int(op))
				ma.HandleMessage(self, &nn, now, ep)
			case 3: // deliver a Value response, duplicated
				vr := msg.ValueResponse(peer, 1, float64(op), 1)
				ma.HandleMessage(self, &vr, now, ep)
				ma.HandleMessage(self, &vr, now, ep)
			case 4: // clock jump
				now += Time(op >> 3)
			case 5: // expiry scan
				ma.ExpirePending(self, now, ep)
			case 6: // the peer leaves
				ma.Drop(peer)
			case 7: // role change
				ma.Reset(now)
			}
			if bad := ma.CheckInvariants(); bad != "" {
				t.Fatalf("op %#02x: %s", op, bad)
			}
			if r, d := ma.TimeoutRetries(), ma.TimeoutDrops(); r < lastRetries || d < lastDrops {
				t.Fatalf("op %#02x: counters went backwards (%d,%d) -> (%d,%d)",
					op, lastRetries, lastDrops, r, d)
			} else {
				lastRetries, lastDrops = r, d
			}
		}
		if ma.PendingRequests() > 2*p.MaxRelatedSet {
			t.Fatalf("pending table %d over bound %d",
				ma.PendingRequests(), 2*p.MaxRelatedSet)
		}
	})
}
