package protocol

import (
	"testing"

	"dlm/internal/msg"
)

// BenchmarkDecide measures one full Phase 2-4 evaluation against a
// related set of k_l = 80 entries (the Table 2 operating point).
func BenchmarkDecide(b *testing.B) {
	p := DefaultParams()
	now := Time(1000)
	ma := NewMachine(&p, 0)
	for i := 0; i < 80; i++ {
		ma.Observe(msg.PeerID(i+1), float64(1+i%100), float64(10+i%200), now, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ma.Decide(50, 120, now, 90, 80, i%2 == 0)
	}
}

// BenchmarkEvaluateStandalone measures the allocation-visible standalone
// path used by hosts that keep their own neighbor state.
func BenchmarkEvaluateStandalone(b *testing.B) {
	p := DefaultParams()
	related := make([]Candidate, 80)
	for i := range related {
		related[i] = Candidate{Capacity: float64(1 + i%100), Age: float64(10 + i%200)}
	}
	self := Candidate{Capacity: 50, Age: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.EvaluateStandalone(self, related, 90, 80, i%2 == 0)
	}
}

// BenchmarkObserve measures related-set maintenance under the FIFO cap.
func BenchmarkObserve(b *testing.B) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma.Observe(msg.PeerID(i%200), 50, 100, Time(i), 64)
	}
}

// BenchmarkHandleValueResponse measures the Phase 1 hot path end to end:
// decode-free message dispatch into the related set.
func BenchmarkHandleValueResponse(b *testing.B) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	ep := &captureEndpoint{}
	self := Self{ID: 1, Capacity: 10, Age: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := msg.ValueResponse(msg.PeerID(2+i%200), 1, 50, 100)
		ma.HandleMessage(self, &m, Time(i), ep)
	}
}
