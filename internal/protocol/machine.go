package protocol

import (
	"dlm/internal/flatidx"
	"dlm/internal/msg"
)

// Endpoint is the transport surface a Machine needs: a way to emit a
// protocol frame addressed by the message's To field, and one membership
// query for the Phase 1 race filter (a super only admits ValueResponses
// from peers that are still its leaf neighbors). The simulation plane
// implements it over overlay.Network; the live plane over channels.
type Endpoint interface {
	// Send emits one protocol frame. The implementation routes by m.To;
	// delivery may be synchronous (the simulation at zero latency
	// re-enters HandleMessage inline), so implementations and callers must
	// tolerate reentrancy.
	Send(m msg.Message)
	// IsLeafNeighbor reports whether id is currently a leaf neighbor of
	// this endpoint's peer.
	IsLeafNeighbor(id msg.PeerID) bool
}

// Rand is the uniform random source a Machine draws from for the rate
// limit. Both planes pass deterministic per-plane sources.
type Rand interface {
	// Float64 returns a uniform draw in [0,1).
	Float64() float64
}

// Bernoulli reports true with probability p (clamped to [0,1]). At the
// clamp boundaries it consumes no draw — a property the simulation's
// determinism baselines depend on, so every plane must gate draws the
// same way.
func Bernoulli(r Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Self is the peer-local view the host supplies per call: the Machine
// stores only protocol state, not identity, so one host can keep its peer
// bookkeeping wherever its plane requires.
type Self struct {
	ID       msg.PeerID
	Capacity float64
	// Age is the peer's own age at the call's now, in protocol time units.
	Age float64
	// IsSuper selects the super-peer handler/decision rules.
	IsSuper bool
	// LeafDegree is the current number of leaf neighbors (l_nn for a
	// super; unused for a leaf).
	LeafDegree int
}

// Action is the role switch an evaluation requests. The host executes it
// (a demotion may still be refused, e.g. for the last super-peer) and
// owns the success accounting.
type Action uint8

const (
	// ActionNone requests no role change.
	ActionNone Action = iota
	// ActionPromote requests leaf -> super.
	ActionPromote
	// ActionDemote requests super -> leaf.
	ActionDemote
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionPromote:
		return "promote"
	case ActionDemote:
		return "demote"
	}
	return "action(?)"
}

// EvalResult reports one Evaluate call. Evaluated is true when the
// comparison actually ran (cooldowns passed, enough evidence); Eligible
// when the thresholds cleared; Action when the rate limit also let the
// switch through.
type EvalResult struct {
	Evaluated bool
	Eligible  bool
	Action    Action
	// Lnn is the l_nn estimate the decision used (average reported for a
	// leaf, smoothed own degree for a super); zero when not Evaluated.
	Lnn      float64
	Decision Decision
}

// relEntry is one member of a peer's related set G: a snapshot of another
// peer's capacity and age. Capacity is constant for a session; age grows
// linearly, so we store the inferred join time and extrapolate — reported
// information stays fresh without re-exchange.
type relEntry struct {
	capacity float64
	// joinTime is reportTime - reportedAge.
	joinTime Time
	// lastSeen is when we last heard from this peer (for window pruning).
	lastSeen Time
	// seq is the entry's insertion rank (from Machine.relSeq); it survives
	// re-observation, so the minimum-seq entry is the set's oldest member
	// and eviction stays FIFO even though removal swap-deletes.
	seq uint64
}

// age returns the extrapolated age at time now.
func (e *relEntry) age(now Time) float64 { return float64(now - e.joinTime) }

// lnnReport is a super-peer's reported leaf-neighbor count.
type lnnReport struct {
	lnn  int
	when Time
}

// Machine is one peer's DLM protocol state: the related set G with FIFO
// eviction, the l_nn reports, and the cooldown/refresh/smoothing clocks. It
// is not safe for concurrent use; each plane serializes access its own
// way (the simulation is single-threaded, the live plane holds the peer
// lock).
//
// A role change resets the state (see Reset): the related set of a leaf
// (supers contacted since it became a leaf) and of a super (current leaf
// neighbors) have different semantics, so neither survives the
// transition.
// Field order is the per-tick evaluation path's access order, hottest
// first: the cooldown gate (p, lastChange), prune's fast path
// (relMinSeen), AvgLnn (lnnSum, lnnCount) and counting's slice header
// (related) all sit in the machine's first cache line, so the common
// "nothing to do this tick" visit touches one line instead of three.
// With machines stored inline in the host's slot-ordered arena the tick
// walk then streams the hot prefix sequentially.
type Machine struct {
	p *Params

	// lastChange is the time of the last role change (or join).
	lastChange Time

	// relMinSeen is a lower bound on the minimum lastSeen in the related
	// set: insertions can only lower it, refreshes and removals only raise
	// the true minimum above it, and prune's scans recompute it exactly.
	// While now-relMinSeen is within the prune window no entry can have
	// expired, so prune skips its scan entirely — the common case for a
	// leaf that heard from any super recently.
	relMinSeen Time

	// lnnSum and lnnCount maintain Σ lnn / #reports over the l_nn table
	// senders currently in the related set, so AvgLnn is O(1); integer
	// arithmetic keeps it bit-identical to the scan it replaced. Every
	// mutation of either table updates the pair while membership is
	// still observable.
	lnnSum   int64
	lnnCount int

	// The related set is two parallel slices: relOrder carries the IDs,
	// related the value entries, in deterministic insertion/swap-delete
	// order (a pure function of the operation history). Removal
	// swap-deletes — FIFO eviction finds the oldest entry by seq instead
	// of slice position, so the bound stays exact while Drop is O(1).
	//
	// Lookups are linear scans while the set is small (a scan over dense
	// memory beats a map probe at leaf sizes, and costs zero allocations),
	// but a super's G is its leaf degree, which million-peer bootstrap
	// drives into the tens of thousands; past relIndexThreshold a
	// position index (a flat open-addressed table, cheaper than a map on
	// this probe-only pattern) takes over and every lookup is O(1). Only
	// large supers ever pay the index allocation.
	related  []relEntry
	relOrder []msg.PeerID // deterministic iteration order

	// lastRefresh is the last time this leaf refreshed its neighbors.
	lastRefresh Time

	// lnnSmooth is a super-peer's EWMA of its own leaf degree; see
	// Params.LnnSmoothing.
	lnnSmooth float64
	hasSmooth bool

	relIdx *flatidx.Map
	relSeq uint64

	// The l_nn report table: lnnIDs carries the senders, lnnReps the
	// latest report per sender, position-paired (unordered; removal
	// swap-deletes both). The IDs live in their own dense array because
	// the table is looked up — a scan — on every report receipt; 4-byte
	// keys pack 16 to a cache line where interleaved rows would waste
	// most of each line on the report fields.
	lnnIDs  []msg.PeerID
	lnnReps []lnnReport

	// pending is the outstanding Phase 1 request table (see pending.go):
	// deadlines and retry budgets per (counterpart, pair), in insertion
	// order (deterministic scan order, FIFO eviction). pendScratch is
	// reused by ExpirePending's resend pass.
	pending     []pendingRec
	pendScratch []pendingKey

	// timeoutRetries/timeoutDrops are the cumulative timeout tallies;
	// they survive Reset (transport diagnostics, not protocol state).
	timeoutRetries uint64
	timeoutDrops   uint64
}

// NewMachine returns a Machine bound to p (shared, not copied — hosts
// keep one Params for the population) with the role-change clock starting
// at joined.
func NewMachine(p *Params, joined Time) *Machine {
	return &Machine{p: p, lastChange: joined}
}

// Init rebinds ma exactly as NewMachine initializes a fresh allocation —
// for machines embedded in a host-owned arena rather than heap-allocated
// one by one. It must only run on a machine with no live protocol state
// (a first tenant); recycled machines go through Reset instead, which
// keeps their backing arrays and transport counters.
func (ma *Machine) Init(p *Params, joined Time) {
	*ma = Machine{p: p, lastChange: joined}
}

// relIndexThreshold is the related-set size past which the position
// index is built; below it a linear scan wins (and allocates nothing).
const relIndexThreshold = 32

// relIndex returns id's position in the related set, or -1. During
// prune's compaction the indexed positions are transiently stale; the
// only caller in that window (delLnn) uses the result strictly as a
// membership test, which the index answers correctly throughout.
func (ma *Machine) relIndex(id msg.PeerID) int {
	if ma.relIdx != nil {
		if i, ok := ma.relIdx.Get(uint32(id)); ok {
			return int(i)
		}
		return -1
	}
	for i, v := range ma.relOrder {
		if v == id {
			return i
		}
	}
	return -1
}

// addRel appends a new related-set entry, growing the position index
// when the set crosses the threshold. The first append sizes for a
// leaf's typical working set so million-machine populations skip the
// 1→2→4→8 doubling ladder.
func (ma *Machine) addRel(id msg.PeerID, e relEntry) {
	if ma.relOrder == nil {
		ma.relOrder = make([]msg.PeerID, 0, 8)
		ma.related = make([]relEntry, 0, 8)
	}
	ma.relOrder = append(ma.relOrder, id)
	ma.related = append(ma.related, e)
	if len(ma.relOrder) == 1 || e.lastSeen < ma.relMinSeen {
		ma.relMinSeen = e.lastSeen
	}
	if ma.relIdx != nil {
		ma.relIdx.Put(uint32(id), int32(len(ma.relOrder)-1))
	} else if len(ma.relOrder) > relIndexThreshold {
		ma.rebuildRelIdx()
	}
}

// removeRelAt swap-deletes the related-set entry at i and patches the
// position index. It does not touch the l_nn table; callers run delLnn
// first, while membership is still observable.
func (ma *Machine) removeRelAt(i int) {
	id := ma.relOrder[i]
	last := len(ma.relOrder) - 1
	moved := ma.relOrder[last]
	ma.relOrder[i] = moved
	ma.related[i] = ma.related[last]
	ma.relOrder = ma.relOrder[:last]
	ma.related = ma.related[:last]
	if ma.relIdx != nil {
		ma.relIdx.Delete(uint32(id))
		if i < last {
			ma.relIdx.Put(uint32(moved), int32(i))
		}
	}
}

// rebuildRelIdx (re)derives the position index from relOrder.
func (ma *Machine) rebuildRelIdx() {
	if ma.relIdx == nil {
		ma.relIdx = new(flatidx.Map)
	} else {
		ma.relIdx.Clear()
	}
	for i, id := range ma.relOrder {
		ma.relIdx.Put(uint32(id), int32(i))
	}
}

// lnnIndex returns id's position in the l_nn report table, or -1.
func (ma *Machine) lnnIndex(id msg.PeerID) int {
	for i, v := range ma.lnnIDs {
		if v == id {
			return i
		}
	}
	return -1
}

// putLnn stores (or replaces) the l_nn report from id.
func (ma *Machine) putLnn(id msg.PeerID, r lnnReport) {
	if i := ma.lnnIndex(id); i >= 0 {
		if ma.relIndex(id) >= 0 {
			ma.lnnSum += int64(r.lnn) - int64(ma.lnnReps[i].lnn)
		}
		ma.lnnReps[i] = r
		return
	}
	if ma.relIndex(id) >= 0 {
		ma.lnnSum += int64(r.lnn)
		ma.lnnCount++
	}
	if ma.lnnIDs == nil {
		ma.lnnIDs = make([]msg.PeerID, 0, 4)
		ma.lnnReps = make([]lnnReport, 0, 4)
	}
	ma.lnnIDs = append(ma.lnnIDs, id)
	ma.lnnReps = append(ma.lnnReps, r)
}

// delLnn removes id's l_nn report if present (swap-delete: the table has
// no observable iteration order). It must run while id's related-set
// membership is still intact, so the aggregate correction sees the same
// membership the addition saw.
func (ma *Machine) delLnn(id msg.PeerID) {
	i := ma.lnnIndex(id)
	if i < 0 {
		return
	}
	if ma.relIndex(id) >= 0 {
		ma.lnnSum -= int64(ma.lnnReps[i].lnn)
		ma.lnnCount--
	}
	last := len(ma.lnnIDs) - 1
	ma.lnnIDs[i] = ma.lnnIDs[last]
	ma.lnnReps[i] = ma.lnnReps[last]
	ma.lnnIDs = ma.lnnIDs[:last]
	ma.lnnReps = ma.lnnReps[:last]
}

// Params returns the parameter set the machine is bound to.
func (ma *Machine) Params() *Params { return ma.p }

// Reset clears all protocol state after a role change at time now. The
// slices' backing arrays are reused, not reallocated.
func (ma *Machine) Reset(now Time) {
	ma.related = ma.related[:0]
	ma.relOrder = ma.relOrder[:0]
	if ma.relIdx != nil {
		ma.relIdx.Clear()
	}
	ma.relSeq = 0
	ma.relMinSeen = 0 // addRel re-seeds the bound on the first entry
	ma.lnnIDs = ma.lnnIDs[:0]
	ma.lnnReps = ma.lnnReps[:0]
	ma.lnnSum = 0
	ma.lnnCount = 0
	ma.pending = ma.pending[:0]
	ma.lastChange = now
	ma.lastRefresh = 0
	ma.lnnSmooth = 0
	ma.hasSmooth = false
}

// LastChange returns the time of the last role change (or join).
func (ma *Machine) LastChange() Time { return ma.lastChange }

// RefreshAt returns the time of the last RefreshDue stamp (zero if the
// leaf has never refreshed since its last role change). External refresh
// schedulers use it to compute the next due time without re-deriving the
// stamp from message history.
func (ma *Machine) RefreshAt() Time { return ma.lastRefresh }

// ConnectExchange returns the event-driven Phase 1 frames for one new
// leaf-super connection: the NeighNum pair (leaf asks super for l_nn) and
// the Value pair in both directions (each endpoint learns the other's
// capacity and age; the leaf-to-super direction is Table 1's, the reverse
// is the reconstruction documented in DESIGN.md, without which a leaf
// cannot run Phase 3). The host sends each frame from its own side of the
// link; the order is part of the determinism contract.
func ConnectExchange(leaf, super msg.PeerID) [3]msg.Message {
	return [3]msg.Message{
		msg.NeighNumRequest(leaf, super),
		msg.ValueRequest(super, leaf),
		msg.ValueRequest(leaf, super),
	}
}

// RefreshExchange returns the freshness frames a leaf re-sends to one of
// its current supers when RefreshDue fires: a new l_nn request and a new
// value request (the super's age/capacity refresh keeps μ and G(l)
// current on long-lived links).
func RefreshExchange(leaf, super msg.PeerID) [2]msg.Message {
	return [2]msg.Message{
		msg.NeighNumRequest(leaf, super),
		msg.ValueRequest(leaf, super),
	}
}

// HandleMessage runs Phase 1: it answers information requests via ep and
// folds responses into the related set / l_nn reports. Unknown or
// non-DLM kinds are ignored, so hosts can feed their whole inbox through.
func (ma *Machine) HandleMessage(self Self, m *msg.Message, now Time, ep Endpoint) {
	switch m.Kind {
	case msg.KindNeighNumRequest:
		ep.Send(msg.NeighNumResponse(self.ID, m.From, self.LeafDegree))

	case msg.KindNeighNumResponse:
		// The response settles the outstanding request even when its
		// content is then discarded as stale — the counterpart answered.
		ma.clearPending(m.From, pairNeighNum)
		if self.IsSuper {
			return // stale response after promotion
		}
		ma.putLnn(m.From, lnnReport{lnn: int(m.NeighNum), when: now})

	case msg.KindValueRequest:
		ep.Send(msg.ValueResponse(self.ID, m.From, self.Capacity, self.Age))

	case msg.KindValueResponse:
		ma.clearPending(m.From, pairValue)
		// A super's G is restricted to current leaf neighbors; drop
		// responses that raced with a disconnect or a layer change.
		if self.IsSuper && !ep.IsLeafNeighbor(m.From) {
			return
		}
		// Bounded-sanity defense: an implausible claim (capacity above the
		// bound, or an age exceeding the clock) is not admitted to G. The
		// request is still settled above — the counterpart *answered*, it
		// just isn't believed.
		if ma.p.DefenseMaxCapacity > 0 &&
			(m.Capacity > ma.p.DefenseMaxCapacity || m.Age > float64(now)) {
			return
		}
		maxSize := 0
		if !self.IsSuper {
			maxSize = ma.p.MaxRelatedSet
		}
		ma.observe(m.From, m.Capacity, m.Age, now, maxSize)
	}
}

// Evaluate runs Phases 2-4 for the peer: cooldown gates, evidence gates,
// the scaled comparison against G, and the deficit-proportional rate
// limit (drawing from rng only when a switch is eligible — the draw
// discipline is part of the determinism contract). kl is the protocol
// constant k_l = m·η; eta is η. The returned Action is a request: the
// host executes the role change and owns success accounting.
func (ma *Machine) Evaluate(self Self, now Time, kl, eta float64, rng Rand) EvalResult {
	// The out-param style below exists for the hot path: one EvalResult
	// (Decision included, ~100 bytes) is zeroed and filled in place instead
	// of being built and copied through every return.
	var res EvalResult
	if self.IsSuper {
		ma.evaluateSuper(&res, self, now, kl, eta, rng)
	} else {
		ma.evaluateLeaf(&res, self, now, kl, eta, rng)
	}
	return res
}

// evaluateLeaf decides promotion: the scaled comparison must clear the
// promotion threshold on both metrics, then the rate limit draws.
func (ma *Machine) evaluateLeaf(res *EvalResult, self Self, now Time, kl, eta float64, rng Rand) {
	if now-ma.lastChange < ma.p.DecisionCooldown {
		return
	}
	ma.prune(now, ma.p.LeafWindow)
	if ma.Size() < ma.p.MinRelatedSet {
		return
	}
	lnn, ok := ma.AvgLnn()
	if !ok {
		return
	}
	res.Evaluated = true
	res.Lnn = lnn
	ma.decideInto(&res.Decision, self.Capacity, self.Age, now, lnn, kl, true)
	if res.Decision.ShouldSwitch {
		res.Eligible = true
		// Bounded-sanity defense, promotion side: a leaf whose own claim
		// is implausible would have its promotion rejected by every honest
		// counterpart, so it never switches. The gate sits before the rate
		// limit and consumes no draw, keeping defense-off byte-identity.
		if ma.p.DefenseMaxCapacity > 0 &&
			(self.Capacity > ma.p.DefenseMaxCapacity || self.Age > float64(now)) {
			return
		}
		if Bernoulli(rng, ma.p.SwitchProbability(lnn, kl, eta, res.Decision.YCapa, true)) {
			res.Action = ActionPromote
		}
	}
}

// evaluateSuper decides demotion. A super that has held no leaves for
// EmptyGDemoteAfter demotes outright (bypassing the comparison, the
// evaluation accounting, and the rate limit): it cannot compare and is
// not serving the backbone.
func (ma *Machine) evaluateSuper(res *EvalResult, self Self, now Time, kl, eta float64, rng Rand) {
	if now-ma.lastChange < ma.p.DecisionCooldown {
		return
	}
	if ma.Size() == 0 {
		if ma.p.EmptyGDemoteAfter > 0 && now-ma.lastChange >= ma.p.EmptyGDemoteAfter && self.LeafDegree == 0 {
			res.Action = ActionDemote
		}
		return
	}
	if ma.Size() < ma.p.MinRelatedSet {
		return
	}
	if now-ma.lastChange < ma.p.DemotionCooldown {
		return
	}
	res.Evaluated = true
	lnn := ma.SmoothLnn(float64(self.LeafDegree))
	res.Lnn = lnn
	ma.decideInto(&res.Decision, self.Capacity, self.Age, now, lnn, kl, false)
	if res.Decision.ShouldSwitch {
		res.Eligible = true
		if Bernoulli(rng, ma.p.SwitchProbability(lnn, kl, eta, res.Decision.YCapa, false)) {
			res.Action = ActionDemote
		}
	}
}

// Decide computes one full Phase 2-4 evaluation against the machine's
// related set without side effects (no pruning, no draws).
func (ma *Machine) Decide(capacity, age float64, now Time, lnn, kl float64, promote bool) Decision {
	var d Decision
	ma.decideInto(&d, capacity, age, now, lnn, kl, promote)
	return d
}

// decideInto is Decide writing into a caller-owned Decision.
func (ma *Machine) decideInto(d *Decision, capacity, age float64, now Time, lnn, kl float64, promote bool) {
	d.Mu, d.XCapa, d.XAge = ma.p.MuScale(lnn, kl)
	d.YCapa, d.YAge = ma.counting(capacity, age, now, d.XCapa, d.XAge)
	ma.p.applyThresholds(d, promote)
}

// counting runs the paper's Phase 3 pseudocode: Y_capa and Y_age are the
// fractions of the related set whose scaled metrics beat the peer's own.
func (ma *Machine) counting(selfCapacity, selfAge float64, now Time, xCapa, xAge float64) (yCapa, yAge float64) {
	n := float64(len(ma.relOrder))
	if n == 0 {
		return 0, 0
	}
	for i := range ma.related {
		e := &ma.related[i]
		if e.capacity*xCapa > selfCapacity {
			yCapa += 1 / n
		}
		if e.age(now)*xAge > selfAge {
			yAge += 1 / n
		}
	}
	return yCapa, yAge
}

// observe records (or refreshes) a related-set entry, enforcing the
// optional FIFO capacity bound.
func (ma *Machine) observe(id msg.PeerID, capacity, age float64, now Time, maxSize int) {
	entry := relEntry{
		capacity: capacity,
		joinTime: now - Time(age),
		lastSeen: now,
	}
	if i := ma.relIndex(id); i >= 0 {
		entry.seq = ma.related[i].seq // re-observation keeps the insertion rank
		ma.related[i] = entry
		return
	}
	if maxSize > 0 && len(ma.relOrder) >= maxSize {
		ma.evictOldest()
	}
	entry.seq = ma.relSeq
	ma.relSeq++
	ma.addRel(id, entry)
	// A NeighNumResponse can land before the ValueResponse that admits its
	// sender into G; the report starts counting toward the average now.
	if i := ma.lnnIndex(id); i >= 0 {
		ma.lnnSum += int64(ma.lnnReps[i].lnn)
		ma.lnnCount++
	}
}

// Observe records a related-set entry directly, for hosts and tests that
// learn about a peer outside a ValueResponse. maxSize as in observe: the
// optional FIFO bound, 0 for unbounded.
func (ma *Machine) Observe(id msg.PeerID, capacity, age float64, now Time, maxSize int) {
	ma.observe(id, capacity, age, now, maxSize)
}

// evictOldest removes the minimum-seq (oldest-inserted) entry. The scan
// is bounded: eviction only ever fires on capped sets (maxSize =
// MaxRelatedSet, a leaf's), never on a super's unbounded G.
func (ma *Machine) evictOldest() {
	if len(ma.relOrder) == 0 {
		return
	}
	oldest := 0
	for i := 1; i < len(ma.related); i++ {
		if ma.related[i].seq < ma.related[oldest].seq {
			oldest = i
		}
	}
	// delLnn before the removal: it corrects lnnSum by membership.
	ma.delLnn(ma.relOrder[oldest])
	ma.removeRelAt(oldest)
}

// Drop removes a related-set entry and its l_nn report (a super
// forgetting a departed leaf, a leaf forgetting a vanished super), along
// with any requests still outstanding toward the peer.
func (ma *Machine) Drop(id msg.PeerID) {
	ma.dropPending(id)
	ma.delLnn(id)
	i := ma.relIndex(id)
	if i < 0 {
		return
	}
	ma.removeRelAt(i)
}

// prune removes entries not seen within window (0 disables). The
// relMinSeen lower bound proves the common case — nothing expired —
// without touching the entries at all; when the bound is stale a
// read-only scan retightens it, and the compacting rewrite starts only
// at the first expired entry.
func (ma *Machine) prune(now Time, window Duration) {
	if window <= 0 || len(ma.related) == 0 {
		return
	}
	if now-ma.relMinSeen <= window {
		// relMinSeen never exceeds the true minimum lastSeen, so no entry
		// can satisfy the strict now-lastSeen > window expiry test.
		return
	}
	i := 0
	minSeen := ma.related[0].lastSeen
	for ; i < len(ma.related); i++ {
		seen := ma.related[i].lastSeen
		if now-seen > window {
			break
		}
		if seen < minSeen {
			minSeen = seen
		}
	}
	if i == len(ma.related) {
		ma.relMinSeen = minSeen // the scan computed the exact minimum
		return
	}
	keep := i
	minSeen = now // upper bound: every kept entry's lastSeen is ≤ now
	for j := 0; j < keep; j++ {
		if seen := ma.related[j].lastSeen; seen < minSeen {
			minSeen = seen
		}
	}
	for ; i < len(ma.relOrder); i++ {
		id := ma.relOrder[i]
		seen := ma.related[i].lastSeen
		if now-seen > window {
			ma.delLnn(id)
			continue
		}
		if seen < minSeen {
			minSeen = seen
		}
		ma.relOrder[keep] = id
		ma.related[keep] = ma.related[i]
		keep++
	}
	ma.relOrder = ma.relOrder[:keep]
	ma.related = ma.related[:keep]
	ma.relMinSeen = minSeen
	if ma.relIdx != nil {
		// The compaction shifted every position past the first expiry;
		// one rebuild costs the same as the scan that just ran.
		ma.rebuildRelIdx()
	}
}

// Size returns |G|.
func (ma *Machine) Size() int { return len(ma.relOrder) }

// Has reports whether id is in the related set.
func (ma *Machine) Has(id msg.PeerID) bool { return ma.relIndex(id) >= 0 }

// Related returns the entry for id as (capacity, extrapolated age at
// now); ok is false when id is not in G.
func (ma *Machine) Related(id msg.PeerID, now Time) (capacity, age float64, ok bool) {
	i := ma.relIndex(id)
	if i < 0 {
		return 0, 0, false
	}
	e := &ma.related[i]
	return e.capacity, e.age(now), true
}

// LnnReport returns the latest l_nn report from id; ok is false when
// none is held.
func (ma *Machine) LnnReport(id msg.PeerID) (lnn int, when Time, ok bool) {
	i := ma.lnnIndex(id)
	if i < 0 {
		return 0, 0, false
	}
	r := ma.lnnReps[i]
	return r.lnn, r.when, true
}

// AvgLnn averages the l_nn reports whose senders are in the related set;
// ok is false when there are none. O(1): the sum and count are maintained
// incrementally at every mutation of either table, and the integer sum is
// exact, so the result is identical to a scan.
func (ma *Machine) AvgLnn() (float64, bool) {
	if ma.lnnCount == 0 {
		return 0, false
	}
	return float64(ma.lnnSum) / float64(ma.lnnCount), true
}

// SmoothLnn folds the current leaf degree into the EWMA and returns the
// smoothed value (Params.LnnSmoothing 0 disables: returns cur with no
// state change). Hosts call it once per tick for every super so the
// smoothing cadence is uniform; Evaluate advances it a second time for
// the peers that actually evaluate, matching the historical cadence the
// determinism baselines pin.
func (ma *Machine) SmoothLnn(cur float64) float64 {
	alpha := ma.p.LnnSmoothing
	if alpha <= 0 {
		return cur
	}
	if !ma.hasSmooth {
		ma.lnnSmooth, ma.hasSmooth = cur, true
		return cur
	}
	ma.lnnSmooth += alpha * (cur - ma.lnnSmooth)
	return ma.lnnSmooth
}

// RefreshDue reports whether the leaf's freshness refresh is due and, if
// so, stamps the refresh clock — the caller must then send
// RefreshExchange frames to each current super. RefreshInterval 0
// disables refresh entirely.
func (ma *Machine) RefreshDue(now Time) bool {
	if ma.p.RefreshInterval <= 0 {
		return false
	}
	if now-ma.lastRefresh < ma.p.RefreshInterval {
		return false
	}
	ma.lastRefresh = now
	return true
}

// CheckInvariants verifies the internal consistency of the related-set
// bookkeeping; it is the oracle of the protocol fuzz tests. It returns a
// description of the first violation found, or "".
func (ma *Machine) CheckInvariants() string {
	if len(ma.related) != len(ma.relOrder) {
		return "len(related) != len(relOrder)"
	}
	seen := make(map[msg.PeerID]bool, len(ma.relOrder))
	for _, id := range ma.relOrder {
		if seen[id] {
			return "duplicate id in relOrder"
		}
		seen[id] = true
	}
	if ma.relIdx != nil {
		if ma.relIdx.Len() != len(ma.relOrder) {
			return "relIdx size disagrees with relOrder"
		}
		for i, id := range ma.relOrder {
			if p, ok := ma.relIdx.Get(uint32(id)); !ok || int(p) != i {
				return "relIdx position disagrees with relOrder"
			}
		}
	}
	clear(seen)
	if len(ma.lnnIDs) != len(ma.lnnReps) {
		return "len(lnnIDs) != len(lnnReps)"
	}
	for _, id := range ma.lnnIDs {
		if seen[id] {
			return "duplicate id in lnn table"
		}
		seen[id] = true
	}
	var sum int64
	var n int
	for i, id := range ma.lnnIDs {
		if ma.relIndex(id) >= 0 {
			sum += int64(ma.lnnReps[i].lnn)
			n++
		}
	}
	if sum != ma.lnnSum || n != ma.lnnCount {
		return "lnnSum/lnnCount disagree with a scan"
	}
	return ma.checkPendingInvariants()
}
