package protocol

import (
	"testing"

	"dlm/internal/msg"
)

// captureEndpoint records sent frames and answers the leaf-neighbor
// query from a fixed set.
type captureEndpoint struct {
	sent          []msg.Message
	leafNeighbors map[msg.PeerID]bool
}

func (e *captureEndpoint) Send(m msg.Message) { e.sent = append(e.sent, m) }
func (e *captureEndpoint) IsLeafNeighbor(id msg.PeerID) bool {
	return e.leafNeighbors[id]
}

// fixedRand returns a constant draw and counts how often it was
// consulted.
type fixedRand struct {
	v     float64
	draws int
}

func (r *fixedRand) Float64() float64 { r.draws++; return r.v }

func TestBernoulliDrawDiscipline(t *testing.T) {
	r := &fixedRand{v: 0.5}
	// The clamp boundaries must not consume a draw — the determinism
	// baselines of the simulation plane depend on it.
	if Bernoulli(r, 0) || Bernoulli(r, -1) {
		t.Fatal("p<=0 returned true")
	}
	if !Bernoulli(r, 1) || !Bernoulli(r, 2) {
		t.Fatal("p>=1 returned false")
	}
	if r.draws != 0 {
		t.Fatalf("boundary probabilities consumed %d draws", r.draws)
	}
	if !Bernoulli(r, 0.6) || Bernoulli(r, 0.4) {
		t.Fatal("interior probability compared wrong")
	}
	if r.draws != 2 {
		t.Fatalf("interior probabilities consumed %d draws, want 2", r.draws)
	}
}

func TestObserveUpdatesInPlace(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	ma.Observe(1, 10, 5, 20, 0)
	ma.Observe(1, 10, 8, 30, 0) // re-observation refreshes
	if ma.Size() != 1 {
		t.Fatalf("size = %d, want 1", ma.Size())
	}
	e := ma.related[ma.relIndex(1)]
	if e.joinTime != 22 { // 30 - 8
		t.Fatalf("joinTime = %v, want 22", e.joinTime)
	}
	if e.lastSeen != 30 {
		t.Fatalf("lastSeen = %v", e.lastSeen)
	}
}

func TestFIFOEviction(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	for i := 0; i < 5; i++ {
		ma.Observe(msg.PeerID(i+1), 1, 1, 0, 3)
	}
	if ma.Size() != 3 {
		t.Fatalf("size = %d, want cap 3", ma.Size())
	}
	if ma.Has(1) {
		t.Fatal("oldest entry not evicted")
	}
	if !ma.Has(5) {
		t.Fatal("newest entry missing")
	}
	// Re-observation of an existing entry must not evict.
	ma.Observe(5, 2, 2, 1, 3)
	if ma.Size() != 3 {
		t.Fatal("re-observation changed size")
	}
	if bad := ma.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
}

func TestDropKeepsOrderConsistent(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	for i := 1; i <= 4; i++ {
		ma.Observe(msg.PeerID(i), 1, 1, 0, 0)
	}
	ma.putLnn(2, lnnReport{lnn: 7})
	ma.Drop(2)
	if ma.Size() != 3 {
		t.Fatalf("size = %d", ma.Size())
	}
	if _, _, ok := ma.LnnReport(2); ok {
		t.Fatal("lnn report survived drop")
	}
	if bad := ma.CheckInvariants(); bad != "" {
		t.Fatal(bad)
	}
	// Dropping an absent id only clears its report.
	ma.putLnn(99, lnnReport{lnn: 1})
	ma.Drop(99)
	if _, _, ok := ma.LnnReport(99); ok {
		t.Fatal("report for absent peer survived drop")
	}
}

func TestPruneWindow(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	ma.Observe(1, 1, 1, 10, 0)
	ma.Observe(2, 1, 1, 50, 0)
	ma.putLnn(1, lnnReport{lnn: 5, when: 10})
	ma.prune(60, 20) // window 20: entry 1 (seen at 10) expires
	if ma.Size() != 1 {
		t.Fatalf("size = %d, want 1", ma.Size())
	}
	if !ma.Has(2) {
		t.Fatal("fresh entry pruned")
	}
	if _, _, ok := ma.LnnReport(1); ok {
		t.Fatal("pruned entry's report survived")
	}
	// Window 0 disables pruning.
	ma.prune(1e9, 0)
	if ma.Size() != 1 {
		t.Fatal("prune with window 0 removed entries")
	}
}

func TestAvgLnn(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	if _, ok := ma.AvgLnn(); ok {
		t.Fatal("empty machine reported lnn")
	}
	ma.Observe(1, 1, 1, 0, 0)
	ma.Observe(2, 1, 1, 0, 0)
	ma.Observe(3, 1, 1, 0, 0)
	ma.putLnn(1, lnnReport{lnn: 10})
	ma.putLnn(2, lnnReport{lnn: 30})
	// Peer 3 has no report; average over available ones.
	got, ok := ma.AvgLnn()
	if !ok || got != 20 {
		t.Fatalf("AvgLnn = %v,%v want 20,true", got, ok)
	}
	// Reports whose entry was dropped don't count.
	ma.Drop(1)
	got, ok = ma.AvgLnn()
	if !ok || got != 30 {
		t.Fatalf("AvgLnn after drop = %v,%v want 30,true", got, ok)
	}
}

func TestSmoothLnn(t *testing.T) {
	p := DefaultParams()
	p.LnnSmoothing = 0.5
	ma := NewMachine(&p, 0)
	if got := ma.SmoothLnn(10); got != 10 {
		t.Fatalf("first smoothed value = %v, want seed 10", got)
	}
	if got := ma.SmoothLnn(20); got != 15 {
		t.Fatalf("EWMA step = %v, want 15", got)
	}
	// Alpha 0 disables: returns cur, no state change.
	p0 := DefaultParams()
	p0.LnnSmoothing = 0
	ma0 := NewMachine(&p0, 0)
	ma0.SmoothLnn(10)
	if got := ma0.SmoothLnn(30); got != 30 {
		t.Fatalf("disabled smoothing returned %v, want 30", got)
	}
}

func TestResetClearsState(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	ma.Observe(1, 1, 1, 5, 0)
	ma.putLnn(1, lnnReport{lnn: 3, when: 5})
	ma.SmoothLnn(10)
	ma.RefreshDue(100)
	ma.Reset(42)
	if ma.Size() != 0 || len(ma.lnnIDs) != 0 {
		t.Fatal("reset kept related state")
	}
	if ma.LastChange() != 42 {
		t.Fatalf("lastChange = %v, want 42", ma.LastChange())
	}
	if ma.hasSmooth || ma.lastRefresh != 0 {
		t.Fatal("reset kept clocks")
	}
}

func TestExchangeFrameOrder(t *testing.T) {
	c := ConnectExchange(2, 1)
	want := []msg.Message{
		msg.NeighNumRequest(2, 1),
		msg.ValueRequest(1, 2),
		msg.ValueRequest(2, 1),
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("connect frame %d = %+v, want %+v", i, c[i], want[i])
		}
	}
	r := RefreshExchange(2, 1)
	if r[0] != msg.NeighNumRequest(2, 1) || r[1] != msg.ValueRequest(2, 1) {
		t.Fatalf("refresh frames wrong: %+v", r)
	}
}

func TestHandleMessageRequests(t *testing.T) {
	p := DefaultParams()
	ma := NewMachine(&p, 0)
	ep := &captureEndpoint{}
	self := Self{ID: 1, Capacity: 40, Age: 12, IsSuper: true, LeafDegree: 7}

	nr := msg.NeighNumRequest(2, 1)
	ma.HandleMessage(self, &nr, 10, ep)
	vr := msg.ValueRequest(2, 1)
	ma.HandleMessage(self, &vr, 10, ep)

	if len(ep.sent) != 2 {
		t.Fatalf("sent %d frames, want 2", len(ep.sent))
	}
	if got := ep.sent[0]; got.Kind != msg.KindNeighNumResponse || got.To != 2 || got.NeighNum != 7 {
		t.Fatalf("neigh-num response = %+v", got)
	}
	if got := ep.sent[1]; got.Kind != msg.KindValueResponse || got.To != 2 || got.Capacity != 40 || got.Age != 12 {
		t.Fatalf("value response = %+v", got)
	}
}

func TestHandleMessageResponses(t *testing.T) {
	p := DefaultParams()
	ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{3: true}}

	// A leaf records l_nn reports and values (FIFO-capped).
	leaf := NewMachine(&p, 0)
	leafSelf := Self{ID: 1, Capacity: 10, Age: 5}
	nn := msg.NeighNumResponse(2, 1, 9)
	leaf.HandleMessage(leafSelf, &nn, 10, ep)
	if lnn, when, ok := leaf.LnnReport(2); !ok || lnn != 9 || when != 10 {
		t.Fatalf("leaf lnn report = %d,%v,%v", lnn, when, ok)
	}
	vv := msg.ValueResponse(2, 1, 50, 20)
	leaf.HandleMessage(leafSelf, &vv, 10, ep)
	if cap, age, ok := leaf.Related(2, 10); !ok || cap != 50 || age != 20 {
		t.Fatalf("leaf related entry = %v,%v,%v", cap, age, ok)
	}

	// A super ignores stale l_nn responses (sent while it was a leaf) and
	// value responses from peers that are no longer leaf neighbors.
	super := NewMachine(&p, 0)
	superSelf := Self{ID: 1, Capacity: 10, Age: 5, IsSuper: true}
	super.HandleMessage(superSelf, &nn, 10, ep)
	if _, _, ok := super.LnnReport(2); ok {
		t.Fatal("super recorded stale l_nn response")
	}
	super.HandleMessage(superSelf, &vv, 10, ep) // from 2: not a leaf neighbor
	if super.Has(2) {
		t.Fatal("super recorded value from non-neighbor")
	}
	vn := msg.ValueResponse(3, 1, 50, 20)
	super.HandleMessage(superSelf, &vn, 10, ep) // from 3: current leaf neighbor
	if !super.Has(3) {
		t.Fatal("super dropped value from current leaf neighbor")
	}

	// Non-DLM kinds are ignored.
	q := msg.NewQuery(2, 1, 7, 7, 3)
	leaf.HandleMessage(leafSelf, &q, 10, ep)
	if leaf.Size() != 1 {
		t.Fatal("query mutated related set")
	}
}

func TestRefreshScheduling(t *testing.T) {
	p := DefaultParams()
	p.RefreshInterval = 30
	ma := NewMachine(&p, 0)
	if ma.RefreshDue(10) {
		t.Fatal("refresh due before the interval elapsed")
	}
	if !ma.RefreshDue(30) {
		t.Fatal("refresh not due at the interval")
	}
	if ma.RefreshDue(45) {
		t.Fatal("refresh due again before the next interval")
	}
	if !ma.RefreshDue(60) {
		t.Fatal("refresh not due at the second interval")
	}
	// A role change resets the refresh clock.
	ma.Reset(100)
	if !ma.RefreshDue(130) {
		t.Fatal("refresh not due after reset + interval")
	}
	// Interval 0 disables refresh entirely.
	p0 := DefaultParams()
	p0.RefreshInterval = 0
	ma0 := NewMachine(&p0, 0)
	if ma0.RefreshDue(1e9) {
		t.Fatal("refresh fired with interval 0")
	}
}

// testEvalParams returns params whose gates are easy to reason about in
// the cooldown tests: deterministic switching, no smoothing.
func testEvalParams() Params {
	p := DefaultParams()
	p.RateLimit = false
	p.LnnSmoothing = 0
	p.DecisionCooldown = 5
	p.DemotionCooldown = 100
	p.EmptyGDemoteAfter = 30
	return p
}

func TestDecisionCooldownGatesLeaf(t *testing.T) {
	p := testEvalParams()
	ma := NewMachine(&p, 0)
	ma.Observe(2, 1, 1, 1, 0) // one weak super in G
	ma.putLnn(2, lnnReport{lnn: 20, when: 1})
	self := Self{ID: 1, Capacity: 100, Age: 100}
	rng := &fixedRand{v: 0.5}

	if res := ma.Evaluate(self, 3, 20, 10, rng); res.Evaluated {
		t.Fatal("leaf evaluated inside DecisionCooldown")
	}
	res := ma.Evaluate(self, 10, 20, 10, rng)
	if !res.Evaluated || !res.Eligible || res.Action != ActionPromote {
		t.Fatalf("strong leaf after cooldown: %+v", res)
	}
}

func TestDemotionCooldownGatesSuper(t *testing.T) {
	p := testEvalParams()
	ma := NewMachine(&p, 0)
	// A weak super among strong leaves: eligible to demote on the
	// comparison whenever the evaluation is allowed to run.
	for i := 0; i < 5; i++ {
		ma.Observe(msg.PeerID(10+i), 100, 100, 1, 0)
	}
	self := Self{ID: 1, Capacity: 1, Age: 1, IsSuper: true, LeafDegree: 20}
	rng := &fixedRand{v: 0.5}

	// Past DecisionCooldown but inside DemotionCooldown: no evaluation.
	res := ma.Evaluate(self, 50, 20, 10, rng)
	if res.Evaluated || res.Action != ActionNone {
		t.Fatalf("super evaluated inside DemotionCooldown: %+v", res)
	}
	// Past DemotionCooldown: the comparison runs and demotes.
	res = ma.Evaluate(self, 150, 20, 10, rng)
	if !res.Evaluated || !res.Eligible || res.Action != ActionDemote {
		t.Fatalf("weak super after DemotionCooldown: %+v", res)
	}
	// A role change restarts the clock.
	ma.Reset(200)
	for i := 0; i < 5; i++ {
		ma.Observe(msg.PeerID(10+i), 100, 100, 201, 0)
	}
	if res := ma.Evaluate(self, 250, 20, 10, rng); res.Evaluated {
		t.Fatal("DemotionCooldown did not restart after Reset")
	}
	if rng.draws != 0 {
		t.Fatalf("deterministic evaluations consumed %d draws", rng.draws)
	}
}

func TestEmptyGDemotion(t *testing.T) {
	p := testEvalParams()
	ma := NewMachine(&p, 0)
	rng := &fixedRand{v: 0.5}
	self := Self{ID: 1, Capacity: 1, Age: 1, IsSuper: true, LeafDegree: 0}

	// Inside the grace period: nothing.
	if res := ma.Evaluate(self, 20, 20, 10, rng); res.Action != ActionNone {
		t.Fatal("empty-G demotion fired inside the grace period")
	}
	// Past it: demote outright, without counting as an evaluation.
	res := ma.Evaluate(self, 40, 20, 10, rng)
	if res.Action != ActionDemote || res.Evaluated || res.Eligible {
		t.Fatalf("empty-G demotion: %+v", res)
	}
	// A super that still has leaf links is spared (G raced empty).
	busy := Self{ID: 1, Capacity: 1, Age: 1, IsSuper: true, LeafDegree: 3}
	if res := ma.Evaluate(busy, 40, 20, 10, rng); res.Action != ActionNone {
		t.Fatal("empty-G demotion fired despite live leaf links")
	}
}

func TestEvaluateRateLimitDraw(t *testing.T) {
	p := testEvalParams()
	p.RateLimit = true
	p.RateGain = 1
	p.SelectionSharpness = 0
	p.EvalProbability = 1
	ma := NewMachine(&p, 0)
	ma.Observe(2, 1, 1, 1, 0)
	ma.putLnn(2, lnnReport{lnn: 30, when: 1}) // r=1.5 -> prob (r-1)/eta = 0.05
	self := Self{ID: 1, Capacity: 100, Age: 100}

	low := &fixedRand{v: 0.01}
	if res := ma.Evaluate(self, 10, 20, 10, low); !res.Eligible || res.Action != ActionPromote {
		t.Fatalf("low draw should promote: %+v", res)
	}
	if low.draws != 1 {
		t.Fatalf("rate limit consumed %d draws, want 1", low.draws)
	}
	high := &fixedRand{v: 0.99}
	if res := ma.Evaluate(self, 11, 20, 10, high); !res.Eligible || res.Action != ActionNone {
		t.Fatalf("high draw should suppress the switch: %+v", res)
	}
}
