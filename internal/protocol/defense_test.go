package protocol

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

// defenseTrace drives one scripted leaf machine for 60 ticks — feeding it
// l_nn reports and value responses from rotating neighbors — and returns
// its full decision transcript. kl=30 against observed l_nn of 30..49
// keeps the rate limit's deficit positive, so eligible peers really draw.
func defenseTrace(seed int64, p Params, selfCap float64) string {
	rng := sim.NewSource(seed).Stream("defense-trace")
	ma := NewMachine(&p, 0)
	ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{}}
	self := Self{ID: 1, Capacity: selfCap}
	var b strings.Builder
	for t := Time(1); t <= 60; t++ {
		self.Age = float64(t)
		from := msg.PeerID(2 + int64(t)%5)
		nn := msg.NeighNumResponse(from, 1, 30+int(int64(t)%20))
		ma.HandleMessage(self, &nn, t, ep)
		vr := msg.ValueResponse(from, 1, 50+float64(int64(t)%7)*300, float64(t)*0.5)
		ma.HandleMessage(self, &vr, t, ep)
		res := ma.Evaluate(self, t, 30, 40, rng)
		fmt.Fprintf(&b, "t=%g size=%d ev=%v el=%v act=%s y=%.4f,%.4f\n",
			t, ma.Size(), res.Evaluated, res.Eligible, res.Action,
			res.Decision.YCapa, res.Decision.YAge)
	}
	return b.String()
}

// TestDefenseOffTracePins pins the scripted decision transcripts of a
// defense-free machine byte-for-byte: DefaultParams must keep producing
// exactly these bytes, and setting DefenseMaxCapacity to an explicit zero
// must be indistinguishable from not having the field at all. The liar
// transcript consumes Bernoulli draws, so the pins are seed-sensitive.
func TestDefenseOffTracePins(t *testing.T) {
	pins := []struct {
		seed         int64
		honest, liar string
	}{
		{3,
			"70e75687a7355b11a05c0c508f59199c442d540f01642f358053824e8669142c",
			"23580a9ba005a547f4a1940a8c4e92548d708248012ae3a71d95ce7e47f9bb12"},
		{17,
			"70e75687a7355b11a05c0c508f59199c442d540f01642f358053824e8669142c",
			"3e5204ba4e2e6ad9a3b2891f25ca34d571fb5751027ae15507359a947ffce547"},
	}
	for _, pin := range pins {
		t.Run(fmt.Sprintf("seed=%d", pin.seed), func(t *testing.T) {
			for name, selfCap := range map[string]float64{"honest": 100, "liar": 1e6} {
				want := pin.honest
				if name == "liar" {
					want = pin.liar
				}
				def := defenseTrace(pin.seed, DefaultParams(), selfCap)
				if got := fmt.Sprintf("%x", sha256.Sum256([]byte(def))); got != want {
					t.Errorf("%s trace drifted: sha256 = %s, want %s\nhead:\n%s",
						name, got, want, def[:200])
				}
				zero := DefaultParams()
				zero.DefenseMaxCapacity = 0
				if got := defenseTrace(pin.seed, zero, selfCap); got != def {
					t.Errorf("%s trace with explicit zero defense differs from default", name)
				}
			}
		})
	}
}

// TestDefenseTransparentForHonestPeers: with every claim inside the bound
// the defense's gates are pure no-ops — the transcript must be
// byte-identical with the defense on and off, draws included.
func TestDefenseTransparentForHonestPeers(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		off := defenseTrace(seed, DefaultParams(), 100)
		p := DefaultParams()
		p.DefenseMaxCapacity = 4000
		if on := defenseTrace(seed, p, 100); on != off {
			t.Errorf("seed %d: honest transcript changed when defense enabled", seed)
		}
	}
}

// TestDefenseBoundsLiarPromotion: a leaf claiming an implausible capacity
// promotes under the default params but must never promote with the
// defense on — while still being scored eligible (the gate sits after
// the comparison, before the rate-limit draw).
func TestDefenseBoundsLiarPromotion(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		off := defenseTrace(seed, DefaultParams(), 1e6)
		if !strings.Contains(off, "act=promote") {
			t.Fatalf("seed %d: liar never promoted with defense off", seed)
		}
		p := DefaultParams()
		p.DefenseMaxCapacity = 4000
		on := defenseTrace(seed, p, 1e6)
		if strings.Contains(on, "act=promote") {
			t.Errorf("seed %d: liar promoted despite the defense", seed)
		}
		if !strings.Contains(on, "el=true") {
			t.Errorf("seed %d: defense suppressed eligibility, want only the switch gated", seed)
		}
	}
}

// TestDefenseRejectsImplausibleObservations: a super's G must not admit
// claims above the capacity bound or ahead of the clock; plausible claims
// pass untouched, and the pending-request accounting still settles either
// way.
func TestDefenseRejectsImplausibleObservations(t *testing.T) {
	cases := []struct {
		name     string
		capacity float64
		age      float64
		admitted bool
	}{
		{"plausible", 3000, 5, true},
		{"capacity above bound", 5000, 5, false},
		{"age ahead of clock", 100, 50, false},
		{"capacity at bound", 4000, 5, true},
		{"age at clock", 100, 10, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			p.DefenseMaxCapacity = 4000
			ma := NewMachine(&p, 0)
			ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{9: true}}
			self := Self{ID: 1, Capacity: 500, Age: 10, IsSuper: true}
			m := msg.ValueResponse(9, 1, tc.capacity, tc.age)
			ma.HandleMessage(self, &m, 10, ep)
			if got := ma.Has(9); got != tc.admitted {
				t.Errorf("admitted = %v, want %v", got, tc.admitted)
			}
		})
	}
}

// TestDefenseSurvivesReset: Reset clears the machine's observations but
// must keep its parameters — including the defense bound.
func TestDefenseSurvivesReset(t *testing.T) {
	p := DefaultParams()
	p.DefenseMaxCapacity = 123
	ma := NewMachine(&p, 0)
	ma.Observe(2, 50, 1, 5, 0)
	ma.Reset(40)
	if ma.Size() != 0 {
		t.Fatalf("Reset left %d observations", ma.Size())
	}
	if got := ma.Params().DefenseMaxCapacity; got != 123 {
		t.Errorf("DefenseMaxCapacity after Reset = %v, want 123", got)
	}
	// And the defense still bites after the reset.
	ep := &captureEndpoint{leafNeighbors: map[msg.PeerID]bool{}}
	m := msg.ValueResponse(3, 1, 1000, 1)
	ma.HandleMessage(Self{ID: 1, Capacity: 50, Age: 41}, &m, 41, ep)
	if ma.Has(3) {
		t.Error("claim above the bound admitted after Reset")
	}
}

// TestDefenseValidate: the new parameter obeys the Params contract.
func TestDefenseValidate(t *testing.T) {
	p := DefaultParams()
	p.DefenseMaxCapacity = -1
	if err := p.Validate(); err == nil {
		t.Error("negative DefenseMaxCapacity validated")
	}
	p.DefenseMaxCapacity = 4000
	if err := p.Validate(); err != nil {
		t.Errorf("DefenseMaxCapacity = 4000 rejected: %v", err)
	}
}
