package protocol

import "math"

// Mu computes the layer-size-ratio skew μ = log(l_nn / k_l), clamped to
// ±MuMax (paper Phase 2). A positive μ means super-peers carry more
// leaves than the optimum k_l = m·η — i.e. there are too few super-peers;
// negative means too many.
func (p *Params) Mu(lnn, kl float64) float64 {
	if lnn <= 0 || kl <= 0 {
		return -p.MuMax // an empty super-layer view reads as "too many supers"
	}
	return clamp(math.Log(lnn/kl), -p.MuMax, p.MuMax)
}

// ScaleFor returns the scale parameters (X_capa, X_age) for the given μ:
// X = clamp(exp(-λ·μ), XMin, XMax). With μ>0 (more supers needed) X drops
// below 1, which lowers both counting variables — making promotion easier
// for leaves and demotion rarer for supers, the four directional rules of
// the paper's Phase 3.
func (p *Params) ScaleFor(mu float64) (xCapa, xAge float64) {
	xCapa = clamp(math.Exp(-p.LambdaCapa*mu), p.XMin, p.XMax)
	if p.LambdaAge == p.LambdaCapa {
		// Identical gains (the default) make the two scales identical;
		// skip the second exp — it is the hottest transcendental in the
		// whole simulation.
		return xCapa, xCapa
	}
	xAge = clamp(math.Exp(-p.LambdaAge*mu), p.XMin, p.XMax)
	return xCapa, xAge
}

// MuScale computes Mu and ScaleFor in one step. With the default unit
// gains (λ_capa = λ_age = 1) and an unclamped μ, the scale is
// exp(-log(l_nn/k_l)) = k_l/l_nn algebraically; computing the division
// directly skips the hottest transcendental on the decision path (and
// rounds once instead of twice). Any other configuration falls back to
// ScaleFor.
func (p *Params) MuScale(lnn, kl float64) (mu, xCapa, xAge float64) {
	mu = p.Mu(lnn, kl)
	if p.LambdaCapa == 1 && p.LambdaAge == 1 &&
		lnn > 0 && kl > 0 && -p.MuMax < mu && mu < p.MuMax {
		x := clamp(kl/lnn, p.XMin, p.XMax)
		return mu, x, x
	}
	xCapa, xAge = p.ScaleFor(mu)
	return mu, xCapa, xAge
}

// ZPromoteCapa returns the capacity promotion threshold for the given μ.
func (p *Params) ZPromoteCapa(mu float64) float64 {
	return clamp(p.ZPromote0+p.BetaPromoteCapa*mu, p.ZMin, p.ZMax)
}

// ZPromoteAge returns the age promotion threshold for the given μ.
func (p *Params) ZPromoteAge(mu float64) float64 {
	return clamp(p.ZPromote0+p.BetaPromoteAge*mu, p.ZMin, p.ZMax)
}

// ZDemoteCapa returns the capacity demotion threshold for the given μ.
func (p *Params) ZDemoteCapa(mu float64) float64 {
	return clamp(p.ZDemote0+p.BetaDemoteCapa*mu, p.ZMin, p.ZMax)
}

// ZDemoteAge returns the age demotion threshold for the given μ.
func (p *Params) ZDemoteAge(mu float64) float64 {
	return clamp(p.ZDemote0+p.BetaDemoteAge*mu, p.ZMin, p.ZMax)
}

// Decision is the outcome of one evaluation, exported for tests and the
// trace pipeline.
type Decision struct {
	Mu           float64
	XCapa, XAge  float64
	YCapa, YAge  float64
	ZCapa, ZAge  float64
	ShouldSwitch bool
}

// Candidate is an explicit related-set member view for standalone
// evaluation (hosts that keep their own neighbor state).
type Candidate struct {
	Capacity float64
	Age      float64
}

// EvaluateStandalone runs Phases 2-4 on explicit inputs: self against the
// related set, with the observed l_nn and the protocol constant k_l.
// promote selects the leaf rule (switch on Y < Z); otherwise the super
// rule (Y > Z) applies. It is pure: no network access, no side effects.
func (p *Params) EvaluateStandalone(self Candidate, related []Candidate, lnn, kl float64, promote bool) Decision {
	var d Decision
	d.Mu, d.XCapa, d.XAge = p.MuScale(lnn, kl)
	n := float64(len(related))
	if n > 0 {
		for _, r := range related {
			if r.Capacity*d.XCapa > self.Capacity {
				d.YCapa += 1 / n
			}
			if r.Age*d.XAge > self.Age {
				d.YAge += 1 / n
			}
		}
	}
	p.applyThresholds(&d, promote)
	return d
}

// applyThresholds fills the Z fields and the Phase 4 switch condition:
// for a leaf (promote = true) the switch condition is Y_capa < Z and
// Y_age < Z; for a super it is Y_capa > Z and Y_age > Z.
func (p *Params) applyThresholds(d *Decision, promote bool) {
	if promote {
		d.ZCapa, d.ZAge = p.ZPromoteCapa(d.Mu), p.ZPromoteAge(d.Mu)
		d.ShouldSwitch = d.YCapa < d.ZCapa && d.YAge < d.ZAge
	} else {
		d.ZCapa, d.ZAge = p.ZDemoteCapa(d.Mu), p.ZDemoteAge(d.Mu)
		d.ShouldSwitch = d.YCapa > d.ZCapa && d.YAge > d.ZAge
	}
}

// SwitchProbability exposes the deficit-proportional rate limit for the
// hosts: the probability with which an eligible peer should actually
// switch, given the observed l_nn, the constant k_l, the target η, the
// peer's capacity counter Y_capa (for selection weighting), and the
// caller's evaluation period share.
func (p *Params) SwitchProbability(lnn, kl, eta, yCapa float64, promote bool) float64 {
	if !p.RateLimit {
		return 1
	}
	gain := p.RateGain
	if gain <= 0 {
		gain = 1
	}
	dgain := p.DemoteRateGain
	if dgain <= 0 {
		dgain = 1
	}
	r := lnn / kl
	var prob float64
	if promote {
		prob = gain * (r - 1) / eta / p.EvalProbability
	} else {
		prob = dgain * (1 - r) / p.EvalProbability
	}
	if k := p.SelectionSharpness; k > 0 {
		// Favor the strongest candidates: a leaf that beats all the
		// supers it knows (Y_capa=0) switches at full probability, a
		// marginal one is damped; symmetrically the weakest supers
		// demote first.
		w := 1 - yCapa
		if !promote {
			w = yCapa
		}
		prob *= math.Pow(w, k)
	}
	if prob < 0 {
		return 0
	}
	if prob > 1 {
		return 1
	}
	return prob
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
