package measure

import (
	"math"
	"testing"
	"testing/quick"

	"dlm/internal/sim"
	"dlm/internal/workload"
)

func TestFitLognormalRecoversParameters(t *testing.T) {
	r := sim.NewSource(1)
	truth := workload.LognormalWithMedian(60, 1.2)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = truth.Sample(r)
	}
	fit, err := FitLognormal(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-math.Log(60)) > 0.05 {
		t.Errorf("mu = %v, want %v", fit.Mu, math.Log(60))
	}
	if math.Abs(fit.Sigma-1.2) > 0.05 {
		t.Errorf("sigma = %v, want 1.2", fit.Sigma)
	}
	if math.Abs(fit.Median()-60) > 5 {
		t.Errorf("median = %v, want ~60", fit.Median())
	}
	if fit.N != 20000 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestFitLognormalErrors(t *testing.T) {
	if _, err := FitLognormal([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitLognormal([]float64{1, -2}); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestFitExponential(t *testing.T) {
	r := sim.NewSource(2)
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = r.Exponential(30)
	}
	fit, err := FitExponential(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean-30) > 1 {
		t.Errorf("mean = %v, want ~30", fit.Mean)
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitExponential([]float64{-1}); err == nil {
		t.Error("negative accepted")
	}
}

func TestCensusFractionsSumToOne(t *testing.T) {
	r := sim.NewSource(3)
	mix := workload.SaroiuBandwidthMixture()
	bws := make([]float64, 10000)
	for i := range bws {
		bws[i] = mix.Sample(r)
	}
	classes := Census(bws)
	var sum float64
	for _, c := range classes {
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// The DSL class should dominate (40% weight in the generator).
	var dsl BandwidthClass
	for _, c := range classes {
		if c.Name == "dsl" {
			dsl = c
		}
	}
	if math.Abs(dsl.Fraction-0.40) > 0.03 {
		t.Fatalf("dsl fraction %v, want ~0.40", dsl.Fraction)
	}
	// Empty census is well-formed.
	for _, c := range Census(nil) {
		if c.Fraction != 0 {
			t.Fatal("empty census has mass")
		}
	}
}

func TestMixtureFromCensusRoundTrip(t *testing.T) {
	r := sim.NewSource(4)
	truth := workload.SaroiuBandwidthMixture()
	bws := make([]float64, 20000)
	for i := range bws {
		bws[i] = truth.Sample(r)
	}
	mix, err := MixtureFromCensus(Census(bws))
	if err != nil {
		t.Fatal(err)
	}
	// The reconstructed mixture's class fractions must match when
	// re-censused.
	rebws := make([]float64, 20000)
	for i := range rebws {
		rebws[i] = mix.Sample(r)
	}
	orig, rec := Census(bws), Census(rebws)
	for i := range orig {
		if math.Abs(orig[i].Fraction-rec[i].Fraction) > 0.02 {
			t.Errorf("class %s fraction drifted: %v -> %v",
				orig[i].Name, orig[i].Fraction, rec[i].Fraction)
		}
	}
	if _, err := MixtureFromCensus(Census(nil)); err == nil {
		t.Error("empty census accepted")
	}
}

func TestCollectorObserve(t *testing.T) {
	var c Collector
	if err := c.Observe(Session{Start: 10, End: 5}); err == nil {
		t.Error("negative-length session accepted")
	}
	if err := c.Observe(Session{Start: 0, End: 30, Bandwidth: 50}); err != nil {
		t.Fatal(err)
	}
	if len(c.Lengths()) != 1 || c.Lengths()[0] != 30 {
		t.Fatalf("lengths %v", c.Lengths())
	}
}

func TestEndToEndCalibration(t *testing.T) {
	// The full pipeline: crawl a ground-truth population, analyze, and
	// rebuild a simulator profile whose key statistics match the truth.
	r := sim.NewSource(5)
	truth := &workload.StaticProfile{
		Capacity: workload.SaroiuBandwidthMixture(),
		Lifetime: workload.LognormalWithMedian(60, 1.2),
	}
	c := SyntheticCrawl(truth, 20000, r)
	report, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if report.Sessions != 20000 {
		t.Fatalf("sessions %d", report.Sessions)
	}
	if math.Abs(report.MedianLifetime-60)/60 > 0.1 {
		t.Errorf("median lifetime %v, want ~60", report.MedianLifetime)
	}
	if report.P90Lifetime <= report.MedianLifetime {
		t.Error("p90 below median")
	}
	if report.UltraFraction <= 0 || report.UltraFraction > 0.1 {
		t.Errorf("ultra fraction %v", report.UltraFraction)
	}

	profile, err := report.Profile()
	if err != nil {
		t.Fatal(err)
	}
	// Compare reconstructed medians to the truth via sampling.
	var truthMedian, fitMedian []float64
	for i := 0; i < 20000; i++ {
		truthMedian = append(truthMedian, truth.Lifetime.Sample(r))
		fitMedian = append(fitMedian, profile.Lifetime.Sample(r))
	}
	tm, fm := median(truthMedian), median(fitMedian)
	if math.Abs(tm-fm)/tm > 0.15 {
		t.Errorf("lifetime medians: truth %v vs fit %v", tm, fm)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// Property: FitLognormal on exp(normal) samples always yields finite
// parameters with Sigma >= 0.
func TestFitLognormalFiniteProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%100)
		r := sim.NewSource(seed)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = math.Exp(r.NormFloat64())
		}
		fit, err := FitLognormal(samples)
		return err == nil && !math.IsNaN(fit.Mu) && !math.IsNaN(fit.Sigma) && fit.Sigma >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualLifetimeIncreasingForHeavyTail(t *testing.T) {
	// The paper's justification for using age to predict longevity:
	// under the measured (lognormal, heavy-tailed) session lengths, a
	// peer that has survived longer has a larger expected remaining
	// lifetime.
	r := sim.NewSource(7)
	truth := workload.LognormalWithMedian(60, 1.2)
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = truth.Sample(r)
	}
	prev := -1.0
	for _, age := range []float64{0, 30, 60, 120, 240} {
		res, ok := ResidualLifetime(samples, age)
		if !ok {
			t.Fatalf("no survivors past age %v", age)
		}
		if !(res > prev) {
			t.Fatalf("residual lifetime not increasing: %v at age %v (prev %v)", res, age, prev)
		}
		prev = res
	}
	// Contrast: for the memoryless exponential, the residual is flat —
	// age carries no signal. (This is why the lifetime *shape* matters
	// to DLM.)
	for i := range samples {
		samples[i] = r.Exponential(60)
	}
	r0, _ := ResidualLifetime(samples, 0)
	r2, _ := ResidualLifetime(samples, 120)
	if math.Abs(r2-r0)/r0 > 0.1 {
		t.Fatalf("exponential residual drifted: %v vs %v", r0, r2)
	}
	if _, ok := ResidualLifetime(samples, 1e12); ok {
		t.Fatal("residual past the maximum should report !ok")
	}
}
