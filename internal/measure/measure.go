// Package measure reproduces the paper's calibration pipeline. The
// authors instrumented two Gnutella clients (one ultra-peer, one leaf)
// with Mutella, logged peer sessions, and configured the simulator from
// the fitted distributions. We cannot join 2004's Gnutella, so this
// package implements the *pipeline*: session logs (synthetic here, but
// the format is what a crawler would produce), maximum-likelihood fits of
// the lifetime distribution, a bandwidth-class census, and reconstruction
// of a workload.Profile from the fits. A round-trip test — generate
// sessions from known parameters, fit, compare — validates the fitters.
package measure

import (
	"fmt"
	"math"
	"sort"

	"dlm/internal/sim"
	"dlm/internal/workload"
)

// Session is one observed peer session — what the instrumented client
// logs when a neighbor connects and later disappears.
type Session struct {
	// Start and End are the observation timestamps in minutes; End-Start
	// is the session length.
	Start, End float64
	// Bandwidth is the advertised capacity in KB/s.
	Bandwidth float64
	// Ultrapeer records the neighbor's role at observation time.
	Ultrapeer bool
	// Queries is the number of queries the neighbor issued during the
	// session.
	Queries int
}

// Length returns the session length in minutes.
func (s Session) Length() float64 { return s.End - s.Start }

// Collector accumulates sessions, mirroring the two-client methodology:
// one vantage point in each layer.
type Collector struct {
	Sessions []Session
}

// Observe appends one session; sessions with non-positive length are
// rejected (clock skew artifacts in real logs).
func (c *Collector) Observe(s Session) error {
	if s.Length() <= 0 {
		return fmt.Errorf("measure: non-positive session length %v", s.Length())
	}
	c.Sessions = append(c.Sessions, s)
	return nil
}

// Lengths returns all session lengths.
func (c *Collector) Lengths() []float64 {
	out := make([]float64, len(c.Sessions))
	for i, s := range c.Sessions {
		out[i] = s.Length()
	}
	return out
}

// LognormalFit is a fitted lognormal distribution.
type LognormalFit struct {
	Mu, Sigma float64
	// N is the sample count behind the fit.
	N int
}

// Median returns exp(Mu).
func (f LognormalFit) Median() float64 { return math.Exp(f.Mu) }

// Dist converts the fit to a samplable distribution.
func (f LognormalFit) Dist() workload.Lognormal {
	return workload.Lognormal{Mu: f.Mu, Sigma: f.Sigma}
}

// FitLognormal computes the closed-form MLE of a lognormal from positive
// samples: Mu is the mean of logs, Sigma their standard deviation.
func FitLognormal(samples []float64) (LognormalFit, error) {
	if len(samples) < 2 {
		return LognormalFit{}, fmt.Errorf("measure: need >= 2 samples, have %d", len(samples))
	}
	var sum float64
	n := 0
	for _, x := range samples {
		if x <= 0 {
			return LognormalFit{}, fmt.Errorf("measure: non-positive sample %v", x)
		}
		sum += math.Log(x)
		n++
	}
	mu := sum / float64(n)
	var ss float64
	for _, x := range samples {
		d := math.Log(x) - mu
		ss += d * d
	}
	return LognormalFit{Mu: mu, Sigma: math.Sqrt(ss / float64(n)), N: n}, nil
}

// ExponentialFit is a fitted exponential distribution.
type ExponentialFit struct {
	Mean float64
	N    int
}

// FitExponential computes the MLE mean of an exponential.
func FitExponential(samples []float64) (ExponentialFit, error) {
	if len(samples) == 0 {
		return ExponentialFit{}, fmt.Errorf("measure: no samples")
	}
	var sum float64
	for _, x := range samples {
		if x < 0 {
			return ExponentialFit{}, fmt.Errorf("measure: negative sample %v", x)
		}
		sum += x
	}
	return ExponentialFit{Mean: sum / float64(len(samples)), N: len(samples)}, nil
}

// BandwidthClass is one rung of the measured capacity census.
type BandwidthClass struct {
	Name     string
	Lo, Hi   float64
	Fraction float64
}

// DefaultClassEdges are the last-mile rungs of the measurement studies.
var DefaultClassEdges = []struct {
	Name   string
	Lo, Hi float64
}{
	{"modem", 0, 8},
	{"dsl", 8, 48},
	{"cable", 48, 160},
	{"t1", 160, 800},
	{"t3+", 800, math.Inf(1)},
}

// Census classifies observed bandwidths into the standard classes.
func Census(bandwidths []float64) []BandwidthClass {
	out := make([]BandwidthClass, len(DefaultClassEdges))
	for i, e := range DefaultClassEdges {
		out[i] = BandwidthClass{Name: e.Name, Lo: e.Lo, Hi: e.Hi}
	}
	if len(bandwidths) == 0 {
		return out
	}
	for _, b := range bandwidths {
		for i := range out {
			if b >= out[i].Lo && b < out[i].Hi {
				out[i].Fraction += 1 / float64(len(bandwidths))
				break
			}
		}
	}
	return out
}

// MixtureFromCensus reconstructs a capacity distribution from a census
// (uniform within each bounded class; the open top class uses 2x its
// lower edge as the cap). Classes with zero mass are skipped.
func MixtureFromCensus(classes []BandwidthClass) (*workload.Mixture, error) {
	var dists []workload.Dist
	var weights []float64
	for _, c := range classes {
		if c.Fraction <= 0 {
			continue
		}
		hi := c.Hi
		if math.IsInf(hi, 1) {
			hi = c.Lo * 2
		}
		lo := c.Lo
		if lo == 0 {
			lo = hi / 4 // the measured floor is never exactly zero
		}
		dists = append(dists, workload.Uniform{Lo: lo, Hi: hi})
		weights = append(weights, c.Fraction)
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("measure: census is empty")
	}
	return workload.NewMixture(dists, weights), nil
}

// Report summarizes a collection the way the paper's §5 does before
// configuring the simulator.
type Report struct {
	Sessions       int
	LifetimeFit    LognormalFit
	MedianLifetime float64
	P90Lifetime    float64
	Classes        []BandwidthClass
	QueriesPerMin  float64
	UltraFraction  float64
}

// Analyze fits the collected sessions.
func (c *Collector) Analyze() (Report, error) {
	var r Report
	r.Sessions = len(c.Sessions)
	lengths := c.Lengths()
	fit, err := FitLognormal(lengths)
	if err != nil {
		return r, err
	}
	r.LifetimeFit = fit
	sorted := append([]float64(nil), lengths...)
	sort.Float64s(sorted)
	r.MedianLifetime = quantile(sorted, 0.5)
	r.P90Lifetime = quantile(sorted, 0.9)

	bws := make([]float64, len(c.Sessions))
	var queries, obsTime float64
	ultras := 0
	for i, s := range c.Sessions {
		bws[i] = s.Bandwidth
		queries += float64(s.Queries)
		obsTime += s.Length()
		if s.Ultrapeer {
			ultras++
		}
	}
	r.Classes = Census(bws)
	if obsTime > 0 {
		r.QueriesPerMin = queries / obsTime
	}
	r.UltraFraction = float64(ultras) / float64(len(c.Sessions))
	return r, nil
}

// Profile reconstructs a simulator workload from the report — the final
// step of the calibration pipeline.
func (r Report) Profile() (*workload.StaticProfile, error) {
	capacity, err := MixtureFromCensus(r.Classes)
	if err != nil {
		return nil, err
	}
	return &workload.StaticProfile{
		Capacity:       capacity,
		Lifetime:       r.LifetimeFit.Dist(),
		ObjectsPerPeer: workload.DefaultObjects(),
	}, nil
}

// ResidualLifetime estimates E[L − a | L > a] from session-length
// samples: the expected remaining lifetime of a peer that has already
// survived to age a. DLM's use of age as a longevity predictor (paper
// Definition 2: "the longer the peer lives, [the] more likely the peer
// will live in the future") is exactly the claim that this function is
// increasing in a, which holds for the heavy-tailed session-length
// distributions the measurement studies report. ok is false when no
// sample exceeds a.
func ResidualLifetime(samples []float64, age float64) (mean float64, ok bool) {
	var sum float64
	n := 0
	for _, l := range samples {
		if l > age {
			sum += l - age
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// SyntheticCrawl generates a session log from a ground-truth profile —
// the stand-in for joining the 2004 Gnutella network. The observation
// span and per-session query rates follow the collector methodology.
func SyntheticCrawl(p workload.Profile, sessions int, r *sim.Source) *Collector {
	c := &Collector{}
	t := 0.0
	for i := 0; i < sessions; i++ {
		s := p.NewPeer(sim.Time(t), r)
		start := t + r.Float64()
		length := s.Lifetime
		if length <= 0 {
			length = 0.1
		}
		c.Sessions = append(c.Sessions, Session{
			Start:     start,
			End:       start + length,
			Bandwidth: s.Capacity,
			Ultrapeer: r.Bernoulli(0.024), // ~1/(1+40) of observed peers
			Queries:   int(r.Exponential(0.3) * length / 60),
		})
		t += 0.2
	}
	return c
}
