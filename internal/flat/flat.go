// Package flat implements the first-generation *pure* unstructured P2P
// system (Gnutella v0.4 style) that super-peer architectures replaced:
// every peer is equal, every peer keeps ~K random neighbors, and queries
// flood across the whole population. The paper's §1/§3 motivation — that
// super-peer systems "scale better by reducing the number of query paths"
// — is reproduced by running the same content workload over this network
// and over the super-peer overlay and comparing search cost at equal
// success (see experiments.SearchEfficiency).
package flat

import (
	"fmt"
	"math"

	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/stats"
	"dlm/internal/workload"
)

// Config parameterizes a flat overlay.
type Config struct {
	// Degree is the target neighbor count per peer (Gnutella clients
	// kept roughly 4-8 connections).
	Degree int
}

// Validate reports a descriptive error for bad parameters.
func (c Config) Validate() error {
	if c.Degree <= 0 {
		return fmt.Errorf("flat: degree %d, want > 0", c.Degree)
	}
	return nil
}

// Peer is one member of the flat overlay.
type Peer struct {
	ID       msg.PeerID
	Capacity float64
	Lifetime float64
	JoinTime sim.Time
	Objects  []msg.ObjectID

	neighbors map[msg.PeerID]struct{}
	alive     bool
}

// Degree returns the peer's current neighbor count.
func (p *Peer) Degree() int { return len(p.neighbors) }

// Alive reports whether the peer is still in the network.
func (p *Peer) Alive() bool { return p.alive }

// Network is a flat unstructured overlay.
type Network struct {
	cfg    Config
	eng    *sim.Engine
	rng    *sim.Source
	peers  map[msg.PeerID]*Peer
	ids    []msg.PeerID // deterministic iteration + O(1) random choice
	index  map[msg.PeerID]int
	nextID msg.PeerID

	traffic stats.Traffic
}

// New creates an empty flat overlay; it panics on an invalid config.
func New(eng *sim.Engine, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		cfg:   cfg,
		eng:   eng,
		rng:   eng.Rand().Stream("flat"),
		peers: make(map[msg.PeerID]*Peer),
		index: make(map[msg.PeerID]int),
	}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Size returns the live population.
func (n *Network) Size() int { return len(n.peers) }

// Traffic returns the message tallies.
func (n *Network) Traffic() stats.Traffic { return n.traffic.Snapshot() }

// Peer resolves a live peer by ID, or nil.
func (n *Network) Peer(id msg.PeerID) *Peer { return n.peers[id] }

// Join adds a peer and connects it to up to Degree random neighbors.
func (n *Network) Join(capacity, lifetime float64, objects []msg.ObjectID) *Peer {
	n.nextID++
	p := &Peer{
		ID:        n.nextID,
		Capacity:  capacity,
		Lifetime:  lifetime,
		JoinTime:  n.eng.Now(),
		Objects:   objects,
		neighbors: make(map[msg.PeerID]struct{}),
		alive:     true,
	}
	n.peers[p.ID] = p
	n.index[p.ID] = len(n.ids)
	n.ids = append(n.ids, p.ID)
	n.connectRandom(p, n.cfg.Degree)
	return p
}

// Leave removes the peer and its links.
func (n *Network) Leave(p *Peer) {
	if !p.alive {
		return
	}
	p.alive = false
	for qid := range p.neighbors {
		if q := n.peers[qid]; q != nil {
			delete(q.neighbors, p.ID)
		}
	}
	p.neighbors = nil
	i := n.index[p.ID]
	last := len(n.ids) - 1
	if i != last {
		moved := n.ids[last]
		n.ids[i] = moved
		n.index[moved] = i
	}
	n.ids = n.ids[:last]
	delete(n.index, p.ID)
	delete(n.peers, p.ID)
}

// Repair raises under-connected peers back toward the target degree.
func (n *Network) Repair() {
	for _, id := range append([]msg.PeerID(nil), n.ids...) {
		p := n.peers[id]
		if p != nil && p.alive && p.Degree() < n.cfg.Degree {
			n.connectRandom(p, n.cfg.Degree)
		}
	}
}

func (n *Network) connectRandom(p *Peer, want int) {
	attempts := 0
	for p.Degree() < want && attempts < 8*want {
		attempts++
		if len(n.ids) <= 1 {
			return
		}
		qid := n.ids[n.rng.Intn(len(n.ids))]
		if qid == p.ID {
			continue
		}
		if _, dup := p.neighbors[qid]; dup {
			continue
		}
		q := n.peers[qid]
		p.neighbors[qid] = struct{}{}
		q.neighbors[p.ID] = struct{}{}
	}
}

// RandomPeer returns a uniformly random live peer, or nil.
func (n *Network) RandomPeer() *Peer {
	if len(n.ids) == 0 {
		return nil
	}
	return n.peers[n.ids[n.rng.Intn(len(n.ids))]]
}

// Result summarizes one flat-network flood.
type Result struct {
	Found        bool
	FirstHitHops int
	QueryMsgs    uint64
	HitMsgs      uint64
	PeersReached int
}

// Flood runs one query flood from source with the given TTL. Every peer
// checks only its own local storage (no indexes in a pure system) and
// relays to all neighbors except the sender — the v0.4 protocol.
func (n *Network) Flood(source *Peer, obj msg.ObjectID, ttl int) *Result {
	res := &Result{FirstHitHops: -1}
	type item struct {
		id   msg.PeerID
		from msg.PeerID
		ttl  int
		hops int
	}
	visited := map[msg.PeerID]bool{source.ID: true}
	queue := []item{{id: source.ID, from: msg.NoPeer, ttl: ttl, hops: 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		p := n.peers[it.id]
		if p == nil || !p.alive {
			continue
		}
		res.PeersReached++
		for _, o := range p.Objects {
			if o == obj {
				if !res.Found {
					res.Found = true
					res.FirstHitHops = it.hops
				}
				// The hit travels the inverse path: hops messages.
				res.HitMsgs += uint64(it.hops)
				hit := msg.NewQueryHit(p.ID, it.from, 1, obj, p.ID, uint8(it.hops))
				for h := 0; h < it.hops; h++ {
					n.traffic.Record(&hit)
				}
				break
			}
		}
		if it.ttl <= 1 {
			continue
		}
		for qid := range p.neighbors {
			if qid == it.from {
				continue
			}
			res.QueryMsgs++
			q := msg.NewQuery(p.ID, qid, 1, obj, uint8(it.ttl-1))
			n.traffic.Record(&q)
			if !visited[qid] {
				visited[qid] = true
				queue = append(queue, item{id: qid, from: it.id, ttl: it.ttl - 1, hops: it.hops + 1})
			}
		}
	}
	return res
}

// Churn drives the flat network's population process (grow to target,
// then one-for-one replacement).
type Churn struct {
	Net     *Network
	Profile workload.Profile
	// Catalog assigns shared objects; nil disables.
	Catalog interface {
		AssignObjects(count int, r *sim.Source) []msg.ObjectID
	}
	TargetSize int
	GrowthRate int

	rng *sim.Source
}

// Start schedules the churn process; it panics on bad parameters.
func (c *Churn) Start() {
	if c.TargetSize <= 0 || c.GrowthRate <= 0 {
		panic("flat: churn needs positive target size and growth rate")
	}
	c.rng = c.Net.Engine().Rand().Stream("flat-churn")
	eng := c.Net.Engine()
	remaining := c.TargetSize
	unit := sim.Time(0)
	for remaining > 0 {
		batch := int(math.Min(float64(c.GrowthRate), float64(remaining)))
		for i := 0; i < batch; i++ {
			at := unit + sim.Time(float64(i)/float64(batch))
			eng.Schedule(at, sim.EventFunc(func(*sim.Engine) { c.joinOne() }))
		}
		remaining -= batch
		unit++
	}
}

func (c *Churn) joinOne() {
	eng := c.Net.Engine()
	s := c.Profile.NewPeer(eng.Now(), c.rng)
	var objects []msg.ObjectID
	if c.Catalog != nil && s.Objects > 0 {
		objects = c.Catalog.AssignObjects(s.Objects, c.rng)
	}
	p := c.Net.Join(s.Capacity, s.Lifetime, objects)
	life := sim.Duration(s.Lifetime)
	if life <= 0 {
		life = 1e-3
	}
	eng.After(life, sim.EventFunc(func(*sim.Engine) {
		if p.Alive() {
			c.Net.Leave(p)
			c.joinOne()
		}
	}))
}
