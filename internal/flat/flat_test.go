package flat

import (
	"testing"
	"testing/quick"

	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

func newNet(seed int64, degree int) (*sim.Engine, *Network) {
	eng := sim.NewEngine(seed)
	return eng, New(eng, Config{Degree: degree})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Degree: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero degree accepted")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(eng, Config{Degree: -1})
}

func TestJoinBuildsDegree(t *testing.T) {
	_, n := newNet(1, 4)
	for i := 0; i < 50; i++ {
		n.Join(1, 100, nil)
	}
	if n.Size() != 50 {
		t.Fatalf("size %d", n.Size())
	}
	// After enough joins, most peers hold the target degree; link
	// symmetry must hold for all.
	for id, p := range n.peers {
		for qid := range p.neighbors {
			q := n.peers[qid]
			if q == nil {
				t.Fatalf("peer %d links to missing %d", id, qid)
			}
			if _, ok := q.neighbors[id]; !ok {
				t.Fatalf("asymmetric link %d-%d", id, qid)
			}
		}
	}
}

func TestLeaveCleansLinks(t *testing.T) {
	_, n := newNet(2, 3)
	for i := 0; i < 20; i++ {
		n.Join(1, 100, nil)
	}
	victim := n.RandomPeer()
	neighbors := make([]msg.PeerID, 0)
	for qid := range victim.neighbors {
		neighbors = append(neighbors, qid)
	}
	n.Leave(victim)
	n.Leave(victim) // idempotent
	if n.Size() != 19 {
		t.Fatalf("size %d", n.Size())
	}
	for _, qid := range neighbors {
		if q := n.Peer(qid); q != nil {
			if _, ok := q.neighbors[victim.ID]; ok {
				t.Fatalf("dangling link at %d", qid)
			}
		}
	}
	n.Repair()
	for _, id := range n.ids {
		if p := n.peers[id]; p.Degree() < 3 && n.Size() > 4 {
			t.Fatalf("repair left %d at degree %d", id, p.Degree())
		}
	}
}

func TestFloodFindsNearbyObject(t *testing.T) {
	_, n := newNet(3, 4)
	src := n.Join(1, 100, nil)
	for i := 0; i < 30; i++ {
		n.Join(1, 100, nil)
	}
	holder := n.Join(1, 100, []msg.ObjectID{42})
	n.Repair()
	_ = holder
	res := n.Flood(src, 42, 7)
	if !res.Found {
		t.Fatalf("flood missed object in a 32-peer net at TTL 7: %+v", res)
	}
	if res.FirstHitHops < 1 {
		t.Fatalf("hops %d", res.FirstHitHops)
	}
	if res.QueryMsgs == 0 || res.HitMsgs == 0 {
		t.Fatalf("traffic not counted: %+v", res)
	}
	tr := n.Traffic()
	if tr.Count(msg.KindQuery) != res.QueryMsgs {
		t.Fatalf("traffic/result mismatch %d vs %d", tr.Count(msg.KindQuery), res.QueryMsgs)
	}
}

func TestFloodMiss(t *testing.T) {
	_, n := newNet(4, 4)
	src := n.Join(1, 100, nil)
	for i := 0; i < 20; i++ {
		n.Join(1, 100, nil)
	}
	res := n.Flood(src, 999, 7)
	if res.Found || res.FirstHitHops != -1 || res.HitMsgs != 0 {
		t.Fatalf("phantom hit %+v", res)
	}
}

func TestFloodTTLOne(t *testing.T) {
	_, n := newNet(5, 4)
	src := n.Join(1, 100, []msg.ObjectID{7})
	for i := 0; i < 10; i++ {
		n.Join(1, 100, nil)
	}
	res := n.Flood(src, 7, 1)
	if !res.Found || res.FirstHitHops != 0 {
		t.Fatalf("self-hit failed: %+v", res)
	}
	if res.QueryMsgs != 0 {
		t.Fatalf("TTL 1 should not relay: %+v", res)
	}
	if res.PeersReached != 1 {
		t.Fatalf("reached %d", res.PeersReached)
	}
}

func TestFloodCostGrowsWithPopulation(t *testing.T) {
	// The pure-P2P pathology: flood cost scales with network size, since
	// everyone relays. This is the premise of the super-peer design.
	cost := func(size int) uint64 {
		_, n := newNet(6, 5)
		src := n.Join(1, 100, nil)
		for i := 0; i < size-1; i++ {
			n.Join(1, 100, nil)
		}
		n.Repair()
		return n.Flood(src, 12345, 12).QueryMsgs
	}
	small, large := cost(100), cost(800)
	if large < 4*small {
		t.Fatalf("flood cost did not scale: %d -> %d", small, large)
	}
}

func TestChurnHoldsPopulation(t *testing.T) {
	eng, n := newNet(7, 4)
	c := &Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.Constant(1),
			Lifetime: workload.Exponential{MeanVal: 20},
		},
		TargetSize: 150,
		GrowthRate: 50,
	}
	c.Start()
	eng.Ticker(1, func(e *sim.Engine) bool {
		n.Repair()
		return e.Now() < 80
	})
	if err := eng.RunUntil(80); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 150 {
		t.Fatalf("size %d, want 150", n.Size())
	}
}

func TestChurnPanicsOnBadParams(t *testing.T) {
	_, n := newNet(8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Churn{Net: n, TargetSize: 0, GrowthRate: 1}).Start()
}

// Property: flood never counts a peer twice and always terminates.
func TestFloodVisitProperty(t *testing.T) {
	f := func(seed int64, ttlRaw uint8) bool {
		ttl := 1 + int(ttlRaw%10)
		eng := sim.NewEngine(seed)
		n := New(eng, Config{Degree: 4})
		src := n.Join(1, 100, nil)
		for i := 0; i < 40; i++ {
			n.Join(1, 100, nil)
		}
		res := n.Flood(src, 1, ttl)
		return res.PeersReached <= n.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
