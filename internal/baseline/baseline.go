// Package baseline implements the reference layer-management policies DLM
// is evaluated against:
//
//   - Preconfigured: the Gnutella 0.6 Ultrapeer approach — a fixed
//     capacity threshold decides the layer at join time, and nothing ever
//     changes afterwards. This is the paper's comparison algorithm in
//     Figures 7 and 8.
//   - Static: layer assignment by a deterministic counter that holds the
//     target ratio exactly while ignoring capacity and age; a control that
//     isolates ratio maintenance from peer selection quality.
//   - Oracle: a global-knowledge policy that re-elects the jointly
//     best-ranked peers every interval. It deliberately violates the
//     distributed-information constraint and serves as the upper bound
//     for selection quality.
package baseline

import (
	"sort"

	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// Preconfigured assigns layers with a fixed capacity threshold at join
// time (e.g. "at least 15KB/s downstream" in the Ultrapeer proposal).
type Preconfigured struct {
	overlay.NopManager
	// Threshold is the minimum capacity to join the super-layer.
	Threshold float64
}

// Name implements overlay.Manager.
func (p *Preconfigured) Name() string { return "preconfigured" }

// InitialLayer implements overlay.Manager.
func (p *Preconfigured) InitialLayer(_ *overlay.Network, peer *overlay.Peer) overlay.Layer {
	if peer.Capacity >= p.Threshold {
		return overlay.LayerSuper
	}
	return overlay.LayerLeaf
}

// CalibrateThreshold picks the capacity threshold whose exceedance
// probability under dist equals the super-layer share 1/(1+eta), by Monte
// Carlo quantile estimation. With this threshold the preconfigured policy
// starts at the right ratio — and then drifts as the population mix
// changes, which is exactly the failure mode the paper illustrates.
func CalibrateThreshold(dist workload.Dist, eta float64, samples int, r *sim.Source) float64 {
	if samples <= 0 {
		samples = 10000
	}
	draws := make([]float64, samples)
	for i := range draws {
		draws[i] = dist.Sample(r)
	}
	sort.Float64s(draws)
	// The (1 - 1/(1+eta)) quantile = eta/(1+eta) quantile.
	q := eta / (1 + eta)
	idx := int(q * float64(samples))
	if idx >= samples {
		idx = samples - 1
	}
	return draws[idx]
}

// Static holds the exact target ratio by assigning every (⌊1+eta⌋)-th
// joining peer to the super-layer, regardless of its capacity or age.
type Static struct {
	overlay.NopManager
	// Eta is the target ratio; every round of (1+Eta) joins produces one
	// super-peer.
	Eta float64

	acc float64
}

// Name implements overlay.Manager.
func (s *Static) Name() string { return "static" }

// InitialLayer implements overlay.Manager.
func (s *Static) InitialLayer(*overlay.Network, *overlay.Peer) overlay.Layer {
	s.acc += 1 / (1 + s.Eta)
	if s.acc >= 1 {
		s.acc--
		return overlay.LayerSuper
	}
	return overlay.LayerLeaf
}

// Oracle re-elects the super-layer every Interval time units using global
// knowledge: peers are ranked by the worse of their capacity and age
// percentiles (a peer must be good on both metrics, mirroring DLM's
// two-sided test), and the top n/(1+eta) become supers.
type Oracle struct {
	overlay.NopManager
	// Interval is the re-election period; zero means every tick.
	Interval sim.Duration

	lastRun sim.Time
	ran     bool
}

// Name implements overlay.Manager.
func (o *Oracle) Name() string { return "oracle" }

// Tick implements overlay.Manager.
func (o *Oracle) Tick(n *overlay.Network, now sim.Time) {
	if o.ran && o.Interval > 0 && now-o.lastRun < o.Interval {
		return
	}
	o.lastRun, o.ran = now, true
	o.elect(n, now)
}

type scored struct {
	p     *overlay.Peer
	score float64
}

func (o *Oracle) elect(n *overlay.Network, now sim.Time) {
	total := n.Size()
	if total == 0 {
		return
	}
	want := int(float64(total)/(1+n.Config().Eta) + 0.5)
	if want < 1 {
		want = 1
	}

	peers := make([]*overlay.Peer, 0, total)
	for _, id := range n.SuperIDs() {
		peers = append(peers, n.Peer(id))
	}
	for _, id := range n.LeafIDs() {
		peers = append(peers, n.Peer(id))
	}

	// Percentile ranks on both metrics; score = min(capacity pct, age pct).
	byCap := make([]*overlay.Peer, len(peers))
	copy(byCap, peers)
	sort.Slice(byCap, func(i, j int) bool {
		if byCap[i].Capacity != byCap[j].Capacity {
			return byCap[i].Capacity < byCap[j].Capacity
		}
		return byCap[i].ID < byCap[j].ID
	})
	capPct := make(map[*overlay.Peer]float64, len(peers))
	for i, p := range byCap {
		capPct[p] = float64(i) / float64(len(peers))
	}
	byAge := byCap // reuse backing array
	sort.Slice(byAge, func(i, j int) bool {
		ai, aj := byAge[i].Age(now), byAge[j].Age(now)
		if ai != aj {
			return ai < aj
		}
		return byAge[i].ID < byAge[j].ID
	})
	ranked := make([]scored, len(peers))
	for i, p := range byAge {
		agePct := float64(i) / float64(len(peers))
		s := capPct[p]
		if agePct < s {
			s = agePct
		}
		ranked[i] = scored{p: p, score: s}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].p.ID < ranked[j].p.ID
	})

	elected := make(map[*overlay.Peer]bool, want)
	for i := 0; i < want && i < len(ranked); i++ {
		elected[ranked[i].p] = true
	}
	// Apply: demote first to free capacity, then promote.
	for _, s := range ranked {
		if s.p.Layer == overlay.LayerSuper && !elected[s.p] {
			n.Demote(s.p)
		}
	}
	for _, s := range ranked {
		if s.p.Layer == overlay.LayerLeaf && elected[s.p] {
			n.Promote(s.p)
		}
	}
}
