package baseline

import (
	"math"
	"testing"

	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

func TestPreconfiguredThresholding(t *testing.T) {
	eng := sim.NewEngine(1)
	mgr := &Preconfigured{Threshold: 50}
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, mgr)
	strong := n.Join(100, 10, nil)
	weak := n.Join(10, 10, nil)
	border := n.Join(50, 10, nil)
	if strong.Layer != overlay.LayerSuper {
		t.Error("capacity 100 should be super")
	}
	if weak.Layer != overlay.LayerLeaf {
		t.Error("capacity 10 should be leaf")
	}
	if border.Layer != overlay.LayerSuper {
		t.Error("capacity == threshold should be super")
	}
	if mgr.Name() != "preconfigured" {
		t.Error("name wrong")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	r := sim.NewSource(5)
	dist := workload.Uniform{Lo: 0, Hi: 100}
	eta := 9.0 // super share 10%
	th := CalibrateThreshold(dist, eta, 50000, r)
	if math.Abs(th-90) > 2 {
		t.Fatalf("threshold = %v, want ~90 (top 10%% of U[0,100))", th)
	}
	// Default sample count path.
	th = CalibrateThreshold(dist, eta, 0, r)
	if th < 80 || th > 100 {
		t.Fatalf("default-samples threshold = %v", th)
	}
}

func TestStaticHoldsRatio(t *testing.T) {
	eng := sim.NewEngine(1)
	mgr := &Static{Eta: 9}
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 9}, mgr)
	for i := 0; i < 1000; i++ {
		n.Join(float64(i%100), 10, nil)
	}
	// 1000 joins at eta=9: 100 supers expected (1 per 10).
	if got := n.NumSupers(); got < 95 || got > 105 {
		t.Fatalf("supers = %d, want ~100", got)
	}
	if mgr.Name() != "static" {
		t.Error("name wrong")
	}
}

func TestOracleElectsBestOnBothMetrics(t *testing.T) {
	eng := sim.NewEngine(1)
	mgr := &Oracle{Interval: 1}
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 4}, mgr)

	// 20 peers: capacities 1..20. Join them at staggered times so ages
	// differ: earlier joiners are older. Give high capacity to early
	// joiners so both metrics agree on the best peers.
	for i := 0; i < 20; i++ {
		cap := float64(20 - i) // first joiner has the largest capacity
		at := sim.Time(i)
		eng.Schedule(at, sim.EventFunc(func(e *sim.Engine) {
			n.Join(cap, 1000, nil)
		}))
	}
	eng.Schedule(30, sim.EventFunc(func(e *sim.Engine) { n.Tick() }))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// eta=4: want 20/5 = 4 supers; they must be the 4 oldest/strongest.
	if n.NumSupers() != 4 {
		t.Fatalf("supers = %d, want 4", n.NumSupers())
	}
	snap := n.Snapshot()
	if snap.AvgCapSuper <= snap.AvgCapLeaf {
		t.Fatal("oracle elected weaker peers")
	}
	if snap.AvgAgeSuper <= snap.AvgAgeLeaf {
		t.Fatal("oracle elected younger peers")
	}
	if mgr.Name() != "oracle" {
		t.Error("name wrong")
	}
}

func TestOracleInterval(t *testing.T) {
	eng := sim.NewEngine(1)
	mgr := &Oracle{Interval: 10}
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 4}, mgr)
	for i := 0; i < 10; i++ {
		n.Join(float64(i), 1000, nil)
	}
	promosAfterFirst := uint64(0)
	eng.Ticker(1, func(e *sim.Engine) bool {
		n.Tick()
		if e.Now() == 1 {
			promosAfterFirst = n.Counters().Promotions
		}
		return e.Now() < 5
	})
	if err := eng.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	// Between t=1 and t=5 (within one interval, stable population) the
	// oracle must not have re-run.
	if n.Counters().Promotions != promosAfterFirst {
		t.Fatal("oracle re-elected within its interval")
	}
}

func TestOracleEmptyNetwork(t *testing.T) {
	eng := sim.NewEngine(1)
	mgr := &Oracle{}
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 4}, mgr)
	n.Tick() // must not panic on empty network
	if n.Size() != 0 {
		t.Fatal("tick changed an empty network")
	}
}

func TestPreconfiguredRatioTracksPopulationMix(t *testing.T) {
	// The paper's Figure 1 argument: with a fixed threshold, the ratio is
	// a function of the joining population's capacity mix.
	eng := sim.NewEngine(3)
	mgr := &Preconfigured{Threshold: 50}
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, mgr)
	r := sim.NewSource(8)
	// Wave 1: mostly weak peers.
	for i := 0; i < 500; i++ {
		n.Join(r.Uniform(0, 60), 1e9, nil)
	}
	ratio1 := n.Ratio()
	// Wave 2: mostly strong peers.
	for i := 0; i < 2000; i++ {
		n.Join(r.Uniform(40, 200), 1e9, nil)
	}
	ratio2 := n.Ratio()
	if !(ratio2 < ratio1/2) {
		t.Fatalf("threshold policy should oversupply supers on a strong wave: %v -> %v", ratio1, ratio2)
	}
}
