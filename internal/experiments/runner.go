// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5, §6), plus the ablation studies called out in
// DESIGN.md. Each driver builds a scenario from internal/config, runs it
// on the discrete-event engine (fanning trials across CPUs via
// internal/parexp where applicable), and returns the series/rows that the
// paper's artifact plots.
package experiments

import (
	"io"

	"dlm/internal/baseline"
	"dlm/internal/config"
	"dlm/internal/core"
	"dlm/internal/overlay"
	"dlm/internal/query"
	"dlm/internal/sim"
	"dlm/internal/stats"
	"dlm/internal/trace"
	"dlm/internal/workload"
)

// ManagerKind selects the layer-management policy for a run.
type ManagerKind string

// The available policies.
const (
	ManagerDLM           ManagerKind = "dlm"
	ManagerPreconfigured ManagerKind = "preconfigured"
	ManagerStatic        ManagerKind = "static"
	ManagerOracle        ManagerKind = "oracle"
	ManagerNone          ManagerKind = "none"
)

// RunConfig assembles one simulation run.
type RunConfig struct {
	Scenario config.Scenario
	// Profile overrides the scenario's base profile (regime-wrapped
	// dynamics); nil uses the scenario default.
	Profile workload.Profile
	// Manager picks the policy; DLMParams applies when Manager is
	// ManagerDLM (zero value = core.DefaultParams()).
	Manager   ManagerKind
	DLMParams *core.Params
	// Threshold is the preconfigured policy's capacity cutoff; zero
	// auto-calibrates against the base capacity distribution.
	Threshold float64
	// Queries enables the search workload per the scenario's QueryRate.
	Queries bool
	// TraceTo, when non-nil, receives the JSONL lifecycle trace.
	TraceTo io.Writer
	// Seed overrides the scenario seed when non-zero.
	Seed int64
	// Latency sets the one-hop message delay (0 = inline delivery); with
	// latency, query floods run asynchronously through the event queue.
	Latency sim.Duration
	// MaxLeafDegree caps a super-peer's leaf neighbors (0 = uncapped).
	MaxLeafDegree int
	// Link is the message-plane fault model (loss/jitter/dup/reorder);
	// the zero value is a perfect link.
	Link overlay.Link
	// Shards is the intra-run worker count for the tick's lane-parallel
	// decision phase (see sim.Engine.SetShards); zero falls back to
	// DefaultShards. Results are byte-identical for every value.
	Shards int
}

// RunResult carries everything a figure or table needs from one run.
type RunResult struct {
	// Series holds the sampled time series:
	// ratio, supers, leaves, age_super, age_leaf, cap_super, cap_leaf,
	// lnn (average leaf degree of supers).
	Series *stats.SeriesSet
	// Final is the last snapshot.
	Final overlay.LayerStats
	// WindowCounters covers [Warmup, Duration] only.
	WindowCounters overlay.Counters
	// Traffic is the whole run's message tally.
	Traffic stats.Traffic
	// QuerySuccess and QueryMsgsPer summarize the search workload over
	// the measurement window (zero when disabled).
	QuerySuccess  float64
	QueryMsgsPer  float64
	QueryHops     float64
	QueriesIssued uint64
	// ManagerName records the policy.
	ManagerName string
	// Invariants holds any structural violations detected at the end
	// (always empty in a healthy run).
	Invariants []string
	// RequestRetries and RequestDrops are the DLM manager's cumulative
	// Phase 1 timeout tallies for the whole run (zero for other managers
	// and on lossless zero-latency transports).
	RequestRetries uint64
	RequestDrops   uint64
}

// buildManager instantiates the policy.
func buildManager(rc RunConfig, seed int64) overlay.Manager {
	switch rc.Manager {
	case ManagerPreconfigured:
		th := rc.Threshold
		if th == 0 {
			th = baseline.CalibrateThreshold(
				workload.SaroiuBandwidthMixture(), rc.Scenario.Eta, 20000,
				sim.NewSource(seed).Stream("calibrate"))
		}
		return &baseline.Preconfigured{Threshold: th}
	case ManagerStatic:
		return &baseline.Static{Eta: rc.Scenario.Eta}
	case ManagerOracle:
		return &baseline.Oracle{Interval: 10}
	case ManagerNone:
		return overlay.NopManager{}
	default:
		p := core.DefaultParams()
		if rc.DLMParams != nil {
			p = *rc.DLMParams
		}
		return core.NewManager(p)
	}
}

// newOverlayForScenario binds an overlay with the scenario's structural
// parameters to the engine.
func newOverlayForScenario(eng *sim.Engine, sc config.Scenario, mgr overlay.Manager) *overlay.Network {
	return overlay.New(eng, sc.Overlay(), mgr)
}

// startChurn wires the scenario's population process to the network.
func startChurn(net *overlay.Network, sc config.Scenario, cat overlay.ObjectAssigner) {
	c := &overlay.Churn{
		Net:        net,
		Profile:    sc.BaseProfile(),
		TargetSize: sc.N,
		GrowthRate: sc.GrowthRate,
		Catalog:    cat,
	}
	c.Start()
}

// Run executes one configured simulation and collects its artifacts.
func Run(rc RunConfig) (*RunResult, error) {
	return RunOn(nil, rc)
}

// RunOn is Run against a caller-owned engine, which is Reset to the run's
// seed first — so a worker can execute many trials on one engine, reusing
// the event queue's backing storage instead of re-growing it per trial.
// A nil engine allocates a fresh one; the results are identical either
// way (Reset restores the just-constructed state exactly).
func RunOn(eng *sim.Engine, rc RunConfig) (*RunResult, error) {
	sc := rc.Scenario
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	seed := sc.Seed
	if rc.Seed != 0 {
		seed = rc.Seed
	}
	if eng == nil {
		eng = sim.NewEngine(seed)
	} else {
		eng.Reset(seed)
	}
	eng.SetShards(resolveShards(rc.Shards))
	mgr := buildManager(rc, seed)
	ocfg := sc.Overlay()
	ocfg.Latency = rc.Latency
	ocfg.MaxLeafDegree = rc.MaxLeafDegree
	ocfg.Link = rc.Link
	net := overlay.New(eng, ocfg, mgr)

	profile := rc.Profile
	if profile == nil {
		profile = sc.BaseProfile()
	}

	var qe *query.Engine
	var cat *query.Catalog
	if rc.Queries && sc.QueryRate > 0 {
		cat = query.NewCatalog(sc.CatalogSize, 0.8, 0.8)
		qe = query.Attach(net, cat)
		qe.DefaultTTL = uint8(sc.TTL)
	}

	var rec *trace.Recorder
	if rc.TraceTo != nil {
		rec = trace.NewRecorder(rc.TraceTo)
		net.Observe(rec)
	}

	churn := &overlay.Churn{
		Net:        net,
		Profile:    profile,
		TargetSize: sc.N,
		GrowthRate: sc.GrowthRate,
	}
	if cat != nil {
		churn.Catalog = cat
	}
	churn.Start()

	if qe != nil {
		d := &query.Driver{Engine: qe, Rate: sc.QueryRate, Until: sim.Time(sc.Duration)}
		d.Start()
	}

	res := &RunResult{
		Series:      &stats.SeriesSet{},
		ManagerName: mgr.Name(),
	}
	ratio := res.Series.New("ratio")
	supers := res.Series.New("supers")
	leaves := res.Series.New("leaves")
	ageS := res.Series.New("age_super")
	ageL := res.Series.New("age_leaf")
	capS := res.Series.New("cap_super")
	capL := res.Series.New("cap_leaf")
	lnn := res.Series.New("lnn")

	warm := sim.Time(sc.Warmup)
	sampleEvery := sc.SampleEvery
	nextSample := 0.0
	warmed := false

	eng.Ticker(1, func(e *sim.Engine) bool {
		net.Tick()
		now := float64(e.Now())
		if !warmed && e.Now() >= warm {
			warmed = true
			net.ResetCounters()
			if qe != nil {
				qe.ResetStats()
			}
		}
		if now >= nextSample {
			nextSample = now + sampleEvery
			s := net.Snapshot()
			ratio.Add(now, s.Ratio)
			supers.Add(now, float64(s.NumSupers))
			leaves.Add(now, float64(s.NumLeaves))
			ageS.Add(now, s.AvgAgeSuper)
			ageL.Add(now, s.AvgAgeLeaf)
			capS.Add(now, s.AvgCapSuper)
			capL.Add(now, s.AvgCapLeaf)
			lnn.Add(now, s.AvgLeafDegree)
		}
		return e.Now() < sim.Time(sc.Duration)
	})
	if err := eng.RunUntil(sim.Time(sc.Duration)); err != nil {
		return nil, err
	}

	res.Final = net.Snapshot()
	res.WindowCounters = net.Counters()
	res.Traffic = net.Traffic()
	res.Invariants = net.CheckInvariants()
	if dm, ok := mgr.(*core.Manager); ok {
		res.RequestRetries = dm.RequestRetries
		res.RequestDrops = dm.RequestDrops
	}
	if qe != nil {
		res.QuerySuccess = qe.SuccessRate()
		res.QueryMsgsPer = qe.MsgsPer.Mean()
		res.QueryHops = qe.HopsHist.Mean()
		res.QueriesIssued = qe.Issued
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, err
		}
	}
	return res, nil
}
