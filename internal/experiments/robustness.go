package experiments

import (
	"fmt"
	"math"
	"strings"

	"dlm/internal/config"
	"dlm/internal/overlay"
	"dlm/internal/parexp"
	"dlm/internal/sim"
)

// RobustnessRow reports DLM behavior at one message-loss level of the
// adverse-network sweep.
type RobustnessRow struct {
	// LossPct is the per-message loss probability in percent.
	LossPct float64
	// RatioMean is the realized layer ratio over the steady-state window;
	// RatioErrPct is |RatioMean − η|/η in percent — the convergence
	// criterion of the sweep.
	RatioMean   float64
	RatioErrPct float64
	RatioRMSE   float64
	// AgeSeparation and CapSeparation are super/leaf mean age and
	// capacity — the layer-quality signals that must survive the faults.
	AgeSeparation float64
	CapSeparation float64
	// DLMMsgs is the Phase 1 message count for the whole run (the
	// overhead axis: retries buy robustness with extra traffic).
	DLMMsgs uint64
	// LinkDrops/LinkDups count what the fault model did during the
	// measurement window.
	LinkDrops uint64
	LinkDups  uint64
	// Retries/Abandoned are the protocol's timeout reactions: requests
	// re-sent past their deadline and requests dropped after the retry
	// budget. Both are zero at zero loss (the fault-free determinism
	// pin).
	Retries   uint64
	Abandoned uint64
}

// adverseLink builds the sweep's fault model for one loss level: loss is
// the swept variable; a light fixed dose of duplication, triangular
// jitter, and reordering rides along so retries face a realistic mix
// rather than clean Bernoulli erasures. Zero loss means a perfect link —
// the sweep's own control.
func adverseLink(loss float64) overlay.Link {
	if loss <= 0 {
		return overlay.Link{}
	}
	return overlay.Link{
		Loss:          loss,
		Dup:           0.01,
		JitterMin:     0.01,
		JitterMode:    0.05,
		JitterMax:     0.2,
		ReorderWindow: 0.5,
	}
}

// Robustness sweeps per-message loss (in percent) against ratio
// convergence, layer separation, and Phase 1 overhead. The paper assumes
// a reliable transport; this sweep measures how far the event-driven
// exchange, backed by the pending-request retries, carries the algorithm
// when that assumption fails.
func Robustness(sc config.Scenario, lossPct []float64) ([]RobustnessRow, error) {
	rows, err := pooled(len(lossPct), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (RobustnessRow, error) {
			loss := lossPct[seed-sc.Seed]
			res, err := RunOn(eng, RunConfig{
				Scenario: sc,
				Manager:  ManagerDLM,
				Link:     adverseLink(loss / 100),
			})
			if err != nil {
				return RobustnessRow{}, err
			}
			from, to := sc.Warmup, sc.Duration
			r := res.Series.Get("ratio")
			mean := r.MeanOver(from, to)
			return RobustnessRow{
				LossPct:     loss,
				RatioMean:   mean,
				RatioErrPct: 100 * math.Abs(mean-sc.Eta) / sc.Eta,
				RatioRMSE:   r.RMSEAgainst(sc.Eta, from, to),
				AgeSeparation: res.Series.Get("age_super").MeanOver(from, to) /
					res.Series.Get("age_leaf").MeanOver(from, to),
				CapSeparation: res.Series.Get("cap_super").MeanOver(from, to) /
					res.Series.Get("cap_leaf").MeanOver(from, to),
				DLMMsgs:   res.Traffic.DLMMessages(),
				LinkDrops: res.WindowCounters.TotalLinkDrops(),
				LinkDups:  res.WindowCounters.TotalLinkDups(),
				Retries:   res.RequestRetries,
				Abandoned: res.RequestDrops,
			}, nil
		})
	return rows, err
}

// FormatRobustness renders the sweep.
func FormatRobustness(rows []RobustnessRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %-10s %-10s %-9s %-9s %-10s %-9s %-9s %-9s %s\n",
		"loss%", "ratio mean", "ratio err%", "ratio RMSE", "age sep", "cap sep",
		"dlm msgs", "drops", "dups", "retries", "abandoned")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.3g %-12.1f %-10.1f %-10.1f %-9.2f %-9.2f %-10d %-9d %-9d %-9d %d\n",
			r.LossPct, r.RatioMean, r.RatioErrPct, r.RatioRMSE, r.AgeSeparation,
			r.CapSeparation, r.DLMMsgs, r.LinkDrops, r.LinkDups, r.Retries, r.Abandoned)
	}
	return b.String()
}
