package experiments

import (
	"fmt"
	"strings"

	"dlm/internal/config"
	"dlm/internal/overlay"
	"dlm/internal/parexp"
	"dlm/internal/query"
	"dlm/internal/sim"
	"dlm/internal/stats"
)

// RedundancyRow reports reliability metrics for one leaf-redundancy level
// m (the number of super connections each leaf maintains, "kept for the
// purpose of reliability" per the paper's §3).
type RedundancyRow struct {
	M int
	// StrandedFrac is the mean fraction of leaves with zero super
	// connections across tick samples (search blackout periods).
	StrandedFrac float64
	// UnderFrac is the mean fraction of leaves below their redundancy
	// target.
	UnderFrac float64
	// QuerySuccess at the scenario TTL under churn.
	QuerySuccess float64
	// BackboneWholeFrac is the fraction of samples where the super-layer
	// formed a single connected component.
	BackboneWholeFrac float64
	// NewLeafConnections is the join connection cost per unit time — the
	// price of redundancy.
	ConnectionsPerUnit float64
}

// RedundancySweep varies m and measures what the redundancy buys: fewer
// stranded leaves and steadier query success, at a linear connection
// cost. Expected shape: m=1 leaves a visible stranded fraction; m>=2
// (the paper's setting) nearly eliminates it with diminishing returns
// beyond.
func RedundancySweep(sc config.Scenario, ms []int) ([]RedundancyRow, error) {
	rows, err := pooled(len(ms), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (RedundancyRow, error) {
			m := ms[seed-sc.Seed]
			return runRedundancy(eng, sc, m)
		})
	return rows, err
}

func runRedundancy(eng *sim.Engine, sc config.Scenario, m int) (RedundancyRow, error) {
	row := RedundancyRow{M: m}
	scc := sc
	scc.M = m
	if scc.QueryRate <= 0 {
		scc.QueryRate = 5
	}
	if err := scc.Validate(); err != nil {
		return row, err
	}
	eng = engineFor(eng, scc.Seed*31)
	mgr := buildManager(RunConfig{Scenario: scc, Manager: ManagerDLM}, scc.Seed)
	ocfg := scc.Overlay()
	// Orphans wait for the next repair round: the blackout window that m
	// redundant connections exist to cover.
	ocfg.DeferredReconnect = true
	net := overlay.New(eng, ocfg, mgr)
	cat := query.NewCatalog(scc.CatalogSize, 0.8, 0.8)
	qe := query.Attach(net, cat)
	qe.DefaultTTL = uint8(scc.TTL)
	startChurn(net, scc, cat)
	(&query.Driver{Engine: qe, Rate: scc.QueryRate, Until: sim.Time(scc.Duration)}).Start()

	var stranded, under, whole stats.Welford
	warmed := false
	eng.Ticker(1, func(e *sim.Engine) bool {
		// Sample the graph BEFORE repair: this is the exposure window a
		// leaf actually experiences after its super dies.
		if e.Now() >= sim.Time(scc.Warmup) {
			if !warmed {
				warmed = true
				net.ResetCounters()
				qe.ResetStats()
			}
			topo := net.Topology(0)
			nl := float64(net.NumLeaves())
			if nl > 0 {
				stranded.Add(float64(topo.StrandedLeaves) / nl)
				under.Add(float64(topo.UnderConnectedLeaves) / nl)
			}
			if topo.SuperComponents == 1 {
				whole.Add(1)
			} else {
				whole.Add(0)
			}
		}
		net.Tick()
		return e.Now() < sim.Time(scc.Duration)
	})
	if err := eng.RunUntil(sim.Time(scc.Duration)); err != nil {
		return row, err
	}

	row.StrandedFrac = stranded.Mean()
	row.UnderFrac = under.Mean()
	row.QuerySuccess = qe.SuccessRate()
	row.BackboneWholeFrac = whole.Mean()
	window := scc.Duration - scc.Warmup
	c := net.Counters()
	row.ConnectionsPerUnit = float64(c.NewLeafConnections+c.RepairConnections+c.ChurnReconnects) / window
	return row, nil
}

// FormatRedundancy renders the sweep.
func FormatRedundancy(rows []RedundancyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-14s %-14s %-14s %-16s %s\n",
		"m", "stranded frac", "under-m frac", "query success", "backbone whole", "conns/unit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-14.4f %-14.4f %-14.2f %-16.2f %.1f\n",
			r.M, r.StrandedFrac, r.UnderFrac, r.QuerySuccess, r.BackboneWholeFrac, r.ConnectionsPerUnit)
	}
	return b.String()
}
