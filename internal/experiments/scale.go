package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"dlm/internal/config"
	"dlm/internal/sim"
)

// ScaleRow is one population size of the throughput scaling sweep.
type ScaleRow struct {
	N int
	// Duration is the simulated span (virtual time units); large
	// populations run shorter spans so the sweep's event budget — and its
	// wall time — stays roughly constant per point.
	Duration float64
	// Events is the number of discrete events the engine fired.
	Events uint64
	// WallSeconds is the run's wall-clock cost.
	WallSeconds float64
	// PeerUnitsPerSec is N x Duration / WallSeconds — simulated peer-time
	// per real second, the same unit BenchmarkSimulationThroughput
	// reports, comparable across N.
	PeerUnitsPerSec float64
	// EventsPerSec is the raw event-loop rate.
	EventsPerSec float64
	// FinalSupers/FinalRatio sanity-check that the big runs still manage
	// layers (a throughput number from a degenerate overlay is
	// meaningless).
	FinalSupers int
	FinalRatio  float64
}

// Scale measures end-to-end simulation throughput of the full DLM stack
// across population sizes. Points run sequentially — each gets the whole
// machine, so wall-clock numbers are honest — on one engine reused via
// Reset, exercising the same engine-reuse path the parallel scheduler
// relies on at the largest populations.
//
// The virtual span shrinks as N grows (fixed peer-unit budget, clamped),
// keeping every point to comparable wall time; PeerUnitsPerSec stays
// comparable across points regardless.
func Scale(sizes []int, seed int64) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, len(sizes))
	eng := sim.NewEngine(0)
	for _, n := range sizes {
		sc := config.Scaled(n)
		if seed != 0 {
			sc.Seed = seed
		}
		sc.Duration = math.Min(400, math.Max(50, 2e8/float64(n)))
		sc.Warmup = math.Floor(sc.Duration / 4)
		sc.SampleEvery = math.Max(1, math.Floor(sc.Duration/50))
		start := time.Now()
		res, err := RunOn(eng, RunConfig{Scenario: sc, Manager: ManagerDLM})
		if err != nil {
			return rows, fmt.Errorf("scale n=%d: %w", n, err)
		}
		wall := time.Since(start).Seconds()
		rows = append(rows, ScaleRow{
			N:               n,
			Duration:        sc.Duration,
			Events:          eng.EventsFired(),
			WallSeconds:     wall,
			PeerUnitsPerSec: float64(n) * sc.Duration / wall,
			EventsPerSec:    float64(eng.EventsFired()) / wall,
			FinalSupers:     res.Final.NumSupers,
			FinalRatio:      res.Final.Ratio,
		})
	}
	return rows, nil
}

// FormatScale renders the sweep (the results/scale.txt artifact).
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %-14s %-10s %-16s %-14s %-8s %s\n",
		"N", "duration", "events", "wall (s)", "peer-units/s", "events/s", "supers", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-10.0f %-14d %-10.2f %-16.0f %-14.0f %-8d %.2f\n",
			r.N, r.Duration, r.Events, r.WallSeconds, r.PeerUnitsPerSec, r.EventsPerSec,
			r.FinalSupers, r.FinalRatio)
	}
	return b.String()
}
