package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"dlm/internal/config"
	"dlm/internal/sim"
)

// ScaleRow is one (population size, shard count) point of the throughput
// scaling sweep.
type ScaleRow struct {
	N int
	// Shards is the intra-run lane-fan-out worker count the point ran
	// with; Procs records GOMAXPROCS at measurement time so a reader can
	// judge how much hardware parallelism the shards had to work with.
	Shards int
	Procs  int
	// Duration is the simulated span (virtual time units); large
	// populations run shorter spans so the sweep's event budget — and its
	// wall time — stays roughly constant per point.
	Duration float64
	// Events is the number of discrete events the engine fired.
	Events uint64
	// LaneEvents is how many of those fired from per-peer lane queues
	// (deliveries, churn timers) and Batches how many same-timestamp
	// eval/commit batches the sharded event plane ran. Both are pure
	// functions of the seed: like Events they are identical down a shard
	// column, extending the artifact's determinism check to the event
	// plane.
	LaneEvents uint64
	Batches    uint64
	// WallSeconds is the run's wall-clock cost.
	WallSeconds float64
	// PeerUnitsPerSec is N x Duration / WallSeconds — simulated peer-time
	// per real second, the same unit BenchmarkSimulationThroughput
	// reports, comparable across N.
	PeerUnitsPerSec float64
	// EventsPerSec is the raw event-loop rate.
	EventsPerSec float64
	// Speedup is this point's wall time relative to the first shard count
	// measured at the same N (so with shards starting at 1, the parallel
	// speedup curve). The sharded runs are byte-identical to the serial
	// ones, so the ratio compares the exact same computation.
	Speedup float64
	// FinalSupers/FinalRatio sanity-check that the big runs still manage
	// layers (a throughput number from a degenerate overlay is
	// meaningless).
	FinalSupers int
	FinalRatio  float64
}

// Scale measures end-to-end simulation throughput of the full DLM stack
// across population sizes and intra-run shard counts. Points run
// sequentially — each gets the whole machine, so wall-clock numbers are
// honest — on one engine reused via Reset, exercising the same
// engine-reuse path the parallel scheduler relies on at the largest
// populations. For each N every shard count in shards is run; the
// fixed-lane discipline guarantees the results (events, supers, ratio)
// are identical down the column, which doubles as an end-to-end
// determinism check a reader can eyeball in the artifact.
//
// The virtual span shrinks as N grows (fixed peer-unit budget, clamped),
// keeping every point to comparable wall time; PeerUnitsPerSec stays
// comparable across points regardless. A nil or empty shards slice means
// {1}.
func Scale(sizes []int, shards []int, seed int64) ([]ScaleRow, error) {
	if len(shards) == 0 {
		shards = []int{1}
	}
	rows := make([]ScaleRow, 0, len(sizes)*len(shards))
	eng := sim.NewEngine(0)
	for _, n := range sizes {
		sc := config.Scaled(n)
		if seed != 0 {
			sc.Seed = seed
		}
		sc.Duration = math.Min(400, math.Max(50, 2e8/float64(n)))
		sc.Warmup = math.Floor(sc.Duration / 4)
		sc.SampleEvery = math.Max(1, math.Floor(sc.Duration/50))
		baseWall := 0.0
		for _, k := range shards {
			start := time.Now()
			res, err := RunOn(eng, RunConfig{Scenario: sc, Manager: ManagerDLM, Shards: k})
			if err != nil {
				return rows, fmt.Errorf("scale n=%d shards=%d: %w", n, k, err)
			}
			wall := time.Since(start).Seconds()
			if baseWall == 0 {
				baseWall = wall
			}
			rows = append(rows, ScaleRow{
				N:               n,
				Shards:          k,
				Procs:           runtime.GOMAXPROCS(0),
				Duration:        sc.Duration,
				Events:          eng.EventsFired(),
				LaneEvents:      eng.LaneEventsFired(),
				Batches:         eng.BatchesFired(),
				WallSeconds:     wall,
				PeerUnitsPerSec: float64(n) * sc.Duration / wall,
				EventsPerSec:    float64(eng.EventsFired()) / wall,
				Speedup:         baseWall / wall,
				FinalSupers:     res.Final.NumSupers,
				FinalRatio:      res.Final.Ratio,
			})
		}
	}
	return rows, nil
}

// FormatScale renders the sweep (the results/scale.txt artifact).
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-7s %-6s %-10s %-14s %-14s %-10s %-10s %-16s %-14s %-8s %-8s %s\n",
		"N", "shards", "procs", "duration", "events", "laneev", "batches", "wall (s)",
		"peer-units/s", "events/s", "speedup", "supers", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-7d %-6d %-10.0f %-14d %-14d %-10d %-10.2f %-16.0f %-14.0f %-8.2f %-8d %.2f\n",
			r.N, r.Shards, r.Procs, r.Duration, r.Events, r.LaneEvents, r.Batches,
			r.WallSeconds, r.PeerUnitsPerSec, r.EventsPerSec, r.Speedup,
			r.FinalSupers, r.FinalRatio)
	}
	return b.String()
}
