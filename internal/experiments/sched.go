package experiments

import (
	"dlm/internal/parexp"
	"dlm/internal/sim"
)

// The deterministic parallel trial scheduler: every sweep in this package
// runs its trials through pooled/pooledSweep, which give each worker one
// long-lived sim.Engine that trials Reset to their own seed (see
// sim.Engine.Reset and RunOn). The output is byte-identical for any
// worker count because the three sources of nondeterminism are each
// pinned:
//
//  1. every trial's randomness comes from its own seeded engine source,
//     never from shared state;
//  2. a reset engine is indistinguishable from a fresh one (clock, event
//     queue, insertion sequence and RNG all restart), so which worker ran
//     the previous trial on the engine cannot leak in;
//  3. parexp lands results in index-addressed slots and all aggregation
//     (means, Welford merges, row assembly) happens sequentially in trial
//     order after the pool drains.

// DefaultWorkers, when non-zero, caps the worker pool of every sweep in
// this package whose caller did not pick a count itself. The scheduler's
// determinism means this only affects wall time and memory, never
// results.
var DefaultWorkers int

// DefaultShards, when non-zero, is the intra-run lane-fan-out worker
// count (sim.Engine.SetShards) for runs whose RunConfig did not pick one.
// The fixed-lane discipline makes results byte-identical for any value,
// so like DefaultWorkers this only trades wall time. Zero means serial
// (one worker) — intra-run parallelism composes with the trial pool, and
// the conservative default avoids oversubscribing a sweep that already
// saturates the CPUs with one trial per core.
var DefaultShards int

// resolveShards applies the RunConfig → DefaultShards → serial fallback
// chain.
func resolveShards(rc int) int {
	if rc > 0 {
		return rc
	}
	if DefaultShards > 0 {
		return DefaultShards
	}
	return 1
}

// newWorkerEngine builds a worker's reusable engine. The seed is
// irrelevant: every trial resets the engine to its own seed before use.
func newWorkerEngine() *sim.Engine { return sim.NewEngine(0) }

// pooled runs n trials with one reused engine per worker.
func pooled[T any](n int, opt parexp.Options, trial func(eng *sim.Engine, seed int64) (T, error)) ([]T, error) {
	if opt.Workers == 0 {
		opt.Workers = DefaultWorkers
	}
	return parexp.RunWith(n, opt, newWorkerEngine, trial)
}

// pooledSweep is parexp.Sweep with one reused engine per worker.
func pooledSweep[P, T any](points []P, repeats int, opt parexp.Options, trial func(eng *sim.Engine, p P, seed int64) (T, error)) ([][]T, error) {
	if opt.Workers == 0 {
		opt.Workers = DefaultWorkers
	}
	return parexp.SweepWith(points, repeats, opt, newWorkerEngine, trial)
}

// engineFor is the reuse-or-allocate shim for experiment entry points
// that are callable both standalone (eng == nil) and from a pooled
// worker: it returns eng reset to seed, or a fresh engine.
func engineFor(eng *sim.Engine, seed int64) *sim.Engine {
	if eng == nil {
		return sim.NewEngine(seed)
	}
	eng.Reset(seed)
	return eng
}
