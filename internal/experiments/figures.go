package experiments

import (
	"fmt"

	"dlm/internal/config"
	"dlm/internal/sim"
	"dlm/internal/stats"
	"dlm/internal/workload"
)

// FigureResult is a rendered figure: labelled series plus headline
// numbers for EXPERIMENTS.md.
type FigureResult struct {
	ID     string
	Title  string
	Series []*stats.Series
	// Notes holds headline scalar findings ("super-layer mean age 4.1x
	// leaf-layer over the window").
	Notes []string
	// LogY marks figures the paper plots on a log axis (Figure 6).
	LogY bool
}

// DynamicScenario wraps a scenario with the paper's Figures 4-6 dynamics:
// new-peer lifetimes halve at t=300 and capacities double at t=1000.
func DynamicScenario(sc config.Scenario) RunConfig {
	return RunConfig{
		Scenario: sc,
		Profile:  workload.PaperDynamicProfile(sc.BaseProfile()),
		Manager:  ManagerDLM,
	}
}

// runDynamic executes the shared Figures 4-6 run once.
func runDynamic(sc config.Scenario) (*RunResult, error) {
	return Run(DynamicScenario(sc))
}

// Figure4 reproduces "Average Age": the mean age of each layer over time
// in the dynamic network. Expected shape: the super-layer curve sits well
// above the leaf-layer curve throughout, including after the lifetime
// regime change at t=300.
func Figure4(sc config.Scenario) (*FigureResult, error) {
	res, err := runDynamic(sc)
	if err != nil {
		return nil, err
	}
	ageS := res.Series.Get("age_super")
	ageL := res.Series.Get("age_leaf")
	f := &FigureResult{
		ID:     "fig4",
		Title:  "Figure 4: Average Age Comparison (dynamic network)",
		Series: []*stats.Series{rename(ageS, "SuperLayer"), rename(ageL, "LeafLayer")},
	}
	from, to := sc.Warmup, sc.Duration
	ratio := ageS.MeanOver(from, to) / ageL.MeanOver(from, to)
	f.Notes = append(f.Notes,
		fmt.Sprintf("super-layer mean age %.2fx leaf-layer over [%.0f,%.0f]", ratio, from, to))
	return f, nil
}

// Figure5 reproduces "Average Capacity": the mean capacity of each layer
// over time. Expected shape: super-layer above leaf-layer throughout,
// adapting across the capacity regime change at t=1000.
func Figure5(sc config.Scenario) (*FigureResult, error) {
	res, err := runDynamic(sc)
	if err != nil {
		return nil, err
	}
	capS := res.Series.Get("cap_super")
	capL := res.Series.Get("cap_leaf")
	f := &FigureResult{
		ID:     "fig5",
		Title:  "Figure 5: Average Capacity Comparison (dynamic network)",
		Series: []*stats.Series{rename(capS, "SuperLayer"), rename(capL, "LeafLayer")},
	}
	from, to := sc.Warmup, sc.Duration
	ratio := capS.MeanOver(from, to) / capL.MeanOver(from, to)
	f.Notes = append(f.Notes,
		fmt.Sprintf("super-layer mean capacity %.2fx leaf-layer over [%.0f,%.0f]", ratio, from, to))
	return f, nil
}

// Figure6 reproduces "Layer Sizes" (log y-axis): both layer sizes over
// time. Expected shape: near-constant sizes — i.e. a maintained ratio —
// through both regime changes.
func Figure6(sc config.Scenario) (*FigureResult, error) {
	res, err := runDynamic(sc)
	if err != nil {
		return nil, err
	}
	f := &FigureResult{
		ID:    "fig6",
		Title: "Figure 6: Layer Sizes (log scale, dynamic network)",
		Series: []*stats.Series{
			rename(res.Series.Get("supers"), "SuperLayer"),
			rename(res.Series.Get("leaves"), "LeafLayer"),
		},
		LogY: true,
	}
	from, to := sc.Warmup, sc.Duration
	r := res.Series.Get("ratio")
	f.Notes = append(f.Notes,
		fmt.Sprintf("ratio mean %.1f (target η=%.0f), rmse %.1f over [%.0f,%.0f]",
			r.MeanOver(from, to), sc.Eta, r.RMSEAgainst(sc.Eta, from, to), from, to))
	return f, nil
}

// ComparisonScenario wraps a scenario with the Figures 7-8 dynamics: the
// mean capacity of new peers flips between 2x and 0.5x every period.
func ComparisonScenario(sc config.Scenario, kind ManagerKind) RunConfig {
	period := sim.Duration(sc.Duration / 4)
	return RunConfig{
		Scenario: sc,
		Profile:  workload.PaperPeriodicProfile(sc.BaseProfile(), period, sim.Time(sc.Warmup/2)),
		Manager:  kind,
		Queries:  sc.QueryRate > 0,
	}
}

// Figure7 reproduces "Layer Size Ratios on Same Success Rate": the layer
// size ratio over time for DLM versus the preconfigured algorithm while
// the capacity mix of joining peers oscillates. Expected shape: DLM holds
// a flat ratio near η while the preconfigured curve oscillates with the
// capacity mean. When the scenario enables queries, both systems run the
// same search workload so the comparison is at matched success rates.
func Figure7(sc config.Scenario) (*FigureResult, error) {
	dlm, err := Run(ComparisonScenario(sc, ManagerDLM))
	if err != nil {
		return nil, err
	}
	pre, err := Run(ComparisonScenario(sc, ManagerPreconfigured))
	if err != nil {
		return nil, err
	}
	f := &FigureResult{
		ID:    "fig7",
		Title: "Figure 7: Layer Size Ratio, DLM vs Preconfigured (oscillating capacity mix)",
		Series: []*stats.Series{
			rename(dlm.Series.Get("ratio"), "DLM"),
			rename(pre.Series.Get("ratio"), "Preconfigured"),
		},
	}
	from, to := sc.Warmup, sc.Duration
	dr := dlm.Series.Get("ratio")
	pr := pre.Series.Get("ratio")
	f.Notes = append(f.Notes,
		fmt.Sprintf("DLM ratio rmse %.2f vs preconfigured %.2f (target η=%.0f)",
			dr.RMSEAgainst(sc.Eta, from, to), pr.RMSEAgainst(sc.Eta, from, to), sc.Eta),
		fmt.Sprintf("stability (std around own mean): DLM %.2f vs preconfigured %.2f",
			dr.StdOver(from, to), pr.StdOver(from, to)),
		fmt.Sprintf("DLM ratio range [%.1f,%.1f]; preconfigured [%.1f,%.1f]",
			dr.MinOver(from, to), dr.MaxOver(from, to), pr.MinOver(from, to), pr.MaxOver(from, to)))
	if dlm.QueriesIssued > 0 {
		f.Notes = append(f.Notes,
			fmt.Sprintf("query success: DLM %.1f%% vs preconfigured %.1f%% at TTL %d",
				100*dlm.QuerySuccess, 100*pre.QuerySuccess, sc.TTL))
	}
	return f, nil
}

// Figure8 reproduces "Average Age Comparisons": per-layer mean ages for
// DLM versus the preconfigured algorithm under the same oscillating
// scenario. Expected shape: DLM's layers are sharply divided with a much
// older super-layer; the preconfigured layers are closer together.
func Figure8(sc config.Scenario) (*FigureResult, error) {
	dlm, err := Run(ComparisonScenario(sc, ManagerDLM))
	if err != nil {
		return nil, err
	}
	pre, err := Run(ComparisonScenario(sc, ManagerPreconfigured))
	if err != nil {
		return nil, err
	}
	f := &FigureResult{
		ID:    "fig8",
		Title: "Figure 8: Average Age, DLM vs Preconfigured",
		Series: []*stats.Series{
			rename(dlm.Series.Get("age_super"), "SuperLayer-DLM"),
			rename(pre.Series.Get("age_super"), "SuperLayer-Preconf"),
			rename(dlm.Series.Get("age_leaf"), "LeafLayer-DLM"),
			rename(pre.Series.Get("age_leaf"), "LeafLayer-Preconf"),
		},
	}
	from, to := sc.Warmup, sc.Duration
	dlmSep := dlm.Series.Get("age_super").MeanOver(from, to) / dlm.Series.Get("age_leaf").MeanOver(from, to)
	preSep := pre.Series.Get("age_super").MeanOver(from, to) / pre.Series.Get("age_leaf").MeanOver(from, to)
	dlmSuper := dlm.Series.Get("age_super").MeanOver(from, to)
	preSuper := pre.Series.Get("age_super").MeanOver(from, to)
	f.Notes = append(f.Notes,
		fmt.Sprintf("age separation super/leaf: DLM %.2fx vs preconfigured %.2fx", dlmSep, preSep),
		fmt.Sprintf("super-layer mean age: DLM %.1f vs preconfigured %.1f (%.2fx)",
			dlmSuper, preSuper, dlmSuper/preSuper))
	return f, nil
}

// rename clones a series under a new name (series share points).
func rename(s *stats.Series, name string) *stats.Series {
	out := stats.NewSeries(name)
	for _, p := range s.Points() {
		out.Add(p.T, p.V)
	}
	return out
}
