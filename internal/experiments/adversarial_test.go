package experiments

import (
	"math"
	"strings"
	"testing"

	"dlm/internal/config"
)

// TestSettledWindowConstants pins the shared measurement window: the
// golden figures run to SettledWindowEnd and the robustness sweep
// measures from SettledWindowStart, so the two must keep bracketing a
// non-empty tail.
func TestSettledWindowConstants(t *testing.T) {
	if SettledWindowStart <= 0 || SettledWindowEnd <= SettledWindowStart {
		t.Fatalf("settled window [%v, %v] is not a forward interval",
			SettledWindowStart, SettledWindowEnd)
	}
	if SettledWindowStart != 600 || SettledWindowEnd != 1600 {
		t.Fatalf("settled window [%v, %v] drifted from the golden-artifact window [600, 1600]",
			SettledWindowStart, SettledWindowEnd)
	}
}

// TestAdversarialTinyN sweeps the full six-scenario pack at a toy
// population: every scenario must run through its oracles cleanly and
// reduce to a well-formed row.
func TestAdversarialTinyN(t *testing.T) {
	rows, err := Adversarial([]int{300}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	byName := map[string]AdversarialRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.N != 300 {
			t.Errorf("%s: N = %d", r.Scenario, r.N)
		}
		if r.Invariants != 0 {
			t.Errorf("%s: %d invariant violations", r.Scenario, r.Invariants)
		}
		if !(r.FinalRatio > 0) || math.IsInf(r.FinalRatio, 0) {
			t.Errorf("%s: final ratio %v", r.Scenario, r.FinalRatio)
		}
	}
	if r := byName["flashcrowd"]; r.ExtraJoins == 0 {
		t.Error("flashcrowd: no extra joins")
	}
	if r := byName["partition"]; r.PartitionDrops == 0 {
		t.Error("partition: no partition drops")
	}
	if r := byName["masskill"]; r.Killed == 0 {
		t.Error("masskill: nobody killed")
	}
	if r := byName["liars"]; r.LiarPopPct == 0 {
		t.Error("liars: no liars in the population")
	}
	out := FormatAdversarial(rows)
	for name := range byName {
		if !strings.Contains(out, name) {
			t.Errorf("FormatAdversarial missing scenario %q", name)
		}
	}
	if !strings.Contains(out, "reconv") {
		t.Error("FormatAdversarial missing header")
	}
}

// TestFormatAdversarialSentinels covers the non-finite renderings: a
// scenario with no disturbance edge prints "-", one that never
// re-converged prints "never".
func TestFormatAdversarialSentinels(t *testing.T) {
	rows := []AdversarialRow{
		{Scenario: "steady", N: 10, PreErrPct: math.NaN(), ReconvergeTime: math.NaN()},
		{Scenario: "stuck", N: 10, PreErrPct: 5, ReconvergeTime: math.Inf(1)},
	}
	out := FormatAdversarial(rows)
	if !strings.Contains(out, "-") {
		t.Error("NaN metric not rendered as '-'")
	}
	if !strings.Contains(out, "never") {
		t.Error("unreached re-convergence not rendered as 'never'")
	}
}

// TestRobustnessShortSweep drives the adverse-link sweep at toy scale:
// the zero-loss control must stay retry-free (the fault-free determinism
// pin) while the lossy point records drops and retries.
func TestRobustnessShortSweep(t *testing.T) {
	sc := config.Scaled(400)
	sc.Seed = 1
	sc.Duration = 120
	sc.Warmup = 40
	rows, err := Robustness(sc, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	clean, lossy := rows[0], rows[1]
	if clean.Retries != 0 || clean.Abandoned != 0 || clean.LinkDrops != 0 {
		t.Errorf("zero-loss control saw faults: %+v", clean)
	}
	if lossy.LinkDrops == 0 {
		t.Error("10%% loss dropped nothing")
	}
	if lossy.Retries == 0 {
		t.Error("10%% loss triggered no retries")
	}
	if !(clean.RatioMean > 0) {
		t.Errorf("control ratio %v", clean.RatioMean)
	}
	out := FormatRobustness(rows)
	if !strings.Contains(out, "loss%") || len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("FormatRobustness malformed:\n%s", out)
	}
}

// TestScaleShortSweep runs the throughput sweep at toy scale and checks
// the derived rates are consistent with the raw measurements.
func TestScaleShortSweep(t *testing.T) {
	rows, err := Scale([]int{400}, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.N != 400 || r.Events == 0 || r.WallSeconds <= 0 {
			t.Errorf("implausible row: %+v", r)
		}
		if r.EventsPerSec <= 0 || r.PeerUnitsPerSec <= 0 {
			t.Errorf("non-positive rates: %+v", r)
		}
	}
	if rows[0].Events != rows[1].Events {
		t.Errorf("event count differs across shard counts: %d vs %d",
			rows[0].Events, rows[1].Events)
	}
	if rows[0].LaneEvents != rows[1].LaneEvents || rows[0].Batches != rows[1].Batches {
		t.Errorf("event-plane counters differ across shard counts: (%d,%d) vs (%d,%d)",
			rows[0].LaneEvents, rows[0].Batches, rows[1].LaneEvents, rows[1].Batches)
	}
	if rows[0].LaneEvents == 0 {
		t.Error("no lane events fired — the sweep never exercised the sharded event plane")
	}
	out := FormatScale(rows)
	if !strings.Contains(out, "events") || !strings.Contains(out, "laneev") {
		t.Errorf("FormatScale malformed:\n%s", out)
	}
}
