package experiments

import (
	"strings"
	"testing"

	"dlm/internal/config"
)

// TestRunShardInvariance checks the determinism contract at the artifact
// level: a full Run — churn, DLM decisions, sampled series, window
// counters, traffic — rendered to CSV bytes must be identical for every
// RunConfig.Shards value. This is the property that lets results/*.csv
// goldens stay valid no matter what -shards a machine uses.
func TestRunShardInvariance(t *testing.T) {
	sc := config.Scaled(400)
	sc.Duration = 80
	sc.Warmup = 20
	sc.SampleEvery = 2

	render := func(shards int) (string, *RunResult) {
		t.Helper()
		res, err := Run(RunConfig{Scenario: sc, Manager: ManagerDLM, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var b strings.Builder
		if err := res.Series.WriteCSV(&b); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return b.String(), res
	}

	base, baseRes := render(1)
	for _, k := range []int{2, 4, 7} {
		got, res := render(k)
		if got != base {
			t.Errorf("series CSV with shards=%d differs from serial", k)
		}
		if res.Final != baseRes.Final {
			t.Errorf("final snapshot with shards=%d differs:\n%+v\n%+v", k, res.Final, baseRes.Final)
		}
		if res.WindowCounters != baseRes.WindowCounters {
			t.Errorf("window counters with shards=%d differ:\n%+v\n%+v", k, res.WindowCounters, baseRes.WindowCounters)
		}
		if res.Traffic != baseRes.Traffic {
			t.Errorf("traffic tally with shards=%d differs", k)
		}
	}
}
