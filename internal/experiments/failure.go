package experiments

import (
	"fmt"
	"math"
	"strings"

	"dlm/internal/config"
	"dlm/internal/msg"
	"dlm/internal/parexp"
	"dlm/internal/query"
	"dlm/internal/sim"
)

// FailureResult quantifies recovery from a correlated super-layer
// failure: at the failure time a fraction of the super-peers vanish at
// once (a crash, a partition, a targeted attack — the "single point of
// failure" spectrum §3 worries about), and DLM must rebuild the backbone
// by promotion.
type FailureResult struct {
	// KillFraction is the fraction of super-peers removed at FailAt.
	KillFraction float64
	FailAt       float64
	// RatioBefore is the ratio just before the failure; RatioPeak the
	// worst (largest) ratio after it.
	RatioBefore float64
	RatioPeak   float64
	// RecoveryTime is how long after the failure the ratio first returns
	// to within 50% of the target η (NaN if never within the observation
	// window). Zero means the spike never left the band.
	RecoveryTime float64
	// SuccessBefore/During/After are query success rates in the three
	// phases (before failure, first 30 units after, after recovery).
	SuccessBefore float64
	SuccessDuring float64
	SuccessAfter  float64
	// PromotionsAfter counts the promotions that rebuilt the backbone.
	PromotionsAfter uint64
}

// Failure runs one failure-recovery scenario: steady state, kill
// killFraction of the super-layer at sc.Warmup + 50, observe recovery
// until sc.Duration.
func Failure(sc config.Scenario, killFraction float64) (*FailureResult, error) {
	return failureOn(nil, sc, killFraction)
}

// failureOn is Failure on a reusable worker engine (nil allocates).
func failureOn(eng *sim.Engine, sc config.Scenario, killFraction float64) (*FailureResult, error) {
	if killFraction <= 0 || killFraction >= 1 {
		return nil, fmt.Errorf("experiments: kill fraction %v outside (0,1)", killFraction)
	}
	if sc.QueryRate <= 0 {
		sc.QueryRate = 5
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	failAt := sc.Warmup + 50
	res := &FailureResult{KillFraction: killFraction, FailAt: failAt, RecoveryTime: math.NaN()}

	eng = engineFor(eng, sc.Seed*17)
	mgr := buildManager(RunConfig{Scenario: sc, Manager: ManagerDLM}, sc.Seed)
	net := newOverlayForScenario(eng, sc, mgr)
	cat := query.NewCatalog(sc.CatalogSize, 0.8, 0.8)
	qe := query.Attach(net, cat)
	qe.DefaultTTL = uint8(sc.TTL)
	startChurn(net, sc, cat)
	(&query.Driver{Engine: qe, Rate: sc.QueryRate, Until: sim.Time(sc.Duration)}).Start()

	// Phase bookkeeping.
	var promotionsAtFail uint64
	type phaseStats struct{ issued, succeeded uint64 }
	var before, during, after phaseStats
	snapshotQ := func() (uint64, uint64) { return qe.Issued, qe.Succeeded }
	var prevIssued, prevSucceeded uint64
	accumulate := func(ph *phaseStats) {
		i, s := snapshotQ()
		ph.issued += i - prevIssued
		ph.succeeded += s - prevSucceeded
		prevIssued, prevSucceeded = i, s
	}

	// The failure event.
	eng.Schedule(sim.Time(failAt), sim.EventFunc(func(*sim.Engine) {
		res.RatioBefore = net.Ratio()
		accumulate(&before)
		promotionsAtFail = net.Counters().Promotions
		ids := append([]msg.PeerID(nil), net.SuperIDs()...)
		kill := int(killFraction * float64(len(ids)))
		rng := eng.Rand().Stream("failure")
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		killed := 0
		for _, id := range ids {
			if killed >= kill {
				break
			}
			if p := net.Peer(id); p != nil && p.Alive() {
				// Correlated crash: no graceful handoff; the churn
				// replacement still fires via the overlay counters, so
				// kill via Leave but do NOT wait for lifetime expiry.
				net.Leave(p)
				killed++
			}
		}
	}))

	band := 0.5 * sc.Eta
	eng.Ticker(1, func(e *sim.Engine) bool {
		net.Tick()
		now := float64(e.Now())
		if now > failAt {
			r := net.Ratio()
			if r > res.RatioPeak && !math.IsInf(r, 0) {
				res.RatioPeak = r
			}
			if math.IsNaN(res.RecoveryTime) && !math.IsInf(r, 0) &&
				math.Abs(r-sc.Eta) <= band {
				res.RecoveryTime = now - failAt
				accumulate(&during)
			}
			if now == failAt+30 && math.IsNaN(res.RecoveryTime) {
				accumulate(&during)
			}
		}
		return e.Now() < sim.Time(sc.Duration)
	})
	if err := eng.RunUntil(sim.Time(sc.Duration)); err != nil {
		return nil, err
	}
	accumulate(&after)
	res.PromotionsAfter = net.Counters().Promotions - promotionsAtFail

	rate := func(ph phaseStats) float64 {
		if ph.issued == 0 {
			return 0
		}
		return float64(ph.succeeded) / float64(ph.issued)
	}
	res.SuccessBefore = rate(before)
	res.SuccessDuring = rate(during)
	res.SuccessAfter = rate(after)
	return res, nil
}

// FailureSweep runs the failure experiment across kill fractions.
func FailureSweep(sc config.Scenario, fractions []float64) ([]*FailureResult, error) {
	return pooled(len(fractions), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (*FailureResult, error) {
			return failureOn(eng, sc, fractions[seed-sc.Seed])
		})
}

// FormatFailure renders the sweep.
func FormatFailure(rows []*FailureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %-11s %-10s %-22s %s\n",
		"kill", "ratio spike", "recovery", "promos", "success b/d/a", "")
	for _, r := range rows {
		rec := "never"
		if !math.IsNaN(r.RecoveryTime) {
			rec = fmt.Sprintf("%.0f units", r.RecoveryTime)
		}
		fmt.Fprintf(&b, "%-8.0f%% %5.1f->%-5.1f %-11s %-10d %.2f / %.2f / %.2f\n",
			100*r.KillFraction, r.RatioBefore, r.RatioPeak, rec, r.PromotionsAfter,
			r.SuccessBefore, r.SuccessDuring, r.SuccessAfter)
	}
	return b.String()
}
