package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dlm/internal/config"
	"dlm/internal/sim"
	"dlm/internal/trace"
)

// testScenario is small enough to run many times in tests while keeping
// a statistically meaningful super-layer.
func testScenario() config.Scenario {
	sc := config.Scaled(400)
	sc.Seed = 42
	sc.Duration = 400
	sc.Warmup = 150
	sc.SampleEvery = 5
	return sc
}

func TestRunProducesSeriesAndInvariantsHold(t *testing.T) {
	sc := testScenario()
	res, err := Run(RunConfig{Scenario: sc, Manager: ManagerDLM})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invariants) > 0 {
		t.Fatalf("invariants: %v", res.Invariants[0])
	}
	for _, name := range []string{"ratio", "supers", "leaves", "age_super", "age_leaf", "cap_super", "cap_leaf", "lnn"} {
		s := res.Series.Get(name)
		if s == nil || s.Len() == 0 {
			t.Fatalf("series %q missing or empty", name)
		}
	}
	if res.Final.NumSupers+res.Final.NumLeaves != sc.N {
		t.Fatalf("population %d, want %d", res.Final.NumSupers+res.Final.NumLeaves, sc.N)
	}
	if res.ManagerName != "dlm" {
		t.Fatalf("manager %q", res.ManagerName)
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	sc := testScenario()
	sc.N = 0
	if _, err := Run(RunConfig{Scenario: sc}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestFigure4AgeSeparation(t *testing.T) {
	f, err := Figure4(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series count %d", len(f.Series))
	}
	sup, leaf := f.Series[0], f.Series[1]
	from, to := 150.0, 400.0
	sep := sup.MeanOver(from, to) / leaf.MeanOver(from, to)
	if sep < 1.5 {
		t.Fatalf("age separation %.2fx, want super-layer clearly older", sep)
	}
	// The regime change at t=300 must not invert the layers.
	if v, _ := sup.At(390); true {
		if lv, _ := leaf.At(390); v <= lv {
			t.Fatalf("layers inverted after regime change: %v vs %v", v, lv)
		}
	}
}

func TestFigure5CapacitySeparation(t *testing.T) {
	// Small-scale layer means are dominated by where a handful of
	// heavy-tail peers land, so assert on a multi-seed mean.
	var seps []float64
	for seed := int64(42); seed <= 44; seed++ {
		sc := testScenario()
		sc.Seed = seed
		f, err := Figure5(sc)
		if err != nil {
			t.Fatal(err)
		}
		sup, leaf := f.Series[0], f.Series[1]
		seps = append(seps, sup.MeanOver(150, 400)/leaf.MeanOver(150, 400))
	}
	var sum float64
	for _, s := range seps {
		sum += s
	}
	mean := sum / float64(len(seps))
	if mean < 1.3 {
		t.Fatalf("capacity separation %.2fx mean over seeds %v, want super-layer clearly stronger",
			mean, seps)
	}
}

func TestFigure6RatioMaintained(t *testing.T) {
	sc := testScenario()
	f, err := Figure6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !f.LogY {
		t.Error("Figure 6 must be log-scale")
	}
	sup := f.Series[0]
	// Layer size approximately constant through the lifetime regime
	// change: max/min bounded over the window. (The bound is loose at
	// this scale: the super-layer holds only ~25 peers, so role-change
	// quantization is visible.)
	from, to := 150.0, 400.0
	span := sup.MaxOver(from, to) / sup.MinOver(from, to)
	if span > 3.0 {
		t.Fatalf("super-layer size swung %.1fx over the window", span)
	}
	if len(f.Notes) == 0 || !strings.Contains(f.Notes[0], "ratio mean") {
		t.Fatalf("notes: %v", f.Notes)
	}
}

func TestFigure7DLMBeatsPreconfigured(t *testing.T) {
	// Population turnover (~120 units mean lifetime) must run a few
	// times within the oscillation for the preconfigured drift to show,
	// and the super-layer must be big enough that DLM's role-change
	// quantization does not dominate its own ratio variance.
	sc := config.Scaled(800)
	sc.Seed = 42
	sc.Eta = 10
	sc.Warmup = 150
	sc.SampleEvery = 5
	sc.Duration = 700
	f, err := Figure7(sc)
	if err != nil {
		t.Fatal(err)
	}
	dlm, pre := f.Series[0], f.Series[1]
	from, to := sc.Warmup, sc.Duration
	// The paper's claim: DLM maintains the target ratio while the
	// preconfigured threshold loses it as the population mix changes.
	// Under the oscillating mix the preconfigured failure shows as both
	// drift (the mix is stronger on average than the calibration mix)
	// and periodic swing; the robust discriminator is accuracy against
	// the target.
	dlmRMSE := dlm.RMSEAgainst(sc.Eta, from, to)
	preRMSE := pre.RMSEAgainst(sc.Eta, from, to)
	if !(dlmRMSE < preRMSE/1.5) {
		t.Fatalf("DLM ratio RMSE %.2f not clearly better than preconfigured %.2f", dlmRMSE, preRMSE)
	}
	// And DLM must hold near the target: mean within 35% of η.
	mean := dlm.MeanOver(from, to)
	if mean < 0.65*sc.Eta || mean > 1.35*sc.Eta {
		t.Fatalf("DLM ratio mean %.1f too far from η=%.0f", mean, sc.Eta)
	}
}

func TestFigure8DLMAgesSharplyDivided(t *testing.T) {
	sc := testScenario()
	f, err := Figure8(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series count %d", len(f.Series))
	}
	from, to := sc.Warmup, sc.Duration
	dlmSuper := f.Series[0].MeanOver(from, to)
	preSuper := f.Series[1].MeanOver(from, to)
	dlmLeaf := f.Series[2].MeanOver(from, to)
	if !(dlmSuper > preSuper) {
		t.Fatalf("DLM super-layer age %.1f not above preconfigured %.1f", dlmSuper, preSuper)
	}
	if !(dlmSuper/dlmLeaf > 1.5) {
		t.Fatalf("DLM layers not sharply divided: %.1f vs %.1f", dlmSuper, dlmLeaf)
	}
}

func TestTable3ShapeAndFormat(t *testing.T) {
	rows, err := Table3([]int{300, 900}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.NewLeafPeers <= 0 {
			t.Fatalf("no churn measured: %+v", r)
		}
		if r.PAOOverNLCO < 0 || r.PAOOverNLCO > 60 {
			t.Fatalf("PAO/NLCO %.1f%% implausible", r.PAOOverNLCO)
		}
		if math.IsNaN(r.PAOOverNLCO) {
			t.Fatal("NaN ratio")
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "PAO/NLCO") || !strings.Contains(out, "300") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestOverheadSmallShare(t *testing.T) {
	sc := testScenario()
	sc.QueryRate = 20
	res, err := Overhead(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchMessages == 0 {
		t.Fatal("no search traffic")
	}
	if res.DLMMessages == 0 {
		t.Fatal("no DLM traffic")
	}
	if res.MsgShare > 50 {
		t.Fatalf("DLM share %.1f%% of messages — not negligible", res.MsgShare)
	}
	if res.ByteShare > res.MsgShare {
		t.Fatalf("byte share %.1f%% above message share %.1f%% despite tiny DLM messages",
			res.ByteShare, res.MsgShare)
	}
	if !strings.Contains(res.Format(), "DLM share") {
		t.Fatal("format incomplete")
	}
}

func TestPolicyAblation(t *testing.T) {
	sc := testScenario()
	sc.Duration = 300
	rows, err := PolicyAblation(sc, []float64{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Policy != "event-driven" {
		t.Fatalf("first row %q", rows[0].Policy)
	}
	for _, r := range rows {
		if r.DLMMessages == 0 || math.IsNaN(r.RatioRMSE) {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// Frequent periodic exchange costs more traffic than coarse periodic.
	if rows[1].DLMMessages <= rows[2].DLMMessages {
		t.Fatalf("periodic-2 (%d msgs) should cost more than periodic-10 (%d)",
			rows[1].DLMMessages, rows[2].DLMMessages)
	}
	if !strings.Contains(FormatPolicyAblation(rows), "event-driven") {
		t.Fatal("format incomplete")
	}
}

func TestGainAblation(t *testing.T) {
	sc := testScenario()
	sc.Duration = 300
	rows, err := GainAblation(sc, "rategain", []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Label != "rategain=1" {
		t.Fatalf("rows %+v", rows)
	}
	if _, err := GainAblation(sc, "nonsense", []float64{1}); err == nil {
		t.Fatal("unknown knob accepted")
	}
	if !strings.Contains(FormatGainAblation(rows), "rategain=4") {
		t.Fatal("format incomplete")
	}
}

func TestBaselineSweep(t *testing.T) {
	sc := testScenario()
	sc.Duration = 300
	rows, err := BaselineSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Manager] = r
	}
	// Static holds the ratio but cannot separate capacities.
	if s := byName["static"]; s.CapSeparation > 1.5 {
		t.Fatalf("static separated capacities %.2fx?", s.CapSeparation)
	}
	// DLM separates capacity clearly better than static.
	if byName["dlm"].CapSeparation <= byName["static"].CapSeparation {
		t.Fatal("DLM did not beat static on capacity separation")
	}
	// Oracle is the quality upper bound for capacity separation.
	if byName["oracle"].CapSeparation < byName["dlm"].CapSeparation*0.8 {
		t.Fatalf("oracle (%.2fx) unexpectedly far below DLM (%.2fx)",
			byName["oracle"].CapSeparation, byName["dlm"].CapSeparation)
	}
	if !strings.Contains(FormatBaselineSweep(rows), "oracle") {
		t.Fatal("format incomplete")
	}
}

func TestDynamicRunDeterminism(t *testing.T) {
	sc := testScenario()
	sc.Duration = 250
	a, err := Figure4(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure4(sc)
	if err != nil {
		t.Fatal(err)
	}
	ap, bp := a.Series[0].Points(), b.Series[0].Points()
	if len(ap) != len(bp) {
		t.Fatal("lengths differ")
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("diverged at %d: %+v vs %+v", i, ap[i], bp[i])
		}
	}
}

// TestSchedulerWorkerCountInvariance pins the parallel scheduler's
// headline contract: sweep results are identical whether trials run on
// one worker or many, on both the flat (pooled) and sweep (pooledSweep)
// paths.
func TestSchedulerWorkerCountInvariance(t *testing.T) {
	t.Cleanup(func() { DefaultWorkers = 0 })
	sc := testScenario()
	sc.Duration = 250

	policy := func(workers int) []PolicyAblationRow {
		DefaultWorkers = workers
		rows, err := PolicyAblation(sc, []float64{2, 10})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if a, b := policy(1), policy(4); !reflect.DeepEqual(a, b) {
		t.Fatalf("PolicyAblation differs across worker counts:\n1: %+v\n4: %+v", a, b)
	}

	table := func(workers int) []Table3Row {
		DefaultWorkers = workers
		rows, err := Table3([]int{300}, 50)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if a, b := table(1), table(3); !reflect.DeepEqual(a, b) {
		t.Fatalf("Table3 differs across worker counts:\n1: %+v\n3: %+v", a, b)
	}
}

// TestRunOnReusedEngineMatchesFresh pins the engine-reuse leg of the
// scheduler's determinism argument: a run on an engine dirtied by a
// different scenario is indistinguishable from a run on a fresh engine.
func TestRunOnReusedEngineMatchesFresh(t *testing.T) {
	sc := testScenario()
	sc.Duration = 250
	fresh, err := Run(RunConfig{Scenario: sc, Manager: ManagerDLM})
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine(99)
	other := testScenario()
	other.Seed = 9
	other.Duration = 200
	other.Warmup = 80
	if _, err := RunOn(eng, RunConfig{Scenario: other, Manager: ManagerDLM}); err != nil {
		t.Fatal(err)
	}
	reused, err := RunOn(eng, RunConfig{Scenario: sc, Manager: ManagerDLM})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fresh.Final, reused.Final) {
		t.Fatalf("final snapshots differ:\nfresh  %+v\nreused %+v", fresh.Final, reused.Final)
	}
	for _, name := range []string{"ratio", "supers", "age_super", "cap_super", "lnn"} {
		fp := fresh.Series.Get(name).Points()
		rp := reused.Series.Get(name).Points()
		if len(fp) != len(rp) {
			t.Fatalf("series %q length %d vs %d", name, len(fp), len(rp))
		}
		for i := range fp {
			if fp[i] != rp[i] {
				t.Fatalf("series %q diverged at %d: %+v vs %+v", name, i, fp[i], rp[i])
			}
		}
	}
}

func TestSearchEfficiency(t *testing.T) {
	sc := testScenario()
	sc.N = 500
	sc.Warmup = 120
	sc.Duration = 200
	sc.CatalogSize = 300
	rows, err := SearchEfficiency(sc, []int{3, 6}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	deep := rows[1]
	if deep.PureSuccess <= 0 || deep.SuperSuccess <= 0 {
		t.Fatalf("no hits at TTL 6: %+v", deep)
	}
	// The headline claim: at the deeper TTL (comparable or better
	// success), the super-peer system spends far fewer messages.
	if !(deep.SuperMsgsPer < deep.PureMsgsPer/2) {
		t.Fatalf("super-peer search not cheaper: %.0f vs %.0f msgs/query",
			deep.SuperMsgsPer, deep.PureMsgsPer)
	}
	// Floods touch most of the pure network but only the (small)
	// super-layer in the layered system.
	if !(deep.SuperReachFrac < deep.PureReachFrac) {
		t.Fatalf("reach fractions: super %.2f vs pure %.2f",
			deep.SuperReachFrac, deep.PureReachFrac)
	}
	out := FormatSearchRows(rows)
	if !strings.Contains(out, "super-peer") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRedundancySweep(t *testing.T) {
	sc := testScenario()
	sc.N = 400
	sc.Duration = 300
	sc.Warmup = 120
	sc.CatalogSize = 300
	rows, err := RedundancySweep(sc, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	m1, m3 := rows[0], rows[1]
	if m1.M != 1 || m3.M != 3 {
		t.Fatalf("order %+v", rows)
	}
	// With m=1 a single super death blacks a leaf out until the next
	// repair round; redundancy must shrink that exposure.
	if !(m1.StrandedFrac > 0) {
		t.Fatalf("m=1 never stranded a leaf (deferred reconnect broken?): %+v", m1)
	}
	if !(m3.StrandedFrac < m1.StrandedFrac) {
		t.Fatalf("stranded fraction did not drop with m: %v -> %v",
			m1.StrandedFrac, m3.StrandedFrac)
	}
	if !(m3.ConnectionsPerUnit > m1.ConnectionsPerUnit) {
		t.Fatalf("connection cost did not rise with m: %v -> %v",
			m1.ConnectionsPerUnit, m3.ConnectionsPerUnit)
	}
	if m1.QuerySuccess <= 0 || m3.QuerySuccess <= 0 {
		t.Fatal("no query success measured")
	}
	if !strings.Contains(FormatRedundancy(rows), "stranded") {
		t.Fatal("format incomplete")
	}
}

func TestLatencyAblation(t *testing.T) {
	sc := testScenario()
	sc.Duration = 300
	sc.QueryRate = 3
	rows, err := LatencyAblation(sc, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.RatioMean) || r.RatioMean <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.QuerySuccess <= 0 {
			t.Fatalf("no query success at latency %v", r.Latency)
		}
	}
	// A 0.1-unit delay (well under the refresh interval) must not wreck
	// ratio maintenance: within 2x of the zero-latency RMSE plus slack.
	if rows[1].RatioRMSE > 2*rows[0].RatioRMSE+3 {
		t.Fatalf("latency 0.1 degraded RMSE %0.1f -> %0.1f", rows[0].RatioRMSE, rows[1].RatioRMSE)
	}
	if !strings.Contains(FormatLatency(rows), "ratio RMSE") {
		t.Fatal("format incomplete")
	}
}

func TestFailureRecovery(t *testing.T) {
	sc := testScenario()
	sc.N = 600
	sc.Duration = 600
	sc.Warmup = 250 // the fail point must be past cold-start trim
	sc.CatalogSize = 300
	res, err := Failure(sc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatioBefore <= 0 {
		t.Fatalf("no pre-failure ratio: %+v", res)
	}
	// Killing half the supers must spike the ratio...
	if !(res.RatioPeak > res.RatioBefore*1.4) {
		t.Fatalf("ratio did not spike: %.1f -> %.1f", res.RatioBefore, res.RatioPeak)
	}
	// ...and DLM must rebuild the backbone within the window.
	if math.IsNaN(res.RecoveryTime) {
		t.Fatalf("never recovered: %+v", res)
	}
	if res.PromotionsAfter == 0 {
		t.Fatal("no promotions after the failure")
	}
	// Search keeps functioning throughout (the m=2 redundancy and the
	// rebuilt backbone).
	if res.SuccessAfter <= 0.3 {
		t.Fatalf("post-recovery success %.2f", res.SuccessAfter)
	}
	if _, err := Failure(sc, 1.5); err == nil {
		t.Fatal("bad kill fraction accepted")
	}
	rows, err := FailureSweep(sc, []float64{0.3})
	if err != nil || len(rows) != 1 {
		t.Fatalf("sweep: %v %d", err, len(rows))
	}
	if !strings.Contains(FormatFailure(rows), "recovery") {
		t.Fatal("format incomplete")
	}
}

func TestCapAblation(t *testing.T) {
	sc := testScenario()
	sc.N = 500
	sc.Duration = 350
	rows, err := CapAblation(sc, []float64{0, 2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	uncapped, loose, tight := rows[0], rows[1], rows[2]
	if uncapped.Cap != 0 || loose.Cap <= tight.Cap {
		t.Fatalf("cap values: %+v", rows)
	}
	// A generous cap behaves like no cap; a cap below k_l breaks ratio
	// maintenance badly (the μ signal saturates and leaves cannot even
	// attach).
	if loose.RatioRMSE > 3*uncapped.RatioRMSE+5 {
		t.Fatalf("2x k_l cap degraded RMSE: %v vs %v", loose.RatioRMSE, uncapped.RatioRMSE)
	}
	if !(tight.RatioRMSE > 3*uncapped.RatioRMSE) {
		t.Fatalf("sub-k_l cap did not break the controller: %v vs %v",
			tight.RatioRMSE, uncapped.RatioRMSE)
	}
	if !strings.Contains(FormatCap(rows), "uncapped") {
		t.Fatal("format incomplete")
	}
}

func TestEquationAHoldsEmpirically(t *testing.T) {
	// Equation a: k_l = m·η. Under the static manager the realized ratio
	// is held at η exactly, so the measured mean leaf degree of supers
	// must equal m times the realized ratio (link bookkeeping identity)
	// and approximate m·η.
	sc := testScenario()
	sc.Duration = 250
	res, err := Run(RunConfig{Scenario: sc, Manager: ManagerStatic})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Final
	// Exact identity: total links counted from either side.
	lhs := f.AvgLeafDegree * float64(f.NumSupers)
	rhs := f.AvgSuperDegreeOfLeaves * float64(f.NumLeaves)
	if math.Abs(lhs-rhs) > 1e-6*math.Max(lhs, 1) {
		t.Fatalf("link bookkeeping: %v vs %v", lhs, rhs)
	}
	// Approximate law: l_nn ≈ m·ratio (leaves hold ~m links each).
	want := float64(sc.M) * f.Ratio
	if math.Abs(f.AvgLeafDegree-want)/want > 0.05 {
		t.Fatalf("Equation a: l_nn %v vs m·ratio %v", f.AvgLeafDegree, want)
	}
}

func TestRunWithTraceAndQueries(t *testing.T) {
	sc := testScenario()
	sc.N = 300
	sc.Duration = 200
	sc.Warmup = 80
	sc.QueryRate = 3
	var buf strings.Builder
	res, err := Run(RunConfig{
		Scenario: sc,
		Manager:  ManagerDLM,
		Queries:  true,
		TraceTo:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued == 0 || res.QuerySuccess <= 0 {
		t.Fatalf("query stats empty: %+v", res)
	}
	events, err := trace.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(events)
	if sum.Joins == 0 || sum.Promotions == 0 {
		t.Fatalf("trace incomplete: %+v", sum)
	}
	// The trace's lifecycle counts must agree with what the run reports
	// over its whole duration (joins include the growth phase, so only
	// sanity-level agreement is asserted).
	if sum.Joins < sc.N {
		t.Fatalf("trace joins %d below population %d", sum.Joins, sc.N)
	}
}
