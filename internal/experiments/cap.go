package experiments

import (
	"fmt"
	"strings"

	"dlm/internal/config"
	"dlm/internal/parexp"
	"dlm/internal/sim"
)

// CapRow reports the effect of a per-super leaf-degree cap on DLM.
type CapRow struct {
	// Cap is the leaf-degree cap as a multiple of k_l (0 = uncapped).
	CapOverKL float64
	Cap       int
	RatioMean float64
	RatioRMSE float64
	// StrandedFrac is the final fraction of leaves below their
	// redundancy target — the symptom when every super is full.
	UnderFrac float64
}

// CapAblation sweeps a Gnutella-style cap on super-peer leaf degree.
// DLM's ratio estimator reads l_nn against k_l; a cap below (or at) k_l
// saturates l_nn, so the shortage signal μ can never go positive and the
// controller mis-reads a full network as over-provisioned. Expected
// shape: caps comfortably above k_l are harmless; caps at or below k_l
// break ratio maintenance — a deployment warning for combining DLM with
// degree-capped clients.
func CapAblation(sc config.Scenario, capsOverKL []float64) ([]CapRow, error) {
	rows, err := pooled(len(capsOverKL), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (CapRow, error) {
			mult := capsOverKL[seed-sc.Seed]
			scc := sc
			scc.Seed = sc.Seed + 900
			cap := 0
			if mult > 0 {
				cap = int(mult * scc.KL())
			}
			res, err := RunOn(eng, RunConfig{
				Scenario:      scc,
				Manager:       ManagerDLM,
				MaxLeafDegree: cap,
			})
			if err != nil {
				return CapRow{}, err
			}
			from, to := scc.Warmup, scc.Duration
			r := res.Series.Get("ratio")
			under := 0.0
			if nl := res.Final.NumLeaves; nl > 0 {
				topo := float64(res.Final.NumLeaves)*float64(scc.M) -
					res.Final.AvgSuperDegreeOfLeaves*float64(nl)
				under = topo / (float64(nl) * float64(scc.M))
			}
			return CapRow{
				CapOverKL: mult,
				Cap:       cap,
				RatioMean: r.MeanOver(from, to),
				RatioRMSE: r.RMSEAgainst(scc.Eta, from, to),
				UnderFrac: under,
			}, nil
		})
	return rows, err
}

// FormatCap renders the sweep.
func FormatCap(rows []CapRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-12s %-12s %s\n",
		"cap (x k_l)", "cap", "ratio mean", "ratio RMSE", "missing leaf links")
	for _, r := range rows {
		label := fmt.Sprintf("%.1f", r.CapOverKL)
		if r.CapOverKL == 0 {
			label = "uncapped"
		}
		fmt.Fprintf(&b, "%-12s %-8d %-12.1f %-12.1f %.1f%%\n",
			label, r.Cap, r.RatioMean, r.RatioRMSE, 100*r.UnderFrac)
	}
	return b.String()
}
