package experiments

import (
	"fmt"
	"math"
	"strings"

	"dlm/internal/scenario"
	"dlm/internal/sim"
)

// The settled measurement window shared by the long-horizon experiments:
// the layer ratio converges slowly from the bootstrap overshoot, so the
// figure scenarios run to SettledWindowEnd and the robustness sweep
// measures only the tail from SettledWindowStart on. The golden figure
// artifacts (golden_test.go) and the dlmbench defaults both anchor to
// these values — one definition, so the window cannot drift apart again.
const (
	SettledWindowStart = 600.0
	SettledWindowEnd   = 1600.0
)

// AdversarialRow reports one adversarial scenario at one population size
// (see internal/scenario for the scenario definitions and oracles).
type AdversarialRow struct {
	Scenario string
	N        int

	// FinalRatio is the leaves-per-super ratio at the end of the run
	// (target η); PreErrPct / PeakErrPct / PostErrPct track the ratio
	// error before, during, and after the disturbance, and BandPct is
	// the re-convergence band (max of 4% and the scenario's own
	// pre-disturbance error).
	FinalRatio float64
	PreErrPct  float64
	PeakErrPct float64
	PostErrPct float64
	BandPct    float64
	// ReconvergeTime is how long after the disturbance cleared the
	// smoothed ratio re-entered the band for good (+Inf = never within
	// the observed window; NaN = scenario has no disturbance edge).
	ReconvergeTime float64

	// LiarSuperPct is the liars' share of the final super layer;
	// LiarPopPct their share of the population (the capture
	// measurement for the misreporting scenarios).
	LiarSuperPct float64
	LiarPopPct   float64

	// ExtraJoins counts scenario-driven joins beyond replacement churn;
	// Killed counts mass-kill removals; PartitionDrops the messages a
	// partition severed.
	ExtraJoins     uint64
	Killed         int
	PartitionDrops uint64

	// Decision and message overhead for the whole run.
	Promotions uint64
	Demotions  uint64
	DLMMsgs    uint64

	// Invariants counts structural-oracle violations (zero in a healthy
	// run).
	Invariants int
}

// Adversarial runs the full scenario pack (internal/scenario.Pack) at
// each population size and reduces every run to one row. Runs execute
// serially on one reused engine — the top sizes own the machine's memory
// bandwidth anyway, and serial execution keeps the peak footprint to a
// single population.
func Adversarial(sizes []int, seed int64) ([]AdversarialRow, error) {
	var rows []AdversarialRow
	var eng *sim.Engine
	for _, n := range sizes {
		for _, cfg := range scenario.Pack(n, seed) {
			cfg.Shards = resolveShards(0)
			if eng == nil {
				eng = sim.NewEngine(cfg.Base.Seed)
			}
			res, err := scenario.RunOn(eng, cfg)
			if err != nil {
				return nil, fmt.Errorf("adversarial %s n=%d: %w", cfg.Name, n, err)
			}
			rows = append(rows, adversarialRow(res))
		}
	}
	return rows, nil
}

// adversarialRow reduces a scenario result to its artifact row.
func adversarialRow(res *scenario.Result) AdversarialRow {
	return AdversarialRow{
		Scenario:       res.Name,
		N:              res.N,
		FinalRatio:     res.Final.Ratio,
		PreErrPct:      res.PreErrPct,
		PeakErrPct:     res.PeakErrPct,
		PostErrPct:     res.PostErrPct,
		BandPct:        res.BandPct,
		ReconvergeTime: res.ReconvergeTime,
		LiarSuperPct:   res.LiarSuperPct,
		LiarPopPct:     res.LiarPopPct,
		ExtraJoins:     res.ExtraJoins,
		Killed:         res.Killed,
		PartitionDrops: res.PartitionDrops,
		Promotions:     res.Promotions,
		Demotions:      res.Demotions,
		DLMMsgs:        res.DLMMsgs,
		Invariants:     len(res.Invariants),
	}
}

// fmtPct renders an error percentage, with "-" for scenarios where the
// metric does not apply (no disturbance edge).
func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// fmtReconv renders a re-convergence time: "-" where the metric does not
// apply, "never" when the run ended still outside the band.
func fmtReconv(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "never"
	}
	return fmt.Sprintf("%.0f", v)
}

// FormatAdversarial renders the battery.
func FormatAdversarial(rows []AdversarialRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-9s %-7s %-6s %-6s %-6s %-6s %-7s %-7s %-9s %-8s %-9s %-8s %-8s %-10s %s\n",
		"scenario", "n", "ratio", "pre%", "peak%", "post%", "band%", "reconv",
		"liarS%", "extra", "killed", "partdrop", "promo", "demo", "dlmmsgs", "inv")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-9d %-7.2f %-6s %-6s %-6s %-6s %-7s %-7s %-9d %-8d %-9d %-8d %-8d %-10d %d\n",
			r.Scenario, r.N, r.FinalRatio, fmtPct(r.PreErrPct), fmtPct(r.PeakErrPct),
			fmtPct(r.PostErrPct), fmtPct(r.BandPct), fmtReconv(r.ReconvergeTime),
			fmtPct(r.LiarSuperPct), r.ExtraJoins, r.Killed, r.PartitionDrops,
			r.Promotions, r.Demotions, r.DLMMsgs, r.Invariants)
	}
	return b.String()
}
