package experiments

import (
	"fmt"
	"strings"

	"dlm/internal/config"
	"dlm/internal/parexp"
	"dlm/internal/sim"
)

// Table3Row is one row of the paper's Table 3 "Peer Adjustment Overhead
// Analysis": per-time-unit counts measured over the steady-state window.
type Table3Row struct {
	NetworkSize int
	// NewLeafPeers is the joins per unit time.
	NewLeafPeers float64
	// DemotedSupers is the demotions per unit time.
	DemotedSupers float64
	// DisconnectedLeaves is the demotion-caused leaf disconnects per unit
	// time (each costs one replacement connection: the PAO).
	DisconnectedLeaves float64
	// PAOOverNLCO is the percentage PAO/NLCO.
	PAOOverNLCO float64
}

// Table3 reproduces the PAO/NLCO analysis at several network sizes, with
// three independent trials per size averaged. Expected shape: the ratio
// is around one percent and small at every size (l_nn concentrates
// around k_l as the network grows, so misjudgments get rarer).
func Table3(sizes []int, baseSeed int64) ([]Table3Row, error) {
	const repeats = 3
	trials, err := pooledSweep(sizes, repeats, parexp.Options{BaseSeed: baseSeed},
		func(eng *sim.Engine, size int, seed int64) (Table3Row, error) {
			sc := config.Scaled(size)
			sc.Seed = seed*7919 + 13
			// The window must be pure steady state: the cold-start trim
			// completes only after the demotion cooldown elapses.
			sc.Warmup = 400
			sc.Duration = 900
			res, err := RunOn(eng, RunConfig{Scenario: sc, Manager: ManagerDLM})
			if err != nil {
				return Table3Row{}, err
			}
			window := sc.Duration - sc.Warmup
			c := res.WindowCounters
			return Table3Row{
				NetworkSize:        size,
				NewLeafPeers:       float64(c.Joins) / window,
				DemotedSupers:      float64(c.Demotions) / window,
				DisconnectedLeaves: float64(c.DemotionDisconnects) / window,
				PAOOverNLCO:        c.PAOOverNLCO(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(sizes))
	for i, reps := range trials {
		row := Table3Row{NetworkSize: sizes[i]}
		for _, r := range reps {
			row.NewLeafPeers += r.NewLeafPeers / repeats
			row.DemotedSupers += r.DemotedSupers / repeats
			row.DisconnectedLeaves += r.DisconnectedLeaves / repeats
			row.PAOOverNLCO += r.PAOOverNLCO / repeats
		}
		rows[i] = row
	}
	return rows, nil
}

// FormatTable3 renders the rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-16s %-20s %-24s %s\n",
		"Network size", "# new leaf/unit", "# demoted super/unit", "# disconnected leaf/unit", "PAO/NLCO (%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %-16.2f %-20.3f %-24.3f %.2f%%\n",
			r.NetworkSize, r.NewLeafPeers, r.DemotedSupers, r.DisconnectedLeaves, r.PAOOverNLCO)
	}
	return b.String()
}

// OverheadResult quantifies §6's traffic argument: DLM's information
// exchange versus search traffic in the same run.
type OverheadResult struct {
	DLMMessages    uint64
	DLMBytes       uint64
	SearchMessages uint64
	SearchBytes    uint64
	QuerySuccess   float64
	// MsgShare and ByteShare are DLM traffic as a percentage of total
	// (DLM + search) traffic.
	MsgShare  float64
	ByteShare float64
	// PiggybackedByteShare projects §6's piggybacking remark: if every
	// DLM pair rode on an existing keepalive/handshake message, only the
	// payload bytes (wire size minus the 9-byte header) would be
	// incremental, and the message count would be zero.
	PiggybackedByteShare float64
}

// Overhead runs a steady-state scenario with the query workload enabled
// and partitions the traffic. Expected shape: DLM's share is a small
// percentage of search traffic. The default query rate is per-peer
// (about one query per peer-hour, per the measurement studies), so the
// search traffic scales with the population the way a real network's
// does.
func Overhead(sc config.Scenario) (*OverheadResult, error) {
	if sc.QueryRate <= 0 {
		sc.QueryRate = 0.017 * float64(sc.N)
	}
	res, err := Run(RunConfig{Scenario: sc, Manager: ManagerDLM, Queries: true})
	if err != nil {
		return nil, err
	}
	t := res.Traffic
	out := &OverheadResult{
		DLMMessages:    t.DLMMessages(),
		DLMBytes:       t.DLMBytes(),
		SearchMessages: t.SearchMessages(),
		SearchBytes:    t.SearchBytes(),
		QuerySuccess:   res.QuerySuccess,
	}
	if tm := out.DLMMessages + out.SearchMessages; tm > 0 {
		out.MsgShare = 100 * float64(out.DLMMessages) / float64(tm)
	}
	if tb := out.DLMBytes + out.SearchBytes; tb > 0 {
		out.ByteShare = 100 * float64(out.DLMBytes) / float64(tb)
	}
	// Piggyback projection: strip the per-message header (kind + two
	// peer IDs = 9 bytes) from every DLM message.
	const headerBytes = 9
	payload := out.DLMBytes - headerBytes*out.DLMMessages
	if tb := payload + out.SearchBytes; tb > 0 {
		out.PiggybackedByteShare = 100 * float64(payload) / float64(tb)
	}
	return out, nil
}

// FormatOverhead renders the overhead study.
func (o *OverheadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DLM info-exchange: %d msgs, %d bytes\n", o.DLMMessages, o.DLMBytes)
	fmt.Fprintf(&b, "Search traffic:    %d msgs, %d bytes\n", o.SearchMessages, o.SearchBytes)
	fmt.Fprintf(&b, "DLM share:         %.2f%% of messages, %.2f%% of bytes\n", o.MsgShare, o.ByteShare)
	fmt.Fprintf(&b, "  piggybacked onto keepalives (§6 projection): %.2f%% of bytes, 0 extra messages\n",
		o.PiggybackedByteShare)
	fmt.Fprintf(&b, "Query success:     %.1f%%\n", 100*o.QuerySuccess)
	return b.String()
}
