package experiments

import (
	"fmt"
	"strings"

	"dlm/internal/config"
	"dlm/internal/core"
	"dlm/internal/parexp"
	"dlm/internal/protocol"
	"dlm/internal/sim"
)

// PolicyAblationRow compares information-exchange policies (§4 Phase 1):
// the paper reports that event-driven exchange achieves the same accuracy
// as periodic exchange at lower overhead.
type PolicyAblationRow struct {
	Policy string
	// RatioRMSE measures ratio-maintenance accuracy against η.
	RatioRMSE float64
	// DLMMessages is the information-exchange traffic of the run.
	DLMMessages uint64
	DLMBytes    uint64
}

// PolicyAblation runs the event-driven policy and periodic policies at
// the given intervals on the same scenario.
func PolicyAblation(sc config.Scenario, intervals []float64) ([]PolicyAblationRow, error) {
	type point struct {
		name     string
		params   core.Params
		interval float64
	}
	points := []point{{name: "event-driven", params: core.DefaultParams()}}
	for _, iv := range intervals {
		p := core.DefaultParams()
		p.Exchange = core.Periodic
		p.PeriodicInterval = protocol.Duration(iv)
		p.RefreshInterval = 0
		points = append(points, point{name: fmt.Sprintf("periodic-%g", iv), params: p, interval: iv})
	}
	out, err := pooled(len(points), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (PolicyAblationRow, error) {
			pt := points[seed-sc.Seed]
			scc := sc
			scc.Seed = sc.Seed + 1000
			params := pt.params
			res, err := RunOn(eng, RunConfig{Scenario: scc, Manager: ManagerDLM, DLMParams: &params})
			if err != nil {
				return PolicyAblationRow{}, err
			}
			return PolicyAblationRow{
				Policy:      pt.name,
				RatioRMSE:   res.Series.Get("ratio").RMSEAgainst(scc.Eta, scc.Warmup, scc.Duration),
				DLMMessages: res.Traffic.DLMMessages(),
				DLMBytes:    res.Traffic.DLMBytes(),
			}, nil
		})
	return out, err
}

// FormatPolicyAblation renders the rows.
func FormatPolicyAblation(rows []PolicyAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-14s %s\n", "policy", "ratio RMSE", "DLM msgs", "DLM bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-12.2f %-14d %d\n", r.Policy, r.RatioRMSE, r.DLMMessages, r.DLMBytes)
	}
	return b.String()
}

// GainAblationRow sweeps the reconstructed controller gains.
type GainAblationRow struct {
	Label      string
	RatioRMSE  float64
	RatioMean  float64
	Promotions uint64
	Demotions  uint64
}

// GainAblation sweeps one named knob of the DLM params across values,
// reporting ratio quality and role-change churn. Supported knobs:
// "beta" (the age-threshold gains), "betacapa" (the capacity-threshold
// gains), "lambda", "rategain", "cooldown", "ratelimit" (0/1),
// "window" (T_l, the related-set recency window), "refresh" (the l_nn
// freshness interval; 0 disables), and "sharpness" (selection
// weighting exponent).
func GainAblation(sc config.Scenario, knob string, values []float64) ([]GainAblationRow, error) {
	apply := func(p *core.Params, v float64) error {
		switch knob {
		case "beta":
			p.BetaPromoteAge, p.BetaDemoteAge = v, v
		case "betacapa":
			p.BetaPromoteCapa, p.BetaDemoteCapa = v, v
		case "lambda":
			p.LambdaCapa, p.LambdaAge = v, v
		case "rategain":
			p.RateGain = v
		case "cooldown":
			p.DecisionCooldown = protocol.Duration(v)
		case "ratelimit":
			p.RateLimit = v != 0
		case "window":
			p.LeafWindow = protocol.Duration(v)
		case "refresh":
			p.RefreshInterval = protocol.Duration(v)
		case "sharpness":
			p.SelectionSharpness = v
		default:
			return fmt.Errorf("experiments: unknown knob %q", knob)
		}
		return nil
	}
	out, err := pooled(len(values), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (GainAblationRow, error) {
			v := values[seed-sc.Seed]
			p := core.DefaultParams()
			if err := apply(&p, v); err != nil {
				return GainAblationRow{}, err
			}
			scc := sc
			scc.Seed = sc.Seed + 2000
			res, err := RunOn(eng, RunConfig{Scenario: scc, Manager: ManagerDLM, DLMParams: &p})
			if err != nil {
				return GainAblationRow{}, err
			}
			r := res.Series.Get("ratio")
			return GainAblationRow{
				Label:      fmt.Sprintf("%s=%g", knob, v),
				RatioRMSE:  r.RMSEAgainst(scc.Eta, scc.Warmup, scc.Duration),
				RatioMean:  r.MeanOver(scc.Warmup, scc.Duration),
				Promotions: res.WindowCounters.Promotions,
				Demotions:  res.WindowCounters.Demotions,
			}, nil
		})
	return out, err
}

// FormatGainAblation renders the rows.
func FormatGainAblation(rows []GainAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-12s %-12s %-12s %s\n", "setting", "ratio RMSE", "ratio mean", "promotions", "demotions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-12.2f %-12.2f %-12d %d\n", r.Label, r.RatioRMSE, r.RatioMean, r.Promotions, r.Demotions)
	}
	return b.String()
}

// BaselineRow compares layer-management policies on one scenario.
type BaselineRow struct {
	Manager       string
	RatioMean     float64
	RatioRMSE     float64
	CapSeparation float64 // super-layer mean capacity / leaf-layer
	AgeSeparation float64 // super-layer mean age / leaf-layer
	PAOOverNLCO   float64
}

// BaselineSweep runs DLM against the preconfigured, static, and oracle
// policies on the same dynamic scenario. Expected shape: DLM approaches
// the oracle's selection quality (capacity/age separation) while the
// preconfigured policy loses ratio control and static loses selection
// quality.
func BaselineSweep(sc config.Scenario) ([]BaselineRow, error) {
	kinds := []ManagerKind{ManagerDLM, ManagerPreconfigured, ManagerStatic, ManagerOracle}
	out, err := pooled(len(kinds), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (BaselineRow, error) {
			kind := kinds[seed-sc.Seed]
			rc := ComparisonScenario(sc, kind)
			rc.Queries = false
			res, err := RunOn(eng, rc)
			if err != nil {
				return BaselineRow{}, err
			}
			from, to := sc.Warmup, sc.Duration
			r := res.Series.Get("ratio")
			return BaselineRow{
				Manager:       res.ManagerName,
				RatioMean:     r.MeanOver(from, to),
				RatioRMSE:     r.RMSEAgainst(sc.Eta, from, to),
				CapSeparation: res.Series.Get("cap_super").MeanOver(from, to) / res.Series.Get("cap_leaf").MeanOver(from, to),
				AgeSeparation: res.Series.Get("age_super").MeanOver(from, to) / res.Series.Get("age_leaf").MeanOver(from, to),
				PAOOverNLCO:   res.WindowCounters.PAOOverNLCO(),
			}, nil
		})
	return out, err
}

// FormatBaselineSweep renders the rows.
func FormatBaselineSweep(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-12s %-10s %-10s %s\n",
		"manager", "ratio mean", "ratio RMSE", "cap sep", "age sep", "PAO/NLCO")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-12.2f %-12.2f %-10.2f %-10.2f %.2f%%\n",
			r.Manager, r.RatioMean, r.RatioRMSE, r.CapSeparation, r.AgeSeparation, r.PAOOverNLCO)
	}
	return b.String()
}
