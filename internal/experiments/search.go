package experiments

import (
	"fmt"
	"strings"

	"dlm/internal/config"
	"dlm/internal/flat"
	"dlm/internal/parexp"
	"dlm/internal/query"
	"dlm/internal/sim"
)

// SearchRow compares search behavior at one TTL between the pure
// (flat-flooding) system and the DLM-managed super-peer system on the
// same population and content workload.
type SearchRow struct {
	TTL int
	// Pure system.
	PureSuccess   float64
	PureMsgsPer   float64
	PureReachFrac float64 // fraction of the population a flood touches
	// Super-peer system.
	SuperSuccess   float64
	SuperMsgsPer   float64
	SuperReachFrac float64 // fraction of the population (supers reached)
}

// SearchEfficiency reproduces the paper's motivating claim (§1/§3):
// "super-peer systems have higher search efficiency because instead of
// all the peers, only super-peers are involved in search processes." It
// runs both systems with the same catalog and churn, sweeps TTL, and
// reports success rate versus message cost. Expected shape: at matched
// success rates, the super-peer system spends far fewer messages per
// query than the pure system.
func SearchEfficiency(sc config.Scenario, ttls []int, queriesPerTTL int) ([]SearchRow, error) {
	if queriesPerTTL <= 0 {
		queriesPerTTL = 200
	}
	type half struct {
		success, msgs, reach float64
	}

	jobs := make([]func(*sim.Engine) (half, error), 0, 2*len(ttls))
	for _, ttl := range ttls {
		ttl := ttl
		jobs = append(jobs, func(eng *sim.Engine) (half, error) { return runPureSearch(eng, sc, ttl, queriesPerTTL) })
		jobs = append(jobs, func(eng *sim.Engine) (half, error) { return runSuperSearch(eng, sc, ttl, queriesPerTTL) })
	}
	results, err := pooled(len(jobs), parexp.Options{BaseSeed: 0},
		func(eng *sim.Engine, seed int64) (half, error) { return jobs[seed](eng) })
	if err != nil {
		return nil, err
	}
	rows := make([]SearchRow, len(ttls))
	for i, ttl := range ttls {
		pure, super := results[2*i], results[2*i+1]
		rows[i] = SearchRow{
			TTL:            ttl,
			PureSuccess:    pure.success,
			PureMsgsPer:    pure.msgs,
			PureReachFrac:  pure.reach,
			SuperSuccess:   super.success,
			SuperMsgsPer:   super.msgs,
			SuperReachFrac: super.reach,
		}
	}
	return rows, nil
}

// runPureSearch builds a flat network under the scenario's workload and
// issues queries at the given TTL after warm-up.
func runPureSearch(eng *sim.Engine, sc config.Scenario, ttl, queries int) (struct{ success, msgs, reach float64 }, error) {
	var out struct{ success, msgs, reach float64 }
	if err := sc.Validate(); err != nil {
		return out, err
	}
	eng = engineFor(eng, sc.Seed)
	n := flat.New(eng, flat.Config{Degree: 5})
	cat := query.NewCatalog(sc.CatalogSize, 0.8, 0.8)
	churn := &flat.Churn{
		Net:        n,
		Profile:    sc.BaseProfile(),
		Catalog:    cat,
		TargetSize: sc.N,
		GrowthRate: sc.GrowthRate,
	}
	churn.Start()
	eng.Ticker(1, func(e *sim.Engine) bool {
		n.Repair()
		return e.Now() < sim.Time(sc.Warmup)
	})
	if err := eng.RunUntil(sim.Time(sc.Warmup)); err != nil {
		return out, err
	}
	rng := eng.Rand().Stream("pure-search")
	succeeded := 0
	var totalMsgs, totalReach uint64
	for i := 0; i < queries; i++ {
		src := n.RandomPeer()
		if src == nil {
			continue
		}
		res := n.Flood(src, cat.QueryTarget(rng), ttl)
		if res.Found {
			succeeded++
		}
		totalMsgs += res.QueryMsgs + res.HitMsgs
		totalReach += uint64(res.PeersReached)
	}
	out.success = float64(succeeded) / float64(queries)
	out.msgs = float64(totalMsgs) / float64(queries)
	out.reach = float64(totalReach) / float64(queries) / float64(sc.N)
	return out, nil
}

// runSuperSearch builds a DLM-managed super-peer network under the same
// workload and issues queries at the given TTL after warm-up.
func runSuperSearch(eng *sim.Engine, sc config.Scenario, ttl, queries int) (struct{ success, msgs, reach float64 }, error) {
	var out struct{ success, msgs, reach float64 }
	scc := sc
	scc.QueryRate = 0 // we issue queries manually after warm-up
	rc := RunConfig{Scenario: scc, Manager: ManagerDLM}

	eng = engineFor(eng, scc.Seed)
	mgr := buildManager(rc, scc.Seed)
	net := newOverlayForScenario(eng, scc, mgr)
	cat := query.NewCatalog(scc.CatalogSize, 0.8, 0.8)
	qe := query.Attach(net, cat)
	startChurn(net, scc, cat)
	eng.Ticker(1, func(e *sim.Engine) bool {
		net.Tick()
		return e.Now() < sim.Time(scc.Warmup)
	})
	if err := eng.RunUntil(sim.Time(scc.Warmup)); err != nil {
		return out, err
	}
	rng := eng.Rand().Stream("super-search")
	succeeded := 0
	var totalMsgs float64
	var totalReach uint64
	for i := 0; i < queries; i++ {
		src := net.RandomPeer()
		if src == nil {
			continue
		}
		res := qe.Issue(src, cat.QueryTarget(rng), uint8(ttl))
		if res.Found {
			succeeded++
		}
		totalMsgs += float64(res.QueryMsgs + res.HitMsgs)
		totalReach += uint64(res.SupersReached)
	}
	out.success = float64(succeeded) / float64(queries)
	out.msgs = totalMsgs / float64(queries)
	out.reach = float64(totalReach) / float64(queries) / float64(scc.N)
	return out, nil
}

// FormatSearchRows renders the comparison.
func FormatSearchRows(rows []SearchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s | %-28s | %-28s\n", "TTL", "pure P2P", "super-peer (DLM)")
	fmt.Fprintf(&b, "%-5s | %-9s %-10s %-7s | %-9s %-10s %-7s\n",
		"", "success", "msgs/qry", "reach", "success", "msgs/qry", "reach")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d | %-9.2f %-10.0f %-7.2f | %-9.2f %-10.0f %-7.2f\n",
			r.TTL, r.PureSuccess, r.PureMsgsPer, r.PureReachFrac,
			r.SuperSuccess, r.SuperMsgsPer, r.SuperReachFrac)
	}
	return b.String()
}
