package experiments

import (
	"fmt"
	"strings"

	"dlm/internal/config"
	"dlm/internal/parexp"
	"dlm/internal/sim"
)

// LatencyRow reports DLM behavior under one message-delay setting.
type LatencyRow struct {
	// Latency is the one-hop message delay in time units.
	Latency float64
	// RatioMean and RatioRMSE measure ratio maintenance over the
	// steady-state window.
	RatioMean float64
	RatioRMSE float64
	// CapSeparation is super/leaf mean capacity.
	CapSeparation float64
	// QuerySuccess is the asynchronous flood success rate (0 when the
	// scenario has no query workload).
	QuerySuccess float64
}

// LatencyAblation sweeps the one-hop message latency. DLM's information
// collection, and the query floods, then run through the event queue
// instead of inline — the test of whether the algorithm's decisions
// tolerate stale-by-transit information. Expected shape: the ratio and
// separations are essentially unchanged for delays well below the
// refresh interval, degrading gracefully beyond.
func LatencyAblation(sc config.Scenario, latencies []float64) ([]LatencyRow, error) {
	rows, err := pooled(len(latencies), parexp.Options{BaseSeed: sc.Seed},
		func(eng *sim.Engine, seed int64) (LatencyRow, error) {
			lat := latencies[seed-sc.Seed]
			scc := sc
			scc.Seed = sc.Seed + 500
			res, err := RunOn(eng, RunConfig{
				Scenario: scc,
				Manager:  ManagerDLM,
				Queries:  scc.QueryRate > 0,
				Latency:  sim.Duration(lat),
			})
			if err != nil {
				return LatencyRow{}, err
			}
			from, to := scc.Warmup, scc.Duration
			r := res.Series.Get("ratio")
			return LatencyRow{
				Latency:       lat,
				RatioMean:     r.MeanOver(from, to),
				RatioRMSE:     r.RMSEAgainst(scc.Eta, from, to),
				CapSeparation: res.Series.Get("cap_super").MeanOver(from, to) / res.Series.Get("cap_leaf").MeanOver(from, to),
				QuerySuccess:  res.QuerySuccess,
			}, nil
		})
	return rows, err
}

// FormatLatency renders the sweep.
func FormatLatency(rows []LatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-10s %s\n",
		"latency", "ratio mean", "ratio RMSE", "cap sep", "query success")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.3g %-12.1f %-12.1f %-10.2f %.2f\n",
			r.Latency, r.RatioMean, r.RatioRMSE, r.CapSeparation, r.QuerySuccess)
	}
	return b.String()
}
