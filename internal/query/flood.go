package query

import (
	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/stats"
)

// Result summarizes one query flood.
type Result struct {
	Query  msg.QueryID
	Object msg.ObjectID
	// Found reports whether at least one QueryHit reached the source.
	Found bool
	// Hits counts QueryHit deliveries at the source.
	Hits int
	// FirstHitHops is the hop count of the first hit (super-layer hops);
	// -1 when not found.
	FirstHitHops int
	// QueryMsgs and HitMsgs are this query's message costs.
	QueryMsgs uint64
	HitMsgs   uint64
	// SupersReached is the number of distinct super-peers that processed
	// the query.
	SupersReached int
	// Duplicates counts redundant deliveries suppressed by the
	// duplicate-detection check.
	Duplicates int
}

// Engine runs Gnutella-style search over the super-layer: queries flood
// among super-peers with a TTL, each super-peer answers from its local
// content and its leaf index, and hits travel the inverse query path.
type Engine struct {
	// DefaultTTL is used by IssueRandom.
	DefaultTTL uint8

	net    *overlay.Network
	cat    *Catalog
	xs     *indexes
	rng    *sim.Source
	nextID msg.QueryID
	active map[msg.QueryID]*flood
	// pool recycles finished flood states (with their dense visited/parent
	// slices), so a steady query workload does not allocate per flood.
	pool []*flood

	// Aggregates.
	Issued    uint64
	Succeeded uint64
	MsgsPer   stats.Welford
	HopsHist  *stats.Histogram
}

// flood is the per-query routing state. Instead of per-flood maps it keeps
// dense slices indexed by PeerID (IDs come from a monotonic counter, so
// the slices are at most MaxPeerID+1 long) with an epoch stamp:
// stamp[id] == epoch means id was visited by *this* incarnation of the
// flood, so reusing the state costs one epoch increment, not a clear.
type flood struct {
	source msg.PeerID
	res    Result
	done   func(*Result)

	epoch  uint32
	stamp  []uint32
	parent []msg.PeerID

	fin finalizeEvent
}

// finalizeEvent closes the flood's books at its deadline; embedding it in
// the pooled flood avoids a per-query closure allocation.
type finalizeEvent struct {
	qe  *Engine
	qid msg.QueryID
}

// Fire implements sim.Event.
func (f *finalizeEvent) Fire(*sim.Engine) { f.qe.finalize(f.qid) }

// visited reports whether id was marked in the current epoch.
func (fl *flood) visited(id msg.PeerID) bool {
	return int(id) < len(fl.stamp) && fl.stamp[id] == fl.epoch
}

// visit marks id visited with the given inverse-path predecessor. Peers
// that join mid-flood (latency networks) can carry IDs beyond the size at
// issue time, so the slices grow on demand.
func (fl *flood) visit(id, from msg.PeerID) {
	if int(id) >= len(fl.stamp) {
		fl.growTo(int(id) + 1)
	}
	fl.stamp[id] = fl.epoch
	fl.parent[id] = from
}

// parentOf returns the inverse-path predecessor of a visited peer, or
// NoPeer for the source and for peers outside the flood.
func (fl *flood) parentOf(id msg.PeerID) msg.PeerID {
	if !fl.visited(id) {
		return msg.NoPeer
	}
	return fl.parent[id]
}

func (fl *flood) growTo(n int) {
	if cap(fl.stamp) >= n {
		fl.stamp = fl.stamp[:n]
		fl.parent = fl.parent[:n]
		return
	}
	stamp := make([]uint32, n, n+n/2)
	copy(stamp, fl.stamp)
	fl.stamp = stamp
	parent := make([]msg.PeerID, n, n+n/2)
	copy(parent, fl.parent)
	fl.parent = parent
}

// Attach wires a query engine to the network: it registers the message
// handlers and the index observer. Call once per network.
func Attach(n *overlay.Network, cat *Catalog) *Engine {
	e := &Engine{
		DefaultTTL: 7,
		net:        n,
		cat:        cat,
		xs:         newIndexes(),
		rng:        n.Engine().Rand().Stream("query"),
		active:     make(map[msg.QueryID]*flood),
		HopsHist:   stats.NewHistogram(0, 16, 16),
	}
	n.Observe(e.xs)
	n.Handle(msg.KindQuery, e.onQuery)
	n.Handle(msg.KindQueryHit, e.onQueryHit)
	return e
}

// Catalog returns the engine's content catalog.
func (e *Engine) Catalog() *Catalog { return e.cat }

// SuccessRate returns the fraction of issued queries that found a result.
func (e *Engine) SuccessRate() float64 {
	if e.Issued == 0 {
		return 0
	}
	return float64(e.Succeeded) / float64(e.Issued)
}

// ResetStats clears the aggregate counters (e.g. after warm-up).
func (e *Engine) ResetStats() {
	e.Issued, e.Succeeded = 0, 0
	e.MsgsPer = stats.Welford{}
	e.HopsHist.Reset()
}

// IndexSize returns the number of distinct objects indexed at a super;
// zero for unknown peers.
func (e *Engine) IndexSize(id msg.PeerID) int {
	if ix, ok := e.xs.bySuper[id]; ok {
		return ix.size()
	}
	return 0
}

// getFlood returns a recycled (or fresh) flood state, epoch-bumped and
// sized for the network's current ID range.
func (e *Engine) getFlood() *flood {
	var fl *flood
	if n := len(e.pool); n > 0 {
		fl = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		fl = &flood{}
	}
	fl.epoch++
	if fl.epoch == 0 { // wrapped: old stamps would alias the new epoch
		clear(fl.stamp)
		fl.epoch = 1
	}
	if n := int(e.net.MaxPeerID()) + 1; n > len(fl.stamp) {
		fl.growTo(n)
	}
	return fl
}

// putFlood returns a finished flood to the pool.
func (e *Engine) putFlood(fl *flood) {
	fl.done = nil
	e.pool = append(e.pool, fl)
}

// Issue floods one query for obj from the given source peer and returns
// the completed result. It requires zero message latency (delivery, and
// therefore the whole flood, is synchronous); use IssueAsync on a
// latency-configured network.
func (e *Engine) Issue(source *overlay.Peer, obj msg.ObjectID, ttl uint8) *Result {
	if e.net.Config().Latency > 0 {
		panic("query: Issue on a latency network; use IssueAsync")
	}
	out := new(Result)
	e.IssueAsync(source, obj, ttl, func(r *Result) { *out = *r })
	return out
}

// IssueAsync floods one query and invokes done exactly once with the
// final result. At zero latency the flood completes (and done runs)
// before IssueAsync returns; with latency the flood propagates through
// scheduled deliveries and is finalized after the maximum round-trip
// deadline (TTL hops out plus the inverse path back). done may be nil.
//
// The *Result passed to done is owned by the engine and recycled after
// done returns; callers that retain it past the callback must copy it.
func (e *Engine) IssueAsync(source *overlay.Peer, obj msg.ObjectID, ttl uint8, done func(*Result)) {
	e.nextID++
	qid := e.nextID
	fl := e.getFlood()
	fl.source = source.ID
	fl.res = Result{Query: qid, Object: obj, FirstHitHops: -1}
	fl.done = done
	e.active[qid] = fl

	if source.Layer == overlay.LayerSuper {
		// A super-peer processes its own query locally with full TTL.
		fl.visit(source.ID, msg.NoPeer)
		e.processAtSuper(source, qid, obj, ttl, 0, msg.NoPeer)
	} else {
		// A leaf submits the query to each of its super connections.
		for _, sid := range source.SuperLinks() {
			fl.res.QueryMsgs++
			e.net.Send(msg.NewQuery(source.ID, sid, qid, obj, ttl))
		}
	}

	latency := e.net.Config().Latency
	if latency <= 0 {
		e.finalize(qid)
		return
	}
	// Out (TTL hops) + back (TTL hops) plus the leaf edges, with slack.
	deadline := sim.Duration(float64(2*int(ttl)+3) * float64(latency))
	fl.fin = finalizeEvent{qe: e, qid: qid}
	e.net.Engine().After(deadline, &fl.fin)
}

// finalize closes the books on one query and recycles its flood state.
func (e *Engine) finalize(qid msg.QueryID) {
	fl, ok := e.active[qid]
	if !ok {
		return
	}
	delete(e.active, qid)
	res := &fl.res
	e.Issued++
	if res.Found {
		e.Succeeded++
		e.HopsHist.Add(float64(res.FirstHitHops))
	}
	e.MsgsPer.Add(float64(res.QueryMsgs + res.HitMsgs))
	if fl.done != nil {
		fl.done(res)
	}
	e.putFlood(fl)
}

// IssueRandom issues a query with a Zipf-drawn target from a uniformly
// random live peer; it returns nil on an empty network. Zero-latency
// networks only; see IssueRandomAsync.
func (e *Engine) IssueRandom() *Result {
	p := e.net.RandomPeer()
	if p == nil {
		return nil
	}
	return e.Issue(p, e.cat.QueryTarget(e.rng), e.DefaultTTL)
}

// IssueRandomAsync is IssueRandom for latency-configured networks; the
// result arrives via the engine statistics (and done, when non-nil).
func (e *Engine) IssueRandomAsync(done func(*Result)) {
	p := e.net.RandomPeer()
	if p == nil {
		return
	}
	e.IssueAsync(p, e.cat.QueryTarget(e.rng), e.DefaultTTL, done)
}

// onQuery handles a Query message arriving at a peer.
func (e *Engine) onQuery(n *overlay.Network, to *overlay.Peer, m *msg.Message) {
	fl, ok := e.active[m.Query]
	if !ok || to.Layer != overlay.LayerSuper {
		return // stale or misrouted
	}
	if fl.visited(to.ID) {
		fl.res.Duplicates++
		return
	}
	fl.visit(to.ID, m.From)
	e.processAtSuper(to, m.Query, m.Object, m.TTL, int(m.Hops)+1, m.From)
}

// processAtSuper checks the super's own content and leaf index, reports a
// hit along the inverse path, and relays the query while TTL remains. The
// relay goes to every super neighbor except the one the query came from —
// a peer cannot know who else already saw the flood, so redundant edges
// are paid for and show up as duplicates at the receiver.
func (e *Engine) processAtSuper(s *overlay.Peer, qid msg.QueryID, obj msg.ObjectID, ttl uint8, hops int, from msg.PeerID) {
	fl := e.active[qid]
	fl.res.SupersReached++

	if provider, ok := e.lookupAt(s, obj); ok {
		e.reportHit(s, qid, obj, provider, hops)
	}

	if ttl <= 1 {
		return
	}
	// Iterating the live link slice is safe: nothing on the query path
	// (handlers, index observer, traffic tally) mutates topology, even
	// through the synchronous zero-latency recursion.
	for _, nid := range s.SuperLinks() {
		if nid == from {
			continue
		}
		fl.res.QueryMsgs++
		q := msg.NewQuery(s.ID, nid, qid, obj, ttl-1)
		q.Hops = uint8(hops)
		e.net.Send(q)
	}
}

// lookupAt resolves obj at super s: own objects first, then the leaf
// index.
func (e *Engine) lookupAt(s *overlay.Peer, obj msg.ObjectID) (msg.PeerID, bool) {
	for _, o := range s.Objects {
		if o == obj {
			return s.ID, true
		}
	}
	if ix, ok := e.xs.bySuper[s.ID]; ok {
		return ix.lookup(obj)
	}
	return msg.NoPeer, false
}

// reportHit routes a QueryHit back along the inverse query path; the
// message carries the hop depth of the hit.
func (e *Engine) reportHit(s *overlay.Peer, qid msg.QueryID, obj msg.ObjectID, provider msg.PeerID, hops int) {
	fl := e.active[qid]
	if s.ID == fl.source {
		e.deliverHit(fl, hops)
		return
	}
	next := fl.parentOf(s.ID)
	if next == msg.NoPeer {
		return
	}
	fl.res.HitMsgs++
	e.net.Send(msg.NewQueryHit(s.ID, next, qid, obj, provider, uint8(hops)))
}

// onQueryHit handles a QueryHit at an intermediate hop or at the source.
func (e *Engine) onQueryHit(n *overlay.Network, to *overlay.Peer, m *msg.Message) {
	fl, ok := e.active[m.Query]
	if !ok {
		return
	}
	if to.ID == fl.source {
		e.deliverHit(fl, int(m.Hops))
		return
	}
	next := fl.parentOf(to.ID)
	if next == msg.NoPeer {
		return
	}
	fl.res.HitMsgs++
	e.net.Send(msg.NewQueryHit(to.ID, next, m.Query, m.Object, m.Provider, m.Hops))
}

// deliverHit records a hit arriving at the source.
func (e *Engine) deliverHit(fl *flood, hops int) {
	fl.res.Hits++
	if !fl.res.Found {
		fl.res.Found = true
		fl.res.FirstHitHops = hops
	}
}
