package query

import (
	"dlm/internal/sim"
)

// Driver issues a steady query workload: Rate queries per time unit from
// uniformly random peers with Zipf-drawn targets. Fractional rates
// accumulate across ticks.
type Driver struct {
	Engine *Engine
	// Rate is the number of queries per time unit.
	Rate float64
	// Until stops the driver; zero runs for the engine's lifetime.
	Until sim.Time

	acc float64
}

// Start schedules the driver on the network's engine.
func (d *Driver) Start() {
	if d.Rate <= 0 {
		panic("query: driver with non-positive rate")
	}
	eng := d.Engine.net.Engine()
	eng.Ticker(1, func(e *sim.Engine) bool {
		d.acc += d.Rate
		for d.acc >= 1 {
			d.acc--
			d.Engine.IssueRandomAsync(nil)
		}
		return d.Until <= 0 || e.Now() < d.Until
	})
}
