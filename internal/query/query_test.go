package query

import (
	"testing"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// buildNet constructs a deterministic overlay: s supers in a given
// super-graph, plus leaves with given objects.
func buildNet(t *testing.T) (*sim.Engine, *overlay.Network) {
	t.Helper()
	eng := sim.NewEngine(11)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, nil)
	return eng, n
}

func TestCatalogAssignAndTarget(t *testing.T) {
	c := NewCatalog(100, 0.8, 0.8)
	r := sim.NewSource(1)
	objs := c.AssignObjects(10, r)
	if len(objs) != 10 {
		t.Fatalf("assigned %d objects, want 10", len(objs))
	}
	seen := map[msg.ObjectID]bool{}
	for _, o := range objs {
		if int(o) >= c.NumObjects {
			t.Fatalf("object %d outside catalog", o)
		}
		if seen[o] {
			t.Fatal("duplicate object assigned")
		}
		seen[o] = true
	}
	if c.AssignObjects(0, r) != nil {
		t.Fatal("zero-count assignment should be nil")
	}
	if tgt := c.QueryTarget(r); int(tgt) >= c.NumObjects {
		t.Fatalf("target %d outside catalog", tgt)
	}
}

func TestIndexOwnershipIdempotent(t *testing.T) {
	ix := newIndex()
	ix.add(1, []msg.ObjectID{10, 20})
	ix.add(1, []msg.ObjectID{10, 20}) // duplicate add ignored
	ix.add(2, []msg.ObjectID{20, 30})
	if ix.size() != 3 {
		t.Fatalf("size = %d, want 3", ix.size())
	}
	if _, ok := ix.lookup(20); !ok {
		t.Fatal("lookup(20) missed")
	}
	ix.remove(1)
	ix.remove(1) // double remove is a no-op
	if _, ok := ix.lookup(10); ok {
		t.Fatal("object 10 survived owner removal")
	}
	if p, ok := ix.lookup(20); !ok || p != 2 {
		t.Fatalf("lookup(20) = %d,%v want provider 2", p, ok)
	}
	ix.remove(99) // unknown owner is a no-op
	if ix.size() != 2 {
		t.Fatalf("size = %d, want 2", ix.size())
	}
}

func TestIndexProviderFailover(t *testing.T) {
	ix := newIndex()
	ix.add(1, []msg.ObjectID{7})
	ix.add(2, []msg.ObjectID{7})
	// Provider attribution points at the latest owner (2); removing it
	// must fail over to the surviving owner.
	ix.remove(2)
	if p, ok := ix.lookup(7); !ok || p != 1 {
		t.Fatalf("failover lookup = %d,%v want 1,true", p, ok)
	}
}

// topo builds: source leaf L -> super A -> super B -> super C, with a
// provider leaf P attached to C sharing object 42.
func topo(t *testing.T) (*overlay.Network, *Engine, *overlay.Peer, *overlay.Peer) {
	t.Helper()
	_, n := buildNet(t)
	e := Attach(n, NewCatalog(100, 0.8, 0.8))

	a := n.Join(100, 1e9, nil) // bootstrap super
	b := n.Join(100, 1e9, nil)
	c := n.Join(100, 1e9, nil)
	n.Promote(b)
	n.Promote(c)
	// Shape the super graph into a chain A-B-C.
	n.Disconnect(a, c)
	n.Disconnect(b, n.Peer(b.SuperLinks()[0])) // clear whatever joined links exist
	for _, id := range append([]msg.PeerID(nil), a.SuperLinks()...) {
		n.Disconnect(a, n.Peer(id))
	}
	for _, id := range append([]msg.PeerID(nil), b.SuperLinks()...) {
		n.Disconnect(b, n.Peer(id))
	}
	for _, id := range append([]msg.PeerID(nil), c.SuperLinks()...) {
		n.Disconnect(c, n.Peer(id))
	}
	n.Connect(a, b)
	n.Connect(b, c)

	// Provider leaf on C.
	p := n.Join(1, 1e9, []msg.ObjectID{42})
	for _, id := range append([]msg.PeerID(nil), p.SuperLinks()...) {
		n.Disconnect(p, n.Peer(id))
	}
	n.Connect(p, c)

	// Source leaf on A.
	l := n.Join(1, 1e9, nil)
	for _, id := range append([]msg.PeerID(nil), l.SuperLinks()...) {
		n.Disconnect(l, n.Peer(id))
	}
	n.Connect(l, a)
	return n, e, l, p
}

func TestFloodFindsObjectAcrossChain(t *testing.T) {
	n, e, l, _ := topo(t)
	res := e.Issue(l, 42, 7)
	if !res.Found {
		t.Fatalf("object not found: %+v", res)
	}
	if res.FirstHitHops != 3 { // L->A=1, A->B=2, B->C=3
		t.Errorf("FirstHitHops = %d, want 3", res.FirstHitHops)
	}
	if res.SupersReached != 3 {
		t.Errorf("SupersReached = %d, want 3", res.SupersReached)
	}
	// Query msgs: L->A, A->B, B->C = 3. Hit msgs: C->B, B->A, A->L = 3.
	if res.QueryMsgs != 3 || res.HitMsgs != 3 {
		t.Errorf("msgs = %d/%d, want 3/3", res.QueryMsgs, res.HitMsgs)
	}
	tr := n.Traffic()
	if tr.Count(msg.KindQuery) != 3 || tr.Count(msg.KindQueryHit) != 3 {
		t.Errorf("traffic = %d/%d", tr.Count(msg.KindQuery), tr.Count(msg.KindQueryHit))
	}
	if e.SuccessRate() != 1 {
		t.Errorf("success rate = %v", e.SuccessRate())
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	_, e, l, _ := topo(t)
	// TTL 2: reaches A and B only; provider is on C.
	res := e.Issue(l, 42, 2)
	if res.Found {
		t.Fatal("TTL 2 should not reach the provider 3 hops away")
	}
	if res.SupersReached != 2 {
		t.Errorf("SupersReached = %d, want 2", res.SupersReached)
	}
}

func TestMissedObject(t *testing.T) {
	_, e, l, _ := topo(t)
	res := e.Issue(l, 99, 7)
	if res.Found || res.Hits != 0 || res.FirstHitHops != -1 {
		t.Fatalf("phantom hit: %+v", res)
	}
}

func TestSuperSourceLocalHit(t *testing.T) {
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	s := n.Join(100, 1e9, []msg.ObjectID{7})
	res := e.Issue(s, 7, 7)
	if !res.Found || res.FirstHitHops != 0 {
		t.Fatalf("local hit: %+v", res)
	}
	if res.QueryMsgs != 0 {
		t.Errorf("local hit cost %d query msgs", res.QueryMsgs)
	}
}

func TestLeafIndexServesSiblingLeaf(t *testing.T) {
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	n.Join(100, 1e9, nil) // bootstrap super
	provider := n.Join(1, 1e9, []msg.ObjectID{5})
	asker := n.Join(1, 1e9, nil)
	res := e.Issue(asker, 5, 1)
	if !res.Found {
		t.Fatal("super index did not serve sibling leaf")
	}
	if res.FirstHitHops != 1 {
		t.Errorf("hops = %d, want 1", res.FirstHitHops)
	}
	_ = provider
}

func TestDemotionMovesIndex(t *testing.T) {
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	a := n.Join(100, 1e9, []msg.ObjectID{77}) // bootstrap super with content
	b := n.Join(100, 1e9, nil)
	n.Promote(b)
	n.Connect(a, b)
	if !n.Demote(a) {
		t.Fatal("demotion refused")
	}
	// a is now a leaf under b; a query at b must find 77 via b's index.
	res := e.Issue(b, 77, 1)
	if !res.Found {
		t.Fatal("demoted peer's content lost from the layer index")
	}
	if e.IndexSize(a.ID) != 0 {
		t.Error("demoted peer still has an index")
	}
}

func TestPromotionCleansOldIndexes(t *testing.T) {
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	s := n.Join(100, 1e9, nil)
	leaf := n.Join(1, 1e9, []msg.ObjectID{33})
	if _, ok := e.xs.bySuper[s.ID].lookup(33); !ok {
		t.Fatal("precondition: super indexes leaf content")
	}
	n.Promote(leaf)
	if _, ok := e.xs.bySuper[s.ID].lookup(33); ok {
		t.Fatal("promoted peer's objects still indexed at its old super")
	}
	// The promoted super now indexes nothing (no leaves) but can answer
	// from its own storage.
	res := e.Issue(leaf, 33, 1)
	if !res.Found || res.FirstHitHops != 0 {
		t.Fatalf("own storage lookup failed: %+v", res)
	}
}

func TestLeaveCleansIndex(t *testing.T) {
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	s := n.Join(100, 1e9, nil)
	leaf := n.Join(1, 1e9, []msg.ObjectID{44})
	n.Leave(leaf)
	if _, ok := e.xs.bySuper[s.ID].lookup(44); ok {
		t.Fatal("departed leaf's objects still indexed")
	}
	n.Leave(s)
	if len(e.xs.bySuper) != 0 {
		t.Fatal("departed super's index not dropped")
	}
}

func TestDriverIssuesAtRate(t *testing.T) {
	eng, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	n.Join(100, 1e9, []msg.ObjectID{1})
	for i := 0; i < 20; i++ {
		n.Join(1, 1e9, []msg.ObjectID{msg.ObjectID(i)})
	}
	d := &Driver{Engine: e, Rate: 2.5, Until: 20}
	d.Start()
	if err := eng.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if e.Issued != 50 { // 2.5 * 20
		t.Fatalf("issued %d queries, want 50", e.Issued)
	}
}

func TestDriverPanicsOnBadRate(t *testing.T) {
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Driver{Engine: e, Rate: 0}).Start()
}

func TestDuplicateSuppression(t *testing.T) {
	// Triangle A-B-C: flooding from A reaches B and C; each then tries
	// the third edge, producing exactly two redundant deliveries.
	_, n := buildNet(t)
	e := Attach(n, DefaultCatalog())
	a := n.Join(100, 1e9, nil)
	b := n.Join(100, 1e9, nil)
	c := n.Join(100, 1e9, nil)
	n.Promote(b)
	n.Promote(c)
	for _, p := range []*overlay.Peer{a, b, c} {
		for _, id := range append([]msg.PeerID(nil), p.SuperLinks()...) {
			n.Disconnect(p, n.Peer(id))
		}
	}
	n.Connect(a, b)
	n.Connect(b, c)
	n.Connect(a, c)
	res := e.Issue(a, 9999, 7)
	if res.SupersReached != 3 {
		t.Fatalf("reached %d supers", res.SupersReached)
	}
	if res.Duplicates == 0 {
		t.Fatal("triangle flood produced no duplicate deliveries")
	}
}

func TestQueryWorkloadWithProfile(t *testing.T) {
	// End-to-end: churn + catalog assignment + queries; success rate must
	// be positive for a popular catalog.
	eng := sim.NewEngine(5)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, nil)
	cat := NewCatalog(50, 1.0, 1.0)
	e := Attach(n, cat)
	churn := &overlay.Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity:       workload.Uniform{Lo: 1, Hi: 100},
			Lifetime:       workload.Exponential{MeanVal: 50},
			ObjectsPerPeer: workload.Constant(5),
		},
		TargetSize: 200,
		GrowthRate: 50,
		Catalog:    cat,
	}
	churn.Start()
	(&Driver{Engine: e, Rate: 5, Until: 40}).Start()
	eng.Ticker(1, func(en *sim.Engine) bool { n.Tick(); return en.Now() < 40 })
	if err := eng.RunUntil(40); err != nil {
		t.Fatal(err)
	}
	if e.Issued == 0 {
		t.Fatal("no queries issued")
	}
	if e.SuccessRate() <= 0.3 {
		t.Fatalf("success rate %.2f too low for a 50-object Zipf catalog", e.SuccessRate())
	}
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad[0])
	}
}

func TestAsyncFloodWithLatency(t *testing.T) {
	eng := sim.NewEngine(11)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10, Latency: 0.1}, nil)
	e := Attach(n, NewCatalog(100, 0.8, 0.8))

	s := n.Join(100, 1e9, nil) // bootstrap super
	provider := n.Join(1, 1e9, []msg.ObjectID{42})
	asker := n.Join(1, 1e9, nil)
	// Run pending connect-time deliveries.
	if err := eng.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	_ = provider

	var got *Result
	// The engine recycles the Result after done returns; copy to retain.
	e.IssueAsync(asker, 42, 3, func(r *Result) { rc := *r; got = &rc })
	if got != nil {
		t.Fatal("async flood completed synchronously despite latency")
	}
	if err := eng.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("async flood never finalized")
	}
	if !got.Found {
		t.Fatalf("async flood missed: %+v", got)
	}
	if got.FirstHitHops != 1 {
		t.Errorf("hops = %d, want 1", got.FirstHitHops)
	}
	if e.Issued != 1 || e.SuccessRate() != 1 {
		t.Errorf("stats: issued=%d success=%v", e.Issued, e.SuccessRate())
	}
	_ = s
}

func TestIssuePanicsOnLatencyNetwork(t *testing.T) {
	eng := sim.NewEngine(1)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10, Latency: 0.5}, nil)
	e := Attach(n, DefaultCatalog())
	p := n.Join(1, 1e9, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Issue did not panic on a latency network")
		}
	}()
	e.Issue(p, 1, 3)
}

func TestAsyncHopsAcrossChainWithLatency(t *testing.T) {
	// Rebuild the A-B-C chain under latency and confirm the hit hop
	// count survives the asynchronous inverse path.
	eng := sim.NewEngine(11)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10, Latency: 0.05}, nil)
	e := Attach(n, NewCatalog(100, 0.8, 0.8))

	a := n.Join(100, 1e9, nil)
	b := n.Join(100, 1e9, nil)
	c := n.Join(100, 1e9, nil)
	n.Promote(b)
	n.Promote(c)
	for _, p := range []*overlay.Peer{a, b, c} {
		for _, id := range append([]msg.PeerID(nil), p.SuperLinks()...) {
			n.Disconnect(p, n.Peer(id))
		}
	}
	n.Connect(a, b)
	n.Connect(b, c)
	leaf := n.Join(1, 1e9, []msg.ObjectID{7})
	for _, id := range append([]msg.PeerID(nil), leaf.SuperLinks()...) {
		n.Disconnect(leaf, n.Peer(id))
	}
	n.Connect(leaf, c)
	if err := eng.RunUntil(1); err != nil {
		t.Fatal(err)
	}

	var got *Result
	e.IssueAsync(a, 7, 5, func(r *Result) { rc := *r; got = &rc })
	if err := eng.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got == nil || !got.Found {
		t.Fatalf("chain flood failed: %+v", got)
	}
	if got.FirstHitHops != 2 { // A(0) -> B(1) -> C(2), hit in C's index
		t.Errorf("hops = %d, want 2", got.FirstHitHops)
	}
}

func TestDriverWorksWithLatency(t *testing.T) {
	eng := sim.NewEngine(13)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10, Latency: 0.02}, nil)
	cat := NewCatalog(50, 1.0, 1.0)
	e := Attach(n, cat)
	n.Join(100, 1e9, []msg.ObjectID{1, 2, 3})
	for i := 0; i < 30; i++ {
		n.Join(1, 1e9, cat.AssignObjects(3, eng.Rand().Stream("objs")))
	}
	(&Driver{Engine: e, Rate: 2, Until: 20}).Start()
	if err := eng.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if e.Issued == 0 {
		t.Fatal("no queries finalized under latency")
	}
	if e.SuccessRate() <= 0 {
		t.Fatal("no async query succeeded")
	}
}
