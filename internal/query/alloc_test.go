package query

import "testing"

// maxFloodAllocs is the documented allocation bound for one steady-state
// flood on a warm engine: the flood state, its visited/parent slices, the
// Result, and every relayed message come from pools, so the expected cost
// is zero; the bound allows one stray allocation for Go map internals on
// the active-query table.
const maxFloodAllocs = 1

// TestRepeatFloodAllocFree pins the headline property of the epoch-stamped
// flood state: repeated floods on a fixed topology allocate at most
// maxFloodAllocs objects per query (expected: zero).
func TestRepeatFloodAllocFree(t *testing.T) {
	_, qe, source, obj := benchTopology(t)
	for i := 0; i < 16; i++ { // warm the flood and delivery pools
		qe.IssueAsync(source, obj, qe.DefaultTTL, nil)
	}
	allocs := testing.AllocsPerRun(200, func() {
		qe.IssueAsync(source, obj, qe.DefaultTTL, nil)
	})
	if allocs > maxFloodAllocs {
		t.Errorf("steady-state flood allocates %.2f objects/op, want <= %d",
			allocs, maxFloodAllocs)
	}
}

// TestRepeatRandomFloodAllocFree covers the random-source path used by the
// query driver in every scenario run.
func TestRepeatRandomFloodAllocFree(t *testing.T) {
	_, qe, _, _ := benchTopology(t)
	for i := 0; i < 16; i++ {
		qe.IssueRandomAsync(nil)
	}
	allocs := testing.AllocsPerRun(200, func() {
		qe.IssueRandomAsync(nil)
	})
	if allocs > maxFloodAllocs {
		t.Errorf("steady-state random flood allocates %.2f objects/op, want <= %d",
			allocs, maxFloodAllocs)
	}
}
