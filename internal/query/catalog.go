// Package query implements the search substrate of the super-peer
// overlay: the content catalog, the per-super-peer index of leaf content,
// Gnutella-style TTL flooding restricted to the super-layer, and QueryHit
// routing back along the inverse query path — the mechanics described in
// the paper's §3.
package query

import (
	"dlm/internal/msg"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// Catalog models the universe of shareable objects with Zipf-like
// popularity, used both for placing objects on peers and for drawing
// query targets (the measured file-sharing workloads are Zipf-like on
// both sides).
type Catalog struct {
	// NumObjects is the catalog size.
	NumObjects int

	placement *workload.Zipf
	queries   *workload.Zipf
}

// NewCatalog builds a catalog of n objects with the given placement and
// query Zipf exponents.
func NewCatalog(n int, placementSkew, querySkew float64) *Catalog {
	return &Catalog{
		NumObjects: n,
		placement:  workload.NewZipf(n, placementSkew),
		queries:    workload.NewZipf(n, querySkew),
	}
}

// DefaultCatalog matches the measurement studies: 10k objects, placement
// and query skew a bit below 1.
func DefaultCatalog() *Catalog { return NewCatalog(10000, 0.8, 0.8) }

// AssignObjects implements overlay.ObjectAssigner: it draws count objects
// by popularity (duplicates collapse, so very popular objects do not
// inflate a peer's set).
func (c *Catalog) AssignObjects(count int, r *sim.Source) []msg.ObjectID {
	if count <= 0 {
		return nil
	}
	seen := make(map[msg.ObjectID]struct{}, count)
	out := make([]msg.ObjectID, 0, count)
	for attempts := 0; len(out) < count && attempts < 4*count; attempts++ {
		id := msg.ObjectID(c.placement.Rank(r))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// QueryTarget draws the object of one query.
func (c *Catalog) QueryTarget(r *sim.Source) msg.ObjectID {
	return msg.ObjectID(c.queries.Rank(r))
}
