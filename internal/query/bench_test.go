package query

import (
	"testing"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/sim"
)

// benchTopology builds a fixed mid-size overlay for flood benchmarks:
// 32 super-peers in a connected random graph, 320 leaves carrying
// Zipf-assigned objects, and one designated source leaf. The topology is
// frozen (no churn), so every iteration floods the same structure.
func benchTopology(b testing.TB) (*sim.Engine, *Engine, *overlay.Peer, msg.ObjectID) {
	b.Helper()
	eng := sim.NewEngine(1)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 4, Eta: 10}, nil)
	cat := NewCatalog(500, 0.8, 0.8)
	qe := Attach(n, cat)

	objRng := eng.Rand().Stream("bench-objs")
	for i := 0; i < 32; i++ {
		p := n.Join(100, 1e9, cat.AssignObjects(3, objRng))
		if p.Layer != overlay.LayerSuper {
			n.Promote(p)
		}
	}
	var source *overlay.Peer
	for i := 0; i < 320; i++ {
		p := n.Join(1, 1e9, cat.AssignObjects(3, objRng))
		if source == nil {
			source = p
		}
	}
	n.Repair()
	// A target drawn from the popular end of the catalog, so floods do
	// real hit-path work (inverse-path routing) as well as relay work.
	return eng, qe, source, cat.QueryTarget(eng.Rand().Stream("bench-target"))
}

// BenchmarkFloodQuery measures one full flood (query out, hits back) on a
// fixed topology from a fixed source. This is the headline allocation
// benchmark of the query hot path.
func BenchmarkFloodQuery(b *testing.B) {
	_, qe, source, obj := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qe.IssueAsync(source, obj, qe.DefaultTTL, nil)
	}
}

// BenchmarkFloodQueryRandom floods from a uniformly random peer with a
// Zipf-drawn target each iteration — the workload shape of the paper's
// query-driven scenarios (Figure 7, overhead study).
func BenchmarkFloodQueryRandom(b *testing.B) {
	_, qe, _, _ := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qe.IssueRandomAsync(nil)
	}
}
