package query

import (
	"dlm/internal/msg"
	"dlm/internal/overlay"
)

// index is the per-super-peer content index: the objects shared by the
// super-peer's leaf neighbors (and itself), keyed by owner so that
// overlay-surgery notifications are idempotent. A super-peer answers a
// query from this index without forwarding it to leaves ("each super-peer
// behaves like a proxy or agent of its leaf-peers, and keeps an index of
// its leaf-peers' shared data").
type index struct {
	refs  map[msg.ObjectID]int
	owned map[msg.PeerID][]msg.ObjectID
	// providers maps object -> one current provider, for QueryHit
	// attribution. Any provider is acceptable; the most recent wins.
	providers map[msg.ObjectID]msg.PeerID
}

func newIndex() *index {
	return &index{
		refs:      make(map[msg.ObjectID]int),
		owned:     make(map[msg.PeerID][]msg.ObjectID),
		providers: make(map[msg.ObjectID]msg.PeerID),
	}
}

// add indexes owner's objects; adding an owner twice is a no-op.
func (ix *index) add(owner msg.PeerID, objects []msg.ObjectID) {
	if _, ok := ix.owned[owner]; ok {
		return
	}
	ix.owned[owner] = objects
	for _, o := range objects {
		ix.refs[o]++
		ix.providers[o] = owner
	}
}

// remove drops owner's contribution; removing an absent owner is a no-op.
func (ix *index) remove(owner msg.PeerID) {
	objects, ok := ix.owned[owner]
	if !ok {
		return
	}
	delete(ix.owned, owner)
	for _, o := range objects {
		if ix.refs[o]--; ix.refs[o] <= 0 {
			delete(ix.refs, o)
			delete(ix.providers, o)
		} else if ix.providers[o] == owner {
			ix.providers[o] = ix.anyOwnerOf(o)
		}
	}
}

// anyOwnerOf finds a surviving provider after the recorded one left. The
// scan is bounded by the super's neighborhood size and runs only when the
// attributed provider departs.
func (ix *index) anyOwnerOf(o msg.ObjectID) msg.PeerID {
	for owner, objects := range ix.owned {
		for _, oo := range objects {
			if oo == o {
				return owner
			}
		}
	}
	return msg.NoPeer
}

// lookup returns a provider for the object; ok is false on a miss.
func (ix *index) lookup(o msg.ObjectID) (msg.PeerID, bool) {
	if ix.refs[o] <= 0 {
		return msg.NoPeer, false
	}
	return ix.providers[o], true
}

// size returns the number of distinct indexed objects.
func (ix *index) size() int { return len(ix.refs) }

// indexes maintains one index per live super-peer by observing overlay
// structure changes.
type indexes struct {
	overlay.NopObserver
	bySuper map[msg.PeerID]*index
}

func newIndexes() *indexes {
	return &indexes{bySuper: make(map[msg.PeerID]*index)}
}

func (xs *indexes) forSuper(id msg.PeerID) *index {
	ix, ok := xs.bySuper[id]
	if !ok {
		ix = newIndex()
		xs.bySuper[id] = ix
	}
	return ix
}

// OnConnect implements overlay.Observer: a new leaf-super link adds the
// leaf's objects to the super's index.
func (xs *indexes) OnConnect(n *overlay.Network, a, b *overlay.Peer) {
	leaf, super := classify(a, b)
	if leaf == nil {
		return
	}
	xs.forSuper(super.ID).add(leaf.ID, leaf.Objects)
}

// OnDisconnect implements overlay.Observer.
func (xs *indexes) OnDisconnect(n *overlay.Network, a, b *overlay.Peer) {
	// Remove each endpoint's contribution from the other's index (if
	// any); ownership tracking makes stray removals no-ops, which covers
	// the demotion path where link types changed mid-surgery.
	if ix, ok := xs.bySuper[a.ID]; ok {
		ix.remove(b.ID)
	}
	if ix, ok := xs.bySuper[b.ID]; ok {
		ix.remove(a.ID)
	}
}

// OnLayerChange implements overlay.Observer. A promoted peer starts an
// empty index and leaves its old supers' indexes; a demoted peer's index
// dissolves, and its kept supers index it as a leaf.
func (xs *indexes) OnLayerChange(n *overlay.Network, p *overlay.Peer, old overlay.Layer) {
	switch p.Layer {
	case overlay.LayerSuper:
		xs.bySuper[p.ID] = newIndex()
		for _, id := range p.SuperLinks() {
			if ix, ok := xs.bySuper[id]; ok {
				ix.remove(p.ID)
			}
		}
	case overlay.LayerLeaf:
		delete(xs.bySuper, p.ID)
		for _, id := range p.SuperLinks() {
			xs.forSuper(id).add(p.ID, p.Objects)
		}
	}
}

// OnLeave implements overlay.Observer.
func (xs *indexes) OnLeave(n *overlay.Network, p *overlay.Peer) {
	delete(xs.bySuper, p.ID)
}

func classify(a, b *overlay.Peer) (leaf, super *overlay.Peer) {
	switch {
	case a.Layer == overlay.LayerLeaf && b.Layer == overlay.LayerSuper:
		return a, b
	case b.Layer == overlay.LayerLeaf && a.Layer == overlay.LayerSuper:
		return b, a
	}
	return nil, nil
}
