package plot

import (
	"strings"
	"testing"

	"dlm/internal/stats"
)

func ramp(name string, n int, scale float64) *stats.Series {
	s := stats.NewSeries(name)
	for i := 0; i < n; i++ {
		s.Add(float64(i), scale*float64(i))
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	a := ramp("alpha", 50, 1)
	b := ramp("beta", 50, 2)
	out := Render(Options{Title: "test chart", XLabel: "t", YLabel: "v"}, a, b)
	for _, want := range []string{"test chart", "alpha", "beta", "*", "+", "x: t", "y: v"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 18 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(Options{Title: "empty"}, stats.NewSeries("none"))
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := stats.NewSeries("flat")
	s.Add(0, 5)
	s.Add(10, 5)
	out := Render(Options{}, s)
	if !strings.Contains(out, "*") {
		t.Error("constant series not drawn")
	}
}

func TestRenderLogY(t *testing.T) {
	s := stats.NewSeries("exp")
	for i := 0; i <= 6; i++ {
		s.Add(float64(i), float64(int(1)<<(10*i%30))+1)
	}
	out := Render(Options{LogY: true, YLabel: "size"}, s)
	if !strings.Contains(out, "(log scale)") {
		t.Error("log scale not labelled")
	}
	// Non-positive values must not break log rendering.
	z := stats.NewSeries("zero")
	z.Add(0, 0)
	z.Add(1, 10)
	_ = Render(Options{LogY: true}, z)
}

func TestRenderCustomSize(t *testing.T) {
	s := ramp("r", 10, 1)
	out := Render(Options{Width: 20, Height: 5}, s)
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Errorf("plot rows = %d, want 5", plotLines)
	}
}

func TestGlyphCycling(t *testing.T) {
	series := make([]*stats.Series, 10)
	for i := range series {
		series[i] = ramp("s", 5, float64(i+1))
	}
	out := Render(Options{}, series...)
	if !strings.Contains(out, "@") {
		t.Error("later glyphs unused")
	}
}
