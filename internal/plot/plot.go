// Package plot renders time series as ASCII line charts for the terminal
// figure output of the benchmark harness. It supports multiple series per
// chart (distinct glyphs), linear or log-10 y axes, and a legend — enough
// to eyeball the shapes of the paper's Figures 4-8 without leaving the
// terminal.
package plot

import (
	"fmt"
	"math"
	"strings"

	"dlm/internal/stats"
)

// Options configures a chart.
type Options struct {
	Title  string
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 18)
	LogY   bool // log-10 y axis (Figure 6 is log-scale)
	YLabel string
	XLabel string
}

var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series onto a character grid and returns it as a
// string. Series are step-sampled across the shared time range.
func Render(opt Options, series ...*stats.Series) string {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 18
	}

	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	nonEmpty := 0
	for _, s := range series {
		for _, p := range s.Points() {
			v := p.V
			if opt.LogY {
				if v <= 0 {
					continue
				}
				v = math.Log10(v)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			tMin = math.Min(tMin, p.T)
			tMax = math.Max(tMax, p.T)
			vMin = math.Min(vMin, v)
			vMax = math.Max(vMax, v)
		}
		if s.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 || math.IsInf(tMin, 1) {
		return opt.Title + "\n(no data)\n"
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			tm := tMin + (tMax-tMin)*float64(col)/float64(width-1)
			v, ok := s.At(tm)
			if !ok {
				continue
			}
			if opt.LogY {
				if v <= 0 {
					continue
				}
				v = math.Log10(v)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			row := int((vMax - v) / (vMax - vMin) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yTop, yBot := vMax, vMin
	if opt.LogY {
		yTop, yBot = math.Pow(10, vMax), math.Pow(10, vMin)
	}
	axisW := 10
	for r, row := range grid {
		label := strings.Repeat(" ", axisW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.3g", axisW, yTop)
		case height / 2:
			mid := (vMax + vMin) / 2
			if opt.LogY {
				mid = math.Pow(10, mid)
			}
			label = fmt.Sprintf("%*.3g", axisW, mid)
		case height - 1:
			label = fmt.Sprintf("%*.3g", axisW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", axisW), width/2, tMin, width-width/2, tMax)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s%s\n", strings.Repeat(" ", axisW), opt.XLabel, opt.YLabel, logSuffix(opt.LogY))
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", axisW), glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

func logSuffix(logY bool) string {
	if logY {
		return " (log scale)"
	}
	return ""
}
