package live

import (
	"testing"
	"time"

	"dlm/internal/msg"
)

func TestLiveBootstrapAndRoles(t *testing.T) {
	n := NewNet(Config{Eta: 5, Unit: 2 * time.Millisecond, Seed: 1})
	defer n.Stop()
	first := n.Join(100)
	if first.Role() != RoleSuper {
		t.Fatal("first peer must bootstrap the super-layer")
	}
	second := n.Join(10)
	if second.Role() != RoleLeaf {
		t.Fatal("second peer should join as leaf")
	}
	// The leaf connects and the exchange flows.
	deadline := time.After(2 * time.Second)
	for n.Messages(msg.KindValueResponse) < 2 {
		select {
		case <-deadline:
			t.Fatalf("exchange did not complete: %d value responses",
				n.Messages(msg.KindValueResponse))
		case <-time.After(5 * time.Millisecond):
		}
	}
	s := n.Snapshot()
	if s.NumSupers != 1 || s.NumLeaves != 1 {
		t.Fatalf("layers %d/%d", s.NumSupers, s.NumLeaves)
	}
}

func TestLiveRoleStrings(t *testing.T) {
	if RoleSuper.String() != "super" || RoleLeaf.String() != "leaf" {
		t.Fatal("role names wrong")
	}
}

func TestLivePromotionEmergesUnderLoad(t *testing.T) {
	params := func() Config {
		c := Config{Eta: 8, Unit: 2 * time.Millisecond, Seed: 7}
		c.defaults()
		// Speed the protocol up for the test: no demotion hold, quick
		// decisions.
		c.Params.DecisionCooldown = 3
		c.Params.DemotionCooldown = 20
		c.Params.EvalProbability = 0.5
		return c
	}()
	n := NewNet(params)
	defer n.Stop()
	for i := 0; i < 120; i++ {
		n.Join(float64(1 + i%100))
	}
	// With 120 peers and eta=8 the network needs ~13 supers; wait for
	// promotions to bring the ratio into a sane band.
	deadline := time.Now().Add(8 * time.Second)
	var s Summary
	for time.Now().Before(deadline) {
		s = n.Snapshot()
		if s.NumSupers >= 8 && s.Ratio > 3 && s.Ratio < 20 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s.NumSupers < 8 || s.Ratio <= 3 || s.Ratio >= 20 {
		t.Fatalf("ratio did not stabilize: %+v", s)
	}
	// The DLM message plane was exercised.
	if n.Messages(msg.KindNeighNumRequest) == 0 || n.Messages(msg.KindValueResponse) == 0 {
		t.Fatal("no DLM traffic observed")
	}
}

func TestLiveChurnAndLeave(t *testing.T) {
	n := NewNet(Config{Eta: 5, Unit: 2 * time.Millisecond, Seed: 3})
	defer n.Stop()
	peers := make([]*Peer, 0, 60)
	for i := 0; i < 60; i++ {
		peers = append(peers, n.Join(float64(i+1)))
	}
	time.Sleep(100 * time.Millisecond)
	// Remove half, including (maybe) supers; the network must stay
	// functional.
	for i := 0; i < 30; i++ {
		n.Leave(peers[i])
	}
	// Double leave is a no-op.
	n.Leave(peers[0])
	time.Sleep(200 * time.Millisecond)
	s := n.Snapshot()
	if s.NumSupers+s.NumLeaves != 30 {
		t.Fatalf("population %d, want 30", s.NumSupers+s.NumLeaves)
	}
	if s.NumSupers == 0 {
		t.Fatal("super-layer died")
	}
}

func TestLiveStopTerminatesGoroutines(t *testing.T) {
	n := NewNet(Config{Unit: time.Millisecond, Seed: 9})
	for i := 0; i < 40; i++ {
		n.Join(float64(i))
	}
	done := make(chan struct{})
	go func() {
		n.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate")
	}
	if p := n.Join(1); p != nil {
		t.Fatal("join after Stop should return nil")
	}
}

func TestLiveMessageAccounting(t *testing.T) {
	n := NewNet(Config{Unit: 2 * time.Millisecond, Seed: 4})
	defer n.Stop()
	n.Join(50)
	n.Join(5)
	time.Sleep(100 * time.Millisecond)
	total := uint64(0)
	for k := msg.Kind(1); int(k) < msg.NumKinds; k++ {
		total += n.Messages(k)
	}
	if total == 0 {
		t.Fatal("no messages accounted")
	}
	if n.Messages(msg.Kind(99)) != 0 {
		t.Fatal("invalid kind should read zero")
	}
}

func TestLiveSearchFindsContent(t *testing.T) {
	n := NewNet(Config{Eta: 5, Unit: 2 * time.Millisecond, Seed: 21})
	defer n.Stop()
	n.Join(100) // bootstrap super
	provider := n.JoinWithObjects(10, []msg.ObjectID{42, 43})
	asker := n.Join(10)
	// Give the exchange and index a moment.
	time.Sleep(100 * time.Millisecond)

	res := n.Query(asker, 42, 4, 300*time.Millisecond)
	if !res.Found {
		t.Fatalf("live search missed object 42: %+v", res)
	}
	miss := n.Query(asker, 9999, 4, 150*time.Millisecond)
	if miss.Found {
		t.Fatalf("phantom hit: %+v", miss)
	}
	_ = provider
}

func TestLiveSearchAcrossSupers(t *testing.T) {
	n := NewNet(Config{Eta: 4, Unit: 2 * time.Millisecond, Seed: 22})
	defer n.Stop()
	// Build a population with several supers by letting DLM work.
	for i := 0; i < 60; i++ {
		n.JoinWithObjects(float64(1+i), []msg.ObjectID{msg.ObjectID(i)})
	}
	deadline := time.Now().Add(6 * time.Second)
	for time.Now().Before(deadline) {
		if s := n.Snapshot(); s.NumSupers >= 4 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := n.Snapshot(); s.NumSupers < 4 {
		t.Skipf("super-layer too small for a cross-super search: %+v", s)
	}
	time.Sleep(100 * time.Millisecond)

	// Query for many objects from one peer; most should be reachable
	// through the flood even when indexed at other supers.
	asker := n.Join(5)
	time.Sleep(50 * time.Millisecond)
	found := 0
	for i := 0; i < 10; i++ {
		if n.Query(asker, msg.ObjectID(i*5), 6, 200*time.Millisecond).Found {
			found++
		}
	}
	if found < 5 {
		t.Fatalf("only %d/10 objects found across the live super-layer", found)
	}
	if n.Messages(msg.KindQuery) == 0 || n.Messages(msg.KindQueryHit) == 0 {
		t.Fatal("no search traffic on the message plane")
	}
}

func TestLiveIndexFollowsLeaveAndDemote(t *testing.T) {
	n := NewNet(Config{Eta: 5, Unit: 2 * time.Millisecond, Seed: 23})
	defer n.Stop()
	n.Join(100)
	provider := n.JoinWithObjects(10, []msg.ObjectID{7})
	asker := n.Join(10)
	time.Sleep(80 * time.Millisecond)
	if !n.Query(asker, 7, 3, 200*time.Millisecond).Found {
		t.Fatal("precondition: object reachable")
	}
	n.Leave(provider)
	time.Sleep(50 * time.Millisecond)
	if n.Query(asker, 7, 3, 200*time.Millisecond).Found {
		t.Fatal("departed provider's content still indexed")
	}
}

func TestLiveConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.M != 2 || c.KS != 3 || c.Eta != 10 {
		t.Fatalf("structure defaults %+v", c)
	}
	if c.Unit <= 0 || c.InboxSize <= 0 {
		t.Fatalf("runtime defaults %+v", c)
	}
	if err := c.Params.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestLiveAgeUnits(t *testing.T) {
	n := NewNet(Config{Unit: 10 * time.Millisecond, Seed: 1})
	defer n.Stop()
	p := n.Join(1)
	time.Sleep(50 * time.Millisecond)
	if a := p.AgeUnits(); a < 3 || a > 30 {
		t.Fatalf("age %v units after ~5 units of wall time", a)
	}
}
