package live

import (
	"time"

	"dlm/internal/msg"
	"dlm/internal/protocol"
)

// liveEndpoint binds a peer's protocol.Machine to the channel transport.
// The machine invokes it while the owning peer's mutex is held: Send
// resolves the target from the link maps (already guarded) and enqueues
// on the target's channel without taking any other peer's lock, so no
// lock-ordering hazard arises.
type liveEndpoint struct{ p *Peer }

// Send implements protocol.Endpoint; callers hold p.mu.
func (ep *liveEndpoint) Send(m msg.Message) {
	ep.p.net.deliver(ep.p.peerRef(m.To), m)
}

// IsLeafNeighbor implements protocol.Endpoint; callers hold p.mu.
func (ep *liveEndpoint) IsLeafNeighbor(id msg.PeerID) bool {
	_, ok := ep.p.leaves[id]
	return ok
}

// deliver routes one message to q, through the FaultyTransport when one
// is installed.
func (n *Net) deliver(q *Peer, m msg.Message) {
	if ft := n.faults; ft != nil {
		ft.deliver(n, q, m)
		return
	}
	n.deliverNow(q, m)
}

// deliverNow encodes m and enqueues it on q's inbox, dropping on overflow
// (the live plane is lossy, like the UDP paths real overlays use).
func (n *Net) deliverNow(q *Peer, m msg.Message) {
	if q == nil || q.gone.Load() {
		return
	}
	b := msg.Encode(nil, &m)
	select {
	case q.inbox <- b:
		n.msgs[m.Kind].Add(1)
	default:
		n.dropped.Add(1)
		n.droppedKind[m.Kind].Add(1)
	}
}

// send delivers m to q on p's behalf; the search plane uses it directly.
func (p *Peer) send(q *Peer, m msg.Message) {
	p.net.deliver(q, m)
}

// run is the peer's goroutine: it consumes protocol messages and runs one
// maintenance round per time unit until the peer leaves.
func (p *Peer) run() {
	defer p.net.wg.Done()
	ticker := time.NewTicker(p.net.cfg.Unit)
	defer ticker.Stop()
	for {
		select {
		case <-p.quit:
			return
		case b := <-p.inbox:
			p.receive(b)
		case <-ticker.C:
			p.tick()
		}
	}
}

// receive decodes one inbox payload and dispatches it. Decode failures
// are counted, never silently discarded: a rising counter is the live
// plane's only visible signal of codec or framing bugs.
func (p *Peer) receive(b []byte) {
	m, _, err := msg.Decode(b)
	if err != nil {
		p.net.decodeErrs.Add(1)
		return
	}
	p.handle(&m)
}

// handle routes one decoded message: search traffic to the query plane,
// everything else into the peer's DLM machine (Phase 1).
func (p *Peer) handle(m *msg.Message) {
	switch m.Kind {
	case msg.KindQuery, msg.KindQueryHit:
		p.handleSearch(m)
		return
	}
	now := p.net.nowUnits()
	p.mu.Lock()
	p.mach.HandleMessage(p.selfLocked(now), m, now, &p.ep)
	p.mu.Unlock()
}

// selfLocked builds the machine's view of this peer; callers hold p.mu.
func (p *Peer) selfLocked(now protocol.Time) protocol.Self {
	return protocol.Self{
		ID:         p.ID,
		Capacity:   p.Capacity,
		Age:        float64(now - p.joined),
		IsSuper:    p.Role() == RoleSuper,
		LeafDegree: len(p.leaves),
	}
}

// peerRef resolves a neighbor reference from either link map; callers
// hold p.mu.
func (p *Peer) peerRef(id msg.PeerID) *Peer {
	if q, ok := p.supers[id]; ok {
		return q
	}
	return p.leaves[id]
}

// tick is one maintenance round: link repair, the periodic information
// refresh, the super-layer l_nn smoothing pass, then a staggered DLM
// evaluation.
func (p *Peer) tick() {
	if p.gone.Load() {
		return
	}
	p.repairLinks()
	now := p.net.nowUnits()
	p.refresh(now)
	p.mu.Lock()
	if p.Role() == RoleSuper {
		// The sim engine advances every super's l_nn EWMA once per tick on
		// top of the advance inside Evaluate; mirror that here so both
		// planes trace identical smoothed sequences.
		p.mach.SmoothLnn(float64(len(p.leaves)))
	}
	// Retry or abandon Phase 1 requests whose deadline passed; the
	// endpoint resolves targets from the link maps under the same lock,
	// so a retry toward a vanished neighbor is silently absorbed.
	if p.mach.PendingRequests() > 0 {
		r, d := p.mach.ExpirePending(p.selfLocked(now), now, &p.ep)
		if r > 0 {
			p.net.reqRetries.Add(uint64(r))
		}
		if d > 0 {
			p.net.reqDrops.Add(uint64(d))
		}
	}
	p.mu.Unlock()
	if !protocol.Bernoulli(p.rng, p.net.cfg.Params.EvalProbability) {
		return
	}
	p.evaluate(now)
}

// refresh re-requests l_nn and values from a leaf's current supers every
// RefreshInterval units, so μ tracks the network instead of the state at
// connection time.
func (p *Peer) refresh(now protocol.Time) {
	if p.Role() != RoleLeaf {
		return
	}
	p.mu.Lock()
	if !p.mach.RefreshDue(now) {
		p.mu.Unlock()
		return
	}
	supers := make([]*Peer, 0, len(p.supers))
	for _, q := range p.supers {
		supers = append(supers, q)
		// Deadlines before the frames depart (same rule as the sim
		// plane); p.mu is held, which guards p.mach.
		p.mach.Expect(q.ID, msg.KindNeighNumRequest, now)
		p.mach.Expect(q.ID, msg.KindValueRequest, now)
	}
	p.mu.Unlock()
	for _, q := range supers {
		frames := protocol.RefreshExchange(p.ID, q.ID)
		for i := range frames {
			p.net.deliver(q, frames[i])
		}
	}
}

// repairLinks restores the peer's super-degree target and triggers the
// event-driven information exchange on each new link.
func (p *Peer) repairLinks() {
	want := p.net.cfg.M
	if p.Role() == RoleSuper {
		want = p.net.cfg.KS
	}
	for i := 0; i < 2*want; i++ {
		p.mu.Lock()
		deficit := want - len(p.supers)
		p.mu.Unlock()
		if deficit <= 0 {
			return
		}
		q := p.net.randomSuper(p.ID, p.rng)
		if q == nil {
			return
		}
		p.connect(q)
	}
}

// sendExchange fires the event-driven Phase 1 frames for a fresh
// leaf-super link between p (leaf) and q (super), routing each frame to
// the side it is addressed to.
func (p *Peer) sendExchange(q *Peer) {
	frames := protocol.ConnectExchange(p.ID, q.ID)
	for i := range frames {
		if frames[i].To == q.ID {
			p.net.deliver(q, frames[i])
		} else {
			p.net.deliver(p, frames[i])
		}
	}
}

// connect links p to the super-peer q (idempotent) and runs the Phase 1
// exchange. Lock order: lower peer ID first.
func (p *Peer) connect(q *Peer) {
	if q == nil || q.ID == p.ID || q.gone.Load() || p.gone.Load() {
		return
	}
	a, b := p, q
	if b.ID < a.ID {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
	if q.Role() != RoleSuper {
		b.mu.Unlock()
		a.mu.Unlock()
		return
	}
	if _, dup := p.supers[q.ID]; dup {
		b.mu.Unlock()
		a.mu.Unlock()
		return
	}
	p.supers[q.ID] = q
	if p.Role() == RoleSuper {
		q.supers[p.ID] = p
	} else {
		q.leaves[p.ID] = p
		q.search().indexAdd(p.Objects)
	}
	iAmLeaf := p.Role() == RoleLeaf
	if iAmLeaf {
		// Register the exchange's response deadlines on both machines
		// while the pair of locks is held: the leaf awaits the NeighNum
		// and Value responses from the super, the super awaits the Value
		// response from the leaf.
		now := p.net.nowUnits()
		p.mach.Expect(q.ID, msg.KindNeighNumRequest, now)
		p.mach.Expect(q.ID, msg.KindValueRequest, now)
		q.mach.Expect(p.ID, msg.KindValueRequest, now)
	}
	b.mu.Unlock()
	a.mu.Unlock()

	if iAmLeaf {
		p.sendExchange(q)
	}
}

// evaluate runs DLM Phases 2-4 through the peer's machine and executes
// whatever role switch it requests.
func (p *Peer) evaluate(now protocol.Time) {
	cfg := &p.net.cfg
	kl := float64(cfg.M) * cfg.Eta

	p.mu.Lock()
	res := p.mach.Evaluate(p.selfLocked(now), now, kl, cfg.Eta, p.rng)
	p.mu.Unlock()

	if hook := p.net.onDecision; hook != nil && (res.Evaluated || res.Action != protocol.ActionNone) {
		hook(p.ID, now, res)
	}
	switch res.Action {
	case protocol.ActionPromote:
		p.promote(now)
	case protocol.ActionDemote:
		p.demote(now)
	}
}

// promote moves the peer to the super-layer: its super links persist as
// super-super links (paper Figure 2) and its DLM state resets.
func (p *Peer) promote(now protocol.Time) {
	n := p.net
	n.mu.Lock()
	if n.closed || p.gone.Load() {
		n.mu.Unlock()
		return
	}
	n.supers[p.ID] = p
	n.mu.Unlock()

	p.mu.Lock()
	p.role.Store(int32(RoleSuper))
	p.mach.Reset(now)
	p.searchSt = nil // fresh (empty) super index
	neighbors := make([]*Peer, 0, len(p.supers))
	for _, q := range p.supers {
		neighbors = append(neighbors, q)
	}
	p.mu.Unlock()

	for _, q := range neighbors {
		q.mu.Lock()
		if _, ok := q.leaves[p.ID]; ok {
			delete(q.leaves, p.ID)
			q.supers[p.ID] = p
			q.search().indexRemove(p.Objects)
		}
		q.mach.Drop(p.ID)
		q.mu.Unlock()
	}
}

// demote moves the peer to the leaf-layer: it keeps at most M super
// links, drops its leaves (each repairs itself with one replacement
// connection — the PAO), and resets its DLM state.
func (p *Peer) demote(now protocol.Time) {
	n := p.net
	n.mu.Lock()
	if len(n.supers) <= 1 || p.gone.Load() {
		n.mu.Unlock()
		return // never demote the last super-peer
	}
	delete(n.supers, p.ID)
	n.mu.Unlock()

	p.mu.Lock()
	p.role.Store(int32(RoleLeaf))
	p.mach.Reset(now)
	p.searchSt = nil // a leaf keeps no index
	kept := make([]*Peer, 0, n.cfg.M)
	cut := make([]*Peer, 0, len(p.supers))
	for _, q := range p.supers {
		if len(kept) < n.cfg.M {
			kept = append(kept, q)
		} else {
			cut = append(cut, q)
		}
	}
	orphans := make([]*Peer, 0, len(p.leaves))
	for _, q := range p.leaves {
		orphans = append(orphans, q)
	}
	p.supers = make(map[msg.PeerID]*Peer, len(kept))
	for _, q := range kept {
		p.supers[q.ID] = q
	}
	p.leaves = make(map[msg.PeerID]*Peer)
	p.mu.Unlock()

	for _, q := range kept {
		q.mu.Lock()
		delete(q.supers, p.ID)
		q.leaves[p.ID] = p
		q.search().indexAdd(p.Objects)
		// The kept link is logically a fresh leaf-super connection, about
		// to be re-exchanged below; the super awaits the leaf's Value
		// response.
		q.mach.Expect(p.ID, msg.KindValueRequest, now)
		q.mu.Unlock()
	}
	p.mu.Lock()
	for _, q := range kept {
		p.mach.Expect(q.ID, msg.KindNeighNumRequest, now)
		p.mach.Expect(q.ID, msg.KindValueRequest, now)
	}
	p.mu.Unlock()
	for _, q := range kept {
		// Re-run the event-driven exchange on the re-classified link.
		p.sendExchange(q)
	}
	for _, q := range cut {
		q.mu.Lock()
		delete(q.supers, p.ID)
		delete(q.leaves, p.ID)
		q.mu.Unlock()
	}
	for _, q := range orphans {
		q.mu.Lock()
		delete(q.supers, p.ID)
		q.mach.Drop(p.ID)
		q.mu.Unlock()
		// The orphan's own repair restores its degree on its next tick.
	}
}
