package live

import (
	"time"

	"dlm/internal/core"
	"dlm/internal/msg"
)

// run is the peer's goroutine: it consumes protocol messages and runs one
// maintenance round per time unit until the peer leaves.
func (p *Peer) run() {
	defer p.net.wg.Done()
	ticker := time.NewTicker(p.net.cfg.Unit)
	defer ticker.Stop()
	for {
		select {
		case <-p.quit:
			return
		case b := <-p.inbox:
			m, _, err := msg.Decode(b)
			if err == nil {
				p.handle(&m)
			}
		case <-ticker.C:
			p.tick()
		}
	}
}

// send encodes and delivers a message to q's inbox, dropping on overflow
// (the live plane is lossy, like the UDP paths real overlays use).
func (p *Peer) send(q *Peer, m msg.Message) {
	if q == nil || q.gone.Load() {
		return
	}
	b := msg.Encode(nil, &m)
	select {
	case q.inbox <- b:
		p.net.msgs[m.Kind].Add(1)
	default:
		p.net.dropped.Add(1)
	}
}

// handle processes one protocol message (Phase 1 of DLM).
func (p *Peer) handle(m *msg.Message) {
	now := time.Now()
	switch m.Kind {
	case msg.KindNeighNumRequest:
		p.mu.Lock()
		lnn := len(p.leaves)
		from := p.peerRef(m.From)
		p.mu.Unlock()
		p.send(from, msg.NeighNumResponse(p.ID, m.From, lnn))

	case msg.KindNeighNumResponse:
		p.mu.Lock()
		if p.Role() == RoleLeaf {
			p.lnnReports[m.From] = int(m.NeighNum)
		}
		p.mu.Unlock()

	case msg.KindValueRequest:
		age := p.AgeUnits()
		p.mu.Lock()
		from := p.peerRef(m.From)
		p.mu.Unlock()
		p.send(from, msg.ValueResponse(p.ID, m.From, p.Capacity, age))

	case msg.KindValueResponse:
		joinEst := now.Add(-time.Duration(m.Age * float64(p.net.cfg.Unit)))
		p.mu.Lock()
		// A super's related set is restricted to current leaf neighbors.
		if p.Role() == RoleSuper {
			if _, linked := p.leaves[m.From]; !linked {
				p.mu.Unlock()
				return
			}
		}
		p.related[m.From] = relView{capacity: m.Capacity, joinEst: joinEst}
		p.mu.Unlock()

	case msg.KindQuery, msg.KindQueryHit:
		p.handleSearch(m)
	}
}

// peerRef resolves a neighbor reference from either link map; callers
// hold p.mu.
func (p *Peer) peerRef(id msg.PeerID) *Peer {
	if q, ok := p.supers[id]; ok {
		return q
	}
	return p.leaves[id]
}

// tick is one maintenance round: link repair, the periodic information
// refresh, then a staggered DLM evaluation.
func (p *Peer) tick() {
	if p.gone.Load() {
		return
	}
	p.repairLinks()
	p.refresh()
	if p.rng.Float64() >= p.net.cfg.Params.EvalProbability {
		return
	}
	p.evaluate()
}

// refresh re-requests l_nn and values from a leaf's current supers every
// RefreshInterval units, so μ tracks the network instead of the state at
// connection time.
func (p *Peer) refresh() {
	iv := p.net.cfg.Params.RefreshInterval
	if iv <= 0 || p.Role() != RoleLeaf {
		return
	}
	interval := time.Duration(float64(iv) * float64(p.net.cfg.Unit))
	now := time.Now()
	p.mu.Lock()
	if now.Sub(p.lastRefresh) < interval {
		p.mu.Unlock()
		return
	}
	p.lastRefresh = now
	supers := make([]*Peer, 0, len(p.supers))
	for _, q := range p.supers {
		supers = append(supers, q)
	}
	p.mu.Unlock()
	for _, q := range supers {
		p.send(q, msg.NeighNumRequest(p.ID, q.ID))
		p.send(q, msg.ValueRequest(p.ID, q.ID))
	}
}

// repairLinks restores the peer's super-degree target and triggers the
// event-driven information exchange on each new link.
func (p *Peer) repairLinks() {
	want := p.net.cfg.M
	if p.Role() == RoleSuper {
		want = p.net.cfg.KS
	}
	for i := 0; i < 2*want; i++ {
		p.mu.Lock()
		deficit := want - len(p.supers)
		p.mu.Unlock()
		if deficit <= 0 {
			return
		}
		q := p.net.randomSuper(p.ID, p.rng)
		if q == nil {
			return
		}
		p.connect(q)
	}
}

// connect links p to the super-peer q (idempotent) and runs the Phase 1
// exchange. Lock order: lower peer ID first.
func (p *Peer) connect(q *Peer) {
	if q == nil || q.ID == p.ID || q.gone.Load() || p.gone.Load() {
		return
	}
	a, b := p, q
	if b.ID < a.ID {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
	if q.Role() != RoleSuper {
		b.mu.Unlock()
		a.mu.Unlock()
		return
	}
	if _, dup := p.supers[q.ID]; dup {
		b.mu.Unlock()
		a.mu.Unlock()
		return
	}
	p.supers[q.ID] = q
	if p.Role() == RoleSuper {
		q.supers[p.ID] = p
	} else {
		q.leaves[p.ID] = p
		q.search().indexAdd(p.Objects)
	}
	iAmLeaf := p.Role() == RoleLeaf
	b.mu.Unlock()
	a.mu.Unlock()

	if iAmLeaf {
		// Leaf-super link: both message pairs fire (event-driven policy).
		p.send(q, msg.NeighNumRequest(p.ID, q.ID))
		p.send(q, msg.ValueRequest(p.ID, q.ID))
		q.send(p, msg.ValueRequest(q.ID, p.ID))
	}
}

// evaluate runs DLM Phases 2-4 from purely local state.
func (p *Peer) evaluate() {
	now := time.Now()
	cfg := &p.net.cfg
	kl := float64(cfg.M) * cfg.Eta
	cooldown := time.Duration(float64(cfg.Params.DecisionCooldown) * float64(cfg.Unit))
	demoteCooldown := time.Duration(float64(cfg.Params.DemotionCooldown) * float64(cfg.Unit))

	p.mu.Lock()
	if now.Sub(p.lastChange) < cooldown {
		p.mu.Unlock()
		return
	}
	role := p.Role()
	related := make([]core.Candidate, 0, len(p.related))
	for _, v := range p.related {
		related = append(related, core.Candidate{
			Capacity: v.capacity,
			Age:      float64(now.Sub(v.joinEst)) / float64(cfg.Unit),
		})
	}
	var lnn float64
	ok := len(related) >= cfg.Params.MinRelatedSet
	if role == RoleLeaf {
		if len(p.lnnReports) == 0 {
			ok = false
		} else {
			sum := 0
			for _, v := range p.lnnReports {
				sum += v
			}
			lnn = float64(sum) / float64(len(p.lnnReports))
		}
	} else {
		lnn = float64(len(p.leaves))
		if now.Sub(p.lastChange) < demoteCooldown {
			ok = false
		}
		// A super-peer that has held no leaves for EmptyGDemoteAfter
		// units serves nobody and cannot compare; it demotes outright.
		emptyAfter := time.Duration(float64(cfg.Params.EmptyGDemoteAfter) * float64(cfg.Unit))
		if len(p.leaves) == 0 && cfg.Params.EmptyGDemoteAfter > 0 &&
			now.Sub(p.lastChange) >= emptyAfter {
			p.mu.Unlock()
			p.demote()
			return
		}
	}
	p.mu.Unlock()
	if !ok {
		return
	}

	self := core.Candidate{Capacity: p.Capacity, Age: p.AgeUnits()}
	d := p.net.mgr.EvaluateStandalone(self, related, lnn, kl, role == RoleLeaf)
	if !d.ShouldSwitch {
		return
	}
	if p.rng.Float64() >= p.net.mgr.SwitchProbability(lnn, kl, cfg.Eta, d.YCapa, role == RoleLeaf) {
		return
	}
	if role == RoleLeaf {
		p.promote()
	} else {
		p.demote()
	}
}

// promote moves the peer to the super-layer: its super links persist as
// super-super links (paper Figure 2) and its DLM state resets.
func (p *Peer) promote() {
	n := p.net
	n.mu.Lock()
	if n.closed || p.gone.Load() {
		n.mu.Unlock()
		return
	}
	n.supers[p.ID] = p
	n.mu.Unlock()

	p.mu.Lock()
	p.role.Store(int32(RoleSuper))
	p.lastChange = time.Now()
	p.related = make(map[msg.PeerID]relView)
	p.lnnReports = make(map[msg.PeerID]int)
	p.searchSt = nil // fresh (empty) super index
	neighbors := make([]*Peer, 0, len(p.supers))
	for _, q := range p.supers {
		neighbors = append(neighbors, q)
	}
	p.mu.Unlock()

	for _, q := range neighbors {
		q.mu.Lock()
		if _, ok := q.leaves[p.ID]; ok {
			delete(q.leaves, p.ID)
			q.supers[p.ID] = p
			q.search().indexRemove(p.Objects)
		}
		delete(q.related, p.ID)
		q.mu.Unlock()
	}
}

// demote moves the peer to the leaf-layer: it keeps at most M super
// links, drops its leaves (each repairs itself with one replacement
// connection — the PAO), and resets its DLM state.
func (p *Peer) demote() {
	n := p.net
	n.mu.Lock()
	if len(n.supers) <= 1 || p.gone.Load() {
		n.mu.Unlock()
		return // never demote the last super-peer
	}
	delete(n.supers, p.ID)
	n.mu.Unlock()

	p.mu.Lock()
	p.role.Store(int32(RoleLeaf))
	p.lastChange = time.Now()
	p.related = make(map[msg.PeerID]relView)
	p.lnnReports = make(map[msg.PeerID]int)
	p.searchSt = nil // a leaf keeps no index
	kept := make([]*Peer, 0, n.cfg.M)
	dropped := make([]*Peer, 0, len(p.supers))
	for _, q := range p.supers {
		if len(kept) < n.cfg.M {
			kept = append(kept, q)
		} else {
			dropped = append(dropped, q)
		}
	}
	orphans := make([]*Peer, 0, len(p.leaves))
	for _, q := range p.leaves {
		orphans = append(orphans, q)
	}
	p.supers = make(map[msg.PeerID]*Peer, len(kept))
	for _, q := range kept {
		p.supers[q.ID] = q
	}
	p.leaves = make(map[msg.PeerID]*Peer)
	p.mu.Unlock()

	for _, q := range kept {
		q.mu.Lock()
		delete(q.supers, p.ID)
		q.leaves[p.ID] = p
		q.search().indexAdd(p.Objects)
		q.mu.Unlock()
		// Logically a fresh leaf-super connection: re-run the exchange.
		p.send(q, msg.NeighNumRequest(p.ID, q.ID))
		p.send(q, msg.ValueRequest(p.ID, q.ID))
		q.send(p, msg.ValueRequest(q.ID, p.ID))
	}
	for _, q := range dropped {
		q.mu.Lock()
		delete(q.supers, p.ID)
		delete(q.leaves, p.ID)
		q.mu.Unlock()
	}
	for _, q := range orphans {
		q.mu.Lock()
		delete(q.supers, p.ID)
		delete(q.related, p.ID)
		delete(q.lnnReports, p.ID)
		q.mu.Unlock()
		// The orphan's own repair restores its degree on its next tick.
	}
}
