// Package live runs the DLM protocol over real goroutines: every peer is
// a goroutine with an inbox of encoded protocol messages, links are
// channel references, and time is wall-clock (one protocol "time unit" is
// a configurable real duration). It validates the claim that every DLM
// decision is computable from peer-local state under true concurrency —
// each peer drives the same protocol.Machine as the discrete-event
// simulation plane (a claim the cross-plane equivalence test makes
// executable), with none of the engine's global ordering.
//
// The discrete-event simulator (internal/overlay + internal/core) remains
// the measurement instrument; this runtime is the existence proof and a
// natural fit for Go's concurrency model.
package live

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dlm/internal/msg"
	"dlm/internal/protocol"
)

// Role is a peer's current layer.
type Role int32

// The two roles.
const (
	RoleLeaf Role = iota
	RoleSuper
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleSuper {
		return "super"
	}
	return "leaf"
}

// Config parameterizes a live network.
type Config struct {
	// M is the super connections per leaf; KS the super-layer degree
	// target; Eta the protocol-wide target ratio.
	M, KS int
	Eta   float64
	// Params are the DLM tunables (zero value: protocol.DefaultParams()).
	Params protocol.Params
	// Unit is the real-time length of one protocol time unit.
	Unit time.Duration
	// InboxSize bounds each peer's mailbox; full mailboxes drop (as UDP
	// would).
	InboxSize int
	// Seed derives per-peer RNG streams.
	Seed int64
	// Faults, when non-nil, routes every delivery through a
	// FaultyTransport with this model (see faults.go). A non-nil model
	// with all knobs zero installs the wrapper but injects nothing.
	Faults *FaultModel
}

func (c *Config) defaults() {
	if c.M <= 0 {
		c.M = 2
	}
	if c.KS <= 0 {
		c.KS = 3
	}
	if c.Eta <= 0 {
		c.Eta = 10
	}
	if c.Unit <= 0 {
		c.Unit = 10 * time.Millisecond
	}
	if c.InboxSize <= 0 {
		c.InboxSize = 256
	}
	if (c.Params == protocol.Params{}) {
		c.Params = protocol.DefaultParams()
	}
}

// Net is a live peer-to-peer network.
type Net struct {
	cfg Config

	// start anchors the protocol clock; nowFn is swappable so the
	// equivalence test can drive the plane on a virtual clock.
	start time.Time
	nowFn func() time.Time

	mu     sync.Mutex
	peers  map[msg.PeerID]*Peer
	supers map[msg.PeerID]*Peer
	nextID msg.PeerID
	closed bool

	wg sync.WaitGroup

	msgs        [msg.NumKinds]atomic.Uint64
	dropped     atomic.Uint64
	droppedKind [msg.NumKinds]atomic.Uint64
	decodeErrs  atomic.Uint64

	// faults, when non-nil, sits between every sender and every inbox.
	faults *FaultyTransport
	// reqRetries/reqDrops aggregate the Phase 1 timeout activity across
	// all peers (see protocol.Machine.ExpirePending).
	reqRetries atomic.Uint64
	reqDrops   atomic.Uint64

	// manual suppresses the per-peer goroutines; the equivalence test
	// drives peers synchronously instead.
	manual bool
	// onDecision observes every machine evaluation that ran or requested
	// an action; the cross-plane equivalence test captures the decision
	// sequence through it.
	onDecision func(id msg.PeerID, now protocol.Time, res protocol.EvalResult)

	// Search plane: pending locally issued queries and the query-ID
	// counter.
	nextQuery atomic.Uint64
	pending   sync.Map // msg.QueryID -> *pendingQuery
}

// NewNet creates a live network; Stop must be called to release it. It
// panics on invalid Params (construction bug).
func NewNet(cfg Config) *Net {
	cfg.defaults()
	if err := cfg.Params.Validate(); err != nil {
		panic(err)
	}
	n := &Net{
		cfg:    cfg,
		start:  time.Now(),
		nowFn:  time.Now,
		peers:  make(map[msg.PeerID]*Peer),
		supers: make(map[msg.PeerID]*Peer),
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			panic(err)
		}
		n.faults = newFaultyTransport(*cfg.Faults, cfg.Unit, cfg.Seed)
	}
	return n
}

// nowUnits returns the current protocol time: real time elapsed since
// the network started, in units of cfg.Unit.
func (n *Net) nowUnits() protocol.Time {
	return protocol.Time(float64(n.nowFn().Sub(n.start)) / float64(n.cfg.Unit))
}

// Peer is one live participant. All of its protocol state lives in a
// protocol.Machine private to it and guarded by its own mutex; the role
// is additionally atomic so other goroutines can classify it cheaply.
type Peer struct {
	ID       msg.PeerID
	Capacity float64
	// Objects is the peer's shared content (immutable for the session).
	Objects []msg.ObjectID

	net    *Net
	inbox  chan []byte
	quit   chan struct{}
	joined protocol.Time
	role   atomic.Int32
	gone   atomic.Bool

	mu       sync.Mutex
	supers   map[msg.PeerID]*Peer
	leaves   map[msg.PeerID]*Peer
	mach     *protocol.Machine
	ep       liveEndpoint
	rng      *rand.Rand
	searchSt *searchState
}

// Role returns the peer's current role.
func (p *Peer) Role() Role { return Role(p.role.Load()) }

// AgeUnits returns the peer's age in protocol time units.
func (p *Peer) AgeUnits() float64 {
	return float64(p.net.nowUnits() - p.joined)
}

// Join spawns a new peer goroutine with no shared content. While the
// super-layer is empty the joining peer bootstraps it; otherwise it
// joins as a leaf and connects to M random super-peers.
func (n *Net) Join(capacity float64) *Peer { return n.JoinWithObjects(capacity, nil) }

// JoinWithObjects is Join with shared content for the search plane.
func (n *Net) JoinWithObjects(capacity float64, objects []msg.ObjectID) *Peer {
	now := n.nowUnits()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.nextID++
	p := &Peer{
		ID:       n.nextID,
		Capacity: capacity,
		Objects:  objects,
		net:      n,
		inbox:    make(chan []byte, n.cfg.InboxSize),
		quit:     make(chan struct{}),
		joined:   now,
		supers:   make(map[msg.PeerID]*Peer),
		leaves:   make(map[msg.PeerID]*Peer),
		mach:     protocol.NewMachine(&n.cfg.Params, now),
		rng:      rand.New(rand.NewSource(n.cfg.Seed ^ int64(n.nextID)*0x9e37)),
	}
	p.ep = liveEndpoint{p: p}
	n.peers[p.ID] = p
	bootstrap := len(n.supers) == 0
	if bootstrap {
		p.role.Store(int32(RoleSuper))
		n.supers[p.ID] = p
	}
	manual := n.manual
	n.mu.Unlock()

	if !bootstrap {
		p.repairLinks()
	}
	if !manual {
		n.wg.Add(1)
		go p.run()
	}
	return p
}

// Leave removes the peer from the network and stops its goroutine.
func (n *Net) Leave(p *Peer) {
	if !p.gone.CompareAndSwap(false, true) {
		return
	}
	n.mu.Lock()
	delete(n.peers, p.ID)
	delete(n.supers, p.ID)
	n.mu.Unlock()
	close(p.quit)

	// Detach from neighbors; their repair loops restore degree.
	p.mu.Lock()
	neighbors := make([]*Peer, 0, len(p.supers)+len(p.leaves))
	for _, q := range p.supers {
		neighbors = append(neighbors, q)
	}
	for _, q := range p.leaves {
		neighbors = append(neighbors, q)
	}
	p.supers = make(map[msg.PeerID]*Peer)
	p.leaves = make(map[msg.PeerID]*Peer)
	p.mu.Unlock()
	for _, q := range neighbors {
		q.mu.Lock()
		if _, wasLeaf := q.leaves[p.ID]; wasLeaf {
			q.search().indexRemove(p.Objects)
		}
		delete(q.supers, p.ID)
		delete(q.leaves, p.ID)
		q.mach.Drop(p.ID)
		q.mu.Unlock()
	}
}

// Stop terminates every peer and waits for all goroutines.
func (n *Net) Stop() {
	n.mu.Lock()
	n.closed = true
	peers := make([]*Peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		n.Leave(p)
	}
	n.wg.Wait()
}

// Messages returns the count of messages delivered for a kind.
func (n *Net) Messages(k msg.Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return n.msgs[k].Load()
}

// Dropped returns the number of messages dropped on full inboxes.
func (n *Net) Dropped() uint64 { return n.dropped.Load() }

// DroppedByKind returns the number of messages of one kind dropped on
// full inboxes.
func (n *Net) DroppedByKind(k msg.Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return n.droppedKind[k].Load()
}

// DecodeErrors returns the number of inbox payloads that failed to
// decode (and were therefore discarded before reaching the protocol).
func (n *Net) DecodeErrors() uint64 { return n.decodeErrs.Load() }

// RequestRetries returns the population's cumulative Phase 1 timeout
// retries (requests re-sent after their deadline passed).
func (n *Net) RequestRetries() uint64 { return n.reqRetries.Load() }

// RequestDrops returns the population's cumulative abandoned Phase 1
// requests (retry budget spent without an answer).
func (n *Net) RequestDrops() uint64 { return n.reqDrops.Load() }

// Summary is a point-in-time view of the live network.
type Summary struct {
	NumSupers, NumLeaves    int
	Ratio                   float64
	AvgCapSuper, AvgCapLeaf float64
	AvgAgeSuper, AvgAgeLeaf float64
}

// Snapshot summarizes both layers.
func (n *Net) Snapshot() Summary {
	n.mu.Lock()
	peers := make([]*Peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	var s Summary
	var capS, capL, ageS, ageL float64
	for _, p := range peers {
		if p.Role() == RoleSuper {
			s.NumSupers++
			capS += p.Capacity
			ageS += p.AgeUnits()
		} else {
			s.NumLeaves++
			capL += p.Capacity
			ageL += p.AgeUnits()
		}
	}
	if s.NumSupers > 0 {
		s.Ratio = float64(s.NumLeaves) / float64(s.NumSupers)
		s.AvgCapSuper = capS / float64(s.NumSupers)
		s.AvgAgeSuper = ageS / float64(s.NumSupers)
	}
	if s.NumLeaves > 0 {
		s.AvgCapLeaf = capL / float64(s.NumLeaves)
		s.AvgAgeLeaf = ageL / float64(s.NumLeaves)
	}
	return s
}

// randomSuper picks a uniformly random super-peer other than exclude.
func (n *Net) randomSuper(exclude msg.PeerID, rng *rand.Rand) *Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.supers) == 0 {
		return nil
	}
	ids := make([]*Peer, 0, len(n.supers))
	for id, p := range n.supers {
		if id != exclude {
			ids = append(ids, p)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	return ids[rng.Intn(len(ids))]
}
