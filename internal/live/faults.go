package live

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dlm/internal/msg"
)

// FaultModel mirrors overlay.Link for the live plane: per-message loss,
// triangular latency jitter, duplication, and reordering, injected over
// the channel transport. Delays are expressed in protocol time units and
// scaled by Config.Unit at delivery time, so the same numbers describe
// the same adversity on both planes.
type FaultModel struct {
	// Loss is the probability a message is dropped in flight.
	Loss float64
	// Dup is the probability a delivered message arrives twice.
	Dup float64
	// JitterMin/JitterMode/JitterMax parameterize triangular latency
	// jitter in protocol time units; active when JitterMax > 0.
	JitterMin, JitterMode, JitterMax float64
	// ReorderWindow adds a uniform extra delay in [0, ReorderWindow)
	// protocol time units per delivered copy.
	ReorderWindow float64
}

// Active reports whether any fault knob is set.
func (f FaultModel) Active() bool {
	return f.Loss > 0 || f.Dup > 0 || f.JitterMax > 0 || f.ReorderWindow > 0
}

// Validate reports a descriptive error for out-of-range parameters.
func (f FaultModel) Validate() error {
	switch {
	case f.Loss < 0 || f.Loss >= 1 || math.IsNaN(f.Loss):
		return fmt.Errorf("live: fault loss = %v, want [0,1)", f.Loss)
	case f.Dup < 0 || f.Dup >= 1 || math.IsNaN(f.Dup):
		return fmt.Errorf("live: fault dup = %v, want [0,1)", f.Dup)
	case f.JitterMin < 0 || f.JitterMode < f.JitterMin || f.JitterMax < f.JitterMode:
		return fmt.Errorf("live: fault jitter (%v, %v, %v), want 0 <= min <= mode <= max",
			f.JitterMin, f.JitterMode, f.JitterMax)
	case f.ReorderWindow < 0:
		return fmt.Errorf("live: fault reorder window = %v, want >= 0", f.ReorderWindow)
	}
	return nil
}

// delay draws the extra delivery delay (in protocol time units) for one
// copy; callers hold the transport's rng lock.
func (f FaultModel) delay(rng *rand.Rand) float64 {
	var d float64
	if f.JitterMax > 0 {
		d += f.triangular(rng)
	}
	if f.ReorderWindow > 0 {
		d += rng.Float64() * f.ReorderWindow
	}
	return d
}

func (f FaultModel) triangular(rng *rand.Rand) float64 {
	a, c, b := f.JitterMin, f.JitterMode, f.JitterMax
	u := rng.Float64()
	if b <= a {
		return a
	}
	if fc := (c - a) / (b - a); u < fc {
		return a + math.Sqrt(u*(b-a)*(c-a))
	}
	return b - math.Sqrt((1-u)*(b-a)*(b-c))
}

// FaultyTransport wraps the net-wide delivery path with a FaultModel. It
// is shared by every sender goroutine, so the RNG is mutex-guarded; an
// all-zero model draws nothing and delivers synchronously, making the
// wrapper behavior-identical to the unwrapped transport (the cross-plane
// equivalence test pins exactly that).
type FaultyTransport struct {
	model FaultModel
	unit  time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	drops [msg.NumKinds]atomic.Uint64
	dups  [msg.NumKinds]atomic.Uint64
}

func newFaultyTransport(model FaultModel, unit time.Duration, seed int64) *FaultyTransport {
	return &FaultyTransport{
		model: model,
		unit:  unit,
		rng:   rand.New(rand.NewSource(seed ^ 0x6c696e6b)), // "link"
	}
}

// deliver applies the fault model to one message. Draw order matches the
// simulation plane's sendFaulty: loss first (a dropped message draws
// nothing further), then duplication, then one delay per departing copy.
// Delayed copies ride timer goroutines; a peer that leaves before the
// timer fires absorbs the copy in deliverNow's liveness check.
func (ft *FaultyTransport) deliver(n *Net, q *Peer, m msg.Message) {
	drop := false
	copies := 1
	var delays [2]float64
	if ft.model.Active() {
		ft.mu.Lock()
		if ft.model.Loss > 0 && ft.rng.Float64() < ft.model.Loss {
			drop = true
		} else {
			if ft.model.Dup > 0 && ft.rng.Float64() < ft.model.Dup {
				copies = 2
			}
			for i := 0; i < copies; i++ {
				delays[i] = ft.model.delay(ft.rng)
			}
		}
		ft.mu.Unlock()
	}
	if drop {
		ft.drops[m.Kind].Add(1)
		return
	}
	if copies == 2 {
		ft.dups[m.Kind].Add(1)
	}
	for i := 0; i < copies; i++ {
		if delays[i] <= 0 {
			n.deliverNow(q, m)
			continue
		}
		mm := m
		time.AfterFunc(time.Duration(delays[i]*float64(ft.unit)), func() {
			n.deliverNow(q, mm)
		})
	}
}

// Drops returns the fault-injected drop count for one kind.
func (ft *FaultyTransport) Drops(k msg.Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return ft.drops[k].Load()
}

// Dups returns the fault-injected duplication count for one kind.
func (ft *FaultyTransport) Dups(k msg.Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return ft.dups[k].Load()
}

// FaultDrops returns the total messages the fault model dropped, zero
// when no FaultyTransport is installed.
func (n *Net) FaultDrops() uint64 {
	if n.faults == nil {
		return 0
	}
	var total uint64
	for k := range n.faults.drops {
		total += n.faults.drops[k].Load()
	}
	return total
}

// FaultDups returns the total messages the fault model duplicated, zero
// when no FaultyTransport is installed.
func (n *Net) FaultDups() uint64 {
	if n.faults == nil {
		return 0
	}
	var total uint64
	for k := range n.faults.dups {
		total += n.faults.dups[k].Load()
	}
	return total
}
