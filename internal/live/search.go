package live

import (
	"sync/atomic"
	"time"

	"dlm/internal/msg"
)

// This file adds the search plane to the live runtime: super-peers index
// their leaves' content and flood queries among themselves over the same
// inbox channels the DLM pairs use, with QueryHits routed back along the
// inverse path — the complete super-peer system running on goroutines.

// searchState is the per-peer search-plane state, guarded by Peer.mu.
type searchState struct {
	// index maps object -> reference count over this super's leaves
	// (and itself).
	index map[msg.ObjectID]int
	// seen suppresses duplicate floods (bounded: oldest evicted).
	seen     map[msg.QueryID]msg.PeerID // query -> parent (inverse path)
	seenRing []msg.QueryID
}

const seenCap = 512

func (p *Peer) search() *searchState {
	if p.searchSt == nil {
		p.searchSt = &searchState{
			index: make(map[msg.ObjectID]int),
			seen:  make(map[msg.QueryID]msg.PeerID),
		}
	}
	return p.searchSt
}

// markSeen records the inverse-path parent for a query; it reports false
// when the query was already seen. Callers hold p.mu.
func (s *searchState) markSeen(q msg.QueryID, parent msg.PeerID) bool {
	if _, dup := s.seen[q]; dup {
		return false
	}
	if len(s.seenRing) >= seenCap {
		oldest := s.seenRing[0]
		s.seenRing = s.seenRing[1:]
		delete(s.seen, oldest)
	}
	s.seen[q] = parent
	s.seenRing = append(s.seenRing, q)
	return true
}

// indexAdd/indexRemove maintain a super's leaf index. Callers hold p.mu.
func (s *searchState) indexAdd(objects []msg.ObjectID) {
	for _, o := range objects {
		s.index[o]++
	}
}

func (s *searchState) indexRemove(objects []msg.ObjectID) {
	for _, o := range objects {
		if s.index[o]--; s.index[o] <= 0 {
			delete(s.index, o)
		}
	}
}

// QueryResult is the outcome of one live query.
type QueryResult struct {
	Found bool
	Hits  int
}

// pendingQuery collects hits for a locally issued query.
type pendingQuery struct {
	hits atomic.Int32
}

// Query floods a search for obj from peer p with the given TTL and waits
// up to timeout for hits. Call it from an external goroutine (a test or
// driver), not from inside a peer's own handler — it blocks for the full
// timeout.
func (n *Net) Query(p *Peer, obj msg.ObjectID, ttl uint8, timeout time.Duration) QueryResult {
	qid := msg.QueryID(n.nextQuery.Add(1))
	pq := &pendingQuery{}
	n.pending.Store(qid, pq)
	defer n.pending.Delete(qid)

	p.mu.Lock()
	if p.Role() == RoleSuper {
		// Self-processing: check own index, then relay.
		st := p.search()
		st.markSeen(qid, msg.NoPeer)
		_, hit := st.index[obj]
		if !hit {
			hit = containsObject(p.Objects, obj)
		}
		targets := make([]*Peer, 0, len(p.supers))
		for _, q := range p.supers {
			targets = append(targets, q)
		}
		p.mu.Unlock()
		if hit {
			pq.hits.Add(1)
		}
		for _, q := range targets {
			p.send(q, msg.NewQuery(p.ID, q.ID, qid, obj, ttl))
		}
	} else {
		targets := make([]*Peer, 0, len(p.supers))
		for _, q := range p.supers {
			targets = append(targets, q)
		}
		p.mu.Unlock()
		for _, q := range targets {
			p.send(q, msg.NewQuery(p.ID, q.ID, qid, obj, ttl))
		}
	}

	time.Sleep(timeout)
	hits := int(pq.hits.Load())
	return QueryResult{Found: hits > 0, Hits: hits}
}

// handleSearch processes the search-plane message kinds; it is called
// from the peer goroutine (see handle).
func (p *Peer) handleSearch(m *msg.Message) {
	switch m.Kind {
	case msg.KindQuery:
		if p.Role() != RoleSuper {
			return
		}
		p.mu.Lock()
		st := p.search()
		if !st.markSeen(m.Query, m.From) {
			p.mu.Unlock()
			return
		}
		_, hit := st.index[m.Object]
		if !hit {
			hit = containsObject(p.Objects, m.Object)
		}
		var targets []*Peer
		if m.TTL > 1 {
			targets = make([]*Peer, 0, len(p.supers))
			for _, q := range p.supers {
				if q.ID != m.From {
					targets = append(targets, q)
				}
			}
		}
		from := p.peerRef(m.From)
		p.mu.Unlock()

		if hit {
			if from != nil {
				p.send(from, msg.NewQueryHit(p.ID, m.From, m.Query, m.Object, p.ID, m.Hops))
			} else {
				// The querier is not a direct neighbor only when the
				// query originated here; count locally.
				p.net.recordHit(m.Query)
			}
		}
		for _, q := range targets {
			fwd := msg.NewQuery(p.ID, q.ID, m.Query, m.Object, m.TTL-1)
			fwd.Hops = m.Hops + 1
			p.send(q, fwd)
		}

	case msg.KindQueryHit:
		// Either this peer issued the query (deliver) or it sits on the
		// inverse path (forward to its recorded parent).
		if _, ok := p.net.pending.Load(m.Query); ok {
			p.net.recordHit(m.Query)
			return
		}
		p.mu.Lock()
		var parent msg.PeerID
		if p.searchSt != nil {
			parent = p.searchSt.seen[m.Query]
		}
		next := p.peerRef(parent)
		p.mu.Unlock()
		if next != nil {
			p.send(next, msg.NewQueryHit(p.ID, parent, m.Query, m.Object, m.Provider, m.Hops))
		}
	}
}

// recordHit credits a pending local query.
func (n *Net) recordHit(q msg.QueryID) {
	if v, ok := n.pending.Load(q); ok {
		v.(*pendingQuery).hits.Add(1)
	}
}

func containsObject(objects []msg.ObjectID, o msg.ObjectID) bool {
	for _, x := range objects {
		if x == o {
			return true
		}
	}
	return false
}
