package live

import (
	"testing"
	"time"

	"dlm/internal/core"
	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/protocol"
	"dlm/internal/sim"
)

// TestCrossPlaneEquivalence drives the same scripted scenario through
// both adapters of the protocol core — the discrete-event simulation
// plane (internal/core on internal/overlay) and the goroutine plane
// (this package, on a virtual clock in manual mode) — and requires the
// two decision sequences to be identical: same peers, same times, same
// μ, Y and l_nn values, same promotions and demotions.
//
// The scenario is built so that no RNG draw ever happens on the decision
// path (EvalProbability = 1 and RateLimit = false both skip their
// Bernoulli draw by the no-draw-at-boundary rule), all times are small
// integers (exact in float64), and message hand-off granularity matches:
// the live driver drains every inbox to empty at the start of each tick,
// which reproduces the simulator's inline (zero-latency) delivery at
// tick granularity — extrapolated ages agree because both planes infer
// the same join times.
//
// Timeline (capacities: id1 = 10 bootstrap super, id2 = 50 leaf, both
// joining at t = 0):
//
//	t=1  id2 evaluates and promotes (l_nn = 1 > k_l = 0.5, μ = ln 2)
//	t=3  id1 demotes via the empty-G rule (an action without a full
//	     evaluation: its related set emptied when id2 left the leaf layer)
//	t=4+ both peers evaluate every tick and hold their roles
type decRec struct {
	id        msg.PeerID
	now       float64
	evaluated bool
	action    protocol.Action
	mu        float64
	yCapa     float64
	yAge      float64
	lnn       float64
}

func makeRec(id msg.PeerID, now float64, res protocol.EvalResult) decRec {
	return decRec{
		id:        id,
		now:       now,
		evaluated: res.Evaluated,
		action:    res.Action,
		mu:        res.Decision.Mu,
		yCapa:     res.Decision.YCapa,
		yAge:      res.Decision.YAge,
		lnn:       res.Lnn,
	}
}

func equivParams() protocol.Params {
	p := protocol.DefaultParams()
	p.EvalProbability = 1 // every peer evaluates every tick, no draw
	p.RateLimit = false   // eligible switches always execute, no draw
	p.RefreshInterval = 0
	p.LnnSmoothing = 0
	p.DecisionCooldown = 1
	p.DemotionCooldown = 3
	p.EmptyGDemoteAfter = 3
	p.MinRelatedSet = 1
	p.LeafWindow = 0
	return p
}

const equivTicks = 8

func simDecisions(t *testing.T, seed int64, shards int) []decRec {
	t.Helper()
	eng := sim.NewEngine(seed)
	eng.SetShards(shards)
	mgr := core.NewManager(equivParams())
	n := overlay.New(eng, overlay.Config{M: 1, KS: 3, Eta: 0.5}, mgr)
	var recs []decRec
	mgr.OnDecision = func(p *overlay.Peer, now sim.Time, res protocol.EvalResult) {
		recs = append(recs, makeRec(p.ID, float64(now), res))
	}
	n.Join(10, 1000, nil) // bootstrap super, id 1
	n.Join(50, 1000, nil) // leaf, id 2
	for tick := 1; tick <= equivTicks; tick++ {
		eng.AfterFunc(sim.Duration(tick), func(*sim.Engine) { n.Tick() })
	}
	if err := eng.RunUntil(equivTicks + 1); err != nil {
		t.Fatalf("sim plane: %v", err)
	}
	return recs
}

// drainAll delivers queued messages until every inbox is empty, including
// the responses generated while draining.
func drainAll(peers []*Peer) {
	for {
		progress := false
		for _, p := range peers {
			for {
				select {
				case b := <-p.inbox:
					p.receive(b)
					progress = true
				default:
				}
				break
			}
		}
		if !progress {
			return
		}
	}
}

func liveDecisions(t *testing.T, seed int64, faults *FaultModel) []decRec {
	t.Helper()
	unit := time.Second
	n := NewNet(Config{M: 1, KS: 3, Eta: 0.5, Params: equivParams(), Unit: unit, Seed: seed, Faults: faults})
	defer n.Stop()
	// Manual mode: no goroutines; this test is the scheduler and the
	// clock, so tick times are exact integers like the simulator's.
	n.manual = true
	var elapsed time.Duration
	base := n.start
	n.nowFn = func() time.Time { return base.Add(elapsed) }
	var recs []decRec
	n.onDecision = func(id msg.PeerID, now protocol.Time, res protocol.EvalResult) {
		recs = append(recs, makeRec(id, float64(now), res))
	}
	a := n.Join(10) // bootstrap super, id 1
	b := n.Join(50) // leaf, id 2
	peers := []*Peer{a, b}
	for tick := 1; tick <= equivTicks; tick++ {
		elapsed = time.Duration(tick) * unit
		drainAll(peers)
		// Join order, mirroring the simulation manager's slot-order lane
		// walk (slots are assigned in join order here). The sim plane
		// defers promote/demote commits to the end of its tick while this
		// loop executes them immediately, but the difference is
		// unobservable: a peer's tick reads only its own state plus
		// messages drained at the *next* tick, so no peer can see a
		// same-tick role change of another.
		for _, p := range peers {
			p.tick()
		}
	}
	return recs
}

func TestCrossPlaneEquivalence(t *testing.T) {
	// The decision path is draw-free by construction, so the trace must
	// agree for every seed, and an installed-but-idle fault wrapper (a
	// non-nil all-zero model) must be invisible: it draws nothing and
	// delivers inline.
	tests := []struct {
		name   string
		seed   int64
		faults *FaultModel
	}{
		{name: "seed7", seed: 7},
		{name: "seed21", seed: 21},
		{name: "seed99", seed: 99},
		{name: "seed7-idle-fault-wrapper", seed: 7, faults: &FaultModel{}},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// The sim plane runs both serial and lane-parallel (4 workers
			// over the fixed lanes): the goroutine plane must match the
			// sharded simulator too, not just the serial one.
			simRecs := simDecisions(t, tc.seed, 1)
			shardedRecs := simDecisions(t, tc.seed, 4)
			liveRecs := liveDecisions(t, tc.seed, tc.faults)

			if len(simRecs) != len(shardedRecs) {
				t.Fatalf("decision counts differ across shard counts: serial %d, sharded %d",
					len(simRecs), len(shardedRecs))
			}
			for i := range simRecs {
				if simRecs[i] != shardedRecs[i] {
					t.Errorf("decision %d differs across shard counts:\nserial:  %+v\nsharded: %+v",
						i, simRecs[i], shardedRecs[i])
				}
			}
			if len(simRecs) != len(liveRecs) {
				t.Fatalf("decision counts differ: sim %d, live %d\nsim:  %+v\nlive: %+v",
					len(simRecs), len(liveRecs), simRecs, liveRecs)
			}
			for i := range simRecs {
				if simRecs[i] != liveRecs[i] {
					t.Errorf("decision %d differs:\nsim:  %+v\nlive: %+v", i, simRecs[i], liveRecs[i])
				}
			}

			// The scenario must actually exercise both role switches; a
			// silently empty trace would make the equality above vacuous.
			var promotions, demotions int
			for _, r := range simRecs {
				switch r.action {
				case protocol.ActionPromote:
					promotions++
				case protocol.ActionDemote:
					demotions++
				}
			}
			if promotions == 0 || demotions == 0 {
				t.Fatalf("scenario exercised %d promotions and %d demotions, want >= 1 of each:\n%+v",
					promotions, demotions, simRecs)
			}
		})
	}
}
