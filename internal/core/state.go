package core

import (
	"dlm/internal/msg"
	"dlm/internal/sim"
)

// relEntry is one member of a peer's related set G: a snapshot of another
// peer's capacity and age. Capacity is constant for a session; age grows
// linearly, so we store the inferred join time and extrapolate — reported
// information stays fresh without re-exchange.
type relEntry struct {
	capacity float64
	// joinTime is reportTime - reportedAge.
	joinTime sim.Time
	// lastSeen is when we last heard from this peer (for window pruning).
	lastSeen sim.Time
}

// age returns the extrapolated age at time now.
func (e *relEntry) age(now sim.Time) float64 { return float64(now - e.joinTime) }

// lnnReport is a super-peer's reported leaf-neighbor count.
type lnnReport struct {
	lnn  int
	when sim.Time
}

// peerState is DLM's per-peer storage, kept in overlay.Peer.State. A role
// change resets it: the related set of a leaf (supers contacted since it
// became a leaf) and of a super (current leaf neighbors) have different
// semantics, so neither survives the transition.
type peerState struct {
	// related stores entries by value: the entry is three words, and a
	// pointer indirection here cost one allocation per observed peer on
	// the information-exchange hot path.
	related  map[msg.PeerID]relEntry
	relOrder []msg.PeerID // deterministic iteration & FIFO eviction

	// lnnReports holds, for a leaf, the latest l_nn report per super.
	lnnReports map[msg.PeerID]lnnReport

	// lastChange is the time of the last role change (or join).
	lastChange sim.Time
	// lastRefresh is the last time this leaf refreshed its neighbors.
	lastRefresh sim.Time

	// lnnSmooth is a super-peer's EWMA of its own leaf degree; see
	// Params.LnnSmoothing.
	lnnSmooth float64
	hasSmooth bool
}

// smoothLnn folds the current leaf degree into the EWMA and returns the
// smoothed value. Alpha 0 disables smoothing (returns cur).
func (st *peerState) smoothLnn(cur float64, alpha float64) float64 {
	if alpha <= 0 {
		return cur
	}
	if !st.hasSmooth {
		st.lnnSmooth, st.hasSmooth = cur, true
		return cur
	}
	st.lnnSmooth += alpha * (cur - st.lnnSmooth)
	return st.lnnSmooth
}

func newPeerState(now sim.Time) *peerState {
	return &peerState{
		related:    make(map[msg.PeerID]relEntry),
		lnnReports: make(map[msg.PeerID]lnnReport),
		lastChange: now,
	}
}

// observe records (or refreshes) a related-set entry, enforcing the
// optional FIFO capacity bound.
func (st *peerState) observe(id msg.PeerID, capacity, age float64, now sim.Time, maxSize int) {
	entry := relEntry{
		capacity: capacity,
		joinTime: now - sim.Time(age),
		lastSeen: now,
	}
	if _, ok := st.related[id]; ok {
		st.related[id] = entry
		return
	}
	if maxSize > 0 && len(st.relOrder) >= maxSize {
		st.evictOldest()
	}
	st.related[id] = entry
	st.relOrder = append(st.relOrder, id)
}

func (st *peerState) evictOldest() {
	if len(st.relOrder) == 0 {
		return
	}
	id := st.relOrder[0]
	st.relOrder = st.relOrder[1:]
	delete(st.related, id)
	delete(st.lnnReports, id)
}

// drop removes a related-set entry (a super forgetting a departed leaf).
func (st *peerState) drop(id msg.PeerID) {
	if _, ok := st.related[id]; !ok {
		delete(st.lnnReports, id)
		return
	}
	delete(st.related, id)
	delete(st.lnnReports, id)
	for i, v := range st.relOrder {
		if v == id {
			st.relOrder = append(st.relOrder[:i], st.relOrder[i+1:]...)
			break
		}
	}
}

// prune removes entries not seen within window (0 disables).
func (st *peerState) prune(now sim.Time, window sim.Duration) {
	if window <= 0 {
		return
	}
	keep := st.relOrder[:0]
	for _, id := range st.relOrder {
		e := st.related[id]
		if now-e.lastSeen > window {
			delete(st.related, id)
			delete(st.lnnReports, id)
			continue
		}
		keep = append(keep, id)
	}
	st.relOrder = keep
}

// size returns |G|.
func (st *peerState) size() int { return len(st.relOrder) }

// avgLnn averages the available l_nn reports; ok is false when none.
func (st *peerState) avgLnn() (float64, bool) {
	if len(st.lnnReports) == 0 {
		return 0, false
	}
	var sum float64
	var n int
	// Iterate in deterministic relOrder; reports for peers evicted from
	// the related set were deleted alongside.
	for _, id := range st.relOrder {
		if r, ok := st.lnnReports[id]; ok {
			sum += float64(r.lnn)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
