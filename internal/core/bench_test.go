package core

import (
	"runtime"
	"testing"

	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// BenchmarkScaleTick is the pinned macro benchmark of the scaling work:
// steady-state DLM maintenance ticks over a 100k-peer churning network —
// the hot loop that dominates the -run scale sweep and the million-peer
// runs. It measures whole net.Tick calls (lane fan-out, per-peer
// evaluation, deferred commits, deficit-set repair, expiry and churn
// events between ticks), so a regression anywhere on the per-tick path
// shows up here. scripts/bench.sh records it into BENCH_*.json and the
// CI bench-smoke lane gates on it.
func BenchmarkScaleTick(b *testing.B) {
	const size = 100_000
	eng := sim.NewEngine(1)
	eng.SetShards(runtime.GOMAXPROCS(0))
	mgr := NewManager(DefaultParams())
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 20}, mgr)
	churn := &overlay.Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.SaroiuBandwidthMixture(),
			Lifetime: workload.LognormalWithMedian(60, 1.2),
		},
		TargetSize: size,
		GrowthRate: size / 4,
	}
	churn.Start()
	// Drive to steady state: population at target, layer split settled,
	// refresh/expiry wheels loaded — so the timed region measures the
	// equilibrium per-tick cost, not ramp-up.
	next := sim.Time(0)
	for ; next < 60; next++ {
		if err := eng.RunUntil(next); err != nil {
			b.Fatal(err)
		}
		n.Tick()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunUntil(next); err != nil {
			b.Fatal(err)
		}
		n.Tick()
		next++
	}
	b.StopTimer()
	b.ReportMetric(float64(n.Size())*float64(b.N)/b.Elapsed().Seconds(), "peer-ticks/s")
	if bad := n.CheckInvariants(); len(bad) > 0 {
		b.Fatalf("invariants: %v", bad[:minInt(len(bad), 5)])
	}
}
