package core

import (
	"testing"

	"dlm/internal/msg"
	"dlm/internal/sim"
)

// BenchmarkDecide measures one full Phase 2-4 evaluation against a
// related set of k_l = 80 entries (the Table 2 operating point).
func BenchmarkDecide(b *testing.B) {
	m := NewManager(DefaultParams())
	now := sim.Time(1000)
	st := newPeerState(0)
	for i := 0; i < 80; i++ {
		st.observe(msg.PeerID(i+1), float64(1+i%100), float64(10+i%200), now, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.decide(st, 50, 120, now, 90, 80, i%2 == 0)
	}
}

// BenchmarkEvaluateStandalone measures the allocation-visible standalone
// path used by the live runtime.
func BenchmarkEvaluateStandalone(b *testing.B) {
	m := NewManager(DefaultParams())
	related := make([]Candidate, 80)
	for i := range related {
		related[i] = Candidate{Capacity: float64(1 + i%100), Age: float64(10 + i%200)}
	}
	self := Candidate{Capacity: 50, Age: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.EvaluateStandalone(self, related, 90, 80, i%2 == 0)
	}
}

// BenchmarkObserve measures related-set maintenance under the FIFO cap.
func BenchmarkObserve(b *testing.B) {
	st := newPeerState(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.observe(msg.PeerID(i%200), 50, 100, sim.Time(i), 64)
	}
}
