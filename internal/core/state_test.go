package core

import (
	"testing"

	"dlm/internal/msg"
)

func TestObserveUpdatesInPlace(t *testing.T) {
	st := newPeerState(0)
	st.observe(1, 10, 5, 20, 0)
	st.observe(1, 10, 8, 30, 0) // re-observation refreshes
	if st.size() != 1 {
		t.Fatalf("size = %d, want 1", st.size())
	}
	e := st.related[1]
	if e.joinTime != 22 { // 30 - 8
		t.Fatalf("joinTime = %v, want 22", e.joinTime)
	}
	if e.lastSeen != 30 {
		t.Fatalf("lastSeen = %v", e.lastSeen)
	}
}

func TestFIFOEviction(t *testing.T) {
	st := newPeerState(0)
	for i := 0; i < 5; i++ {
		st.observe(msg.PeerID(i+1), 1, 1, 0, 3)
	}
	if st.size() != 3 {
		t.Fatalf("size = %d, want cap 3", st.size())
	}
	if _, ok := st.related[1]; ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := st.related[5]; !ok {
		t.Fatal("newest entry missing")
	}
	// Re-observation of an existing entry must not evict.
	st.observe(5, 2, 2, 1, 3)
	if st.size() != 3 {
		t.Fatal("re-observation changed size")
	}
}

func TestDropKeepsOrderConsistent(t *testing.T) {
	st := newPeerState(0)
	for i := 1; i <= 4; i++ {
		st.observe(msg.PeerID(i), 1, 1, 0, 0)
	}
	st.lnnReports[2] = lnnReport{lnn: 7}
	st.drop(2)
	if st.size() != 3 {
		t.Fatalf("size = %d", st.size())
	}
	if _, ok := st.lnnReports[2]; ok {
		t.Fatal("lnn report survived drop")
	}
	for _, id := range st.relOrder {
		if _, ok := st.related[id]; !ok {
			t.Fatalf("order references missing entry %d", id)
		}
	}
	// Dropping an absent id only clears its report.
	st.lnnReports[99] = lnnReport{lnn: 1}
	st.drop(99)
	if _, ok := st.lnnReports[99]; ok {
		t.Fatal("report for absent peer survived drop")
	}
}

func TestPruneWindow(t *testing.T) {
	st := newPeerState(0)
	st.observe(1, 1, 1, 10, 0)
	st.observe(2, 1, 1, 50, 0)
	st.lnnReports[1] = lnnReport{lnn: 5, when: 10}
	st.prune(60, 20) // window 20: entry 1 (seen at 10) expires
	if st.size() != 1 {
		t.Fatalf("size = %d, want 1", st.size())
	}
	if _, ok := st.related[2]; !ok {
		t.Fatal("fresh entry pruned")
	}
	if _, ok := st.lnnReports[1]; ok {
		t.Fatal("pruned entry's report survived")
	}
	// Window 0 disables pruning.
	st.prune(1e9, 0)
	if st.size() != 1 {
		t.Fatal("prune with window 0 removed entries")
	}
}

func TestAvgLnn(t *testing.T) {
	st := newPeerState(0)
	if _, ok := st.avgLnn(); ok {
		t.Fatal("empty state reported lnn")
	}
	st.observe(1, 1, 1, 0, 0)
	st.observe(2, 1, 1, 0, 0)
	st.observe(3, 1, 1, 0, 0)
	st.lnnReports[1] = lnnReport{lnn: 10}
	st.lnnReports[2] = lnnReport{lnn: 30}
	// Peer 3 has no report; average over available ones.
	got, ok := st.avgLnn()
	if !ok || got != 20 {
		t.Fatalf("avgLnn = %v,%v want 20,true", got, ok)
	}
	// Reports whose entry was dropped don't count.
	st.drop(1)
	got, ok = st.avgLnn()
	if !ok || got != 30 {
		t.Fatalf("avgLnn after drop = %v,%v want 30,true", got, ok)
	}
}
