// Package core binds the transport-agnostic DLM state machine
// (internal/protocol) to the discrete-event simulation plane: it
// implements overlay.Manager by keeping one protocol.Machine per peer in
// overlay.Peer.State and translating overlay callbacks (connect,
// disconnect, layer change, message delivery, tick) into machine calls.
// All protocol math lives in internal/protocol; this package owns only
// the plumbing and the population-level accounting.
//
// The parameter and decision types are aliases of their protocol
// counterparts so existing simulation call sites keep compiling
// unchanged.
package core

import "dlm/internal/protocol"

// Params are DLM's tunables; see protocol.Params for the field
// documentation.
type Params = protocol.Params

// ExchangePolicy selects when peers exchange DLM information.
type ExchangePolicy = protocol.ExchangePolicy

// Exchange policies, re-exported for the simulation plane.
const (
	EventDriven = protocol.EventDriven
	Periodic    = protocol.Periodic
)

// DefaultParams returns the tuning used throughout the evaluation.
func DefaultParams() Params { return protocol.DefaultParams() }
