package core

import (
	"fmt"
	"testing"

	"dlm/internal/overlay"
	"dlm/internal/protocol"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

// shardTrace runs a churning DLM scenario with the given lane-fan-out
// worker count and returns the complete decision sequence plus the final
// snapshot. Everything observable is captured: which peer, at what time,
// with what μ/Y/l_nn, and what action — if sharding perturbed even one
// RNG draw or one commit order, the traces would diverge.
func shardTrace(t *testing.T, seed int64, shards int) (string, overlay.LayerStats) {
	trace, snap, _, _ := shardTraceLatency(t, seed, shards, 0)
	return trace, snap
}

// shardTraceLatency is shardTrace with a configurable message latency;
// latency > 0 queues every delivery on its target's lane, which is what
// arms the same-timestamp batch path. It also returns the engine's
// lane-event and batch counters.
func shardTraceLatency(t *testing.T, seed int64, shards int, latency sim.Duration) (string, overlay.LayerStats, uint64, uint64) {
	t.Helper()
	eng := sim.NewEngine(seed)
	eng.SetShards(shards)
	mgr := NewManager(DefaultParams())
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10, Latency: latency}, mgr)
	var trace []byte
	mgr.OnDecision = func(p *overlay.Peer, now sim.Time, res protocol.EvalResult) {
		trace = fmt.Appendf(trace, "%d@%v e=%v a=%v mu=%x y=%x,%x lnn=%x\n",
			p.ID, now, res.Evaluated, res.Action,
			res.Decision.Mu, res.Decision.YCapa, res.Decision.YAge, res.Lnn)
	}
	churn := &overlay.Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.SaroiuBandwidthMixture(),
			Lifetime: workload.LognormalWithMedian(60, 1.2),
		},
		TargetSize: 400,
		GrowthRate: 100,
	}
	churn.Start()
	eng.Ticker(1, func(e *sim.Engine) bool {
		n.Tick()
		return e.Now() < 120
	})
	if err := eng.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("shards=%d: invariants: %v", shards, bad[:minInt(len(bad), 5)])
	}
	return string(trace), n.Snapshot(), eng.LaneEventsFired(), eng.BatchesFired()
}

// TestShardInvariance is the tentpole's determinism contract: the full
// per-peer decision trace of a churning run — every evaluation's inputs,
// outputs and action, in commit order — must be byte-identical for any
// lane-fan-out worker count, including the degenerate serial one. Worker
// counts cover a single worker (inline loop, no goroutines), even splits,
// and a count (7) that does not divide the 64 lanes. The sharded counts
// also exercise the fan-out under `go test -race` (scripts/ci.sh runs
// this test in a dedicated race lane).
func TestShardInvariance(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		base, baseSnap := shardTrace(t, seed, 1)
		if base == "" {
			t.Fatalf("seed %d: empty decision trace — invariance would be vacuous", seed)
		}
		for _, k := range []int{2, 4, 7} {
			got, snap := shardTrace(t, seed, k)
			if got != base {
				t.Errorf("seed %d: decision trace with shards=%d differs from serial\nserial:  %.200s\nsharded: %.200s",
					seed, k, base, got)
			}
			if snap != baseSnap {
				t.Errorf("seed %d: snapshot with shards=%d differs from serial:\n%+v\n%+v",
					seed, k, snap, baseSnap)
			}
		}
	}
}

// TestShardInvarianceLatency is the event-plane half of the determinism
// contract: with a non-zero message latency every delivery waits on its
// target peer's lane queue and same-timestamp deliveries fire as
// eval/commit batches — the trace, snapshot, lane-event count and batch
// count must all be invariant across worker counts, and batching must
// actually have happened (otherwise the test is vacuous).
func TestShardInvarianceLatency(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		base, baseSnap, baseLane, baseBatch := shardTraceLatency(t, seed, 1, 0.25)
		if base == "" {
			t.Fatalf("seed %d: empty decision trace — invariance would be vacuous", seed)
		}
		if baseLane == 0 || baseBatch == 0 {
			t.Fatalf("seed %d: lane events %d, batches %d — the sharded event plane never engaged",
				seed, baseLane, baseBatch)
		}
		for _, k := range []int{2, 4, 7} {
			got, snap, lane, batch := shardTraceLatency(t, seed, k, 0.25)
			if got != base {
				t.Errorf("seed %d: decision trace with shards=%d differs from serial\nserial:  %.200s\nsharded: %.200s",
					seed, k, base, got)
			}
			if snap != baseSnap {
				t.Errorf("seed %d: snapshot with shards=%d differs from serial:\n%+v\n%+v",
					seed, k, snap, baseSnap)
			}
			if lane != baseLane || batch != baseBatch {
				t.Errorf("seed %d: shards=%d fired %d lane events in %d batches, serial fired %d in %d",
					seed, k, lane, batch, baseLane, baseBatch)
			}
		}
	}
}
