package core

import (
	"math"

	"dlm/internal/overlay"
	"dlm/internal/sim"
)

// Mu computes the layer-size-ratio skew μ = log(l_nn / k_l), clamped to
// ±MuMax (paper Phase 2). A positive μ means super-peers carry more
// leaves than the optimum k_l = m·η — i.e. there are too few super-peers;
// negative means too many.
func (m *Manager) Mu(lnn, kl float64) float64 {
	if lnn <= 0 || kl <= 0 {
		return -m.P.MuMax // an empty super-layer view reads as "too many supers"
	}
	return clamp(math.Log(lnn/kl), -m.P.MuMax, m.P.MuMax)
}

// ScaleFor returns the scale parameters (X_capa, X_age) for the given μ:
// X = clamp(exp(-λ·μ), XMin, XMax). With μ>0 (more supers needed) X drops
// below 1, which lowers both counting variables — making promotion easier
// for leaves and demotion rarer for supers, the four directional rules of
// the paper's Phase 3.
func (m *Manager) ScaleFor(mu float64) (xCapa, xAge float64) {
	xCapa = clamp(math.Exp(-m.P.LambdaCapa*mu), m.P.XMin, m.P.XMax)
	xAge = clamp(math.Exp(-m.P.LambdaAge*mu), m.P.XMin, m.P.XMax)
	return xCapa, xAge
}

// ZPromoteCapa returns the capacity promotion threshold for the given μ.
func (m *Manager) ZPromoteCapa(mu float64) float64 {
	return clamp(m.P.ZPromote0+m.P.BetaPromoteCapa*mu, m.P.ZMin, m.P.ZMax)
}

// ZPromoteAge returns the age promotion threshold for the given μ.
func (m *Manager) ZPromoteAge(mu float64) float64 {
	return clamp(m.P.ZPromote0+m.P.BetaPromoteAge*mu, m.P.ZMin, m.P.ZMax)
}

// ZDemoteCapa returns the capacity demotion threshold for the given μ.
func (m *Manager) ZDemoteCapa(mu float64) float64 {
	return clamp(m.P.ZDemote0+m.P.BetaDemoteCapa*mu, m.P.ZMin, m.P.ZMax)
}

// ZDemoteAge returns the age demotion threshold for the given μ.
func (m *Manager) ZDemoteAge(mu float64) float64 {
	return clamp(m.P.ZDemote0+m.P.BetaDemoteAge*mu, m.P.ZMin, m.P.ZMax)
}

// counting runs the paper's Phase 3 pseudocode: Y_capa and Y_age are the
// fractions of the related set whose scaled metrics beat the peer's own.
func counting(st *peerState, selfCapacity, selfAge float64, now sim.Time, xCapa, xAge float64) (yCapa, yAge float64) {
	n := float64(len(st.relOrder))
	if n == 0 {
		return 0, 0
	}
	for _, id := range st.relOrder {
		e := st.related[id]
		if e.capacity*xCapa > selfCapacity {
			yCapa += 1 / n
		}
		if e.age(now)*xAge > selfAge {
			yAge += 1 / n
		}
	}
	return yCapa, yAge
}

// Decision is the outcome of one evaluation, exported for tests and the
// trace pipeline.
type Decision struct {
	Mu           float64
	XCapa, XAge  float64
	YCapa, YAge  float64
	ZCapa, ZAge  float64
	ShouldSwitch bool
}

// evaluateLeaf runs Phases 2-4 for a leaf-peer and promotes it when the
// scaled comparison clears the promotion threshold.
func (m *Manager) evaluateLeaf(n *overlay.Network, p *overlay.Peer, now sim.Time) {
	st := m.state(n, p)
	if now-st.lastChange < m.P.DecisionCooldown {
		return
	}
	st.prune(now, m.P.LeafWindow)
	if st.size() < m.P.MinRelatedSet {
		return
	}
	lnn, ok := st.avgLnn()
	if !ok {
		return
	}
	m.Evaluations++
	kl := n.Config().KL()
	d := m.decide(st, p.Capacity, p.Age(now), now, lnn, kl, true)
	if d.ShouldSwitch {
		m.EligiblePromotions++
		if m.allowSwitch(n, lnn, kl, d.YCapa, true) {
			m.Promotions++
			n.Promote(p)
		}
	}
}

// allowSwitch applies the deficit-proportional rate limit: the switch
// probability tracks the locally estimated super-layer deficit (for
// promotions) or surplus (for demotions), so that the expected number of
// role changes per tick matches the size of the imbalance instead of the
// number of eligible peers.
func (m *Manager) allowSwitch(n *overlay.Network, lnn, kl, yCapa float64, promote bool) bool {
	return m.ensureRNG(n).Bernoulli(m.SwitchProbability(lnn, kl, n.Config().Eta, yCapa, promote))
}

// evaluateSuper runs Phases 2-4 for a super-peer and demotes it when the
// scaled comparison clears the demotion threshold. A super that has held
// no leaves for EmptyGDemoteAfter demotes outright: it cannot compare and
// is not serving the backbone.
func (m *Manager) evaluateSuper(n *overlay.Network, p *overlay.Peer, now sim.Time) {
	st := m.state(n, p)
	if now-st.lastChange < m.P.DecisionCooldown {
		return
	}
	if st.size() == 0 {
		if m.P.EmptyGDemoteAfter > 0 && now-st.lastChange >= m.P.EmptyGDemoteAfter && p.LeafDegree() == 0 {
			if n.Demote(p) {
				m.Demotions++
			}
		}
		return
	}
	if st.size() < m.P.MinRelatedSet {
		return
	}
	if now-st.lastChange < m.P.DemotionCooldown {
		return
	}
	m.Evaluations++
	lnn := st.smoothLnn(float64(p.LeafDegree()), m.P.LnnSmoothing)
	kl := n.Config().KL()
	d := m.decide(st, p.Capacity, p.Age(now), now, lnn, kl, false)
	if d.ShouldSwitch {
		m.EligibleDemotions++
		if m.allowSwitch(n, lnn, kl, d.YCapa, false) {
			if n.Demote(p) {
				m.Demotions++
			}
		}
	}
}

// decide computes one full Phase 2-4 evaluation. For a leaf (promote =
// true) the switch condition is Y_capa < Z and Y_age < Z; for a super it
// is Y_capa > Z and Y_age > Z.
func (m *Manager) decide(st *peerState, capacity, age float64, now sim.Time, lnn, kl float64, promote bool) Decision {
	var d Decision
	d.Mu = m.Mu(lnn, kl)
	d.XCapa, d.XAge = m.ScaleFor(d.Mu)
	d.YCapa, d.YAge = counting(st, capacity, age, now, d.XCapa, d.XAge)
	if promote {
		d.ZCapa, d.ZAge = m.ZPromoteCapa(d.Mu), m.ZPromoteAge(d.Mu)
		d.ShouldSwitch = d.YCapa < d.ZCapa && d.YAge < d.ZAge
	} else {
		d.ZCapa, d.ZAge = m.ZDemoteCapa(d.Mu), m.ZDemoteAge(d.Mu)
		d.ShouldSwitch = d.YCapa > d.ZCapa && d.YAge > d.ZAge
	}
	return d
}

// Candidate is an explicit related-set member view for standalone
// evaluation (used by the goroutine-per-peer live runtime, which keeps
// its own neighbor state).
type Candidate struct {
	Capacity float64
	Age      float64
}

// EvaluateStandalone runs Phases 2-4 on explicit inputs: self against the
// related set, with the observed l_nn and the protocol constant k_l.
// promote selects the leaf rule (switch on Y < Z); otherwise the super
// rule (Y > Z) applies. It is pure: no network access, no side effects.
func (m *Manager) EvaluateStandalone(self Candidate, related []Candidate, lnn, kl float64, promote bool) Decision {
	var d Decision
	d.Mu = m.Mu(lnn, kl)
	d.XCapa, d.XAge = m.ScaleFor(d.Mu)
	n := float64(len(related))
	if n > 0 {
		for _, r := range related {
			if r.Capacity*d.XCapa > self.Capacity {
				d.YCapa += 1 / n
			}
			if r.Age*d.XAge > self.Age {
				d.YAge += 1 / n
			}
		}
	}
	if promote {
		d.ZCapa, d.ZAge = m.ZPromoteCapa(d.Mu), m.ZPromoteAge(d.Mu)
		d.ShouldSwitch = d.YCapa < d.ZCapa && d.YAge < d.ZAge
	} else {
		d.ZCapa, d.ZAge = m.ZDemoteCapa(d.Mu), m.ZDemoteAge(d.Mu)
		d.ShouldSwitch = d.YCapa > d.ZCapa && d.YAge > d.ZAge
	}
	return d
}

// SwitchProbability exposes the deficit-proportional rate limit for
// standalone callers: the probability with which an eligible peer should
// actually switch, given the observed l_nn, the constant k_l, the target
// η, the peer's capacity counter Y_capa (for selection weighting), and
// the caller's evaluation period share.
func (m *Manager) SwitchProbability(lnn, kl, eta, yCapa float64, promote bool) float64 {
	if !m.P.RateLimit {
		return 1
	}
	gain := m.P.RateGain
	if gain <= 0 {
		gain = 1
	}
	dgain := m.P.DemoteRateGain
	if dgain <= 0 {
		dgain = 1
	}
	r := lnn / kl
	var p float64
	if promote {
		p = gain * (r - 1) / eta / m.P.EvalProbability
	} else {
		p = dgain * (1 - r) / m.P.EvalProbability
	}
	if k := m.P.SelectionSharpness; k > 0 {
		// Favor the strongest candidates: a leaf that beats all the
		// supers it knows (Y_capa=0) switches at full probability, a
		// marginal one is damped; symmetrically the weakest supers
		// demote first.
		w := 1 - yCapa
		if !promote {
			w = yCapa
		}
		p *= math.Pow(w, k)
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
