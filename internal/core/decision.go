package core

import "dlm/internal/protocol"

// Decision is the outcome of one evaluation; see protocol.Decision.
type Decision = protocol.Decision

// Candidate is an explicit related-set member view; see
// protocol.Candidate.
type Candidate = protocol.Candidate

// The controller math lives on protocol.Params; the delegates below keep
// the Manager's historical surface for the diagnostics and trace
// tooling.

// Mu computes the clamped layer-size-ratio skew μ; see protocol Phase 2.
func (m *Manager) Mu(lnn, kl float64) float64 { return m.P.Mu(lnn, kl) }

// ScaleFor returns the scale parameters (X_capa, X_age) for the given μ.
func (m *Manager) ScaleFor(mu float64) (xCapa, xAge float64) { return m.P.ScaleFor(mu) }

// ZPromoteCapa returns the capacity promotion threshold for the given μ.
func (m *Manager) ZPromoteCapa(mu float64) float64 { return m.P.ZPromoteCapa(mu) }

// ZPromoteAge returns the age promotion threshold for the given μ.
func (m *Manager) ZPromoteAge(mu float64) float64 { return m.P.ZPromoteAge(mu) }

// ZDemoteCapa returns the capacity demotion threshold for the given μ.
func (m *Manager) ZDemoteCapa(mu float64) float64 { return m.P.ZDemoteCapa(mu) }

// ZDemoteAge returns the age demotion threshold for the given μ.
func (m *Manager) ZDemoteAge(mu float64) float64 { return m.P.ZDemoteAge(mu) }

// EvaluateStandalone runs Phases 2-4 on explicit inputs; see
// protocol.Params.EvaluateStandalone.
func (m *Manager) EvaluateStandalone(self Candidate, related []Candidate, lnn, kl float64, promote bool) Decision {
	return m.P.EvaluateStandalone(self, related, lnn, kl, promote)
}

// SwitchProbability exposes the deficit-proportional rate limit; see
// protocol.Params.SwitchProbability.
func (m *Manager) SwitchProbability(lnn, kl, eta, yCapa float64, promote bool) float64 {
	return m.P.SwitchProbability(lnn, kl, eta, yCapa, promote)
}
