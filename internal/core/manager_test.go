package core

import (
	"math"
	"testing"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/protocol"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

func testNetwork(seed int64, p Params) (*sim.Engine, *overlay.Network, *Manager) {
	eng := sim.NewEngine(seed)
	mgr := NewManager(p)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, mgr)
	return eng, n, mgr
}

func TestEventDrivenExchangeOnConnect(t *testing.T) {
	_, n, _ := testNetwork(1, DefaultParams())
	s := n.Join(100, 1000, nil) // bootstrap super
	leaf := n.Join(10, 100, nil)
	if leaf.Layer != overlay.LayerLeaf {
		t.Fatal("second join should be a leaf under DLM")
	}
	tr := n.Traffic()
	// Connect triggers: NeighNumRequest+Response, 2x ValueRequest+Response.
	if tr.Count(msg.KindNeighNumRequest) != 1 || tr.Count(msg.KindNeighNumResponse) != 1 {
		t.Fatalf("neigh-num pair counts: %d/%d",
			tr.Count(msg.KindNeighNumRequest), tr.Count(msg.KindNeighNumResponse))
	}
	if tr.Count(msg.KindValueRequest) != 2 || tr.Count(msg.KindValueResponse) != 2 {
		t.Fatalf("value pair counts: %d/%d",
			tr.Count(msg.KindValueRequest), tr.Count(msg.KindValueResponse))
	}
	// Both endpoints recorded each other.
	lst := leaf.State.(*protocol.Machine)
	sst := s.State.(*protocol.Machine)
	if !lst.Has(s.ID) {
		t.Fatal("leaf did not record super's values")
	}
	if !sst.Has(leaf.ID) {
		t.Fatal("super did not record leaf's values")
	}
	if lnn, _, ok := lst.LnnReport(s.ID); !ok || lnn != 1 {
		t.Fatalf("leaf lnn report = %d,%v, want lnn=1", lnn, ok)
	}
}

func TestSuperSuperConnectNoExchange(t *testing.T) {
	_, n, _ := testNetwork(1, DefaultParams())
	a := n.Join(100, 1000, nil)
	b := n.Join(100, 1000, nil)
	n.Promote(b)
	before := n.Traffic()
	n.Connect(a, b)
	after := n.Traffic()
	if after.DLMMessages() != before.DLMMessages() {
		t.Fatal("super-super link triggered DLM exchange")
	}
}

func TestPeriodicPolicySkipsConnectExchange(t *testing.T) {
	p := DefaultParams()
	p.Exchange = Periodic
	p.PeriodicInterval = 5
	eng, n, _ := testNetwork(1, p)
	n.Join(100, 1000, nil)
	n.Join(10, 100, nil)
	tr := n.Traffic()
	if tr.DLMMessages() != 0 {
		t.Fatalf("periodic policy exchanged on connect: %d msgs", tr.DLMMessages())
	}
	// Tick at a period boundary triggers the exchange.
	eng.AfterFunc(5, func(*sim.Engine) { n.Tick() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Traffic().DLMMessages() == 0 {
		t.Fatal("periodic exchange did not fire at boundary")
	}
}

func TestValueResponseRaceDropped(t *testing.T) {
	_, n, mgr := testNetwork(1, DefaultParams())
	s := n.Join(100, 1000, nil)
	leaf := n.Join(10, 100, nil)
	// A stale ValueResponse from a leaf no longer linked must be ignored
	// by the super.
	stranger := n.Join(10, 100, nil)
	n.Disconnect(stranger, s)
	st := mgr.state(n, s)
	st.Drop(stranger.ID)
	sizeBefore := st.Size()
	stale := msg.ValueResponse(stranger.ID, s.ID, 5, 5)
	mgr.HandleMessage(n, s, &stale)
	if st.Size() != sizeBefore {
		t.Fatal("super recorded value from unlinked peer")
	}
	_ = leaf
}

func TestPromotionResetsStateAndOldSupersForget(t *testing.T) {
	_, n, mgr := testNetwork(1, DefaultParams())
	n.Join(100, 1000, nil)
	leaf := n.Join(50, 500, nil)
	sup := n.Peer(leaf.SuperLinks()[0])
	if !mgr.state(n, sup).Has(leaf.ID) {
		t.Fatal("precondition: super knows leaf")
	}
	n.Promote(leaf)
	if mgr.state(n, sup).Has(leaf.ID) {
		t.Fatal("old super still has promoted peer in G")
	}
	st := leaf.State.(*protocol.Machine)
	if _, _, ok := st.LnnReport(sup.ID); st.Size() != 0 || ok {
		t.Fatal("promotion did not reset state")
	}
}

func TestDemotionTriggersReExchange(t *testing.T) {
	_, n, _ := testNetwork(1, DefaultParams())
	// Three supers so demotion is allowed and the demoted peer keeps
	// super links.
	a := n.Join(100, 1000, nil)
	b := n.Join(100, 1000, nil)
	c := n.Join(100, 1000, nil)
	n.Promote(b)
	n.Promote(c)
	n.Connect(a, b)
	n.Connect(b, c)
	n.Connect(a, c)
	before := n.Traffic()
	if !n.Demote(c) {
		t.Fatal("demotion refused")
	}
	after := n.Traffic()
	if after.DLMMessages() <= before.DLMMessages() {
		t.Fatal("demotion did not re-exchange with kept supers")
	}
	// The kept supers now see c as a leaf in their G.
	foundInG := false
	for _, id := range c.SuperLinks() {
		q := n.Peer(id)
		if st, ok := q.State.(*protocol.Machine); ok && st.Has(c.ID) {
			foundInG = true
		}
	}
	if !foundInG {
		t.Fatal("no kept super recorded the demoted peer's values")
	}
}

// runScenario drives a DLM-managed churning network and returns the final
// snapshot.
func runScenario(t *testing.T, seed int64, p Params, eta float64, size int, until sim.Time) (*overlay.Network, *Manager, overlay.LayerStats) {
	t.Helper()
	eng := sim.NewEngine(seed)
	mgr := NewManager(p)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: eta}, mgr)
	churn := &overlay.Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.SaroiuBandwidthMixture(),
			Lifetime: workload.LognormalWithMedian(60, 1.2),
		},
		TargetSize: size,
		GrowthRate: size / 4,
	}
	churn.Start()
	eng.Ticker(1, func(e *sim.Engine) bool {
		n.Tick()
		return e.Now() < until
	})
	if err := eng.RunUntil(until); err != nil {
		t.Fatal(err)
	}
	if bad := n.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad[:minInt(len(bad), 5)])
	}
	return n, mgr, n.Snapshot()
}

func TestDLMConvergesToTargetRatio(t *testing.T) {
	// The window must cover the cold-start overshoot plus one demotion
	// cooldown (100 units) for the trim phase to complete.
	n, mgr, snap := runScenario(t, 42, DefaultParams(), 10, 800, 400)
	if mgr.Promotions == 0 {
		t.Fatal("no promotions happened")
	}
	ratio := snap.Ratio
	if math.IsInf(ratio, 0) || ratio < 5 || ratio > 20 {
		t.Fatalf("ratio = %v, want near eta=10 (supers=%d leaves=%d)",
			ratio, snap.NumSupers, snap.NumLeaves)
	}
	_ = n
}

func TestDLMSeparatesCapacityAndAge(t *testing.T) {
	_, _, snap := runScenario(t, 7, DefaultParams(), 10, 800, 200)
	if snap.AvgCapSuper <= snap.AvgCapLeaf {
		t.Fatalf("capacity separation failed: super %.1f vs leaf %.1f",
			snap.AvgCapSuper, snap.AvgCapLeaf)
	}
	if snap.AvgAgeSuper <= snap.AvgAgeLeaf {
		t.Fatalf("age separation failed: super %.1f vs leaf %.1f",
			snap.AvgAgeSuper, snap.AvgAgeLeaf)
	}
}

func TestDLMDeterministic(t *testing.T) {
	p := DefaultParams()
	_, mgr1, snap1 := runScenario(t, 99, p, 10, 300, 80)
	_, mgr2, snap2 := runScenario(t, 99, p, 10, 300, 80)
	if snap1 != snap2 {
		t.Fatalf("snapshots diverged:\n%+v\n%+v", snap1, snap2)
	}
	if mgr1.Promotions != mgr2.Promotions || mgr1.Demotions != mgr2.Demotions {
		t.Fatal("decision counts diverged")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPeriodicPolicyMaintainsRatio(t *testing.T) {
	p := DefaultParams()
	p.Exchange = Periodic
	p.PeriodicInterval = 5
	p.RefreshInterval = 0
	_, mgr, snap := runScenario(t, 4, p, 10, 600, 300)
	if mgr.Promotions == 0 {
		t.Fatal("no promotions under the periodic policy")
	}
	if snap.Ratio < 4 || snap.Ratio > 25 {
		t.Fatalf("periodic policy ratio %v, want near 10", snap.Ratio)
	}
}

func TestMeanReportedLnnTracksTruth(t *testing.T) {
	eng := sim.NewEngine(8)
	mgr := NewManager(DefaultParams())
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, mgr)
	churn := &overlay.Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.SaroiuBandwidthMixture(),
			Lifetime: workload.LognormalWithMedian(60, 1.2),
		},
		TargetSize: 500,
		GrowthRate: 125,
	}
	churn.Start()
	eng.Ticker(1, func(e *sim.Engine) bool { n.Tick(); return e.Now() < 200 })
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	truth := n.Snapshot().AvgLeafDegree
	reported := mgr.MeanReportedLnn(n)
	if reported <= 0 {
		t.Fatal("no reports collected")
	}
	// The reported mean sits systematically above the truth: a super with
	// many leaves appears in proportionally many related sets, so leaves
	// sample l_nn size-biased (E[l²]/E[l] ≥ E[l]), on top of staleness of
	// up to RefreshInterval. At this small scale the relative gap hovers
	// around 0.45-0.55 across seeds; the bound checks ballpark agreement,
	// not unbiasedness.
	if math.Abs(reported-truth)/truth > 0.6 {
		t.Fatalf("reported lnn %v far from truth %v", reported, truth)
	}
}

func TestEmptyNetworkDiagnostics(t *testing.T) {
	eng := sim.NewEngine(1)
	mgr := NewManager(DefaultParams())
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, mgr)
	if got := mgr.MeanReportedLnn(n); got != 0 {
		t.Fatalf("empty network reported lnn %v", got)
	}
}
