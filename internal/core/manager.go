package core

import (
	"math"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/sim"
)

// Manager is the DLM layer-management policy, plugged into an
// overlay.Network. One Manager instance serves the whole simulated
// population, but all of its state is partitioned per peer and every
// decision uses only that peer's local information — the distributed
// discipline the paper requires.
type Manager struct {
	P Params

	rng *sim.Source

	// leafScratch/superScratch are reused for Tick's membership snapshots
	// (decisions promote/demote while iterating, so a snapshot is needed,
	// but allocating two slices per tick is not).
	leafScratch  []msg.PeerID
	superScratch []msg.PeerID

	// Stats counters for the evaluation: evaluations that ran, decisions
	// whose comparison cleared the thresholds, and switches that passed
	// the rate limit and executed.
	Evaluations        uint64
	EligiblePromotions uint64
	EligibleDemotions  uint64
	Promotions         uint64
	Demotions          uint64
}

// NewManager returns a DLM manager; it panics on invalid params
// (construction bug).
func NewManager(p Params) *Manager {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Manager{P: p}
}

// Name implements overlay.Manager.
func (m *Manager) Name() string { return "dlm" }

// InitialLayer implements overlay.Manager: under DLM every peer joins as a
// leaf and earns promotion (paper §5: "the new peer is always assigned to
// leaf layer first").
func (m *Manager) InitialLayer(n *overlay.Network, p *overlay.Peer) overlay.Layer {
	return overlay.LayerLeaf
}

// state returns the peer's DLM state, creating it lazily.
func (m *Manager) state(n *overlay.Network, p *overlay.Peer) *peerState {
	st, ok := p.State.(*peerState)
	if !ok {
		st = newPeerState(n.Now())
		st.lastChange = p.JoinTime
		p.State = st
	}
	return st
}

func (m *Manager) ensureRNG(n *overlay.Network) *sim.Source {
	if m.rng == nil {
		m.rng = n.Engine().Rand().Stream("dlm")
	}
	return m.rng
}

// OnConnect implements overlay.Manager: under the event-driven policy, a
// new leaf-super link triggers Phase 1 information collection — the
// NeighNum pair (leaf asks super for l_nn) and the Value pair in both
// directions (each endpoint learns the other's capacity and age; the
// leaf-to-super direction is Table 1's, the reverse is the reconstruction
// documented in DESIGN.md, without which a leaf cannot run Phase 3).
func (m *Manager) OnConnect(n *overlay.Network, a, b *overlay.Peer) {
	if m.P.Exchange != EventDriven {
		return
	}
	leaf, super := splitPair(a, b)
	if leaf == nil {
		return // super-super link: G sets are cross-layer only
	}
	m.exchange(n, leaf, super)
}

// exchange fires the information-collection messages for one leaf-super
// pair.
func (m *Manager) exchange(n *overlay.Network, leaf, super *overlay.Peer) {
	n.Send(msg.NeighNumRequest(leaf.ID, super.ID))
	n.Send(msg.ValueRequest(super.ID, leaf.ID))
	n.Send(msg.ValueRequest(leaf.ID, super.ID))
}

// splitPair classifies a link's endpoints; leaf is nil for super-super
// links (leaf-leaf links cannot exist in the overlay).
func splitPair(a, b *overlay.Peer) (leaf, super *overlay.Peer) {
	switch {
	case a.Layer == overlay.LayerLeaf && b.Layer == overlay.LayerSuper:
		return a, b
	case b.Layer == overlay.LayerLeaf && a.Layer == overlay.LayerSuper:
		return b, a
	}
	return nil, nil
}

// OnDisconnect implements overlay.Manager. A super forgets a departed
// leaf (G(s) is its *current* leaf neighbors); a leaf keeps the super in
// G(l) — the paper keeps every super contacted since join — subject to
// window pruning at decision time.
func (m *Manager) OnDisconnect(n *overlay.Network, a, b *overlay.Peer) {
	leaf, super := splitPair(a, b)
	if leaf == nil {
		return
	}
	if super.Alive() {
		m.state(n, super).drop(leaf.ID)
	}
}

// OnLayerChange implements overlay.Manager. The related set's semantics
// differ per layer, so the state is reset; the peer then re-collects
// information from its surviving links as if they were fresh connections.
func (m *Manager) OnLayerChange(n *overlay.Network, p *overlay.Peer, old overlay.Layer) {
	fresh := newPeerState(n.Now())
	p.State = fresh

	switch p.Layer {
	case overlay.LayerSuper:
		// Promotion: previous super connections became super-super links;
		// the former supers must forget p as a leaf.
		for _, id := range p.SuperLinks() {
			if q := n.Peer(id); q != nil {
				m.state(n, q).drop(p.ID)
			}
		}
	case overlay.LayerLeaf:
		// Demotion: the kept links are now leaf-to-super connections —
		// logically new, so run the event-driven exchange on them.
		if m.P.Exchange == EventDriven {
			for _, id := range p.SuperLinks() {
				if q := n.Peer(id); q != nil {
					m.exchange(n, p, q)
				}
			}
		}
	}
}

// HandleMessage implements overlay.Manager: Phase 1 message processing.
func (m *Manager) HandleMessage(n *overlay.Network, to *overlay.Peer, mm *msg.Message) {
	now := n.Now()
	switch mm.Kind {
	case msg.KindNeighNumRequest:
		n.Send(msg.NeighNumResponse(to.ID, mm.From, to.LeafDegree()))

	case msg.KindNeighNumResponse:
		if to.Layer != overlay.LayerLeaf {
			return // stale response after promotion
		}
		st := m.state(n, to)
		st.lnnReports[mm.From] = lnnReport{lnn: int(mm.NeighNum), when: now}

	case msg.KindValueRequest:
		n.Send(msg.ValueResponse(to.ID, mm.From, to.Capacity, to.Age(now)))

	case msg.KindValueResponse:
		st := m.state(n, to)
		// A super's G is restricted to current leaf neighbors; drop
		// responses that raced with a disconnect.
		if to.Layer == overlay.LayerSuper {
			if !to.HasLink(mm.From) {
				return
			}
			if q := n.Peer(mm.From); q == nil || q.Layer != overlay.LayerLeaf {
				return
			}
		}
		maxSize := 0
		if to.Layer == overlay.LayerLeaf {
			maxSize = m.P.MaxRelatedSet
		}
		st.observe(mm.From, mm.Capacity, mm.Age, now, maxSize)
	}
}

// Tick implements overlay.Manager: periodic/refresh exchange, then
// Phase 2-4 evaluation for a staggered subset of peers.
func (m *Manager) Tick(n *overlay.Network, now sim.Time) {
	rng := m.ensureRNG(n)

	// Information collection for the non-event-driven paths.
	if m.P.Exchange == Periodic && math.Mod(float64(now), float64(m.P.PeriodicInterval)) == 0 {
		m.exchangeAll(n)
	} else if m.P.Exchange == EventDriven && m.P.RefreshInterval > 0 {
		m.refreshDue(n, now)
	}

	// Decision phase. Snapshot the membership: promotions/demotions
	// mutate the layer sets while we iterate.
	m.leafScratch = append(m.leafScratch[:0], n.LeafIDs()...)
	m.superScratch = append(m.superScratch[:0], n.SuperIDs()...)
	leaves := m.leafScratch
	supers := m.superScratch
	// Advance every super's l_nn EWMA once per tick, decisions or not,
	// so the smoothing cadence is uniform.
	for _, id := range supers {
		if p := n.Peer(id); p != nil && p.Alive() {
			m.state(n, p).smoothLnn(float64(p.LeafDegree()), m.P.LnnSmoothing)
		}
	}
	for _, id := range leaves {
		p := n.Peer(id)
		if p == nil || !p.Alive() || p.Layer != overlay.LayerLeaf {
			continue
		}
		if !rng.Bernoulli(m.P.EvalProbability) {
			continue
		}
		m.evaluateLeaf(n, p, now)
	}
	for _, id := range supers {
		p := n.Peer(id)
		if p == nil || !p.Alive() || p.Layer != overlay.LayerSuper {
			continue
		}
		if !rng.Bernoulli(m.P.EvalProbability) {
			continue
		}
		m.evaluateSuper(n, p, now)
	}
}

// MeanReportedLnn returns the average of the l_nn estimates the leaves
// currently hold — the quantity their μ computations actually see. Its
// gap to the true mean leaf degree quantifies report staleness/bias; the
// diagnostics tests and the freshness ablation use it.
func (m *Manager) MeanReportedLnn(n *overlay.Network) float64 {
	var sum float64
	var cnt int
	for _, id := range n.LeafIDs() {
		p := n.Peer(id)
		st, ok := p.State.(*peerState)
		if !ok {
			continue
		}
		if v, ok := st.avgLnn(); ok {
			sum += v
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// exchangeAll runs one periodic information-collection round over every
// current leaf-super link.
func (m *Manager) exchangeAll(n *overlay.Network) {
	// Direct iteration is safe: information exchange only sends messages,
	// and message handling never mutates membership or links.
	for _, id := range n.LeafIDs() {
		leaf := n.Peer(id)
		if leaf == nil || !leaf.Alive() {
			continue
		}
		for _, sid := range leaf.SuperLinks() {
			super := n.Peer(sid)
			if super == nil || !super.Alive() {
				continue
			}
			m.exchange(n, leaf, super)
		}
	}
}

// refreshDue re-runs the exchange for leaves whose last refresh is older
// than RefreshInterval, keeping μ estimates fresh on long-lived links.
func (m *Manager) refreshDue(n *overlay.Network, now sim.Time) {
	// Direct iteration is safe for the same reason as exchangeAll.
	for _, id := range n.LeafIDs() {
		leaf := n.Peer(id)
		if leaf == nil || !leaf.Alive() {
			continue
		}
		st := m.state(n, leaf)
		if now-st.lastRefresh < m.P.RefreshInterval {
			continue
		}
		st.lastRefresh = now
		for _, sid := range leaf.SuperLinks() {
			super := n.Peer(sid)
			if super == nil || !super.Alive() {
				continue
			}
			n.Send(msg.NeighNumRequest(leaf.ID, super.ID))
			n.Send(msg.ValueRequest(leaf.ID, super.ID))
		}
	}
}
