package core

import (
	"math"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/protocol"
	"dlm/internal/sim"
)

// Manager is the DLM layer-management policy, plugged into an
// overlay.Network. One Manager instance serves the whole simulated
// population, but all of its state is partitioned per peer — one
// protocol.Machine each, stored in overlay.Peer.State — and every
// decision uses only that peer's local information, the distributed
// discipline the paper requires.
type Manager struct {
	P Params

	// ep is the reusable endpoint bound to whichever peer is currently
	// handling a message; a per-delivery struct here would be one
	// allocation per message on the exchange hot path.
	ep simEndpoint

	// lanes is the per-lane state of the tick's parallel decision phase:
	// one persistent RNG stream and one result buffer per overlay lane
	// (see overlay.NumLanes and the execution model in Tick). Initialized
	// on first Tick; the buffers are reused every tick.
	lanes []laneState

	// pendingLive is a conservative "some request may be outstanding"
	// hint: set whenever an Expect survives its exchange inline, cleared
	// when the expiry scan finds every table empty. While false, Tick
	// skips the per-peer expiry scan — which on a lossless zero-latency
	// transport is every tick.
	pendingLive bool

	// OnDecision, when set, observes every evaluation the machine
	// actually ran (cooldowns passed, enough evidence) and every
	// requested action (including the empty-G demotion, which skips the
	// comparison), before the action executes. The cross-plane
	// equivalence test uses it to capture the decision sequence.
	OnDecision func(p *overlay.Peer, now sim.Time, res protocol.EvalResult)

	// Stats counters for the evaluation: evaluations that ran, decisions
	// whose comparison cleared the thresholds, and switches that passed
	// the rate limit and executed.
	Evaluations        uint64
	EligiblePromotions uint64
	EligibleDemotions  uint64
	Promotions         uint64
	Demotions          uint64

	// RequestRetries and RequestDrops aggregate the population's Phase 1
	// timeout activity (see protocol.Machine.ExpirePending): requests
	// re-sent after their deadline, and requests abandoned after the
	// retry budget. Both stay zero on a lossless zero-latency transport.
	RequestRetries uint64
	RequestDrops   uint64
}

// NewManager returns a DLM manager; it panics on invalid params
// (construction bug).
func NewManager(p Params) *Manager {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Manager{P: p}
}

// Name implements overlay.Manager.
func (m *Manager) Name() string { return "dlm" }

// InitialLayer implements overlay.Manager: under DLM every peer joins as a
// leaf and earns promotion (paper §5: "the new peer is always assigned to
// leaf layer first"). Peer structs are recycled by the overlay's slab
// store, so a machine left behind by the slot's previous tenant is reset
// here — at the join instant — rather than allowed to leak stale protocol
// state into the new session.
func (m *Manager) InitialLayer(n *overlay.Network, p *overlay.Peer) overlay.Layer {
	if ma, ok := p.State.(*protocol.Machine); ok {
		ma.Reset(protocol.Time(n.Now()))
	}
	return overlay.LayerLeaf
}

// state returns the peer's protocol machine, creating it lazily with the
// role-change clock starting at the peer's join time.
func (m *Manager) state(n *overlay.Network, p *overlay.Peer) *protocol.Machine {
	ma, ok := p.State.(*protocol.Machine)
	if !ok {
		ma = protocol.NewMachine(&m.P, protocol.Time(p.JoinTime))
		p.State = ma
	}
	return ma
}

// laneState is one lane's slice of the parallel decision phase.
type laneState struct {
	// rng is the lane's persistent random stream, derived once from the
	// engine's "dlm" stream by lane index. Peer-to-lane assignment is a
	// fixed function of the slab layout (never of the worker count), so
	// the draw sequence each peer observes is identical for any -shards
	// setting — the determinism contract of the sharded tick.
	rng *sim.Source
	// evals buffers the lane's decision results for the serial commit
	// phase, in the lane's slot order.
	evals []laneEval
}

// laneEval is one buffered evaluation awaiting commit.
type laneEval struct {
	p       *overlay.Peer
	isSuper bool
	res     protocol.EvalResult
}

// ensureLanes builds the per-lane RNG streams on first use.
func (m *Manager) ensureLanes(n *overlay.Network) {
	if m.lanes != nil {
		return
	}
	root := n.Engine().Rand().Stream("dlm")
	m.lanes = make([]laneState, overlay.NumLanes)
	for i := range m.lanes {
		m.lanes[i].rng = root.StreamN(int64(i))
	}
}

// selfView builds the machine's per-call view of a peer. It uses the
// *reported* capacity and age: for an honest peer these are bit-identical
// to the true values, and for a misreporting peer (adversarial scenarios)
// the lie is consistent — the peer's outgoing ValueResponses and its own
// promotion evaluations both use the inflated figures, which is exactly
// the capture mechanism the liar scenarios measure.
func selfView(p *overlay.Peer, now sim.Time) protocol.Self {
	return protocol.Self{
		ID:         p.ID,
		Capacity:   p.ReportedCapacity(),
		Age:        p.ReportedAge(now),
		IsSuper:    p.Layer == overlay.LayerSuper,
		LeafDegree: p.LeafDegree(),
	}
}

// simEndpoint implements protocol.Endpoint over the overlay network.
type simEndpoint struct {
	n    *overlay.Network
	self *overlay.Peer
}

// Send implements protocol.Endpoint; the overlay routes by m.To.
func (e *simEndpoint) Send(mm msg.Message) { e.n.Send(mm) }

// IsLeafNeighbor implements protocol.Endpoint.
func (e *simEndpoint) IsLeafNeighbor(id msg.PeerID) bool {
	if !e.self.HasLink(id) {
		return false
	}
	q := e.n.Peer(id)
	return q != nil && q.Layer == overlay.LayerLeaf
}

// OnConnect implements overlay.Manager: under the event-driven policy, a
// new leaf-super link triggers Phase 1 information collection — the
// frames of protocol.ConnectExchange.
func (m *Manager) OnConnect(n *overlay.Network, a, b *overlay.Peer) {
	if m.P.Exchange != EventDriven {
		return
	}
	leaf, super := splitPair(a, b)
	if leaf == nil {
		return // super-super link: G sets are cross-layer only
	}
	m.exchange(n, leaf, super)
}

// exchange fires the information-collection messages for one leaf-super
// pair. Response deadlines are registered before any frame departs: at
// zero latency the responses arrive inline within Send, and an entry
// registered afterwards would never be cleared (a guaranteed spurious
// retry later).
func (m *Manager) exchange(n *overlay.Network, leaf, super *overlay.Peer) {
	now := protocol.Time(n.Now())
	lm, sm := m.state(n, leaf), m.state(n, super)
	lm.Expect(super.ID, msg.KindNeighNumRequest, now)
	sm.Expect(leaf.ID, msg.KindValueRequest, now)
	lm.Expect(super.ID, msg.KindValueRequest, now)
	frames := protocol.ConnectExchange(leaf.ID, super.ID)
	for i := range frames {
		n.Send(frames[i])
	}
	// On a lossless zero-latency transport every response arrived inline
	// and settled its entry; only when something is still outstanding does
	// the per-tick expiry scan have work to do.
	if lm.PendingRequests() > 0 || sm.PendingRequests() > 0 {
		m.pendingLive = true
	}
}

// splitPair classifies a link's endpoints; leaf is nil for super-super
// links (leaf-leaf links cannot exist in the overlay).
func splitPair(a, b *overlay.Peer) (leaf, super *overlay.Peer) {
	switch {
	case a.Layer == overlay.LayerLeaf && b.Layer == overlay.LayerSuper:
		return a, b
	case b.Layer == overlay.LayerLeaf && a.Layer == overlay.LayerSuper:
		return b, a
	}
	return nil, nil
}

// OnDisconnect implements overlay.Manager. A super forgets a departed
// leaf (G(s) is its *current* leaf neighbors); a leaf keeps the super in
// G(l) — the paper keeps every super contacted since join — subject to
// window pruning at decision time.
func (m *Manager) OnDisconnect(n *overlay.Network, a, b *overlay.Peer) {
	leaf, super := splitPair(a, b)
	if leaf == nil {
		return
	}
	if super.Alive() {
		m.state(n, super).Drop(leaf.ID)
	}
}

// OnLayerChange implements overlay.Manager. The related set's semantics
// differ per layer, so the machine is reset; the peer then re-collects
// information from its surviving links as if they were fresh connections.
func (m *Manager) OnLayerChange(n *overlay.Network, p *overlay.Peer, old overlay.Layer) {
	now := protocol.Time(n.Now())
	if ma, ok := p.State.(*protocol.Machine); ok {
		ma.Reset(now)
	} else {
		p.State = protocol.NewMachine(&m.P, now)
	}

	switch p.Layer {
	case overlay.LayerSuper:
		// Promotion: previous super connections became super-super links;
		// the former supers must forget p as a leaf.
		for _, id := range p.SuperLinks() {
			if q := n.Peer(id); q != nil {
				m.state(n, q).Drop(p.ID)
			}
		}
	case overlay.LayerLeaf:
		// Demotion: the kept links are now leaf-to-super connections —
		// logically new, so run the event-driven exchange on them.
		if m.P.Exchange == EventDriven {
			for _, id := range p.SuperLinks() {
				if q := n.Peer(id); q != nil {
					m.exchange(n, p, q)
				}
			}
		}
	}
}

// HandleMessage implements overlay.Manager by forwarding to the peer's
// machine (Phase 1 message processing). The endpoint is saved and
// restored around the call: at zero latency the overlay delivers
// synchronously, so a response sent by the machine re-enters
// HandleMessage for another peer before this call returns.
func (m *Manager) HandleMessage(n *overlay.Network, to *overlay.Peer, mm *msg.Message) {
	now := n.Now()
	ma := m.state(n, to)
	saved := m.ep
	m.ep = simEndpoint{n: n, self: to}
	ma.HandleMessage(selfView(to, now), mm, protocol.Time(now), &m.ep)
	m.ep = saved
}

// Tick implements overlay.Manager: periodic/refresh exchange, then
// Phase 2-4 evaluation for a staggered subset of peers.
//
// The decision phase runs under a tick-window barrier in two passes:
//
//   - Evaluate (lane-parallel): the population is partitioned into the
//     overlay's fixed lanes; each lane walks its slab pages in slot
//     order, advances each super's l_nn EWMA, draws the staggering
//     Bernoulli from the lane's own RNG stream, runs the machine
//     evaluation, and buffers the result. Everything a machine evaluation
//     touches is peer-local (its own related set, smoothing state and
//     cooldowns — see internal/protocol), and the shared overlay state is
//     only read, so lanes race on nothing.
//   - Commit (serial): the buffered results are applied in (lane, slot)
//     order — counters, OnDecision, and the Promote/Demote surgery with
//     its message fan-out. Every evaluation therefore sees the overlay as
//     it stood at the start of the tick, and cross-peer effects land in a
//     fixed order that no worker schedule can perturb.
//
// Lane count, lane assignment and lane RNG streams are all independent
// of the engine's Shards setting, so a K-worker tick is byte-identical
// to a serial one for any K.
func (m *Manager) Tick(n *overlay.Network, now sim.Time) {
	// Information collection for the non-event-driven paths.
	if m.P.Exchange == Periodic && math.Mod(float64(now), float64(m.P.PeriodicInterval)) == 0 {
		m.exchangeAll(n)
	} else if m.P.Exchange == EventDriven && m.P.RefreshInterval > 0 {
		m.refreshDue(n, now)
	}

	// Retry or abandon Phase 1 requests whose deadline has passed. This
	// runs before the decision phase so a retry's inline response can
	// still inform this tick's evaluations; it consumes no RNG, so it is
	// invisible to the determinism baselines whenever the tables are
	// empty (every lossless zero-latency run).
	// pendingLive is a conservative reachability hint: it is set whenever
	// an Expect survives its exchange, and recomputed by the scan itself,
	// so skipping the scan while it is false is behavior-identical — the
	// scan would visit only empty tables.
	if m.P.RequestTimeout > 0 && m.pendingLive {
		m.pendingLive = m.expireAll(n, now) > 0
	}

	// Decision phase, pass 1: lane-parallel evaluation. No membership
	// snapshot is needed — layer sets mutate only in the commit pass.
	m.ensureLanes(n)
	cfg := n.Config()
	kl, eta := cfg.KL(), cfg.Eta
	pnow := protocol.Time(now)
	sim.ForLanes(n.Engine().Shards(), overlay.NumLanes, func(lane int) {
		ls := &m.lanes[lane]
		ls.evals = ls.evals[:0]
		n.WalkLane(lane, func(p *overlay.Peer) {
			ma := m.state(n, p)
			isSuper := p.Layer == overlay.LayerSuper
			if isSuper {
				// Advance the l_nn EWMA once per tick, decisions or
				// not, so the smoothing cadence is uniform.
				ma.SmoothLnn(float64(p.LeafDegree()))
			}
			if !ls.rng.Bernoulli(m.P.EvalProbability) {
				return
			}
			res := ma.Evaluate(selfView(p, now), pnow, kl, eta, ls.rng)
			if res.Evaluated || res.Action != protocol.ActionNone {
				ls.evals = append(ls.evals, laneEval{p: p, isSuper: isSuper, res: res})
			}
		})
	})

	// Decision phase, pass 2: serial commit in (lane, slot) order.
	for l := range m.lanes {
		evals := m.lanes[l].evals
		for i := range evals {
			m.commit(n, &evals[i], now)
		}
	}
}

// commit applies one buffered evaluation: population counters, the
// OnDecision observer, and the requested role change. The Promote/Demote
// guards make a stale action safe by construction, but within one tick a
// peer's layer cannot have changed between its evaluation and its commit
// — only its own buffered action moves it, and each peer is buffered at
// most once per tick.
func (m *Manager) commit(n *overlay.Network, ev *laneEval, now sim.Time) {
	res := &ev.res
	if res.Evaluated {
		m.Evaluations++
	}
	if res.Eligible {
		if ev.isSuper {
			m.EligibleDemotions++
		} else {
			m.EligiblePromotions++
		}
	}
	if m.OnDecision != nil {
		m.OnDecision(ev.p, now, *res)
	}
	switch res.Action {
	case protocol.ActionPromote:
		m.Promotions++
		n.Promote(ev.p)
	case protocol.ActionDemote:
		if n.Demote(ev.p) {
			m.Demotions++
		}
	}
}

// MeanReportedLnn returns the average of the l_nn estimates the leaves
// currently hold — the quantity their μ computations actually see. Its
// gap to the true mean leaf degree quantifies report staleness/bias; the
// diagnostics tests and the freshness ablation use it.
func (m *Manager) MeanReportedLnn(n *overlay.Network) float64 {
	var sum float64
	var cnt int
	for _, id := range n.LeafIDs() {
		p := n.Peer(id)
		ma, ok := p.State.(*protocol.Machine)
		if !ok {
			continue
		}
		if v, ok := ma.AvgLnn(); ok {
			sum += v
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// exchangeAll runs one periodic information-collection round over every
// current leaf-super link, in the population's slot order.
func (m *Manager) exchangeAll(n *overlay.Network) {
	// Direct iteration is safe: information exchange only sends messages,
	// and message handling never mutates membership or links.
	n.WalkPeers(func(leaf *overlay.Peer) {
		if leaf.Layer != overlay.LayerLeaf {
			return
		}
		for _, sid := range leaf.SuperLinks() {
			super := n.Peer(sid)
			if super == nil || !super.Alive() {
				continue
			}
			m.exchange(n, leaf, super)
		}
	})
}

// refreshDue re-runs the exchange for leaves whose last refresh is older
// than RefreshInterval, keeping μ estimates fresh on long-lived links.
// The walk is in slot order — dense in the slab, unlike the ID-indexed
// layer-set order — because at default parameters this scan visits every
// leaf every tick.
func (m *Manager) refreshDue(n *overlay.Network, now sim.Time) {
	// Direct iteration is safe for the same reason as exchangeAll.
	pnow := protocol.Time(now)
	n.WalkPeers(func(leaf *overlay.Peer) {
		if leaf.Layer != overlay.LayerLeaf {
			return
		}
		lm := m.state(n, leaf)
		if !lm.RefreshDue(pnow) {
			return
		}
		for _, sid := range leaf.SuperLinks() {
			super := n.Peer(sid)
			if super == nil || !super.Alive() {
				continue
			}
			// Deadlines first, frames second — same reentrancy rule as
			// exchange.
			lm.Expect(super.ID, msg.KindNeighNumRequest, pnow)
			lm.Expect(super.ID, msg.KindValueRequest, pnow)
			frames := protocol.RefreshExchange(leaf.ID, super.ID)
			for i := range frames {
				n.Send(frames[i])
			}
		}
		if lm.PendingRequests() > 0 {
			m.pendingLive = true
		}
	})
}

// expireAll runs the pending-request expiry for every machine with
// outstanding requests, in slot order, returning the number of requests
// still outstanding afterwards (the caller's pendingLive recomputation).
// Direct iteration is safe for the same reason as exchangeAll: expiry
// only re-sends request frames, and message handling never mutates
// membership or links.
func (m *Manager) expireAll(n *overlay.Network, now sim.Time) int {
	live := 0
	n.WalkPeers(func(p *overlay.Peer) {
		ma, ok := p.State.(*protocol.Machine)
		if !ok || ma.PendingRequests() == 0 {
			return
		}
		saved := m.ep
		m.ep = simEndpoint{n: n, self: p}
		r, d := ma.ExpirePending(selfView(p, now), protocol.Time(now), &m.ep)
		m.ep = saved
		m.RequestRetries += uint64(r)
		m.RequestDrops += uint64(d)
		live += ma.PendingRequests()
	})
	return live
}
