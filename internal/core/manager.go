package core

import (
	"math"
	"sort"

	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/protocol"
	"dlm/internal/sim"
)

// Manager is the DLM layer-management policy, plugged into an
// overlay.Network. One Manager instance serves the whole simulated
// population, but all of its state is partitioned per peer — one
// protocol.Machine each, stored in overlay.Peer.State — and every
// decision uses only that peer's local information, the distributed
// discipline the paper requires.
type Manager struct {
	P Params

	// ep is the reusable endpoint bound to whichever peer is currently
	// handling a message; a per-delivery struct here would be one
	// allocation per message on the exchange hot path.
	ep simEndpoint

	// laneEPs are the per-lane counterparts of ep for lane-parallel
	// message handling (HandleMessageLane): each lane binds only its own
	// element, so batched deliveries allocate nothing and race on nothing.
	laneEPs [overlay.NumLanes]laneEndpoint

	// lanes is the per-lane state of the tick's parallel decision phase:
	// one persistent RNG stream and one result buffer per overlay lane
	// (see overlay.NumLanes and the execution model in Tick). Initialized
	// on first Tick; the buffers are reused every tick.
	lanes []laneState

	// Refresh calendar: instead of scanning every peer every tick for
	// "lastRefresh older than RefreshInterval" — an O(N)-per-tick walk
	// that was a top-three serial cost at N=1M — leaves are bucketed by
	// the integer tick at which their refresh next comes due. refreshCal
	// maps a due tick to the IDs enrolled for it; refreshTick holds, per
	// PeerID, the tick the peer is currently enrolled for (0 = none), so
	// a peer re-enrolled after a layer change lazily invalidates its old
	// bucket entry. calProcessed is the last due tick already drained.
	// The O(N) scan survives as refreshDueScan, the differential oracle
	// (and the refreshScan test flag forces it).
	refreshCal   map[int64][]msg.PeerID
	refreshTick  []int32
	calPool      [][]msg.PeerID
	calDue       []*overlay.Peer
	calProcessed int64
	refreshScan  bool

	// mach is the machine arena: one protocol.Machine per slab slot,
	// stored inline in append-only chunks so the tick's slot-order walks
	// read machines sequentially instead of chasing one heap pointer per
	// peer. Peer.State caches the element's address — stable, because
	// chunks are never reallocated — and the machine survives slot
	// recycling exactly as the individually heap-allocated ones did.
	// Growth happens only on the serial join path (InitialLayer,
	// OnLayerChange), never inside a parallel lane.
	mach [][]protocol.Machine

	// pendingLive is a conservative "some request may be outstanding"
	// hint: set whenever an Expect survives its exchange inline, cleared
	// when the expiry scan finds every table empty. While false, Tick
	// skips the per-peer expiry scan — which on a lossless zero-latency
	// transport is every tick.
	pendingLive bool

	// OnDecision, when set, observes every evaluation the machine
	// actually ran (cooldowns passed, enough evidence) and every
	// requested action (including the empty-G demotion, which skips the
	// comparison), before the action executes. The cross-plane
	// equivalence test uses it to capture the decision sequence.
	OnDecision func(p *overlay.Peer, now sim.Time, res protocol.EvalResult)

	// Stats counters for the evaluation: evaluations that ran, decisions
	// whose comparison cleared the thresholds, and switches that passed
	// the rate limit and executed.
	Evaluations        uint64
	EligiblePromotions uint64
	EligibleDemotions  uint64
	Promotions         uint64
	Demotions          uint64

	// RequestRetries and RequestDrops aggregate the population's Phase 1
	// timeout activity (see protocol.Machine.ExpirePending): requests
	// re-sent after their deadline, and requests abandoned after the
	// retry budget. Both stay zero on a lossless zero-latency transport.
	RequestRetries uint64
	RequestDrops   uint64
}

// NewManager returns a DLM manager; it panics on invalid params
// (construction bug).
func NewManager(p Params) *Manager {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Manager{P: p}
}

// Name implements overlay.Manager.
func (m *Manager) Name() string { return "dlm" }

// InitialLayer implements overlay.Manager: under DLM every peer joins as a
// leaf and earns promotion (paper §5: "the new peer is always assigned to
// leaf layer first"). Peer structs are recycled by the overlay's slab
// store, so a machine left behind by the slot's previous tenant is reset
// here — at the join instant — rather than allowed to leak stale protocol
// state into the new session.
func (m *Manager) InitialLayer(n *overlay.Network, p *overlay.Peer) overlay.Layer {
	if ma, ok := p.State.(*protocol.Machine); ok {
		ma.Reset(protocol.Time(n.Now()))
	} else {
		p.State = m.machineFor(p.Slot(), protocol.Time(n.Now()))
	}
	// Enroll the newcomer in the refresh calendar (lastRefresh == 0, so
	// its first refresh comes due once the clock passes RefreshInterval).
	// The overlay may still bootstrap-override the layer to super; the
	// entry then dies at its due tick's layer check.
	if m.P.Exchange == EventDriven && m.P.RefreshInterval > 0 {
		m.calEnroll(p.ID, m.calKey(0))
	}
	return overlay.LayerLeaf
}

// machChunkShift sizes the machine-arena chunks (4096 machines each);
// chunks are allocated whole and never moved, so machine addresses stay
// valid as the arena grows.
const machChunkShift = 12

// machineFor returns the arena machine for slot, initialized for a first
// tenant joining at joined. Callers run on the serial membership path
// only — growth appends to the shared chunk list.
func (m *Manager) machineFor(slot int32, joined protocol.Time) *protocol.Machine {
	c := int(slot) >> machChunkShift
	for c >= len(m.mach) {
		m.mach = append(m.mach, make([]protocol.Machine, 1<<machChunkShift))
	}
	ma := &m.mach[c][int(slot)&(1<<machChunkShift-1)]
	ma.Init(&m.P, joined)
	return ma
}

// state returns the peer's protocol machine. Every peer that joined
// through the overlay already carries its arena machine (bound in
// InitialLayer); the lazy branch serves only peers constructed outside
// Join (tests), and must not touch the arena — state is called from
// parallel lanes, where arena growth would race.
func (m *Manager) state(n *overlay.Network, p *overlay.Peer) *protocol.Machine {
	ma, ok := p.State.(*protocol.Machine)
	if !ok {
		ma = protocol.NewMachine(&m.P, protocol.Time(p.JoinTime))
		p.State = ma
	}
	return ma
}

// laneState is one lane's slice of the parallel decision phase.
type laneState struct {
	// rng is the lane's persistent random stream, derived once from the
	// engine's "dlm" stream by lane index. Peer-to-lane assignment is a
	// fixed function of the slab layout (never of the worker count), so
	// the draw sequence each peer observes is identical for any -shards
	// setting — the determinism contract of the sharded tick.
	rng *sim.Source
	// evals buffers the lane's decision results for the serial commit
	// phase, in the lane's slot order.
	evals []laneEval
	// due is the lane's scratch for the expiry scan's collect phase.
	due []*overlay.Peer
}

// laneEval is one buffered evaluation awaiting commit.
type laneEval struct {
	p       *overlay.Peer
	isSuper bool
	res     protocol.EvalResult
}

// ensureLanes builds the per-lane RNG streams on first use.
func (m *Manager) ensureLanes(n *overlay.Network) {
	if m.lanes != nil {
		return
	}
	root := n.Engine().Rand().Stream("dlm")
	m.lanes = make([]laneState, overlay.NumLanes)
	for i := range m.lanes {
		m.lanes[i].rng = root.StreamN(int64(i))
	}
}

// selfView builds the machine's per-call view of a peer. It uses the
// *reported* capacity and age: for an honest peer these are bit-identical
// to the true values, and for a misreporting peer (adversarial scenarios)
// the lie is consistent — the peer's outgoing ValueResponses and its own
// promotion evaluations both use the inflated figures, which is exactly
// the capture mechanism the liar scenarios measure.
func selfView(p *overlay.Peer, now sim.Time) protocol.Self {
	return protocol.Self{
		ID:         p.ID,
		Capacity:   p.ReportedCapacity(),
		Age:        p.ReportedAge(now),
		IsSuper:    p.Layer == overlay.LayerSuper,
		LeafDegree: p.LeafDegree(),
	}
}

// simEndpoint implements protocol.Endpoint over the overlay network.
type simEndpoint struct {
	n    *overlay.Network
	self *overlay.Peer
}

// Send implements protocol.Endpoint; the overlay routes by m.To.
func (e *simEndpoint) Send(mm msg.Message) { e.n.Send(mm) }

// IsLeafNeighbor implements protocol.Endpoint.
func (e *simEndpoint) IsLeafNeighbor(id msg.PeerID) bool {
	if !e.self.HasLink(id) {
		return false
	}
	q := e.n.Peer(id)
	return q != nil && q.Layer == overlay.LayerLeaf
}

// laneEndpoint implements protocol.Endpoint for lane-parallel message
// handling: sends are buffered into the lane's output slice instead of
// entering the overlay, and the overlay replays them serially — in
// firing order — at the batch commit. IsLeafNeighbor is a pure read of
// state nothing mutates during an eval fan-out.
type laneEndpoint struct {
	n    *overlay.Network
	self *overlay.Peer
	out  *[]msg.Message
}

// Send implements protocol.Endpoint.
func (e *laneEndpoint) Send(mm msg.Message) { *e.out = append(*e.out, mm) }

// IsLeafNeighbor implements protocol.Endpoint.
func (e *laneEndpoint) IsLeafNeighbor(id msg.PeerID) bool {
	if !e.self.HasLink(id) {
		return false
	}
	q := e.n.Peer(id)
	return q != nil && q.Layer == overlay.LayerLeaf
}

// OnConnect implements overlay.Manager: under the event-driven policy, a
// new leaf-super link triggers Phase 1 information collection — the
// frames of protocol.ConnectExchange.
func (m *Manager) OnConnect(n *overlay.Network, a, b *overlay.Peer) {
	if m.P.Exchange != EventDriven {
		return
	}
	leaf, super := splitPair(a, b)
	if leaf == nil {
		return // super-super link: G sets are cross-layer only
	}
	m.exchange(n, leaf, super)
}

// exchange fires the information-collection messages for one leaf-super
// pair. Response deadlines are registered before any frame departs: at
// zero latency the responses arrive inline within Send, and an entry
// registered afterwards would never be cleared (a guaranteed spurious
// retry later).
func (m *Manager) exchange(n *overlay.Network, leaf, super *overlay.Peer) {
	now := protocol.Time(n.Now())
	lm, sm := m.state(n, leaf), m.state(n, super)
	lm.Expect(super.ID, msg.KindNeighNumRequest, now)
	sm.Expect(leaf.ID, msg.KindValueRequest, now)
	lm.Expect(super.ID, msg.KindValueRequest, now)
	// The frames of protocol.ConnectExchange, sent directly: at a million
	// connects the temporary frame array was measurable copy traffic.
	n.Send(msg.NeighNumRequest(leaf.ID, super.ID))
	n.Send(msg.ValueRequest(super.ID, leaf.ID))
	n.Send(msg.ValueRequest(leaf.ID, super.ID))
	// On a lossless zero-latency transport every response arrived inline
	// and settled its entry; only when something is still outstanding does
	// the per-tick expiry scan have work to do.
	if lm.PendingRequests() > 0 || sm.PendingRequests() > 0 {
		m.pendingLive = true
	}
}

// splitPair classifies a link's endpoints; leaf is nil for super-super
// links (leaf-leaf links cannot exist in the overlay).
func splitPair(a, b *overlay.Peer) (leaf, super *overlay.Peer) {
	switch {
	case a.Layer == overlay.LayerLeaf && b.Layer == overlay.LayerSuper:
		return a, b
	case b.Layer == overlay.LayerLeaf && a.Layer == overlay.LayerSuper:
		return b, a
	}
	return nil, nil
}

// OnDisconnect implements overlay.Manager. A super forgets a departed
// leaf (G(s) is its *current* leaf neighbors); a leaf keeps the super in
// G(l) — the paper keeps every super contacted since join — subject to
// window pruning at decision time.
func (m *Manager) OnDisconnect(n *overlay.Network, a, b *overlay.Peer) {
	leaf, super := splitPair(a, b)
	if leaf == nil {
		return
	}
	if super.Alive() {
		m.state(n, super).Drop(leaf.ID)
	}
}

// OnLayerChange implements overlay.Manager. The related set's semantics
// differ per layer, so the machine is reset; the peer then re-collects
// information from its surviving links as if they were fresh connections.
func (m *Manager) OnLayerChange(n *overlay.Network, p *overlay.Peer, old overlay.Layer) {
	now := protocol.Time(n.Now())
	if ma, ok := p.State.(*protocol.Machine); ok {
		ma.Reset(now)
	} else {
		p.State = m.machineFor(p.Slot(), now)
	}

	switch p.Layer {
	case overlay.LayerSuper:
		// Promotion: supers never refresh; any pending calendar entry
		// turns stale (it skips on the enrollment-tick mismatch).
		if int(p.ID) < len(m.refreshTick) {
			m.refreshTick[p.ID] = 0
		}
		// Previous super connections became super-super links; the former
		// supers must forget p as a leaf.
		for _, id := range p.SuperLinks() {
			if q := n.Peer(id); q != nil {
				m.state(n, q).Drop(p.ID)
			}
		}
	case overlay.LayerLeaf:
		// Demotion: the kept links are now leaf-to-super connections —
		// logically new, so run the event-driven exchange on them. The
		// reset above zeroed lastRefresh, so the peer re-enters the
		// calendar exactly as a newcomer would.
		if m.P.Exchange == EventDriven {
			if m.P.RefreshInterval > 0 {
				m.calEnroll(p.ID, m.calKey(0))
			}
			for _, id := range p.SuperLinks() {
				if q := n.Peer(id); q != nil {
					m.exchange(n, p, q)
				}
			}
		}
	}
}

// HandleMessage implements overlay.Manager by forwarding to the peer's
// machine (Phase 1 message processing). The endpoint is saved and
// restored around the call: at zero latency the overlay delivers
// synchronously, so a response sent by the machine re-enters
// HandleMessage for another peer before this call returns.
func (m *Manager) HandleMessage(n *overlay.Network, to *overlay.Peer, mm *msg.Message) {
	now := n.Now()
	ma := m.state(n, to)
	saved := m.ep
	m.ep = simEndpoint{n: n, self: to}
	ma.HandleMessage(selfView(to, now), mm, protocol.Time(now), &m.ep)
	m.ep = saved
}

// HandleMessageLane implements overlay.ParallelManager: the lane-local
// half of a batched delivery. It may run concurrently with other lanes'
// calls, so it touches only the target's machine (peers are partitioned
// by lane), this lane's endpoint slot, and the lane's output buffer; the
// machine's message handling draws no randomness (protocol purity), so
// worker scheduling cannot perturb anything observable.
func (m *Manager) HandleMessageLane(n *overlay.Network, to *overlay.Peer, mm *msg.Message, lane int, out *[]msg.Message) {
	now := n.Now()
	ma := m.state(n, to)
	ep := &m.laneEPs[lane]
	ep.n, ep.self, ep.out = n, to, out
	ma.HandleMessage(selfView(to, now), mm, protocol.Time(now), ep)
	ep.self, ep.out = nil, nil
}

// Tick implements overlay.Manager: periodic/refresh exchange, then
// Phase 2-4 evaluation for a staggered subset of peers.
//
// The decision phase runs under a tick-window barrier in two passes:
//
//   - Evaluate (lane-parallel): the population is partitioned into the
//     overlay's fixed lanes; each lane walks its slab pages in slot
//     order, advances each super's l_nn EWMA, draws the staggering
//     Bernoulli from the lane's own RNG stream, runs the machine
//     evaluation, and buffers the result. Everything a machine evaluation
//     touches is peer-local (its own related set, smoothing state and
//     cooldowns — see internal/protocol), and the shared overlay state is
//     only read, so lanes race on nothing.
//   - Commit (serial): the buffered results are applied in (lane, slot)
//     order — counters, OnDecision, and the Promote/Demote surgery with
//     its message fan-out. Every evaluation therefore sees the overlay as
//     it stood at the start of the tick, and cross-peer effects land in a
//     fixed order that no worker schedule can perturb.
//
// Lane count, lane assignment and lane RNG streams are all independent
// of the engine's Shards setting, so a K-worker tick is byte-identical
// to a serial one for any K.
func (m *Manager) Tick(n *overlay.Network, now sim.Time) {
	// Information collection for the non-event-driven paths.
	if m.P.Exchange == Periodic && math.Mod(float64(now), float64(m.P.PeriodicInterval)) == 0 {
		m.exchangeAll(n)
	} else if m.P.Exchange == EventDriven && m.P.RefreshInterval > 0 {
		if m.refreshScan {
			m.refreshDueScan(n, now)
		} else {
			m.refreshDue(n, now)
		}
	}

	// Retry or abandon Phase 1 requests whose deadline has passed. This
	// runs before the decision phase so a retry's inline response can
	// still inform this tick's evaluations; it consumes no RNG, so it is
	// invisible to the determinism baselines whenever the tables are
	// empty (every lossless zero-latency run).
	// pendingLive is a conservative reachability hint: it is set whenever
	// an Expect survives its exchange, and recomputed by the scan itself,
	// so skipping the scan while it is false is behavior-identical — the
	// scan would visit only empty tables.
	if m.P.RequestTimeout > 0 && m.pendingLive {
		m.pendingLive = m.expireAll(n, now) > 0
	}

	// Decision phase, pass 1: lane-parallel evaluation. No membership
	// snapshot is needed — layer sets mutate only in the commit pass.
	m.ensureLanes(n)
	cfg := n.Config()
	kl, eta := cfg.KL(), cfg.Eta
	pnow := protocol.Time(now)
	sim.ForLanes(n.Engine().Shards(), overlay.NumLanes, func(lane int) {
		ls := &m.lanes[lane]
		ls.evals = ls.evals[:0]
		n.WalkLane(lane, func(p *overlay.Peer) {
			ma := m.state(n, p)
			isSuper := p.Layer == overlay.LayerSuper
			if isSuper {
				// Advance the l_nn EWMA once per tick, decisions or
				// not, so the smoothing cadence is uniform.
				ma.SmoothLnn(float64(p.LeafDegree()))
			}
			if !ls.rng.Bernoulli(m.P.EvalProbability) {
				return
			}
			res := ma.Evaluate(selfView(p, now), pnow, kl, eta, ls.rng)
			if res.Evaluated || res.Action != protocol.ActionNone {
				ls.evals = append(ls.evals, laneEval{p: p, isSuper: isSuper, res: res})
			}
		})
	})

	// Decision phase, pass 2: serial commit in (lane, slot) order.
	for l := range m.lanes {
		evals := m.lanes[l].evals
		for i := range evals {
			m.commit(n, &evals[i], now)
		}
	}
}

// commit applies one buffered evaluation: population counters, the
// OnDecision observer, and the requested role change. The Promote/Demote
// guards make a stale action safe by construction, but within one tick a
// peer's layer cannot have changed between its evaluation and its commit
// — only its own buffered action moves it, and each peer is buffered at
// most once per tick.
func (m *Manager) commit(n *overlay.Network, ev *laneEval, now sim.Time) {
	res := &ev.res
	if res.Evaluated {
		m.Evaluations++
	}
	if res.Eligible {
		if ev.isSuper {
			m.EligibleDemotions++
		} else {
			m.EligiblePromotions++
		}
	}
	if m.OnDecision != nil {
		m.OnDecision(ev.p, now, *res)
	}
	switch res.Action {
	case protocol.ActionPromote:
		m.Promotions++
		n.Promote(ev.p)
	case protocol.ActionDemote:
		if n.Demote(ev.p) {
			m.Demotions++
		}
	}
}

// MeanReportedLnn returns the average of the l_nn estimates the leaves
// currently hold — the quantity their μ computations actually see. Its
// gap to the true mean leaf degree quantifies report staleness/bias; the
// diagnostics tests and the freshness ablation use it.
func (m *Manager) MeanReportedLnn(n *overlay.Network) float64 {
	var sum float64
	var cnt int
	for _, id := range n.LeafIDs() {
		p := n.Peer(id)
		ma, ok := p.State.(*protocol.Machine)
		if !ok {
			continue
		}
		if v, ok := ma.AvgLnn(); ok {
			sum += v
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// exchangeAll runs one periodic information-collection round over every
// current leaf-super link, in the population's slot order.
func (m *Manager) exchangeAll(n *overlay.Network) {
	// Direct iteration is safe: information exchange only sends messages,
	// and message handling never mutates membership or links.
	n.WalkPeers(func(leaf *overlay.Peer) {
		if leaf.Layer != overlay.LayerLeaf {
			return
		}
		for _, sid := range leaf.SuperLinks() {
			super := n.Peer(sid)
			if super == nil || !super.Alive() {
				continue
			}
			m.exchange(n, leaf, super)
		}
	})
}

// calKey returns the calendar bucket — the integer tick — at which a
// machine whose lastRefresh is last next comes due: the first tick t with
// t - last >= RefreshInterval that has not already been processed. With
// last == 0 (fresh or reset machines) that is the first tick past the
// interval itself, matching RefreshDue's arithmetic exactly.
func (m *Manager) calKey(last protocol.Time) int64 {
	k := int64(math.Ceil(float64(last) + float64(m.P.RefreshInterval)))
	if min := m.calProcessed + 1; k < min {
		k = min
	}
	return k
}

// calEnroll books id into the bucket for tick key. A peer is enrolled in
// at most one live bucket: refreshTick records the booking, and an entry
// whose bucket no longer matches it (the peer was re-enrolled or cleared
// since) is skipped unprocessed when its bucket drains.
func (m *Manager) calEnroll(id msg.PeerID, key int64) {
	if int(id) >= len(m.refreshTick) {
		grown := make([]int32, int(id)+1+len(m.refreshTick)/2)
		copy(grown, m.refreshTick)
		m.refreshTick = grown
	}
	m.refreshTick[id] = int32(key)
	if m.refreshCal == nil {
		m.refreshCal = make(map[int64][]msg.PeerID)
	}
	b, ok := m.refreshCal[key]
	if !ok {
		if l := len(m.calPool); l > 0 {
			b = m.calPool[l-1][:0]
			m.calPool = m.calPool[:l-1]
		}
	}
	m.refreshCal[key] = append(b, id)
}

// refreshDue re-runs the exchange for leaves whose last refresh is older
// than RefreshInterval, keeping μ estimates fresh on long-lived links.
// Due leaves come from the refresh calendar, not a population walk: each
// drained bucket is filtered (dead, promoted, or re-enrolled peers skip),
// sorted by slab slot — the exact order the old full scan visited peers
// in — and processed identically to that scan. Every surviving leaf
// re-enrolls for its next due tick, so per-tick work is proportional to
// the leaves actually due, not to the population.
func (m *Manager) refreshDue(n *overlay.Network, now sim.Time) {
	pnow := protocol.Time(now)
	last := int64(math.Floor(float64(now)))
	for m.calProcessed < last {
		// Advance before draining, so re-enrollments from inside the
		// drain land strictly after the bucket being drained.
		m.calProcessed++
		key := m.calProcessed
		bucket, ok := m.refreshCal[key]
		if !ok {
			continue
		}
		delete(m.refreshCal, key)
		due := m.calDue[:0]
		for _, id := range bucket {
			if int(id) >= len(m.refreshTick) || m.refreshTick[id] != int32(key) {
				continue
			}
			m.refreshTick[id] = 0
			if p := n.Peer(id); p != nil && p.Layer == overlay.LayerLeaf {
				due = append(due, p)
			}
		}
		m.calPool = append(m.calPool, bucket)
		sort.Slice(due, func(i, j int) bool { return due[i].Slot() < due[j].Slot() })
		m.calDue = due
		for _, leaf := range due {
			m.refreshOne(n, leaf, pnow)
		}
	}
}

// refreshOne runs one leaf's refresh exchange — the loop body the old
// full scan executed for every due leaf — and re-enrolls the leaf for
// its next due tick.
func (m *Manager) refreshOne(n *overlay.Network, leaf *overlay.Peer, pnow protocol.Time) {
	lm := m.state(n, leaf)
	if !lm.RefreshDue(pnow) {
		// Stamped more recently than the booking (defensive; bookings are
		// invalidated on re-enrollment, so this should not trigger).
		m.calEnroll(leaf.ID, m.calKey(lm.RefreshAt()))
		return
	}
	for _, sid := range leaf.SuperLinks() {
		super := n.Peer(sid)
		if super == nil || !super.Alive() {
			continue
		}
		// Deadlines first, frames second — same reentrancy rule as
		// exchange.
		lm.Expect(super.ID, msg.KindNeighNumRequest, pnow)
		lm.Expect(super.ID, msg.KindValueRequest, pnow)
		// The frames of protocol.RefreshExchange, sent directly (see
		// exchange).
		n.Send(msg.NeighNumRequest(leaf.ID, super.ID))
		n.Send(msg.ValueRequest(leaf.ID, super.ID))
	}
	if lm.PendingRequests() > 0 {
		m.pendingLive = true
	}
	m.calEnroll(leaf.ID, m.calKey(lm.RefreshAt()))
}

// refreshDueScan is the original O(N)-per-tick refresh scan, kept as the
// calendar's differential oracle (forced by the refreshScan test flag).
func (m *Manager) refreshDueScan(n *overlay.Network, now sim.Time) {
	// Direct iteration is safe for the same reason as exchangeAll.
	pnow := protocol.Time(now)
	n.WalkPeers(func(leaf *overlay.Peer) {
		if leaf.Layer != overlay.LayerLeaf {
			return
		}
		lm := m.state(n, leaf)
		if !lm.RefreshDue(pnow) {
			return
		}
		for _, sid := range leaf.SuperLinks() {
			super := n.Peer(sid)
			if super == nil || !super.Alive() {
				continue
			}
			// Deadlines first, frames second — same reentrancy rule as
			// exchange.
			lm.Expect(super.ID, msg.KindNeighNumRequest, pnow)
			lm.Expect(super.ID, msg.KindValueRequest, pnow)
			frames := protocol.RefreshExchange(leaf.ID, super.ID)
			for i := range frames {
				n.Send(frames[i])
			}
		}
		if lm.PendingRequests() > 0 {
			m.pendingLive = true
		}
	})
}

// expireAll runs the pending-request expiry for every machine with
// outstanding requests, returning the number of requests still
// outstanding afterwards (the caller's pendingLive recomputation).
//
// The scan half — finding machines with outstanding requests, a pure
// read — fans out over the lanes; the expiries themselves (which re-send
// request frames) then run serially. Merging the per-lane candidate
// lists by slab slot reconstructs exactly the slot order the serial
// full-population walk used, so the retry frames depart in the same
// order for any shard count.
func (m *Manager) expireAll(n *overlay.Network, now sim.Time) int {
	m.ensureLanes(n)
	sim.ForLanes(n.Engine().Shards(), overlay.NumLanes, func(lane int) {
		ls := &m.lanes[lane]
		ls.due = ls.due[:0]
		n.WalkLane(lane, func(p *overlay.Peer) {
			if ma, ok := p.State.(*protocol.Machine); ok && ma.PendingRequests() > 0 {
				ls.due = append(ls.due, p)
			}
		})
	})
	due := m.calDue[:0]
	for l := range m.lanes {
		due = append(due, m.lanes[l].due...)
	}
	sort.Slice(due, func(i, j int) bool { return due[i].Slot() < due[j].Slot() })
	m.calDue = due

	live := 0
	for _, p := range due {
		ma := p.State.(*protocol.Machine)
		saved := m.ep
		m.ep = simEndpoint{n: n, self: p}
		r, d := ma.ExpirePending(selfView(p, now), protocol.Time(now), &m.ep)
		m.ep = saved
		m.RequestRetries += uint64(r)
		m.RequestDrops += uint64(d)
		live += ma.PendingRequests()
	}
	return live
}
