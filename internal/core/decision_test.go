package core

import (
	"testing"

	"dlm/internal/protocol"
)

// The controller math is tested in internal/protocol; this file covers
// the adapter surface: parameter validation at construction and the
// Manager delegates staying in sync with the protocol package.

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestNewManagerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid params")
		}
	}()
	p := DefaultParams()
	p.MuMax = -1
	NewManager(p)
}

func TestExchangePolicyString(t *testing.T) {
	if EventDriven.String() != "event-driven" || Periodic.String() != "periodic" {
		t.Fatal("policy names wrong")
	}
	if ExchangePolicy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

// TestManagerDelegatesMatchProtocol pins the delegate surface to the
// protocol implementation: the Manager must not re-introduce its own
// controller math.
func TestManagerDelegatesMatchProtocol(t *testing.T) {
	m := NewManager(DefaultParams())
	p := m.P
	for _, mu := range []float64{-1.5, -0.3, 0, 0.3, 1.5} {
		xcM, xaM := m.ScaleFor(mu)
		xcP, xaP := p.ScaleFor(mu)
		if xcM != xcP || xaM != xaP {
			t.Fatalf("ScaleFor(%v) diverged", mu)
		}
		if m.ZPromoteCapa(mu) != p.ZPromoteCapa(mu) || m.ZPromoteAge(mu) != p.ZPromoteAge(mu) ||
			m.ZDemoteCapa(mu) != p.ZDemoteCapa(mu) || m.ZDemoteAge(mu) != p.ZDemoteAge(mu) {
			t.Fatalf("Z thresholds diverged at mu=%v", mu)
		}
	}
	if m.Mu(30, 20) != p.Mu(30, 20) {
		t.Fatal("Mu diverged")
	}
	if m.SwitchProbability(30, 20, 10, 0.4, true) != p.SwitchProbability(30, 20, 10, 0.4, true) {
		t.Fatal("SwitchProbability diverged")
	}
	self := Candidate{Capacity: 60, Age: 150}
	related := []Candidate{
		{Capacity: 10, Age: 50},
		{Capacity: 100, Age: 200},
		{Capacity: 40, Age: 120},
	}
	if m.EvaluateStandalone(self, related, 30, 20, true) != p.EvaluateStandalone(self, related, 30, 20, true) {
		t.Fatal("EvaluateStandalone diverged")
	}
	var _ protocol.Decision = m.EvaluateStandalone(self, nil, 30, 20, false)
}
