// Package stats provides the measurement pipeline of the simulator:
// streaming moment accumulators, time series, histograms, and message
// traffic counters, plus CSV export used by the benchmark harness.
package stats

import "math"

// Welford is a streaming mean/variance accumulator using Welford's
// numerically stable update. The zero value is ready to use.
type Welford struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if !w.hasExtrema || x < w.min {
		w.min = x
	}
	if !w.hasExtrema || x > w.max {
		w.max = x
	}
	w.hasExtrema = true
}

// AddN folds n copies of x (useful for weighted tallies).
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w (parallel-friendly: Chan et
// al. pairwise update).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}
