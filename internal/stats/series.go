package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series with non-decreasing timestamps.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample; timestamps must be non-decreasing.
func (s *Series) Add(t, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("stats: series %q time going backwards: %v after %v",
			s.Name, t, s.points[n-1].T))
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Reset discards all samples in place, keeping the backing array so a
// reused series does not reallocate while refilling.
func (s *Series) Reset() { s.points = s.points[:0] }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying samples (shared, do not mutate).
func (s *Series) Points() []Point { return s.points }

// At returns the value at time t using the most recent sample at or before
// t (step interpolation); ok is false before the first sample.
func (s *Series) At(t float64) (v float64, ok bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].V, true
}

// Last returns the final sample; ok is false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// MeanOver returns the mean of samples with T in [from, to].
func (s *Series) MeanOver(from, to float64) float64 {
	var w Welford
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			w.Add(p.V)
		}
	}
	return w.Mean()
}

// MaxOver returns the max of samples with T in [from, to]; NaN when none.
func (s *Series) MaxOver(from, to float64) float64 {
	m, any := math.Inf(-1), false
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			any = true
			if p.V > m {
				m = p.V
			}
		}
	}
	if !any {
		return math.NaN()
	}
	return m
}

// MinOver returns the min of samples with T in [from, to]; NaN when none.
func (s *Series) MinOver(from, to float64) float64 {
	m, any := math.Inf(1), false
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			any = true
			if p.V < m {
				m = p.V
			}
		}
	}
	if !any {
		return math.NaN()
	}
	return m
}

// StdOver returns the standard deviation of samples with T in [from, to]
// — the stability of the series around its own level, independent of any
// target.
func (s *Series) StdOver(from, to float64) float64 {
	var w Welford
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			w.Add(p.V)
		}
	}
	return w.Std()
}

// RMSEAgainst returns the root-mean-square error of samples in [from, to]
// against a constant target — the layer-ratio quality metric used by the
// ablation studies.
func (s *Series) RMSEAgainst(target, from, to float64) float64 {
	var sum float64
	var n int
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			d := p.V - target
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(n))
}

// SeriesSet is an ordered collection of series sharing a time axis.
type SeriesSet struct {
	Series []*Series
}

// Add appends a series to the set and returns it for chaining.
func (ss *SeriesSet) Add(s *Series) *Series {
	ss.Series = append(ss.Series, s)
	return s
}

// New creates, registers and returns a named series.
func (ss *SeriesSet) New(name string) *Series {
	return ss.Add(NewSeries(name))
}

// Get returns the series with the given name, or nil.
func (ss *SeriesSet) Get(name string) *Series {
	for _, s := range ss.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteCSV emits the set as CSV with a shared time column. Series are
// step-sampled at the union of all timestamps.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	times := map[float64]struct{}{}
	for _, s := range ss.Series {
		for _, p := range s.points {
			times[p.T] = struct{}{}
		}
	}
	ts := make([]float64, 0, len(times))
	for t := range times {
		ts = append(ts, t)
	}
	sort.Float64s(ts)

	var b strings.Builder
	b.WriteString("t")
	for _, s := range ss.Series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", "_"))
	}
	b.WriteString("\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, t := range ts {
		b.Reset()
		fmt.Fprintf(&b, "%g", t)
		for _, s := range ss.Series {
			if v, ok := s.At(t); ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// MergeMean produces a pointwise-mean series from several same-shaped
// series (one per trial). Series are step-sampled on the union time axis.
func MergeMean(name string, trials []*Series) *Series {
	out := NewSeries(name)
	if len(trials) == 0 {
		return out
	}
	times := map[float64]struct{}{}
	for _, s := range trials {
		for _, p := range s.points {
			times[p.T] = struct{}{}
		}
	}
	ts := make([]float64, 0, len(times))
	for t := range times {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	for _, t := range ts {
		var w Welford
		for _, s := range trials {
			if v, ok := s.At(t); ok {
				w.Add(v)
			}
		}
		if w.Count() > 0 {
			out.Add(t, w.Mean())
		}
	}
	return out
}
