package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi) with overflow and
// underflow buckets.
type Histogram struct {
	Lo, Hi   float64
	bins     []uint64
	under    uint64
	over     uint64
	observed Welford
}

// NewHistogram returns a histogram with n equal bins over [lo, hi); it
// panics for a degenerate range or non-positive bin count.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(lo < hi) {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v) n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]uint64, n)}
}

// Reset clears all observations in place, keeping the bin layout and the
// backing array (no reallocation: reset is the per-window hot path of
// warm-up-then-measure runs).
func (h *Histogram) Reset() {
	clear(h.bins)
	h.under, h.over = 0, 0
	h.observed = Welford{}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.observed.Add(x)
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.bins) { // float edge
			i--
		}
		h.bins[i]++
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	total := h.under + h.over
	for _, b := range h.bins {
		total += b
	}
	return total
}

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// NumBins returns the number of interior bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Quantile returns an approximation of the q-quantile (q in [0,1]) using
// the bin midpoints; under/overflow map to Lo/Hi.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	if cum += h.under; cum >= target {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.bins))
	for i, b := range h.bins {
		if cum += b; cum >= target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi
}

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 { return h.observed.Mean() }

// String renders a one-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
	return b.String()
}
