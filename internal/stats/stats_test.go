package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dlm/internal/msg"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.CI95() <= 0 {
		t.Error("CI95 should be positive with n>1")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 || w.CI95() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(3)
	if w.Var() != 0 || w.CI95() != 0 {
		t.Error("single sample should have zero variance")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		var wa, wb, all Welford
		for _, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Guard magnitude so float error doesn't dominate.
			x = math.Mod(x, 1e6)
			wa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			x = math.Mod(x, 1e6)
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(wb)
		if wa.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(wa.Mean()-all.Mean()) < 1e-9*scale &&
			math.Abs(wa.Var()-all.Var()) < 1e-6*math.Max(1, all.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(4, 3)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatal("AddN diverges from repeated Add")
	}
}

func TestSeriesAtAndLast(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.Last(); ok {
		t.Fatal("empty series reported Last")
	}
	if _, ok := s.At(5); ok {
		t.Fatal("empty series reported At")
	}
	s.Add(1, 10)
	s.Add(3, 30)
	s.Add(3, 35) // duplicate timestamps allowed
	s.Add(7, 70)
	cases := []struct {
		t    float64
		want float64
		ok   bool
	}{{0.5, 0, false}, {1, 10, true}, {2, 10, true}, {3, 35, true}, {6.9, 35, true}, {7, 70, true}, {100, 70, true}}
	for _, c := range cases {
		got, ok := s.At(c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("At(%v) = %v,%v want %v,%v", c.t, got, ok, c.want, c.ok)
		}
	}
	if p, _ := s.Last(); p.V != 70 {
		t.Errorf("Last = %+v", p)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	s.Add(4, 1)
}

func TestSeriesAggregates(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i <= 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if m := s.MeanOver(0, 10); math.Abs(m-5) > 1e-12 {
		t.Errorf("MeanOver = %v", m)
	}
	if m := s.MaxOver(2, 4); m != 4 {
		t.Errorf("MaxOver = %v", m)
	}
	if m := s.MinOver(2, 4); m != 2 {
		t.Errorf("MinOver = %v", m)
	}
	if !math.IsNaN(s.MaxOver(20, 30)) || !math.IsNaN(s.MinOver(20, 30)) {
		t.Error("empty window should be NaN")
	}
	if r := s.RMSEAgainst(5, 0, 10); math.Abs(r-math.Sqrt(10)) > 1e-9 {
		t.Errorf("RMSE = %v, want sqrt(10)", r)
	}
	if !math.IsNaN(s.RMSEAgainst(5, 20, 30)) {
		t.Error("empty-window RMSE should be NaN")
	}
}

func TestSeriesSetCSV(t *testing.T) {
	var ss SeriesSet
	a := ss.New("a")
	b := ss.New("b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200)
	var sb strings.Builder
	if err := ss.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "t,a,b\n1,10,\n2,20,200\n"
	if got != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", got, want)
	}
	if ss.Get("a") != a || ss.Get("nope") != nil {
		t.Error("Get misbehaves")
	}
}

func TestMergeMean(t *testing.T) {
	s1 := NewSeries("t1")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := NewSeries("t2")
	s2.Add(1, 30)
	s2.Add(2, 40)
	m := MergeMean("mean", []*Series{s1, s2})
	if v, _ := m.At(1); v != 20 {
		t.Errorf("merged At(1) = %v, want 20", v)
	}
	if v, _ := m.At(2); v != 30 {
		t.Errorf("merged At(2) = %v, want 30", v)
	}
	if MergeMean("empty", nil).Len() != 0 {
		t.Error("merging no trials should be empty")
	}
}

func TestTraffic(t *testing.T) {
	var tr Traffic
	q := msg.NewQuery(1, 2, 1, 1, 5)
	nr := msg.NeighNumRequest(1, 2)
	vr := msg.ValueResponse(2, 1, 10, 20)
	for i := 0; i < 3; i++ {
		tr.Record(&q)
	}
	tr.Record(&nr)
	tr.Record(&vr)
	bad := msg.Message{Kind: msg.KindInvalid}
	tr.Record(&bad) // ignored

	if tr.Count(msg.KindQuery) != 3 {
		t.Errorf("query count = %d", tr.Count(msg.KindQuery))
	}
	if tr.Bytes(msg.KindQuery) != 3*uint64(q.WireSize()) {
		t.Errorf("query bytes = %d", tr.Bytes(msg.KindQuery))
	}
	if tr.DLMMessages() != 2 {
		t.Errorf("DLM messages = %d, want 2", tr.DLMMessages())
	}
	if tr.SearchMessages() != 3 {
		t.Errorf("search messages = %d, want 3", tr.SearchMessages())
	}
	if tr.TotalMessages() != 5 {
		t.Errorf("total = %d, want 5", tr.TotalMessages())
	}
	if tr.DLMBytes()+tr.SearchBytes() != tr.TotalBytes() {
		t.Error("byte accounting does not partition")
	}
	if tr.Count(msg.KindInvalid) != 0 || tr.Bytes(msg.Kind(99)) != 0 {
		t.Error("invalid kinds should read zero")
	}

	var other Traffic
	other.Record(&q)
	tr.Merge(&other)
	if tr.Count(msg.KindQuery) != 4 {
		t.Errorf("merged query count = %d", tr.Count(msg.KindQuery))
	}
	if s := tr.String(); !strings.Contains(s, "query=4") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	h.Add(-5) // under
	h.Add(15) // over
	if h.Count() != 102 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Bin(0) != 10 {
		t.Errorf("bin 0 = %d", h.Bin(0))
	}
	if q := h.Quantile(0.5); q < 4 || q > 6 {
		t.Errorf("median = %v", q)
	}
	if h.NumBins() != 10 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
	if s := h.String(); !strings.Contains(s, "n=102") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Add(0)        // exactly lo -> bin 0
	h.Add(0.999999) // last bin
	h.Add(1)        // hi is exclusive -> overflow
	if h.Bin(0) != 1 {
		t.Errorf("bin0 = %d", h.Bin(0))
	}
	if h.Bin(3) != 1 {
		t.Errorf("bin3 = %d", h.Bin(3))
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if q := h.Quantile(0); q != 0.125 {
		t.Errorf("Quantile(0) = %v", q)
	}
}

func TestHistogramConstructionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram construction did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}
