package stats

import (
	"fmt"
	"strings"

	"dlm/internal/msg"
)

// Traffic tallies protocol messages by kind, in both message and byte
// units. The zero value is ready to use.
type Traffic struct {
	counts [msg.NumKinds]uint64
	bytes  [msg.NumKinds]uint64
}

// Record tallies one message.
func (t *Traffic) Record(m *msg.Message) {
	if !m.Kind.Valid() {
		return
	}
	t.counts[m.Kind]++
	t.bytes[m.Kind] += uint64(m.WireSize())
}

// Count returns the number of messages of the given kind.
func (t Traffic) Count(k msg.Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return t.counts[k]
}

// Bytes returns the bytes sent for the given kind.
func (t Traffic) Bytes(k msg.Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return t.bytes[k]
}

// TotalMessages returns the total message count.
func (t Traffic) TotalMessages() uint64 {
	var total uint64
	for _, c := range t.counts {
		total += c
	}
	return total
}

// TotalBytes returns the total byte count.
func (t Traffic) TotalBytes() uint64 {
	var total uint64
	for _, b := range t.bytes {
		total += b
	}
	return total
}

// DLMMessages returns the count of DLM information-exchange messages.
func (t Traffic) DLMMessages() uint64 {
	var total uint64
	for k := msg.Kind(1); int(k) < msg.NumKinds; k++ {
		if k.IsDLM() {
			total += t.counts[k]
		}
	}
	return total
}

// DLMBytes returns the bytes of DLM information-exchange traffic.
func (t Traffic) DLMBytes() uint64 {
	var total uint64
	for k := msg.Kind(1); int(k) < msg.NumKinds; k++ {
		if k.IsDLM() {
			total += t.bytes[k]
		}
	}
	return total
}

// SearchMessages returns the count of query/query-hit traffic.
func (t Traffic) SearchMessages() uint64 {
	return t.counts[msg.KindQuery] + t.counts[msg.KindQueryHit]
}

// SearchBytes returns the bytes of query/query-hit traffic.
func (t Traffic) SearchBytes() uint64 {
	return t.bytes[msg.KindQuery] + t.bytes[msg.KindQueryHit]
}

// Merge adds another tally into t.
func (t *Traffic) Merge(o *Traffic) {
	for i := range t.counts {
		t.counts[i] += o.counts[i]
		t.bytes[i] += o.bytes[i]
	}
}

// Snapshot returns a copy of the tally.
func (t Traffic) Snapshot() Traffic { return t }

// String renders a compact per-kind summary, skipping zero rows.
func (t Traffic) String() string {
	var b strings.Builder
	for k := msg.Kind(1); int(k) < msg.NumKinds; k++ {
		if t.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s=%d(%dB) ", k, t.counts[k], t.bytes[k])
	}
	return strings.TrimSpace(b.String())
}
