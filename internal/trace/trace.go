// Package trace records simulation lifecycle events as JSON Lines and
// reads them back, enabling post-hoc analysis (cmd/dlmtrace) and
// regression comparison of whole runs.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dlm/internal/msg"
	"dlm/internal/overlay"
)

// EventKind enumerates traced events.
type EventKind string

// Trace event kinds.
const (
	EventJoin    EventKind = "join"
	EventLeave   EventKind = "leave"
	EventPromote EventKind = "promote"
	EventDemote  EventKind = "demote"
)

// Event is one trace record.
type Event struct {
	T    float64    `json:"t"`
	Kind EventKind  `json:"kind"`
	Peer msg.PeerID `json:"peer"`
	// Capacity and Age are included for lifecycle analysis; Age is the
	// peer's age at event time.
	Capacity float64 `json:"capacity,omitempty"`
	Age      float64 `json:"age,omitempty"`
	// Layer is the peer's layer after the event.
	Layer string `json:"layer,omitempty"`
}

// Recorder observes an overlay and streams events to w.
type Recorder struct {
	overlay.NopObserver
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

// NewRecorder wraps w; call Flush when the run completes.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Count returns the number of events recorded.
func (r *Recorder) Count() int { return r.n }

// Flush drains the buffer.
func (r *Recorder) Flush() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Recorder) emit(e Event) {
	if r.err != nil {
		return
	}
	r.n++
	if err := r.enc.Encode(e); err != nil {
		r.err = err
	}
}

// OnJoin implements overlay.Observer.
func (r *Recorder) OnJoin(n *overlay.Network, p *overlay.Peer) {
	r.emit(Event{
		T: float64(n.Now()), Kind: EventJoin, Peer: p.ID,
		Capacity: p.Capacity, Layer: p.Layer.String(),
	})
}

// OnLeave implements overlay.Observer.
func (r *Recorder) OnLeave(n *overlay.Network, p *overlay.Peer) {
	r.emit(Event{
		T: float64(n.Now()), Kind: EventLeave, Peer: p.ID,
		Capacity: p.Capacity, Age: p.Age(n.Now()), Layer: p.Layer.String(),
	})
}

// OnLayerChange implements overlay.Observer.
func (r *Recorder) OnLayerChange(n *overlay.Network, p *overlay.Peer, old overlay.Layer) {
	kind := EventPromote
	if p.Layer == overlay.LayerLeaf {
		kind = EventDemote
	}
	r.emit(Event{
		T: float64(n.Now()), Kind: kind, Peer: p.ID,
		Capacity: p.Capacity, Age: p.Age(n.Now()), Layer: p.Layer.String(),
	})
}

// Read parses a JSONL trace stream.
func Read(rd io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return out, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Summary aggregates a trace.
type Summary struct {
	Joins, Leaves, Promotions, Demotions int
	// SessionsByLayer counts departures by the layer held at leave time.
	SuperLeaves, LeafLeaves int
	// MeanSuperAgeAtLeave and MeanLeafAgeAtLeave summarize realized
	// session lengths per layer.
	MeanSuperAgeAtLeave float64
	MeanLeafAgeAtLeave  float64
	// FlapCount is the number of peers that changed layer more than
	// twice (promotion/demotion churn).
	FlapCount int
}

// Summarize computes aggregate statistics over a trace.
func Summarize(events []Event) Summary {
	var s Summary
	var supSum, leafSum float64
	changes := map[msg.PeerID]int{}
	for _, e := range events {
		switch e.Kind {
		case EventJoin:
			s.Joins++
		case EventLeave:
			s.Leaves++
			if e.Layer == overlay.LayerSuper.String() {
				s.SuperLeaves++
				supSum += e.Age
			} else {
				s.LeafLeaves++
				leafSum += e.Age
			}
		case EventPromote:
			s.Promotions++
			changes[e.Peer]++
		case EventDemote:
			s.Demotions++
			changes[e.Peer]++
		}
	}
	if s.SuperLeaves > 0 {
		s.MeanSuperAgeAtLeave = supSum / float64(s.SuperLeaves)
	}
	if s.LeafLeaves > 0 {
		s.MeanLeafAgeAtLeave = leafSum / float64(s.LeafLeaves)
	}
	for _, c := range changes {
		if c > 2 {
			s.FlapCount++
		}
	}
	return s
}
