package trace

import (
	"strings"
	"testing"

	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/workload"
)

func TestRecorderRoundTrip(t *testing.T) {
	eng := sim.NewEngine(3)
	n := overlay.New(eng, overlay.Config{M: 2, KS: 3, Eta: 10}, nil)
	var sb strings.Builder
	rec := NewRecorder(&sb)
	n.Observe(rec)

	churn := &overlay.Churn{
		Net: n,
		Profile: &workload.StaticProfile{
			Capacity: workload.Uniform{Lo: 1, Hi: 100},
			Lifetime: workload.Exponential{MeanVal: 20},
		},
		TargetSize: 100,
		GrowthRate: 25,
	}
	churn.Start()
	if err := eng.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	// Trigger a promotion and a demotion explicitly.
	var leafPeer *overlay.Peer
	for _, id := range n.LeafIDs() {
		leafPeer = n.Peer(id)
		break
	}
	n.Promote(leafPeer)
	n.Demote(leafPeer)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rec.Count() {
		t.Fatalf("read %d events, recorder says %d", len(events), rec.Count())
	}
	sum := Summarize(events)
	cnt := n.Counters()
	if sum.Joins != int(cnt.Joins) {
		t.Errorf("trace joins %d, counters %d", sum.Joins, cnt.Joins)
	}
	if sum.Leaves != int(cnt.Leaves) {
		t.Errorf("trace leaves %d, counters %d", sum.Leaves, cnt.Leaves)
	}
	if sum.Promotions != int(cnt.Promotions) || sum.Demotions != int(cnt.Demotions) {
		t.Errorf("trace role changes %d/%d, counters %d/%d",
			sum.Promotions, sum.Demotions, cnt.Promotions, cnt.Demotions)
	}
	if sum.Promotions == 0 || sum.Demotions == 0 {
		t.Fatal("expected at least one promotion and demotion")
	}
	if sum.SuperLeaves+sum.LeafLeaves != sum.Leaves {
		t.Error("leave layer partition broken")
	}
}

func TestReadBadLine(t *testing.T) {
	_, err := Read(strings.NewReader("{\"t\":1}\nnot-json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadSkipsEmptyLines(t *testing.T) {
	events, err := Read(strings.NewReader("\n{\"t\":1,\"kind\":\"join\",\"peer\":1}\n\n"))
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%d err=%v", len(events), err)
	}
}

func TestSummarizeFlaps(t *testing.T) {
	events := []Event{
		{Kind: EventPromote, Peer: 1},
		{Kind: EventDemote, Peer: 1},
		{Kind: EventPromote, Peer: 1}, // third change: flap
		{Kind: EventPromote, Peer: 2}, // single change: fine
	}
	s := Summarize(events)
	if s.FlapCount != 1 {
		t.Fatalf("flaps = %d, want 1", s.FlapCount)
	}
	if s.Promotions != 3 || s.Demotions != 1 {
		t.Fatalf("promote/demote = %d/%d", s.Promotions, s.Demotions)
	}
}

func TestMeanAgesAtLeave(t *testing.T) {
	events := []Event{
		{Kind: EventLeave, Layer: "super", Age: 100},
		{Kind: EventLeave, Layer: "super", Age: 200},
		{Kind: EventLeave, Layer: "leaf", Age: 30},
	}
	s := Summarize(events)
	if s.MeanSuperAgeAtLeave != 150 || s.MeanLeafAgeAtLeave != 30 {
		t.Fatalf("ages %v/%v", s.MeanSuperAgeAtLeave, s.MeanLeafAgeAtLeave)
	}
}
