// Package flatidx provides a flat open-addressed position index from
// 32-bit peer IDs to 32-bit slice positions.
//
// The overlay's link sets and the protocol's related set both keep their
// elements in a dense slice (iteration order is part of the observable,
// deterministic behavior) and bolt on a side index only to make
// Contains/Remove O(1) once the slice grows large. That index is pure
// acceleration — it is consulted, never iterated — so it needs exactly
// three fast operations: Get, Put, Delete. A runtime map pays for
// genericity these callers don't use (tophash groups, random iteration
// seeds, pointer-laden buckets the GC must scan); a flat table of packed
// uint64 slots with linear probing is several times cheaper on this
// access pattern and is invisible to the garbage collector.
//
// Keys are peer IDs, which the overlay allocates sequentially from zero;
// the all-ones key ^uint32(0) is reserved to keep the empty-slot encoding
// branch-free and must never be inserted.
package flatidx

// Map is an open-addressed uint32→int32 hash table with linear probing
// and backward-shift deletion (no tombstones, so long-lived tables don't
// degrade under churn). The zero value is ready to use.
type Map struct {
	// slots packs (key+1)<<32 | uint32(value); 0 means empty. The +1 bias
	// keeps a stored key 0 distinct from an empty slot while letting
	// Clear and growth use plain zeroing.
	slots []uint64
	mask  uint32
	n     int
}

// hashMul is the 32-bit Fibonacci multiplier (2^32/φ); sequential keys —
// the common case for peer IDs — spread evenly across the table.
const hashMul = 0x9E3779B9

func (m *Map) home(k uint32) uint32 { return (k * hashMul) & m.mask }

// Len returns the number of stored entries.
func (m *Map) Len() int { return m.n }

// Get returns the value stored for k.
func (m *Map) Get(k uint32) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	want := (uint64(k) + 1) << 32
	for i := m.home(k); ; i = (i + 1) & m.mask {
		s := m.slots[i]
		if s == 0 {
			return 0, false
		}
		if s&^0xFFFFFFFF == want {
			return int32(uint32(s)), true
		}
	}
}

// Put inserts or overwrites the value for k. k must not be ^uint32(0).
func (m *Map) Put(k uint32, v int32) {
	// Grow at 3/4 load so probe chains stay short.
	if 4*(m.n+1) > 3*len(m.slots) {
		m.grow()
	}
	want := (uint64(k) + 1) << 32
	for i := m.home(k); ; i = (i + 1) & m.mask {
		s := m.slots[i]
		if s == 0 {
			m.slots[i] = want | uint64(uint32(v))
			m.n++
			return
		}
		if s&^0xFFFFFFFF == want {
			m.slots[i] = want | uint64(uint32(v))
			return
		}
	}
}

// Delete removes k's entry if present, back-shifting the probe chain so
// the table stays tombstone-free.
func (m *Map) Delete(k uint32) {
	if m.n == 0 {
		return
	}
	want := (uint64(k) + 1) << 32
	i := m.home(k)
	for {
		s := m.slots[i]
		if s == 0 {
			return
		}
		if s&^0xFFFFFFFF == want {
			break
		}
		i = (i + 1) & m.mask
	}
	m.n--
	// Shift later entries of the chain back into the hole whenever their
	// home position lies at or before it (cyclically), preserving the
	// probe-reachability invariant.
	for j := (i + 1) & m.mask; ; j = (j + 1) & m.mask {
		s := m.slots[j]
		if s == 0 {
			break
		}
		h := m.home(uint32(s>>32) - 1)
		if (j-h)&m.mask >= (j-i)&m.mask {
			m.slots[i] = s
			i = j
		}
	}
	m.slots[i] = 0
}

// Clear empties the table in place, keeping the backing array.
func (m *Map) Clear() {
	clear(m.slots)
	m.n = 0
}

func (m *Map) grow() {
	newCap := 2 * len(m.slots)
	if newCap < 16 {
		newCap = 16
	}
	old := m.slots
	m.slots = make([]uint64, newCap)
	m.mask = uint32(newCap - 1)
	for _, s := range old {
		if s == 0 {
			continue
		}
		for i := m.home(uint32(s>>32) - 1); ; i = (i + 1) & m.mask {
			if m.slots[i] == 0 {
				m.slots[i] = s
				break
			}
		}
	}
}
