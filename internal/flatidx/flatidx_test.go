package flatidx

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	var m Map
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map claims membership")
	}
	m.Delete(7) // no-op on empty
	m.Put(0, 10)
	m.Put(1, 11)
	m.Put(0, 20) // overwrite
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if v, ok := m.Get(0); !ok || v != 20 {
		t.Fatalf("Get(0) = %d,%v, want 20,true", v, ok)
	}
	if v, ok := m.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d,%v, want 11,true", v, ok)
	}
	m.Delete(0)
	if _, ok := m.Get(0); ok || m.Len() != 1 {
		t.Fatal("Delete(0) did not remove the entry")
	}
	if v, ok := m.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) after delete = %d,%v, want 11,true", v, ok)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("len after Clear = %d", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Clear left an entry behind")
	}
}

func TestNegativeValues(t *testing.T) {
	var m Map
	m.Put(5, -3)
	if v, ok := m.Get(5); !ok || v != -3 {
		t.Fatalf("Get(5) = %d,%v, want -3,true", v, ok)
	}
}

// TestOracle drives a Map and a builtin map through the same randomized
// op sequence — including key ranges chosen to force long probe chains,
// growth, and back-shift deletion — and requires identical contents.
func TestOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Map
	ref := map[uint32]int32{}
	for op := 0; op < 200000; op++ {
		// Small key range → heavy collision/overwrite/delete traffic.
		k := uint32(rng.Intn(512))
		switch rng.Intn(3) {
		case 0, 1:
			v := int32(rng.Intn(1 << 20))
			m.Put(k, v)
			ref[k] = v
		case 2:
			m.Delete(k)
			delete(ref, k)
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("len = %d, ref %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v, ref %d", k, got, ok, v)
		}
	}
	for k := uint32(0); k < 512; k++ {
		if _, inRef := ref[k]; !inRef {
			if _, ok := m.Get(k); ok {
				t.Fatalf("Get(%d) true, ref absent", k)
			}
		}
	}
}

// TestSequentialKeys mirrors the real workload: peer IDs allocated
// sequentially, positions shuffled by swap-removes.
func TestSequentialKeys(t *testing.T) {
	var m Map
	const n = 10000
	for k := uint32(0); k < n; k++ {
		m.Put(k, int32(k))
	}
	for k := uint32(0); k < n; k += 2 {
		m.Delete(k)
	}
	if m.Len() != n/2 {
		t.Fatalf("len = %d, want %d", m.Len(), n/2)
	}
	for k := uint32(0); k < n; k++ {
		v, ok := m.Get(k)
		if k%2 == 0 {
			if ok {
				t.Fatalf("Get(%d) survived deletion", k)
			}
		} else if !ok || v != int32(k) {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", k, v, ok, k)
		}
	}
}

func BenchmarkPutGetDelete(b *testing.B) {
	var m Map
	for i := 0; i < b.N; i++ {
		k := uint32(i) & 1023
		m.Put(k, int32(i))
		m.Get(k ^ 511)
		m.Delete(k &^ 7)
	}
}
