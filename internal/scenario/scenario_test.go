package scenario

import (
	"bytes"
	"math"
	"testing"

	"dlm/internal/sim"
)

func TestValidateRejectsMalformedConfigs(t *testing.T) {
	ok := Partition(500, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("pack scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no phases", func(c *Config) { c.Phases = nil }},
		{"zero-length phase", func(c *Config) { c.Phases[0].Len = 0 }},
		{"NaN phase length", func(c *Config) { c.Phases[0].Len = math.NaN() }},
		{"infinite join rate", func(c *Config) { c.Phases[0].ExtraJoinStart = math.Inf(1) }},
		{"NaN join rate", func(c *Config) { c.Phases[1].ExtraJoinEnd = math.NaN() }},
		{"negative wave amplitude", func(c *Config) { c.Phases[0].WaveAmplitude = -1 }},
		{"wave without period", func(c *Config) { c.Phases[0].WaveAmplitude = 5 }},
		{"kill fraction one", func(c *Config) { c.Phases[1].KillTopFraction = 1 }},
		{"negative kill fraction", func(c *Config) { c.Phases[1].KillTopFraction = -0.1 }},
		{"liar fraction above one", func(c *Config) { c.LiarFraction = 1.5 }},
		{"NaN liar factor", func(c *Config) { c.LiarFraction = 0.1; c.LiarCapFactor = math.NaN() }},
		{"negative defense", func(c *Config) { c.DefenseMaxCapacity = -1 }},
		{"lifetime wave amplitude one", func(c *Config) { c.LifetimeWaveAmplitude = 1 }},
		{"lifetime wave without period", func(c *Config) { c.LifetimeWaveAmplitude = 0.5 }},
		{"negative shards", func(c *Config) { c.Shards = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Partition(500, 1)
			c.Phases = append([]Phase(nil), c.Phases...)
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("malformed config validated")
			}
			if _, err := Run(c); err == nil {
				t.Error("driver ran a malformed config")
			}
		})
	}
}

func TestPackShapes(t *testing.T) {
	pack := Pack(1000, 7)
	if len(pack) != 6 {
		t.Fatalf("pack has %d scenarios, want 6", len(pack))
	}
	names := map[string]bool{}
	for _, c := range pack {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if names[c.Name] {
			t.Errorf("duplicate scenario name %q", c.Name)
		}
		names[c.Name] = true
		if got := c.TotalLen(); got != packTotal {
			t.Errorf("%s: total length %g, want %d", c.Name, got, packTotal)
		}
	}
	for _, c := range Quick(1000, 7) {
		if err := c.Validate(); err != nil {
			t.Errorf("quick %s: %v", c.Name, err)
		}
		if got := c.TotalLen(); got >= packTotal/2 {
			t.Errorf("quick %s: total length %g not compressed", c.Name, got)
		}
	}
}

// TestScenarioShardDeterminism pins the core promise of the driver: a
// scenario's sampled trace — exact ratio bits and all structural
// counters — is byte-identical whether the tick's decision phase (and,
// since the event plane sharded, the same-timestamp delivery batches)
// runs serially or fanned across workers, including a count (7) that
// does not divide the 64 lanes.
func TestScenarioShardDeterminism(t *testing.T) {
	shardCounts := []int{1, 2, 4, 7}
	for _, cfg := range Quick(2000, 1) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			var base []byte
			for _, k := range shardCounts {
				c := cfg
				c.Shards = k
				res, err := Run(c)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if len(res.Invariants) != 0 {
					t.Fatalf("shards=%d: invariant violations: %v", k, res.Invariants)
				}
				if k == 1 {
					base = res.Trace
					continue
				}
				if !bytes.Equal(res.Trace, base) {
					t.Errorf("trace differs between 1 and %d shards", k)
				}
			}
			if len(base) == 0 {
				t.Error("empty trace")
			}
		})
	}
}

// TestAdversarialSmoke is the CI smoke lane: the two cheapest pack
// scenarios at n=5000 on the compressed timeline, serial and with 4
// shards, every oracle checked. The adversarialsmoke lane runs this
// under -race.
func TestAdversarialSmoke(t *testing.T) {
	var eng *sim.Engine
	for _, cfg := range Quick(5000, 1) {
		for _, k := range []int{1, 4} {
			c := cfg
			c.Shards = k
			if eng == nil {
				eng = sim.NewEngine(c.Base.Seed)
			}
			res, err := RunOn(eng, c)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", c.Name, k, err)
			}
			if len(res.Invariants) != 0 {
				t.Errorf("%s shards=%d: invariant violations: %v", c.Name, k, res.Invariants)
			}
			if !(res.Final.Ratio > 0) || math.IsInf(res.Final.Ratio, 0) {
				t.Errorf("%s shards=%d: final ratio %v", c.Name, k, res.Final.Ratio)
			}
			if res.Name == "masskill" && res.Killed == 0 {
				t.Errorf("%s: mass kill removed nobody", c.Name)
			}
			if res.Name == "partition" && res.PartitionDrops == 0 {
				t.Errorf("%s: partition dropped nothing", c.Name)
			}
		}
	}
}

// TestLiarCaptureAndDefense runs the misreporting scenario with an
// egregious 1000x capacity lie: without the defense the liars take a
// materially larger share of the super layer than with it.
func TestLiarCaptureAndDefense(t *testing.T) {
	run := func(defense float64) *Result {
		c := Liars(2000, 1)
		c.LiarCapFactor = 1000 // every lie lands far beyond the 4000 bound
		c.DefenseMaxCapacity = defense
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Invariants) != 0 {
			t.Fatalf("invariant violations: %v", res.Invariants)
		}
		return res
	}
	off := run(0)
	on := run(4000)
	if off.LiarPopPct < 5 || off.LiarPopPct > 15 {
		t.Errorf("liar population share %.1f%%, want about 10%%", off.LiarPopPct)
	}
	if off.LiarSuperPct <= off.LiarPopPct {
		t.Errorf("undefended liars did not capture the super layer: %.1f%% of supers vs %.1f%% of peers",
			off.LiarSuperPct, off.LiarPopPct)
	}
	if on.LiarSuperPct >= off.LiarSuperPct {
		t.Errorf("defense did not reduce capture: on %.1f%%, off %.1f%%",
			on.LiarSuperPct, off.LiarSuperPct)
	}
}

// TestDefenseTransparentEndToEnd: with no liars in the population the
// defense gates never fire, so a defended run's trace must be
// byte-identical to the undefended one — the whole-simulation version of
// the protocol-level transparency pin.
func TestDefenseTransparentEndToEnd(t *testing.T) {
	cfg := Quick(2000, 1)[0]
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DefenseMaxCapacity = 4000
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Trace, on.Trace) {
		t.Error("defense changed a liar-free run")
	}
}

// TestConvergenceOracle is the acceptance oracle at real scale: after a
// partition heals and after a flash crowd drains, a 100k-peer network
// must return the layer ratio to within 4% of η, re-converge within the
// observed window, and tighten monotonically (late recovery envelope no
// worse than early). Structural invariants hold at every phase boundary.
func TestConvergenceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-peer scenarios; skipped in -short")
	}
	if raceEnabled {
		t.Skip("100k-peer scenarios; skipped under -race (see adversarialsmoke lane)")
	}
	var eng *sim.Engine
	for _, cfg := range []Config{Partition(100_000, 1), FlashCrowd(100_000, 1)} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			if eng == nil {
				eng = sim.NewEngine(cfg.Base.Seed)
			}
			res, err := RunOn(eng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Invariants) != 0 {
				t.Fatalf("invariant violations: %v", res.Invariants)
			}
			if res.PostErrPct > 4 {
				t.Errorf("post-disturbance ratio error %.2f%%, want <= 4%%", res.PostErrPct)
			}
			if math.IsInf(res.ReconvergeTime, 1) || math.IsNaN(res.ReconvergeTime) {
				t.Errorf("never re-converged (band %.1f%%)", res.BandPct)
			}
			if res.EnvelopeLate > res.EnvelopeEarly {
				t.Errorf("recovery envelope widened: early %.2f%%, late %.2f%%",
					res.EnvelopeEarly, res.EnvelopeLate)
			}
			if cfg.Name == "flashcrowd" {
				if res.ExtraJoins == 0 {
					t.Error("flash crowd injected no joins")
				}
				if res.PeakErrPct <= res.PostErrPct {
					t.Errorf("no visible disturbance: peak %.2f%% <= post %.2f%%",
						res.PeakErrPct, res.PostErrPct)
				}
			}
		})
	}
}
