package scenario

import (
	"fmt"
	"math"
	"sort"

	"dlm/internal/core"
	"dlm/internal/msg"
	"dlm/internal/overlay"
	"dlm/internal/sim"
	"dlm/internal/stats"
	"dlm/internal/workload"
)

// smoothWindow is the trailing-mean window (time units) used for the
// recovery metrics: the raw ratio is noisy at small n, and the paper's
// convergence claims are about the settled level, not tick jitter.
const smoothWindow = 50

// reconvergeRuns is how many consecutive smoothed samples must sit inside
// the band before the system counts as re-converged — one sample grazing
// the band during a transient must not end the clock.
const reconvergeRuns = 3

// Result carries everything the adversarial battery measures from one
// scenario run, plus the oracle outputs.
type Result struct {
	Name string
	N    int
	Eta  float64

	// Ratio is the sampled leaves-per-super time series for the whole
	// run; Supers and Leaves are the layer populations.
	Ratio  *stats.Series
	Supers *stats.Series
	Leaves *stats.Series

	// DisturbStart and DisturbEnd bound the disturbed phases (NaN when no
	// phase is marked Disturbed).
	DisturbStart float64
	DisturbEnd   float64

	// PreErrPct is the mean |ratio-η|/η over the 100 units before the
	// disturbance; PeakErrPct the worst smoothed error from the
	// disturbance start to the end of the run; PostErrPct the mean error
	// over the final 100 units.
	PreErrPct  float64
	PeakErrPct float64
	PostErrPct float64

	// BandPct is the re-convergence band actually used:
	// max(4, PreErrPct) percent of η — the scenario must return to its
	// own pre-disturbance quality, floored at the paper-level 4%.
	BandPct float64
	// ReconvergeTime is how long after DisturbEnd the smoothed ratio
	// re-entered the band and stayed for reconvergeRuns samples
	// (+Inf when it never did, 0 when it never left).
	ReconvergeTime float64
	// EnvelopeEarly and EnvelopeLate are the peak smoothed errors over
	// the first and last quarters of the recovery window — a monotone
	// envelope has Late <= Early.
	EnvelopeEarly float64
	EnvelopeLate  float64

	// LiarSuperPct and LiarPopPct are the liars' share (percent) of the
	// final super layer and of the final population — the capture
	// measurement for the misreporting scenarios.
	LiarSuperPct float64
	LiarPopPct   float64

	// ExtraJoins counts scenario-driven joins beyond replacement churn.
	ExtraJoins uint64
	// Killed counts peers removed by mass-kill triggers.
	Killed int

	// Decision and message overhead for the whole run.
	Promotions uint64
	Demotions  uint64
	DLMMsgs    uint64
	// PartitionDrops counts messages severed by partitions.
	PartitionDrops uint64

	// Invariants holds structural violations found at phase boundaries
	// and at the end of the run (always empty in a healthy run); each is
	// prefixed with the checkpoint label.
	Invariants []string

	// Trace is a deterministic byte transcript of the sampled run
	// (exact float bits of the ratio plus structural counters); equal
	// traces mean byte-identical runs. The shard-determinism test pins
	// Trace equality across shard counts.
	Trace []byte

	// Final is the last snapshot.
	Final overlay.LayerStats
}

// compiledPhase is a Phase resolved onto the absolute timeline.
type compiledPhase struct {
	Phase
	start, end float64
	rate       workload.Rate // nil when the phase adds no extra joins
}

// compile places the phases on the absolute timeline and builds their
// extra-join rate functions from the workload rate primitives.
func compile(phases []Phase) []compiledPhase {
	out := make([]compiledPhase, len(phases))
	at := 0.0
	for i, ph := range phases {
		cp := compiledPhase{Phase: ph, start: at, end: at + ph.Len}
		var parts workload.SumRate
		if ph.ExtraJoinStart > 0 || ph.ExtraJoinEnd > 0 {
			parts = append(parts, workload.RampRate{
				Start: sim.Time(cp.start), End: sim.Time(cp.end),
				From: ph.ExtraJoinStart, To: ph.ExtraJoinEnd,
			})
		}
		if ph.WaveAmplitude > 0 && ph.WavePeriod > 0 {
			parts = append(parts, workload.SinusoidRate{
				Amplitude: ph.WaveAmplitude,
				Period:    sim.Duration(ph.WavePeriod),
				Origin:    sim.Time(cp.start),
			})
		}
		if len(parts) > 0 {
			cp.rate = parts
		}
		out[i] = cp
		at = cp.end
	}
	return out
}

// liarMarker marks a fraction of joining peers as misreporters. It draws
// one uniform variate per join from its dedicated stream, so runs with
// LiarFraction == 0 never construct it and stay byte-identical.
type liarMarker struct {
	overlay.NopObserver
	rng       *sim.Source
	fraction  float64
	capFactor float64
	ageBoost  float64
}

// OnJoin implements overlay.Observer.
func (l *liarMarker) OnJoin(_ *overlay.Network, p *overlay.Peer) {
	if l.rng.Float64() < l.fraction {
		p.MisreportCapFactor = l.capFactor
		p.MisreportAgeBoost = l.ageBoost
	}
}

// Run executes one scenario on a fresh engine.
func Run(cfg Config) (*Result, error) { return RunOn(nil, cfg) }

// RunOn executes one scenario against a caller-owned engine (Reset to the
// scenario seed first; nil allocates a fresh one — results are identical
// either way). The driver schedules each phase's triggers at its start
// time, runs invariant oracles at every phase boundary and at the end,
// and computes the recovery metrics from the sampled series.
func RunOn(eng *sim.Engine, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := cfg.Base
	total := cfg.TotalLen()
	sc.Duration = total
	if sc.Warmup >= total {
		sc.Warmup = 0
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	if eng == nil {
		eng = sim.NewEngine(sc.Seed)
	} else {
		eng.Reset(sc.Seed)
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	eng.SetShards(shards)

	params := core.DefaultParams()
	params.DefenseMaxCapacity = cfg.DefenseMaxCapacity
	mgr := core.NewManager(params)
	net := overlay.New(eng, sc.Overlay(), mgr)

	if cfg.LiarFraction > 0 {
		net.Observe(&liarMarker{
			rng:       eng.Rand().Stream("scenario.liar"),
			fraction:  cfg.LiarFraction,
			capFactor: cfg.LiarCapFactor,
			ageBoost:  cfg.LiarAgeBoost,
		})
	}

	profile := workload.Profile(sc.BaseProfile())
	if cfg.LifetimeWaveAmplitude > 0 {
		profile = &workload.SinusoidalProfile{
			Base:              profile,
			Period:            sim.Duration(cfg.LifetimeWavePeriod),
			LifetimeAmplitude: cfg.LifetimeWaveAmplitude,
		}
	}
	churn := &overlay.Churn{
		Net:        net,
		Profile:    profile,
		TargetSize: sc.N,
		GrowthRate: sc.GrowthRate,
	}
	churn.Start()

	res := &Result{
		Name: cfg.Name, N: sc.N, Eta: sc.Eta,
		Ratio: &stats.Series{}, Supers: &stats.Series{}, Leaves: &stats.Series{},
		DisturbStart: math.NaN(), DisturbEnd: math.NaN(),
	}

	d := &driver{
		eng: eng, net: net, cfg: &cfg, res: res,
		phases:  compile(cfg.Phases),
		profile: profile,
	}
	for _, cp := range d.phases {
		if cp.rate != nil {
			d.anyExtra = true
		}
		if cp.Disturbed {
			if math.IsNaN(res.DisturbStart) {
				res.DisturbStart = cp.start
			}
			res.DisturbEnd = cp.end
		}
	}
	if d.anyExtra {
		d.joinRng = eng.Rand().Stream("scenario.join")
	}

	// Phase-boundary triggers: partition raise/heal, mass kill, and the
	// invariant oracle. Scheduled before the driver ticker, so at a
	// shared timestamp the trigger runs before that tick's decisions.
	for i := range d.phases {
		cp := &d.phases[i]
		eng.Schedule(sim.Time(cp.start), sim.EventFunc(func(e *sim.Engine) {
			d.enterPhase(cp)
		}))
	}

	d.nextSample = 0
	eng.Ticker(1, func(e *sim.Engine) bool {
		net.Tick()
		now := float64(e.Now())
		if d.anyExtra {
			rate := d.rateAt(now)
			for k := d.acc.Take(rate, 1); k > 0; k-- {
				d.spawnExtra()
			}
		}
		if now >= d.nextSample {
			d.nextSample = now + sc.SampleEvery
			d.sample(now)
		}
		return e.Now() < sim.Time(total)
	})
	if err := eng.RunUntil(sim.Time(total)); err != nil {
		return nil, err
	}

	d.checkInvariants("end")
	res.Final = net.Snapshot()
	res.Promotions = mgr.Promotions
	res.Demotions = mgr.Demotions
	res.DLMMsgs = net.Traffic().DLMMessages()
	res.PartitionDrops = net.Counters().PartitionDrops

	var liarsTotal, liarSupers, pop int
	net.WalkPeers(func(p *overlay.Peer) {
		pop++
		if p.Liar() {
			liarsTotal++
			if p.Layer == overlay.LayerSuper {
				liarSupers++
			}
		}
	})
	if ns := net.NumSupers(); ns > 0 {
		res.LiarSuperPct = 100 * float64(liarSupers) / float64(ns)
	}
	if pop > 0 {
		res.LiarPopPct = 100 * float64(liarsTotal) / float64(pop)
	}

	res.computeRecovery(total)
	return res, nil
}

// driver is the per-run mutable state shared by the ticker and the
// phase-boundary events.
type driver struct {
	eng     *sim.Engine
	net     *overlay.Network
	cfg     *Config
	res     *Result
	phases  []compiledPhase
	profile workload.Profile

	anyExtra   bool
	joinRng    *sim.Source
	acc        workload.RateAccumulator
	nextSample float64
	trace      []byte
}

// rateAt evaluates the extra-join rate of the phase containing now.
func (d *driver) rateAt(now float64) float64 {
	for i := range d.phases {
		cp := &d.phases[i]
		if now < cp.end || i == len(d.phases)-1 {
			if cp.rate == nil || now < cp.start {
				return 0
			}
			return cp.rate.At(sim.Time(now))
		}
	}
	return 0
}

// spawnExtra injects one scenario-driven join. The peer's endowment comes
// from the run's workload profile via the dedicated "scenario.join"
// stream, and its departure is scheduled out-of-band: when it dies it is
// NOT replaced, so the crowd drains away instead of permanently raising
// the population.
func (d *driver) spawnExtra() {
	s := d.profile.NewPeer(d.eng.Now(), d.joinRng)
	p := d.net.Join(s.Capacity, s.Lifetime, nil)
	d.res.ExtraJoins++
	id := p.ID
	net := d.net
	// The death timer waits on the lane that owns the new peer, like every
	// peer-targeted event; firing order is engine-global sequence, so the
	// routing changes only which queue carries it.
	d.eng.AfterLane(net.LaneOf(p), sim.Duration(s.Lifetime), sim.EventFunc(func(*sim.Engine) {
		if q := net.Peer(id); q != nil && q.Alive() {
			net.Leave(q)
		}
	}))
}

// enterPhase fires the phase's edge triggers and runs the invariant
// oracle at the boundary.
func (d *driver) enterPhase(cp *compiledPhase) {
	d.checkInvariants(fmt.Sprintf("enter %s@%g", cp.Name, cp.start))
	if cp.Partition {
		// Bisect by ID parity: deterministic, uniform, and free.
		d.net.SetPartition(func(id msg.PeerID) uint8 { return uint8(id & 1) })
	} else {
		d.net.SetPartition(nil)
	}
	if cp.KillTopFraction > 0 {
		d.massKill(cp.KillTopFraction)
	}
}

// massKill removes the top fraction of the super layer by claimed
// capacity in one tick — the correlated "all the big supers die at once"
// failure. Ordering is fully deterministic (capacity descending, ID
// ascending on ties) and no random draw happens.
func (d *driver) massKill(fraction float64) {
	ids := append([]msg.PeerID(nil), d.net.SuperIDs()...)
	sort.Slice(ids, func(i, j int) bool {
		pi, pj := d.net.Peer(ids[i]), d.net.Peer(ids[j])
		if pi.Capacity != pj.Capacity {
			return pi.Capacity > pj.Capacity
		}
		return ids[i] < ids[j]
	})
	kill := int(fraction * float64(len(ids)))
	for _, id := range ids[:kill] {
		if p := d.net.Peer(id); p != nil && p.Alive() {
			d.net.Leave(p)
			d.res.Killed++
		}
	}
}

// checkInvariants runs the structural oracle and records any violation
// under the checkpoint label.
func (d *driver) checkInvariants(label string) {
	for _, v := range d.net.CheckInvariants() {
		d.res.Invariants = append(d.res.Invariants, label+": "+v)
	}
}

// sample records one observation into the series and appends the exact
// state to the determinism trace.
func (d *driver) sample(now float64) {
	s := d.net.Snapshot()
	d.res.Ratio.Add(now, s.Ratio)
	d.res.Supers.Add(now, float64(s.NumSupers))
	d.res.Leaves.Add(now, float64(s.NumLeaves))
	c := d.net.Counters()
	d.trace = fmt.Appendf(d.trace, "t=%.0f r=%016x s=%d l=%d j=%d v=%d p=%d d=%d x=%d\n",
		now, math.Float64bits(s.Ratio), s.NumSupers, s.NumLeaves,
		c.Joins, c.Leaves, c.Promotions, c.Demotions, c.PartitionDrops)
	d.res.Trace = d.trace
}

// errPct is |v-η|/η in percent.
func (r *Result) errPct(v float64) float64 {
	if r.Eta == 0 || math.IsNaN(v) {
		return math.NaN()
	}
	return 100 * math.Abs(v-r.Eta) / r.Eta
}

// smoothedAt returns the trailing smoothWindow mean of the ratio at t.
func (r *Result) smoothedAt(t float64) float64 {
	return r.Ratio.MeanOver(t-smoothWindow, t+1e-9)
}

// computeRecovery derives the oracle metrics from the sampled series.
func (r *Result) computeRecovery(total float64) {
	tail := math.Min(100, total/4)
	r.PostErrPct = r.errPct(r.Ratio.MeanOver(total-tail, total+1e-9))

	if math.IsNaN(r.DisturbStart) {
		// No disturbed phase: the run is a plain convergence check.
		r.PreErrPct = math.NaN()
		r.PeakErrPct = math.NaN()
		r.BandPct = math.NaN()
		r.ReconvergeTime = math.NaN()
		r.EnvelopeEarly = math.NaN()
		r.EnvelopeLate = math.NaN()
		return
	}

	ds, de := r.DisturbStart, r.DisturbEnd
	pre := math.Min(100, ds)
	r.PreErrPct = r.errPct(r.Ratio.MeanOver(ds-pre, ds))
	r.BandPct = math.Max(4, r.PreErrPct)
	if math.IsNaN(r.BandPct) {
		r.BandPct = 4
	}

	// Peak and envelope use the smoothed trajectory over the samples.
	peak := 0.0
	var recTimes []float64 // sample times in the recovery window (> de)
	var recErrs []float64
	for _, p := range r.Ratio.Points() {
		if p.T <= ds {
			continue
		}
		e := r.errPct(r.smoothedAt(p.T))
		peak = math.Max(peak, e)
		if p.T > de {
			recTimes = append(recTimes, p.T)
			recErrs = append(recErrs, e)
		}
	}
	r.PeakErrPct = peak

	// Re-convergence: first sample after the disturbance from which
	// reconvergeRuns consecutive smoothed samples sit inside the band.
	r.ReconvergeTime = math.Inf(1)
	run := 0
	for i, e := range recErrs {
		if e <= r.BandPct {
			run++
			if run == reconvergeRuns {
				r.ReconvergeTime = recTimes[i-(reconvergeRuns-1)] - de
				break
			}
		} else {
			run = 0
		}
	}

	// Envelope: peak smoothed error over the first vs last quarter of
	// the recovery window.
	if n := len(recErrs); n >= 4 {
		q := n / 4
		for _, e := range recErrs[:q] {
			r.EnvelopeEarly = math.Max(r.EnvelopeEarly, e)
		}
		for _, e := range recErrs[n-q:] {
			r.EnvelopeLate = math.Max(r.EnvelopeLate, e)
		}
	} else {
		r.EnvelopeEarly = math.NaN()
		r.EnvelopeLate = math.NaN()
	}
}
