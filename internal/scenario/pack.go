package scenario

import (
	"math"

	"dlm/internal/config"
)

// The pack timeline: every scenario settles for settleLen units, fires
// its disturbance at settleLen, and is observed until packTotal so the
// recovery tail is measured well after the disturbance cleared.
const (
	settleLen = 600
	packTotal = 1100
)

// packDefense is the bounded-sanity capacity limit used by the defended
// liar scenario: the Saroiu bandwidth mixture tops out at 4000 KB/s, so
// any larger claim is physically implausible and a defense at exactly
// that edge rejects no honest peer.
const packDefense = 4000

// SteadyJoinRate returns the equilibrium join (= leave) rate of an
// n-peer population under the Table 2 lifetime distribution
// (lognormal, median 60, σ=1.2): n peers divided by the mean lifetime
// 60·exp(1.2²/2).
func SteadyJoinRate(n int) float64 {
	meanLifetime := 60 * math.Exp(1.2*1.2/2)
	return float64(n) / meanLifetime
}

// base builds the shared population scaffold for an n-peer scenario.
func base(name string, n int, seed int64) Config {
	sc := config.Scaled(n)
	sc.Seed = seed
	return Config{Name: name, Base: sc}
}

// FlashCrowd is a 10× join-rate spike: for 10 units the network absorbs
// nine extra steady-rates of fresh leaves on top of replacement churn,
// then the spike decays linearly over 20 units and the crowd drains away
// through its own (unreplaced) departures.
func FlashCrowd(n int, seed int64) Config {
	r := SteadyJoinRate(n)
	c := base("flashcrowd", n, seed)
	c.Phases = []Phase{
		{Name: "settle", Len: settleLen},
		{Name: "spike", Len: 10, ExtraJoinStart: 9 * r, ExtraJoinEnd: 9 * r, Disturbed: true},
		{Name: "decay", Len: 20, ExtraJoinStart: 9 * r, ExtraJoinEnd: 0, Disturbed: true},
		{Name: "recover", Len: packTotal - settleLen - 30},
	}
	return c
}

// Diurnal superimposes sinusoidal join waves (amplitude half the steady
// rate, period 100) and modulates session lengths with the same period —
// the day/night churn pattern — for 300 units.
func Diurnal(n int, seed int64) Config {
	r := SteadyJoinRate(n)
	c := base("diurnal", n, seed)
	c.LifetimeWaveAmplitude = 0.5
	c.LifetimeWavePeriod = 100
	c.Phases = []Phase{
		{Name: "settle", Len: settleLen},
		{Name: "waves", Len: 300, WaveAmplitude: 0.5 * r, WavePeriod: 100, Disturbed: true},
		{Name: "recover", Len: packTotal - settleLen - 300},
	}
	return c
}

// Partition bisects link delivery by peer-ID parity for 80 units — long
// enough for the leaves' related sets to prune cross-side entries — then
// heals.
func Partition(n int, seed int64) Config {
	c := base("partition", n, seed)
	c.Phases = []Phase{
		{Name: "settle", Len: settleLen},
		{Name: "split", Len: 80, Partition: true, Disturbed: true},
		{Name: "heal", Len: packTotal - settleLen - 80},
	}
	return c
}

// Liars makes 10% of all joiners misreport 100× capacity and +300 age,
// with no defense: the capture measurement LiarSuperPct shows how much
// of the super layer the liars take.
func Liars(n int, seed int64) Config {
	c := base("liars", n, seed)
	c.LiarFraction = 0.10
	c.LiarCapFactor = 100
	c.LiarAgeBoost = 300
	c.Phases = []Phase{
		{Name: "steady", Len: packTotal},
	}
	return c
}

// LiarsDefended is Liars with the protocol's bounded-sanity defense at
// the capacity distribution's physical maximum; comparing its
// LiarSuperPct against Liars' quantifies what the defense buys.
func LiarsDefended(n int, seed int64) Config {
	c := Liars(n, seed)
	c.Name = "liars+defense"
	c.DefenseMaxCapacity = packDefense
	return c
}

// MassKill removes the top half of the super layer (by capacity) in a
// single tick — a correlated infrastructure failure — and watches the
// promotion machinery rebuild it.
func MassKill(n int, seed int64) Config {
	c := base("masskill", n, seed)
	c.Phases = []Phase{
		{Name: "settle", Len: settleLen},
		{Name: "kill", Len: 10, KillTopFraction: 0.5, Disturbed: true},
		{Name: "rebuild", Len: packTotal - settleLen - 10},
	}
	return c
}

// Pack returns the full adversarial battery for an n-peer population.
func Pack(n int, seed int64) []Config {
	return []Config{
		FlashCrowd(n, seed),
		Diurnal(n, seed),
		Partition(n, seed),
		Liars(n, seed),
		LiarsDefended(n, seed),
		MassKill(n, seed),
	}
}

// Quick returns the two cheapest scenarios on a compressed timeline for
// CI smoke: partition and mass-kill add no extra joins, so their cost is
// just the base population, and a 200-unit settle is enough for the
// oracles (structural invariants, trace determinism) they smoke-test.
func Quick(n int, seed int64) []Config {
	shorten := func(c Config) Config {
		c.Phases = append([]Phase(nil), c.Phases...)
		c.Phases[0].Len = 200               // settle
		c.Phases[len(c.Phases)-1].Len = 150 // tail
		if ws := &c.Phases[1]; ws.Len > 40 && ws.Partition {
			ws.Len = 40
		}
		return c
	}
	return []Config{
		shorten(Partition(n, seed)),
		shorten(MassKill(n, seed)),
	}
}

// RecommendedSizes is the population sweep the adversarial artifact
// covers.
var RecommendedSizes = []int{10_000, 100_000, 1_000_000}
