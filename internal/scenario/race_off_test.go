//go:build !race

package scenario

// raceEnabled reports whether the race detector is compiled in; the
// 100k-peer convergence oracle skips under it (it would multiply an
// ~80s test several-fold without exercising any new interleaving — the
// dedicated CI smoke lane runs the small scenarios under -race instead).
const raceEnabled = false
