package scenario

import (
	"math"
	"testing"

	"dlm/internal/config"
)

// fuzzConfig decodes an arbitrary byte string plus three raw floats into
// a scenario Config. The bytes build structurally interesting phase lists
// (bounded lengths, rates, waves, partitions, kills); the raw floats are
// injected unclamped so NaN/Inf/negative junk reaches Validate.
func fuzzConfig(data []byte, f1, f2, f3 float64) Config {
	sc := config.Scaled(300)
	sc.Seed = 1
	c := Config{Name: "fuzz", Base: sc}
	for len(data) >= 4 && len(c.Phases) < 5 {
		b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[4:]
		ph := Phase{
			Name:           "p",
			Len:            float64(1 + b0%50),
			ExtraJoinStart: float64(b1 % 32),
			ExtraJoinEnd:   float64(b2 % 32),
			Partition:      b3&1 != 0,
			Disturbed:      b3&2 != 0,
		}
		if b3&4 != 0 {
			ph.WaveAmplitude = float64(b1 % 16)
			ph.WavePeriod = float64(1 + b2%40)
		}
		if b3&8 != 0 {
			ph.KillTopFraction = float64(b0%100) / 100
		}
		c.Phases = append(c.Phases, ph)
	}
	if len(c.Phases) == 0 {
		// Raw floats as the only phase: most junk must be *rejected*.
		c.Phases = []Phase{{Len: f1, ExtraJoinStart: f2, WaveAmplitude: f3, WavePeriod: f1}}
		return c
	}
	// Route the raw floats through the scalar knobs.
	c.LiarFraction = f1
	c.LiarCapFactor = f2
	c.LiarAgeBoost = f3
	c.DefenseMaxCapacity = f2
	if math.Signbit(f3) {
		c.LifetimeWaveAmplitude = f1
		c.LifetimeWavePeriod = f2
	}
	return c
}

// FuzzScenarioConfig feeds arbitrary phase lists and scalar knobs to the
// driver: whatever Validate accepts must run a couple hundred ticks of a
// 300-peer population without panicking and with the structural
// invariants intact at every phase boundary.
func FuzzScenarioConfig(f *testing.F) {
	f.Add([]byte{}, 1.0, 2.0, 3.0)
	f.Add([]byte{}, math.NaN(), math.Inf(1), -1.0)
	f.Add([]byte{10, 5, 0, 0}, 0.0, 0.0, 0.0)                // plain ramp
	f.Add([]byte{20, 3, 10, 4, 30, 0, 0, 1}, 0.0, 0.0, 0.0)  // wave then partition
	f.Add([]byte{40, 0, 0, 8, 15, 6, 2, 3}, 0.1, 50.0, 10.0) // kill, then disturbed ramp, liars
	f.Add([]byte{50, 31, 31, 15, 1, 1, 1, 15, 9, 0, 0, 2}, 0.5, 4000.0, math.Copysign(100, -1))
	f.Fuzz(func(t *testing.T, data []byte, f1, f2, f3 float64) {
		cfg := fuzzConfig(data, f1, f2, f3)
		if err := cfg.Validate(); err != nil {
			// Rejected junk must also be rejected by the driver itself.
			if _, runErr := Run(cfg); runErr == nil {
				t.Fatal("Validate rejected but Run accepted")
			}
			return
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("valid config failed: %v", err)
		}
		if len(res.Invariants) != 0 {
			t.Fatalf("invariant violations: %v", res.Invariants)
		}
		if res.Ratio.Len() == 0 {
			t.Fatal("no samples recorded")
		}
	})
}
