// Package scenario is the adversarial scenario driver: it composes
// time-varying workloads (flash crowds, diurnal waves) and hostile
// behaviors (healing partitions, misreporting peers, correlated mass
// super-peer exits) on top of the existing engine/overlay/DLM stack, and
// checks every run against convergence and structural-invariant oracles.
//
// A scenario is declarative: a base population (config.Scenario) plus an
// ordered list of phases, each phase contributing extra join rates
// (linear ramps and sinusoidal waves from internal/workload), a partition
// window, or a mass-kill trigger. One generic driver (driver.go) executes
// any phase list; the paper-shaped scenario battery lives in Pack
// (pack.go) and is swept across sizes by experiments.Adversarial.
//
// Determinism: the driver draws only from its own named streams
// ("scenario.liar" for liar marking, "scenario.join" for extra-join
// endowments), and only when the scenario actually uses the behavior —
// so benign runs remain byte-identical to runs built before this package
// existed, and every run is byte-identical for any shard count (pinned
// by TestScenarioShardDeterminism).
package scenario

import (
	"fmt"
	"math"

	"dlm/internal/config"
)

// Phase is one span of a scenario timeline. Fields compose: a phase may
// ramp extra joins, superimpose a wave, raise a partition, and mark
// itself as the disturbance all at once.
type Phase struct {
	// Name labels the phase in invariant reports and traces.
	Name string
	// Len is the phase duration in time units (> 0).
	Len float64

	// ExtraJoinStart and ExtraJoinEnd are an extra join rate in peers per
	// time unit, interpolated linearly across the phase, added on top of
	// the base replacement churn. Extra joiners live out their sampled
	// lifetimes and are NOT replaced when they die — a flash crowd passes
	// through the system rather than permanently growing it.
	ExtraJoinStart float64
	ExtraJoinEnd   float64

	// WaveAmplitude and WavePeriod superimpose a sinusoidal extra join
	// rate swinging between 0 and WaveAmplitude, starting from 0 at the
	// phase start (diurnal churn waves). Zero amplitude disables.
	WaveAmplitude float64
	WavePeriod    float64

	// Partition bisects the overlay's link delivery for the whole phase
	// (peers split by ID parity); the partition heals when the phase
	// ends.
	Partition bool

	// KillTopFraction, at the phase start, removes that fraction of the
	// super-layer in one tick — the highest-capacity supers first, the
	// correlated "decapitation" failure. Zero disables.
	KillTopFraction float64

	// Disturbed marks the phase as part of the disturbance window;
	// recovery metrics (peak error, re-convergence time) are measured
	// from the first disturbed phase's start and after the last disturbed
	// phase's end.
	Disturbed bool
}

// Config is one declarative scenario.
type Config struct {
	// Name labels the scenario in reports.
	Name string
	// Base supplies the population, structure and seed; its Duration and
	// Warmup are ignored — the phase list is the timeline.
	Base config.Scenario
	// Phases is the timeline, executed in order.
	Phases []Phase

	// LiarFraction makes that fraction of all joining peers misreport:
	// each liar claims LiarCapFactor times its true capacity and
	// LiarAgeBoost extra age in every protocol message and in its own
	// promotion evaluations. Liars are drawn at join time from the
	// dedicated "scenario.liar" stream.
	LiarFraction  float64
	LiarCapFactor float64
	LiarAgeBoost  float64

	// DefenseMaxCapacity, when positive, enables the protocol's
	// bounded-sanity misreport defense with this capacity bound (see
	// protocol.Params.DefenseMaxCapacity).
	DefenseMaxCapacity float64

	// LifetimeWaveAmplitude and LifetimeWavePeriod modulate the session
	// lengths of ALL joiners sinusoidally (workload.SinusoidalProfile) —
	// the leave-rate half of a diurnal pattern. Zero amplitude disables.
	LifetimeWaveAmplitude float64
	LifetimeWavePeriod    float64

	// Shards is the intra-run worker count for the lane-parallel decision
	// phase; zero runs serially. Results are byte-identical for every
	// value.
	Shards int
}

// TotalLen returns the scenario duration: the sum of the phase lengths.
func (c Config) TotalLen() float64 {
	var total float64
	for _, ph := range c.Phases {
		total += ph.Len
	}
	return total
}

// finite reports whether v is an ordinary float (not NaN or ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports a descriptive error for malformed scenarios. The
// driver validates before touching the engine, so arbitrary configs (the
// fuzz harness feeds them) fail cleanly instead of corrupting a run.
func (c Config) Validate() error {
	if len(c.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", c.Name)
	}
	for i, ph := range c.Phases {
		switch {
		case !(ph.Len > 0) || !finite(ph.Len):
			return fmt.Errorf("scenario %q phase %d: Len = %v, want finite > 0", c.Name, i, ph.Len)
		case !finite(ph.ExtraJoinStart) || !finite(ph.ExtraJoinEnd):
			return fmt.Errorf("scenario %q phase %d: non-finite extra join rate", c.Name, i)
		case !finite(ph.WaveAmplitude) || ph.WaveAmplitude < 0:
			return fmt.Errorf("scenario %q phase %d: WaveAmplitude = %v", c.Name, i, ph.WaveAmplitude)
		case ph.WaveAmplitude > 0 && (!finite(ph.WavePeriod) || ph.WavePeriod <= 0):
			return fmt.Errorf("scenario %q phase %d: wave needs WavePeriod > 0", c.Name, i)
		case !finite(ph.KillTopFraction) || ph.KillTopFraction < 0 || ph.KillTopFraction >= 1:
			return fmt.Errorf("scenario %q phase %d: KillTopFraction = %v, want [0,1)", c.Name, i, ph.KillTopFraction)
		}
	}
	if total := c.TotalLen(); total < 1 {
		return fmt.Errorf("scenario %q: total length %v shorter than one tick", c.Name, total)
	}
	switch {
	case !finite(c.LiarFraction) || c.LiarFraction < 0 || c.LiarFraction > 1:
		return fmt.Errorf("scenario %q: LiarFraction = %v, want [0,1]", c.Name, c.LiarFraction)
	case c.LiarFraction > 0 && (!finite(c.LiarCapFactor) || c.LiarCapFactor < 0 ||
		!finite(c.LiarAgeBoost) || c.LiarAgeBoost < 0):
		return fmt.Errorf("scenario %q: bad liar misreport (factor %v, boost %v)",
			c.Name, c.LiarCapFactor, c.LiarAgeBoost)
	case !finite(c.DefenseMaxCapacity) || c.DefenseMaxCapacity < 0:
		return fmt.Errorf("scenario %q: DefenseMaxCapacity = %v, want >= 0", c.Name, c.DefenseMaxCapacity)
	case !finite(c.LifetimeWaveAmplitude) || c.LifetimeWaveAmplitude < 0 || c.LifetimeWaveAmplitude >= 1:
		return fmt.Errorf("scenario %q: LifetimeWaveAmplitude = %v, want [0,1)", c.Name, c.LifetimeWaveAmplitude)
	case c.LifetimeWaveAmplitude > 0 && !(c.LifetimeWavePeriod > 0 && finite(c.LifetimeWavePeriod)):
		return fmt.Errorf("scenario %q: lifetime wave needs period > 0", c.Name)
	case c.Shards < 0:
		return fmt.Errorf("scenario %q: Shards = %d, want >= 0", c.Name, c.Shards)
	}
	return nil
}
