// Package parexp fans independent simulation trials across a worker pool.
// The discrete-event engine is single-threaded by design (events have a
// total order), so all parallelism lives here: different seeds and sweep
// points run concurrently on a bounded pool of workers, and the results
// are merged deterministically in input order.
//
// Determinism contract: a trial must be a pure function of its seed (plus
// whatever immutable configuration it closes over). Under that contract
// every exported entry point returns byte-identical results regardless of
// worker count — trials are dispatched in index order, results land in
// index-addressed slots, and aggregation happens sequentially in trial
// order after the pool drains.
package parexp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dlm/internal/stats"
)

// Trial is one independent unit of work. It must be self-contained: no
// shared mutable state with other trials.
type Trial[T any] func(seed int64) (T, error)

// Options configures a parallel run.
type Options struct {
	// Workers caps concurrency; 0 means GOMAXPROCS.
	Workers int
	// BaseSeed is the seed of trial 0; trial i uses BaseSeed + i.
	BaseSeed int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes n trials concurrently and returns their results in trial
// order. On failure the pool cancels: trials not yet dispatched are
// skipped, trials already running complete, and the error returned is the
// failure with the smallest trial index, with the results of the
// successful trials preserved.
func Run[T any](n int, opt Options, trial Trial[T]) ([]T, error) {
	return RunWith(n, opt,
		func() struct{} { return struct{}{} },
		func(_ struct{}, seed int64) (T, error) { return trial(seed) })
}

// RunWith is Run with per-worker reusable state: each worker constructs
// one S via newState (lazily, on its first trial) and passes it to every
// trial it executes. The intended use is expensive scaffolding that a
// trial can recycle instead of reallocating — a sim.Engine reset between
// trials, reusable buffers — cutting allocation churn for large sweeps.
//
// The determinism contract extends to state: a trial must (re)initialize
// everything it reads from S before use, because which worker — and hence
// which S, with whatever a previous trial left in it — runs a given trial
// is scheduling-dependent.
//
// Error semantics: the first trial failure (in wall-clock observation
// order) stops dispatch, so later-index trials are skipped; in-flight
// trials run to completion. The error surfaced is deterministic
// nonetheless — the failure with the smallest trial index. Dispatch is
// strictly in index order, so if f is the smallest index whose trial
// deterministically fails, every observed failure has index >= f, which
// means f itself was dispatched (at latest, before the failure that
// triggered cancellation) and its error recorded. A panicking trial is
// converted to an error on the same terms.
func RunWith[S, T any](n int, opt Options, newState func() S, trial func(state S, seed int64) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	w := opt.workers()
	if w > n {
		w = n
	}
	idxCh := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var state S
			ready := false
			for i := range idxCh {
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("parexp: trial %d panicked: %v", i, r)
						}
						if errs[i] != nil {
							failed.Store(true)
						}
					}()
					if !ready {
						state = newState()
						ready = true
					}
					results[i], errs[i] = trial(state, opt.BaseSeed+int64(i))
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break // cancel: skip the trials not yet dispatched
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Sweep runs trial(point, seed) for every point of a parameter sweep,
// with repeats replicas per point, all concurrently. Result [i][j] is
// point i, replica j.
func Sweep[P, T any](points []P, repeats int, opt Options, trial func(p P, seed int64) (T, error)) ([][]T, error) {
	return SweepWith(points, repeats, opt,
		func() struct{} { return struct{}{} },
		func(_ struct{}, p P, seed int64) (T, error) { return trial(p, seed) })
}

// SweepWith is Sweep with per-worker reusable state, on RunWith's terms.
func SweepWith[S, P, T any](points []P, repeats int, opt Options, newState func() S, trial func(state S, p P, seed int64) (T, error)) ([][]T, error) {
	if repeats <= 0 {
		repeats = 1
	}
	flat, err := RunWith(len(points)*repeats, opt, newState, func(state S, seed int64) (T, error) {
		idx := int(seed - opt.BaseSeed)
		return trial(state, points[idx/repeats], seed)
	})
	out := make([][]T, len(points))
	for i := range points {
		out[i] = flat[i*repeats : (i+1)*repeats]
	}
	return out, err
}

// MeanSeries runs n trials that each produce a named time series and
// returns the pointwise mean series.
func MeanSeries(name string, n int, opt Options, trial Trial[*stats.Series]) (*stats.Series, error) {
	series, err := Run(n, opt, trial)
	if err != nil {
		return nil, err
	}
	return stats.MergeMean(name, series), nil
}

// Summary aggregates scalar trial outputs.
type Summary struct {
	stats.Welford
}

// Summarize runs n trials producing one float each and returns the
// aggregate. The Welford accumulation happens sequentially in trial order
// after all trials complete, so the summary is bit-identical for any
// worker count.
func Summarize(n int, opt Options, trial Trial[float64]) (Summary, error) {
	vals, err := Run(n, opt, trial)
	var s Summary
	for _, v := range vals {
		s.Add(v)
	}
	return s, err
}
