// Package parexp fans independent simulation trials across a worker pool.
// The discrete-event engine is single-threaded by design (events have a
// total order), so all parallelism lives here: different seeds and sweep
// points run concurrently on up to GOMAXPROCS goroutines, and the results
// are merged deterministically in input order.
package parexp

import (
	"fmt"
	"runtime"
	"sync"

	"dlm/internal/stats"
)

// Trial is one independent unit of work. It must be self-contained: no
// shared mutable state with other trials.
type Trial[T any] func(seed int64) (T, error)

// Options configures a parallel run.
type Options struct {
	// Workers caps concurrency; 0 means GOMAXPROCS.
	Workers int
	// BaseSeed is the seed of trial 0; trial i uses BaseSeed + i.
	BaseSeed int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes n trials concurrently and returns their results in trial
// order. The first error (by trial index) is returned, with the results
// of the successful trials preserved.
//
// The semaphore is acquired *before* the goroutine is spawned, so at most
// workers() trial goroutines exist at any moment. (Spawning all n up
// front, as an earlier version did, capped running trials but not live
// goroutines — for large sweeps that defeats the worker cap's memory
// purpose: every parked goroutine pins its stack and its captured state.)
func Run[T any](n int, opt Options, trial Trial[T]) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	sem := make(chan struct{}, opt.workers())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("parexp: trial %d panicked: %v", i, r)
				}
			}()
			results[i], errs[i] = trial(opt.BaseSeed + int64(i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Sweep runs trial(point, seed) for every point of a parameter sweep,
// with repeats replicas per point, all concurrently. Result [i][j] is
// point i, replica j.
func Sweep[P, T any](points []P, repeats int, opt Options, trial func(p P, seed int64) (T, error)) ([][]T, error) {
	if repeats <= 0 {
		repeats = 1
	}
	flat, err := Run(len(points)*repeats, opt, func(seed int64) (T, error) {
		idx := int(seed - opt.BaseSeed)
		return trial(points[idx/repeats], seed)
	})
	out := make([][]T, len(points))
	for i := range points {
		out[i] = flat[i*repeats : (i+1)*repeats]
	}
	return out, err
}

// MeanSeries runs n trials that each produce a named time series and
// returns the pointwise mean series.
func MeanSeries(name string, n int, opt Options, trial Trial[*stats.Series]) (*stats.Series, error) {
	series, err := Run(n, opt, trial)
	if err != nil {
		return nil, err
	}
	return stats.MergeMean(name, series), nil
}

// Summary aggregates scalar trial outputs.
type Summary struct {
	stats.Welford
}

// Summarize runs n trials producing one float each and returns the
// aggregate.
func Summarize(n int, opt Options, trial Trial[float64]) (Summary, error) {
	vals, err := Run(n, opt, trial)
	var s Summary
	for _, v := range vals {
		s.Add(v)
	}
	return s, err
}
