package parexp

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dlm/internal/stats"
)

func TestRunOrderAndSeeds(t *testing.T) {
	got, err := Run(8, Options{BaseSeed: 100}, func(seed int64) (int64, error) {
		return seed * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != (100+int64(i))*2 {
			t.Fatalf("trial %d = %d", i, v)
		}
	}
}

func TestRunConcurrencyCap(t *testing.T) {
	var cur, peak int64
	_, err := Run(32, Options{Workers: 3}, func(seed int64) (struct{}, error) {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		defer atomic.AddInt64(&cur, -1)
		// Busy moment to force overlap.
		s := 0.0
		for i := 0; i < 10000; i++ {
			s += math.Sqrt(float64(i))
		}
		_ = s
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&peak) > 3 {
		t.Fatalf("peak concurrency %d exceeds cap 3", peak)
	}
}

// TestRunGoroutineCap pins the stronger invariant behind the worker cap:
// at most Workers trial *goroutines exist* at any moment (not merely "at
// most Workers run"). An earlier Run spawned all n goroutines up front and
// let them park on the semaphore; for large sweeps that pinned every
// trial's stack at once. The counter increments at the very top of the
// goroutine body, so pre-spawned-but-parked goroutines would be counted.
func TestRunGoroutineCap(t *testing.T) {
	var live, peak int64
	_, err := Run(64, Options{Workers: 4}, func(seed int64) (struct{}, error) {
		n := atomic.AddInt64(&live, 1)
		defer atomic.AddInt64(&live, -1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		runtime.Gosched() // widen the window for stragglers to overlap
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > 4 {
		t.Fatalf("peak live trial goroutines %d exceeds Workers=4", got)
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	res, err := Run(5, Options{}, func(seed int64) (int64, error) {
		if seed == 2 {
			return 0, sentinel
		}
		return seed, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// Trials dispatched before the failure keep their results; trials
	// after it may be cancelled (their slots stay zero).
	if res[0] != 0 || res[1] != 1 {
		t.Fatalf("pre-failure results not preserved: %v", res)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	_, err := Run(3, Options{}, func(seed int64) (int, error) {
		if seed == 1 {
			panic("kaboom")
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweep(t *testing.T) {
	points := []float64{1, 2, 3}
	out, err := Sweep(points, 2, Options{BaseSeed: 0}, func(p float64, seed int64) (float64, error) {
		return p * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	for i, p := range points {
		for j := range out[i] {
			if out[i][j] != p*10 {
				t.Fatalf("out[%d][%d] = %v", i, j, out[i][j])
			}
		}
	}
	// repeats <= 0 coerces to 1.
	out, err = Sweep(points, 0, Options{}, func(p float64, seed int64) (float64, error) { return p, nil })
	if err != nil || len(out[0]) != 1 {
		t.Fatalf("repeats=0: %v %d", err, len(out[0]))
	}
}

func TestMeanSeries(t *testing.T) {
	s, err := MeanSeries("m", 4, Options{BaseSeed: 10}, func(seed int64) (*stats.Series, error) {
		out := stats.NewSeries("trial")
		out.Add(1, float64(seed))
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.At(1); v != 11.5 { // mean of 10..13
		t.Fatalf("mean = %v, want 11.5", v)
	}
}

func TestSummarize(t *testing.T) {
	sum, err := Summarize(5, Options{BaseSeed: 1}, func(seed int64) (float64, error) {
		return float64(seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean() != 3 || sum.Count() != 5 {
		t.Fatalf("mean=%v count=%d", sum.Mean(), sum.Count())
	}
}

func TestRunWithReusesStatePerWorker(t *testing.T) {
	type state struct{ scratch []int }
	var built int64
	got, err := RunWith(24, Options{Workers: 3, BaseSeed: 5},
		func() *state {
			atomic.AddInt64(&built, 1)
			return &state{scratch: make([]int, 4)}
		},
		func(s *state, seed int64) (int64, error) {
			if s == nil || len(s.scratch) != 4 {
				return 0, errors.New("state not constructed")
			}
			return seed, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 5+int64(i) {
			t.Fatalf("trial %d = %d", i, v)
		}
	}
	// One state per worker that ran at least one trial — never per trial.
	if n := atomic.LoadInt64(&built); n < 1 || n > 3 {
		t.Fatalf("newState called %d times with 3 workers", n)
	}
}

// TestRunFirstErrorDeterministic pins the cancellation error contract:
// with several deterministically failing trials racing on multiple
// workers, the surfaced error is always the smallest failing index, no
// matter which failure was observed first.
func TestRunFirstErrorDeterministic(t *testing.T) {
	for rep := 0; rep < 50; rep++ {
		_, err := Run(16, Options{Workers: 4}, func(seed int64) (int, error) {
			if seed == 3 || seed == 5 || seed == 11 {
				return 0, fmt.Errorf("trial %d failed", seed)
			}
			time.Sleep(time.Duration(seed%3) * time.Microsecond)
			return 0, nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("rep %d: err = %v, want trial 3's", rep, err)
		}
	}
}

// TestRunCancelsOutstandingAfterFailure pins the cancellation behavior
// itself: once a trial fails, undispatched trials must be skipped rather
// than run to completion.
func TestRunCancelsOutstandingAfterFailure(t *testing.T) {
	const n = 400
	var executed int64
	_, err := Run(n, Options{Workers: 2}, func(seed int64) (int, error) {
		atomic.AddInt64(&executed, 1)
		if seed == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(200 * time.Microsecond)
		return 0, nil
	})
	if err == nil {
		t.Fatal("failure not surfaced")
	}
	if got := atomic.LoadInt64(&executed); got > n/2 {
		t.Fatalf("failure did not cancel dispatch: %d of %d trials ran", got, n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		out, err := Run(6, Options{BaseSeed: 7, Workers: 2}, func(seed int64) (float64, error) {
			return math.Sin(float64(seed)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel runs not deterministic")
		}
	}
}
