package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random source with support for derived named
// streams. Each named stream is seeded by mixing the parent seed with a
// hash of the name, so adding a new consumer of randomness does not perturb
// the sequences observed by existing consumers — a property that keeps
// regression baselines stable as the simulator grows.
type Source struct {
	seed int64
	rng  *rand.Rand
}

// NewSource returns a source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed, rng: rand.New(rand.NewSource(mix64(seed)))}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Stream derives an independent child source named name.
func (s *Source) Stream(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	child := s.seed ^ int64(h.Sum64())
	return NewSource(child)
}

// StreamN derives an independent child source from an integer label, for
// per-peer or per-trial streams.
func (s *Source) StreamN(n int64) *Source {
	return NewSource(s.seed ^ mix64(n^int64(0x6a09e667f3bcc909)))
}

// mix64 is a SplitMix64 finalizer; it decorrelates nearby seeds.
func mix64(v int64) int64 {
	z := uint64(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0,n). It panics when n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// NormFloat64 returns a standard normal draw.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential draw with mean 1.
func (s *Source) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Lognormal returns a draw from a lognormal distribution parameterized by
// the mean and sigma of the underlying normal.
func (s *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.rng.NormFloat64())
}

// Pareto returns a draw from a Pareto distribution with scale xm and shape
// alpha (alpha > 0), i.e. P(X > x) = (xm/x)^alpha for x >= xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := 1 - s.rng.Float64() // (0,1]
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto(alpha) draw truncated to [lo, hi] by
// inverse-CDF sampling, avoiding the unbounded tail of the plain Pareto.
func (s *Source) BoundedPareto(lo, hi, alpha float64) float64 {
	if lo >= hi {
		return lo
	}
	u := s.rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	return math.Min(math.Max(x, lo), hi)
}

// Exponential returns an exponential draw with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return mean * s.rng.ExpFloat64()
}

// Weibull returns a Weibull draw with the given scale and shape.
func (s *Source) Weibull(scale, shape float64) float64 {
	u := 1 - s.rng.Float64()
	return scale * math.Pow(-math.Log(u), 1/shape)
}
