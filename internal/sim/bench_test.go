package sim

import "testing"

// BenchmarkEventThroughput measures raw schedule+fire cost: each fired
// event schedules its successor, so the queue stays warm.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	remaining := b.N
	var next func(*Engine)
	next = func(e *Engine) {
		if remaining--; remaining > 0 {
			e.After(1, EventFunc(next))
		}
	}
	e.After(1, EventFunc(next))
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueChurn measures heap behavior with many pending events.
func BenchmarkQueueChurn(b *testing.B) {
	e := NewEngine(1)
	// Pre-load a deep queue.
	for i := 0; i < 10000; i++ {
		e.Schedule(Time(1e6+float64(i)), EventFunc(func(*Engine) {}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(Time(float64(i%1000)+1e5), EventFunc(func(*Engine) {}))
		h.Cancel()
	}
}

func BenchmarkRandStream(b *testing.B) {
	s := NewSource(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}
