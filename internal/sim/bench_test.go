package sim

import "testing"

// BenchmarkEventThroughput measures raw schedule+fire cost: each fired
// event schedules its successor, so the queue stays warm.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	remaining := b.N
	var next func(*Engine)
	next = func(e *Engine) {
		if remaining--; remaining > 0 {
			e.After(1, EventFunc(next))
		}
	}
	e.After(1, EventFunc(next))
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventThroughputSharded is BenchmarkEventThroughput through the
// lane-sharded merge: 64 self-rescheduling chains, one per lane, so every
// pop resolves the tournament tree and every push replays a head-change
// path — the multi-queue hot path, where the single global chain above
// rides the sole-queue fast path instead.
func BenchmarkEventThroughputSharded(b *testing.B) {
	e := NewEngine(1)
	remaining := b.N
	var chains [NumLanes]func(*Engine)
	for l := 0; l < NumLanes; l++ {
		l := l
		chains[l] = func(e *Engine) {
			if remaining--; remaining > 0 {
				e.AfterLane(l, 1, EventFunc(chains[l]))
			}
		}
		e.AfterLane(l, 1, EventFunc(chains[l]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueChurn measures heap behavior with many pending events.
func BenchmarkQueueChurn(b *testing.B) {
	e := NewEngine(1)
	ev := EventFunc(func(*Engine) {})
	// Pre-load a deep queue.
	for i := 0; i < 10000; i++ {
		e.Schedule(Time(1e6+float64(i)), ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(Time(float64(i%1000)+1e5), ev)
		h.Cancel()
	}
}

// BenchmarkScheduleCancelHeavy models churn reconnect timers: a sliding
// window of pending timers where most are cancelled and rescheduled long
// before they fire. Before active compaction the cancelled items rode the
// heap until they bubbled to the root; this benchmark makes that cost
// visible.
func BenchmarkScheduleCancelHeavy(b *testing.B) {
	e := NewEngine(1)
	ev := EventFunc(func(*Engine) {})
	const window = 4096
	handles := make([]Handle, window)
	for i := range handles {
		handles[i] = e.Schedule(Time(1e6+float64(i)), ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % window
		handles[slot].Cancel()
		handles[slot] = e.Schedule(Time(1e6+float64(i%100000)), ev)
	}
}

// BenchmarkStepSelfSchedule measures the steady-state Step cost when every
// fired event schedules a successor — the inner loop of every scenario run.
func BenchmarkStepSelfSchedule(b *testing.B) {
	e := NewEngine(1)
	var ev Event
	ev = EventFunc(func(e *Engine) { e.After(1, ev) })
	e.After(1, ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkRandStream(b *testing.B) {
	s := NewSource(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}
