package sim

import "math"

// The event plane is sharded across NumLanes per-lane queues plus one
// global queue. Peer-targeted events (message delivery, per-peer timers)
// are scheduled onto the lane of their target peer; events with no single
// target (tickers, experiment phases, growth joins) use the global queue.
// NumLanes must match the overlay's lane count: a lane here is the same
// slab-page-stride partition the tick fan-out shards over, so one lane's
// events touch one lane's peers.
const (
	// NumLanes is the number of peer lanes in the sharded event plane.
	NumLanes = 64
	// GlobalLane is the queue index for events with no target lane.
	GlobalLane = NumLanes

	numQueues = NumLanes + 1
)

// LaneEvent is an Event whose firing can be split into a lane-local
// evaluation and a cross-peer commit. When several LaneEvents share one
// timestamp, the engine fires them as a batch: EvalLane runs lane-parallel
// (an event may touch only state owned by its own lane's peers, and may
// not schedule, draw randomness shared with other lanes, or mutate
// engine/global state), then CommitLane runs serially in scheduling order
// to apply cross-peer effects. The contract mirrors the tick barrier of
// DESIGN.md §7: Fire must be exactly equivalent to EvalLane followed by
// CommitLane, so a batch of size one can fall back to Fire.
type LaneEvent interface {
	Event
	// Batchable reports whether this firing may currently be split into
	// EvalLane/CommitLane. Implementations return false when runtime
	// state (fault injection, custom handlers) requires the serial path.
	Batchable() bool
	// EvalLane performs the lane-local half of the firing.
	EvalLane(e *Engine, lane int)
	// CommitLane applies buffered cross-peer effects; called serially in
	// the exact order the batch's events would have fired.
	CommitLane(e *Engine)
}

// emptyKey is the head timestamp of an empty queue in the merge tree. It
// is strictly greater than any schedulable time (Infinity = 1e300).
var emptyAt = Time(math.Inf(1))

// mergeLeaves is numQueues rounded up to a power of two, so the winner
// tree is a perfect binary tree and leaf l's parent is (mergeLeaves+l)/2.
const mergeLeaves = 128

// laneMerge is a tournament (winner) tree over the per-queue head keys
// (at, seq). Each queue is a leaf; internal nodes hold the winning queue
// index of their subtree, so the global minimum is read at the root in
// O(1) and a head change replays one leaf-to-root path in O(log n).
// Queues beyond numQueues are permanently-empty padding.
type laneMerge struct {
	at  [mergeLeaves]Time
	seq [mergeLeaves]uint64
	// win[1..mergeLeaves-1] are the internal winners; win[0] is unused.
	win [mergeLeaves]int32
}

// init marks every leaf empty and rebuilds the winners.
func (t *laneMerge) init() {
	for i := range t.at {
		t.at[i] = emptyAt
		t.seq[i] = ^uint64(0)
	}
	t.rebuildAll()
}

// beats reports whether queue a's head precedes queue b's.
func (t *laneMerge) beats(a, b int32) bool {
	if t.at[a] != t.at[b] {
		return t.at[a] < t.at[b]
	}
	return t.seq[a] < t.seq[b]
}

// winnerOf resolves node n to the queue index winning its subtree.
func (t *laneMerge) winnerOf(n int32) int32 {
	if n >= mergeLeaves {
		return n - mergeLeaves
	}
	return t.win[n]
}

// rebuildAll recomputes every internal winner from the leaf keys.
func (t *laneMerge) rebuildAll() {
	for n := int32(mergeLeaves - 1); n >= 1; n-- {
		w := t.winnerOf(2 * n)
		if r := t.winnerOf(2*n + 1); t.beats(r, w) {
			w = r
		}
		t.win[n] = w
	}
}

// set records queue l's new head key and replays its path to the root.
func (t *laneMerge) set(l int32, at Time, seq uint64) {
	if t.at[l] == at && t.seq[l] == seq {
		return
	}
	t.at[l] = at
	t.seq[l] = seq
	for n := (mergeLeaves + l) >> 1; n >= 1; n >>= 1 {
		w := t.winnerOf(2 * n)
		if r := t.winnerOf(2*n + 1); t.beats(r, w) {
			w = r
		}
		t.win[n] = w
	}
}

// min returns the queue index holding the globally earliest head. Only
// meaningful while at least one queue is non-empty.
func (t *laneMerge) min() int32 { return t.win[1] }
