package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Intra-run parallelism. The engine itself stays a single-threaded
// discrete-event loop (see the Engine type comment); what this file adds
// is the *fan-out primitive* that lets one event — in practice the
// per-tick maintenance of a million-peer overlay — spread peer-local
// work across CPUs and rejoin before the event returns. Determinism is
// preserved by a fixed-lane discipline: work is partitioned into a
// constant number of lanes that is independent of the worker count, each
// lane owns its own random stream and result buffer, and the caller
// merges lane results in lane order. Any worker count — including one —
// then produces byte-identical output; the setting trades wall time only.

// SetShards sets the worker count used by lane fan-outs on this engine
// (see ForLanes). It is configuration, not simulation state: Reset keeps
// it, exactly like MaxEvents. Zero or negative selects GOMAXPROCS. The
// fixed-lane discipline makes results identical for every value.
func (e *Engine) SetShards(k int) {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	e.shards = k
}

// Shards returns the configured lane-fan-out worker count (1 when never
// set).
func (e *Engine) Shards() int {
	if e.shards <= 0 {
		return 1
	}
	return e.shards
}

// ForLanes invokes fn(lane) exactly once for every lane in [0, lanes),
// spreading the calls across up to workers goroutines and returning only
// when all have completed. With one worker (or one lane) it degrades to
// an inline loop — no goroutines, same call sequence.
//
// The contract that makes a fan-out deterministic for any worker count:
// fn must confine its writes to per-lane state (its lane's buffer, its
// lane's RNG stream, fields of items owned by its lane) and the caller
// must consume the per-lane results in lane-index order. Which goroutine
// ran a lane is then unobservable.
func ForLanes(workers, lanes int, fn func(lane int)) {
	if workers > lanes {
		workers = lanes
	}
	if workers <= 1 {
		for l := 0; l < lanes; l++ {
			fn(l)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				l := int(next.Add(1)) - 1
				if l >= lanes {
					return
				}
				fn(l)
			}
		}()
	}
	wg.Wait()
}
