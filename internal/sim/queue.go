package sim

// Event is a unit of work scheduled on the virtual clock. Fire is invoked
// exactly once, when the clock reaches the event's scheduled time, unless
// the event was cancelled first.
type Event interface {
	Fire(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Fire implements Event.
func (f EventFunc) Fire(e *Engine) { f(e) }

// Handle identifies a scheduled event and allows cancellation. Items are
// recycled through a per-engine free-list once they fire or are cancelled,
// so the handle carries the generation it was issued under; a stale handle
// (its item since recycled) is recognized and ignored.
type Handle struct {
	item *item
	gen  uint32
	q    *eventQueue
}

// Cancel removes the scheduled event from the queue immediately and
// recycles its slot. Cancelling an event that already fired or was already
// cancelled, or a zero Handle, is a no-op. It reports whether the event
// was still pending.
func (h Handle) Cancel() bool {
	if h.item == nil || h.item.gen != h.gen {
		return false
	}
	h.q.remove(h.item)
	h.q.release(h.item)
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.item != nil && h.item.gen == h.gen
}

type item struct {
	at  Time
	seq uint64
	ev  Event
	// gen distinguishes incarnations of a recycled item; it is bumped on
	// every release so stale Handles turn inert.
	gen uint32
	// pos is the item's current index in the heap; -1 when not queued.
	pos int32
}

// eventQueue is a binary min-heap ordered by (time, insertion sequence).
// It is implemented directly rather than via container/heap to avoid the
// interface boxing on every push/pop in hot simulation loops. Items track
// their heap position, so cancellation removes them in O(log n) instead of
// leaving dead entries to ride the heap, and released items return to a
// free-list for reuse (steady-state scheduling does not allocate).
type eventQueue struct {
	items []*item
	seq   uint64
	free  []*item
}

func (q *eventQueue) Len() int { return len(q.items) }

// alloc returns a recycled item, or a fresh one when the free-list is
// empty.
func (q *eventQueue) alloc() *item {
	if n := len(q.free); n > 0 {
		it := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return it
	}
	return &item{pos: -1}
}

// release invalidates outstanding handles to it and returns it to the
// free-list. The item must already be out of the heap.
func (q *eventQueue) release(it *item) {
	it.gen++
	it.ev = nil // do not retain the event (often a closure) past its life
	it.pos = -1
	q.free = append(q.free, it)
}

// reset empties the queue wholesale: every pending item is released
// (invalidating its handles) into the free-list, and the insertion
// sequence restarts at zero so tie-breaking in the next run is
// independent of how many events previous runs pushed.
func (q *eventQueue) reset() {
	for _, it := range q.items {
		q.release(it)
	}
	clear(q.items)
	q.items = q.items[:0]
	q.seq = 0
}

func (q *eventQueue) less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(it *item) {
	it.seq = q.seq
	q.seq++
	it.pos = int32(len(q.items))
	q.items = append(q.items, it)
	q.up(len(q.items) - 1)
}

func (q *eventQueue) pop() *item {
	n := len(q.items)
	top := q.items[0]
	last := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if n > 1 {
		q.items[0] = last
		last.pos = 0
		q.down(0)
	}
	top.pos = -1
	return top
}

// remove unlinks an interior item from the heap in O(log n).
func (q *eventQueue) remove(it *item) {
	i := int(it.pos)
	n := len(q.items) - 1
	last := q.items[n]
	q.items[n] = nil
	q.items = q.items[:n]
	if i != n {
		q.items[i] = last
		last.pos = int32(i)
		q.down(i)
		q.up(int(last.pos))
	}
	it.pos = -1
}

// peek returns the earliest pending item without removing it; nil when the
// queue is empty.
func (q *eventQueue) peek() *item {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	it := q.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q.items[parent]
		if !q.less(it, p) {
			break
		}
		q.items[i] = p
		p.pos = int32(i)
		i = parent
	}
	q.items[i] = it
	it.pos = int32(i)
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	it := q.items[i]
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		next := it
		if l < n && q.less(q.items[l], next) {
			smallest, next = l, q.items[l]
		}
		if r < n && q.less(q.items[r], next) {
			smallest, next = r, q.items[r]
		}
		if smallest == i {
			break
		}
		q.items[i] = next
		next.pos = int32(i)
		i = smallest
	}
	q.items[i] = it
	it.pos = int32(i)
}
