package sim

// Event is a unit of work scheduled on the virtual clock. Fire is invoked
// exactly once, when the clock reaches the event's scheduled time, unless
// the event was cancelled first.
type Event interface {
	Fire(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Fire implements Event.
func (f EventFunc) Fire(e *Engine) { f(e) }

// Handle identifies a scheduled event and allows cancellation. Items are
// recycled through a per-queue free-list once they fire or are cancelled,
// so the handle carries the generation it was issued under; a stale handle
// (its item since recycled) is recognized and ignored.
type Handle struct {
	item *item
	gen  uint32
	e    *Engine
	lane int32
}

// Cancel removes the scheduled event from the queue immediately and
// recycles its slot. Cancelling an event that already fired or was already
// cancelled, or a zero Handle, is a no-op. It reports whether the event
// was still pending.
func (h Handle) Cancel() bool {
	if h.item == nil || h.item.gen != h.gen {
		return false
	}
	q := &h.e.lanes[h.lane]
	q.remove(h.item)
	q.release(h.item)
	h.e.headChanged(h.lane, len(q.items) == 0)
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.item != nil && h.item.gen == h.gen
}

type item struct {
	at  Time
	seq uint64
	ev  Event
	// gen distinguishes incarnations of a recycled item; it is bumped on
	// every release so stale Handles turn inert.
	gen uint32
	// pos is the item's current index in the heap; -1 when not queued.
	pos int32
}

// maxFreeItems caps each queue's item free-list. Without a cap the
// free-list retains burst-peak capacity forever — and across Engine.Reset,
// which releases every still-pending item into it — so one 1M-event growth
// wave would pin ~1M recycled items for the engine's whole lifetime. The
// cap is generous enough that steady-state scheduling (release immediately
// followed by alloc) never misses; overflow is simply dropped for the GC.
const maxFreeItems = 1024

// heapKey is the ordering key of a queued item, mirrored into a flat
// array parallel to the item pointers. Heap comparisons read only keys —
// dense, GC-free memory the prefetcher likes — instead of chasing a
// pointer per compare; with million-item heaps of cold items that
// roughly halves sift cost.
type heapKey struct {
	at  Time
	seq uint64
}

// eventQueue is a binary min-heap ordered by (time, insertion sequence).
// It is implemented directly rather than via container/heap to avoid the
// interface boxing on every push/pop in hot simulation loops. Items track
// their heap position, so cancellation removes them in O(log n) instead of
// leaving dead entries to ride the heap, and released items return to a
// free-list for reuse (steady-state scheduling does not allocate). The
// insertion sequence is stamped by the engine from a single counter shared
// by all lanes, so the merged pop order across queues is identical to what
// one global heap would produce. keys[i] duplicates items[i]'s (at, seq);
// every sift keeps the two arrays in lockstep.
type eventQueue struct {
	keys  []heapKey
	items []*item
	free  []*item
}

func (q *eventQueue) Len() int { return len(q.items) }

// alloc returns a recycled item, or a fresh one when the free-list is
// empty.
func (q *eventQueue) alloc() *item {
	if n := len(q.free); n > 0 {
		it := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return it
	}
	return &item{pos: -1}
}

// release invalidates outstanding handles to it and returns it to the
// free-list (or drops it for the GC once the list is full). The item must
// already be out of the heap.
func (q *eventQueue) release(it *item) {
	it.gen++
	it.ev = nil // do not retain the event (often a closure) past its life
	it.pos = -1
	if len(q.free) < maxFreeItems {
		q.free = append(q.free, it)
	}
}

// reset empties the queue wholesale: every pending item is released
// (invalidating its handles) into the free-list, up to its cap.
func (q *eventQueue) reset() {
	for _, it := range q.items {
		q.release(it)
	}
	clear(q.items)
	q.items = q.items[:0]
	q.keys = q.keys[:0]
}

func (k heapKey) less(o heapKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	return k.seq < o.seq
}

func (q *eventQueue) push(it *item) {
	n := len(q.items)
	it.pos = int32(n)
	k := heapKey{at: it.at, seq: it.seq}
	q.items = append(q.items, it)
	q.keys = append(q.keys, k)
	// The guard is up's first-iteration condition, checked here on the
	// just-built key: a push that does not displace its parent — every
	// push into an empty queue, and the bulk of pushes into a deep one —
	// skips the sift call entirely.
	if n > 0 && k.less(q.keys[(n-1)/2]) {
		q.up(n)
	}
}

func (q *eventQueue) pop() *item {
	n := len(q.items) - 1
	top := q.items[0]
	if n > 0 {
		last := q.items[n]
		lastKey := q.keys[n]
		q.items[n] = nil
		q.items = q.items[:n]
		q.keys = q.keys[:n]
		q.items[0] = last
		q.keys[0] = lastKey
		last.pos = 0
		q.down(0)
	} else {
		q.items[0] = nil
		q.items = q.items[:0]
		q.keys = q.keys[:0]
	}
	top.pos = -1
	return top
}

// remove unlinks an interior item from the heap in O(log n).
func (q *eventQueue) remove(it *item) {
	i := int(it.pos)
	n := len(q.items) - 1
	last := q.items[n]
	lastKey := q.keys[n]
	q.items[n] = nil
	q.items = q.items[:n]
	q.keys = q.keys[:n]
	if i != n {
		q.items[i] = last
		q.keys[i] = lastKey
		last.pos = int32(i)
		q.down(i)
		q.up(int(last.pos))
	}
	it.pos = -1
}

// peek returns the earliest pending item without removing it; nil when the
// queue is empty.
func (q *eventQueue) peek() *item {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	it := q.items[i]
	k := q.keys[i]
	for i > 0 {
		parent := (i - 1) / 2
		pk := q.keys[parent]
		if !k.less(pk) {
			break
		}
		p := q.items[parent]
		q.items[i] = p
		q.keys[i] = pk
		p.pos = int32(i)
		i = parent
	}
	q.items[i] = it
	q.keys[i] = k
	it.pos = int32(i)
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	it := q.items[i]
	k := q.keys[i]
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		next := k
		if l < n && q.keys[l].less(next) {
			smallest, next = l, q.keys[l]
		}
		if r < n && q.keys[r].less(next) {
			smallest, next = r, q.keys[r]
		}
		if smallest == i {
			break
		}
		q.items[i] = q.items[smallest]
		q.keys[i] = next
		q.items[i].pos = int32(i)
		i = smallest
	}
	q.items[i] = it
	q.keys[i] = k
	it.pos = int32(i)
}
