package sim

// Event is a unit of work scheduled on the virtual clock. Fire is invoked
// exactly once, when the clock reaches the event's scheduled time, unless
// the event was cancelled first.
type Event interface {
	Fire(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Fire implements Event.
func (f EventFunc) Fire(e *Engine) { f(e) }

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	item *item
}

// Cancel marks the scheduled event as cancelled. Cancelling an event that
// already fired, or a zero Handle, is a no-op. It reports whether the event
// was still pending.
func (h Handle) Cancel() bool {
	if h.item == nil || h.item.cancelled || h.item.fired {
		return false
	}
	h.item.cancelled = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.item != nil && !h.item.cancelled && !h.item.fired
}

type item struct {
	at        Time
	seq       uint64
	ev        Event
	cancelled bool
	fired     bool
}

// eventQueue is a binary min-heap ordered by (time, insertion sequence).
// It is implemented directly rather than via container/heap to avoid the
// interface boxing on every push/pop in hot simulation loops.
type eventQueue struct {
	items []*item
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(it *item) {
	it.seq = q.seq
	q.seq++
	q.items = append(q.items, it)
	q.up(len(q.items) - 1)
}

func (q *eventQueue) pop() *item {
	n := len(q.items)
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top
}

// peek returns the earliest pending item without removing it, skipping and
// discarding cancelled items. It returns nil when the queue is empty.
func (q *eventQueue) peek() *item {
	for len(q.items) > 0 {
		if q.items[0].cancelled {
			q.pop()
			continue
		}
		return q.items[0]
	}
	return nil
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(q.items[l], q.items[smallest]) {
			smallest = l
		}
		if r < n && q.less(q.items[r], q.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
