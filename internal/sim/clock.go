// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in abstract time units
// (the paper's unit is one minute) and a future event list implemented as
// a binary heap. Events fire in non-decreasing time order; ties are broken
// by insertion sequence so that runs are fully deterministic for a given
// seed and schedule.
package sim

import "fmt"

// Time is a point on the virtual clock. The paper's simulations advance in
// "simulation time (minutes)"; Time is a float64 so that sub-unit message
// latencies can be modeled, but most schedules use whole units.
type Time float64

// Duration is a span of virtual time.
type Duration = Time

// Infinity is a time later than any event the engine will ever fire.
const Infinity Time = 1e300

// String formats the time with a fixed precision suitable for traces.
func (t Time) String() string { return fmt.Sprintf("%.3f", float64(t)) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// Unit returns the integral time unit containing t (floor).
func (t Time) Unit() int64 {
	if t < 0 {
		return int64(t) - 1
	}
	return int64(t)
}
