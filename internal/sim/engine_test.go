package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	times := []Time{5, 1, 3, 2, 4, 0.5, 2.5}
	for _, at := range times {
		at := at
		e.Schedule(at, EventFunc(func(e *Engine) {
			got = append(got, e.Now())
		}))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0.5, 1, 2, 2.5, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, EventFunc(func(*Engine) { order = append(order, i) }))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v, want FIFO", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, EventFunc(func(*Engine) {}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, EventFunc(func(*Engine) {}))
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	h := e.Schedule(1, EventFunc(func(*Engine) { fired++ }))
	e.Schedule(2, EventFunc(func(*Engine) { fired++ }))
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if h.Cancel() {
		t.Fatal("second cancel should report false")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (cancelled event must not fire)", fired)
	}
	if h.Pending() {
		t.Fatal("cancelled handle reports pending")
	}
}

// TestCancelCompactsQueue pins the active-compaction semantics: a
// cancelled event leaves the queue immediately, so Pending never counts
// dead items. (Before compaction, cancelled items rode the heap until
// they bubbled to the root — churn-heavy runs carried them for the whole
// run.)
func TestCancelCompactsQueue(t *testing.T) {
	e := NewEngine(1)
	ev := EventFunc(func(*Engine) {})
	handles := make([]Handle, 100)
	for i := range handles {
		handles[i] = e.Schedule(Time(i+1), ev)
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	for i := 0; i < 100; i += 2 {
		handles[i].Cancel()
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending = %d after cancelling half, want 50 (no dead items)", e.Pending())
	}
	fired := 0
	e.Schedule(200, EventFunc(func(e *Engine) { fired = int(e.EventsFired()) }))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 51 { // 50 survivors + the probe itself
		t.Fatalf("fired %d events, want 51", fired)
	}
}

// TestStaleHandleAfterReuse pins the generation check: once an event
// fires, its queue slot is recycled; a handle to the fired event must stay
// inert even when the slot is serving a new event.
func TestStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine(1)
	old := e.Schedule(1, EventFunc(func(*Engine) {}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	fresh := e.Schedule(2, EventFunc(func(*Engine) { fired = true })) // reuses the slot
	if old.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if old.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	if !fresh.Pending() {
		t.Fatal("fresh handle lost its event to a stale cancel")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("recycled-slot event did not fire")
	}
}

// TestCancelInterleavedWithFiring exercises remove() on interior heap
// positions while the queue is live.
func TestCancelInterleavedWithFiring(t *testing.T) {
	e := NewEngine(1)
	var firedAt []Time
	record := EventFunc(func(e *Engine) { firedAt = append(firedAt, e.Now()) })
	handles := make(map[int]Handle)
	for i := 1; i <= 50; i++ {
		handles[i] = e.Schedule(Time(i), record)
	}
	// Cancel a scattered subset, including the current heap root (t=1).
	for _, i := range []int{1, 7, 13, 25, 42, 50} {
		if !handles[i].Cancel() {
			t.Fatalf("cancel of pending event %d failed", i)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(firedAt) != 44 {
		t.Fatalf("fired %d, want 44", len(firedAt))
	}
	for i := 1; i < len(firedAt); i++ {
		if firedAt[i] <= firedAt[i-1] {
			t.Fatalf("order violated: %v", firedAt)
		}
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(1, EventFunc(func(*Engine) {}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Cancel() {
		t.Fatal("cancelling a fired event should report false")
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(3, EventFunc(func(*Engine) {}))
	e.Schedule(10, EventFunc(func(*Engine) {}))
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if err := e.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), EventFunc(func(e *Engine) {
			n++
			if n == 3 {
				e.Halt()
			}
		}))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fired %d events after Halt, want 3", n)
	}
}

func TestEventBudget(t *testing.T) {
	e := NewEngine(1)
	e.MaxEvents = 50
	// Self-rescheduling event would run forever without the budget.
	var loop func(*Engine)
	loop = func(e *Engine) { e.After(1, EventFunc(loop)) }
	e.After(1, EventFunc(loop))
	if err := e.Run(); err != ErrEventBudget {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Ticker(2, func(e *Engine) bool {
		at = append(at, e.Now())
		return len(at) < 4
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{2, 4, 6, 8}
	if len(at) != len(want) {
		t.Fatalf("ticks %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks %v, want %v", at, want)
		}
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(1, EventFunc(func(e *Engine) {
		got = append(got, "a")
		e.After(1, EventFunc(func(*Engine) { got = append(got, "b") }))
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v, want [a b]", got)
	}
}

func TestTimeUnit(t *testing.T) {
	cases := []struct {
		t    Time
		want int64
	}{{0, 0}, {0.5, 0}, {1, 1}, {299.999, 299}, {300, 300}, {-0.5, -1}}
	for _, c := range cases {
		if got := c.t.Unit(); got != c.want {
			t.Errorf("Unit(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

// Property: popping the queue always yields a non-decreasing time sequence,
// regardless of insertion order.
func TestQueueOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var q eventQueue
		for _, r := range raw {
			q.push(&item{at: Time(r)})
		}
		last := Time(-1)
		for q.Len() > 0 {
			it := q.pop()
			if it.at < last {
				return false
			}
			last = it.at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var draws []float64
		e.Ticker(1, func(e *Engine) bool {
			draws = append(draws, e.Rand().Stream("tick").Float64()+e.Rand().Float64())
			return len(draws) < 20
		})
		e.Run()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	s := NewSource(7)
	a1 := s.Stream("alpha").Float64()
	_ = s.Stream("beta").Float64()
	a2 := NewSource(7).Stream("alpha").Float64()
	if a1 != a2 {
		t.Fatal("stream draws depend on unrelated stream usage")
	}
	if s.Stream("alpha").Seed() == s.Stream("beta").Seed() {
		t.Fatal("distinct names produced identical stream seeds")
	}
	if s.StreamN(1).Seed() == s.StreamN(2).Seed() {
		t.Fatal("distinct indices produced identical stream seeds")
	}
}

func TestDistributionMoments(t *testing.T) {
	s := NewSource(99)
	const n = 200000

	// Exponential mean.
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(5)
	}
	if m := sum / n; math.Abs(m-5) > 0.1 {
		t.Errorf("exponential mean = %.3f, want 5±0.1", m)
	}

	// Lognormal median = exp(mu).
	cnt := 0
	for i := 0; i < n; i++ {
		if s.Lognormal(math.Log(60), 1.5) < 60 {
			cnt++
		}
	}
	if frac := float64(cnt) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("lognormal median fraction = %.3f, want 0.5±0.01", frac)
	}

	// Pareto support.
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(2, 1.1); v < 2 {
			t.Fatalf("pareto draw %v below scale", v)
		}
	}

	// Bounded Pareto support.
	for i := 0; i < 1000; i++ {
		v := s.BoundedPareto(1, 10, 1.5)
		if v < 1 || v > 10 {
			t.Fatalf("bounded pareto draw %v outside [1,10]", v)
		}
	}

	// Uniform support.
	for i := 0; i < 1000; i++ {
		v := s.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("uniform draw %v outside [3,7)", v)
		}
	}

	// Weibull with shape 1 is exponential with the same scale.
	sum = 0
	for i := 0; i < n; i++ {
		sum += s.Weibull(4, 1)
	}
	if m := sum / n; math.Abs(m-4) > 0.1 {
		t.Errorf("weibull(4,1) mean = %.3f, want 4±0.1", m)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %.3f", frac)
	}
}

// TestResetMatchesFreshEngine pins the contract the parallel trial
// scheduler rests on: after Reset(seed), an engine that already ran an
// arbitrary workload is indistinguishable from NewEngine(seed) — same
// clock, same event order, same tie-break sequence, same RNG streams.
func TestResetMatchesFreshEngine(t *testing.T) {
	// A self-rescheduling workload with cancellations and RNG draws,
	// recording everything observable.
	workload := func(e *Engine) (fires []Time, draws []float64) {
		rng := e.Rand().Stream("w")
		var rec func(e *Engine)
		rec = func(e *Engine) {
			fires = append(fires, e.Now())
			draws = append(draws, rng.Float64())
			if e.Now() < 40 {
				e.After(Duration(1+rng.Float64()*3), EventFunc(rec))
				h := e.After(100, EventFunc(func(*Engine) { fires = append(fires, -1) }))
				h.Cancel()
			}
		}
		e.Schedule(0, EventFunc(rec))
		if err := e.RunUntil(60); err != nil {
			t.Fatal(err)
		}
		return fires, draws
	}

	fresh := NewEngine(77)
	wantFires, wantDraws := workload(fresh)

	used := NewEngine(12345)
	for i := 0; i < 500; i++ { // dirty the queue, clock, seq counter, rng
		used.Schedule(Time(used.Rand().Float64()*100), EventFunc(func(*Engine) {}))
	}
	used.RunUntil(50)
	used.Halt()
	used.Reset(77)

	if used.Now() != 0 || used.Pending() != 0 || used.EventsFired() != 0 {
		t.Fatalf("reset state: now=%v pending=%d fired=%d", used.Now(), used.Pending(), used.EventsFired())
	}
	gotFires, gotDraws := workload(used)
	if len(gotFires) != len(wantFires) || len(gotDraws) != len(wantDraws) {
		t.Fatalf("trace lengths: %d/%d vs fresh %d/%d",
			len(gotFires), len(gotDraws), len(wantFires), len(wantDraws))
	}
	for i := range wantFires {
		if gotFires[i] != wantFires[i] {
			t.Fatalf("fire %d at %v, fresh engine fired at %v", i, gotFires[i], wantFires[i])
		}
	}
	for i := range wantDraws {
		if gotDraws[i] != wantDraws[i] {
			t.Fatalf("draw %d = %v, fresh engine drew %v", i, gotDraws[i], wantDraws[i])
		}
	}
	if used.EventsFired() != fresh.EventsFired() {
		t.Fatalf("fired %d events, fresh fired %d", used.EventsFired(), fresh.EventsFired())
	}
}
