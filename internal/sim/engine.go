package sim

import (
	"errors"
	"fmt"
)

// Engine is a single-threaded discrete-event simulation engine.
//
// Engines are deliberately not safe for concurrent use: a discrete-event
// simulation has a total order of events, and all parallelism in this
// repository happens one level up, by running independent Engine instances
// (different seeds or sweep points) on separate goroutines (see
// internal/parexp).
type Engine struct {
	now    Time
	queue  eventQueue
	rng    *Source
	halted bool
	fired  uint64

	// shards is the worker count for intra-event lane fan-outs (see
	// shard.go). Like MaxEvents it is configuration, so Reset keeps it.
	shards int

	// MaxEvents, when non-zero, aborts Run with ErrEventBudget after that
	// many events have fired. It is a guard against schedule bugs that
	// would otherwise loop forever.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run when MaxEvents is exceeded.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// NewEngine returns an engine with its clock at zero and a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewSource(seed)}
}

// Reset returns the engine to its just-constructed state with a fresh
// deterministic source derived from seed: clock at zero, empty queue,
// zero fired counter, outstanding handles invalidated. The queue's
// backing storage (heap array, item free-list) is kept, so a reset
// engine re-runs without re-growing its event machinery — the
// engine-reuse primitive of the parallel trial scheduler. A reset engine
// is indistinguishable from NewEngine(seed) to everything that runs on
// it: the insertion sequence also restarts, so event tie-breaking cannot
// leak across runs.
func (e *Engine) Reset(seed int64) {
	e.queue.reset()
	e.now = 0
	e.halted = false
	e.fired = 0
	e.rng = NewSource(seed)
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root random source. Subsystems should derive
// their own named streams via Rand().Stream(name) so that adding a new
// consumer does not perturb the draws seen by existing ones.
func (e *Engine) Rand() *Source { return e.rng }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Schedule enqueues ev to fire at absolute time at. Scheduling in the past
// panics: it is always a logic error in a discrete-event model. The
// backing queue slot comes from a per-engine free-list, so steady-state
// scheduling does not allocate.
func (e *Engine) Schedule(at Time, ev Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	it := e.queue.alloc()
	it.at, it.ev = at, ev
	e.queue.push(it)
	return Handle{item: it, gen: it.gen, q: &e.queue}
}

// After enqueues ev to fire d time units from now.
func (e *Engine) After(d Duration, ev Event) Handle {
	return e.Schedule(e.now+d, ev)
}

// AfterFunc is After for a plain function.
func (e *Engine) AfterFunc(d Duration, f func(*Engine)) Handle {
	return e.After(d, EventFunc(f))
}

// Halt stops the run loop after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the exact number of events still queued. Cancelled
// events are removed from the queue immediately by Handle.Cancel, so they
// never appear in this count.
func (e *Engine) Pending() int { return e.queue.Len() }

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event was fired.
func (e *Engine) Step() bool {
	it := e.queue.peek()
	if it == nil {
		return false
	}
	e.queue.pop()
	e.now = it.at
	ev := it.ev
	// Recycle the slot before firing: handles to this event turn inert,
	// and events scheduled from inside Fire reuse the still-hot item.
	e.queue.release(it)
	e.fired++
	ev.Fire(e)
	return true
}

// RunUntil fires events in order until the clock would pass deadline, the
// queue drains, or Halt is called. The clock is left at the later of its
// current value and deadline so that subsequent scheduling is relative to
// the deadline.
func (e *Engine) RunUntil(deadline Time) error {
	e.halted = false
	for !e.halted {
		it := e.queue.peek()
		if it == nil || it.at > deadline {
			break
		}
		if e.MaxEvents != 0 && e.fired >= e.MaxEvents {
			return ErrEventBudget
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Run fires events until the queue drains or Halt is called.
func (e *Engine) Run() error {
	e.halted = false
	for !e.halted {
		if e.MaxEvents != 0 && e.fired >= e.MaxEvents {
			return ErrEventBudget
		}
		if !e.Step() {
			break
		}
	}
	return nil
}

// Ticker invokes fn once per period, starting at the next multiple of
// period after the current time, until fn returns false or the engine
// stops. It is the engine's equivalent of a per-time-unit maintenance loop.
func (e *Engine) Ticker(period Duration, fn func(e *Engine) bool) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	var tick func(*Engine)
	tick = func(e *Engine) {
		if !fn(e) {
			return
		}
		e.After(period, EventFunc(tick))
	}
	e.After(period, EventFunc(tick))
}
