package sim

import (
	"errors"
	"fmt"
)

// Engine is a discrete-event simulation engine with a lane-sharded event
// plane: NumLanes per-lane queues plus one global queue, merged into a
// single total order by a tournament tree over the queue heads. Every
// push is stamped from one engine-wide insertion sequence, so the merged
// pop order (time, seq) is exactly what a single global heap would
// produce — sharding changes where events wait, never when they fire.
//
// Engines are deliberately not safe for concurrent use by callers: the
// simulation has a total order of events. The only internal parallelism
// is the same-timestamp LaneEvent batch (eval fan-out + serial commit),
// which is byte-deterministic for any shard count, mirroring the tick
// barrier of DESIGN.md §7.
type Engine struct {
	now    Time
	lanes  [numQueues]eventQueue
	seq    uint64
	merge  laneMerge
	active int   // number of non-empty queues
	sole   int32 // the one non-empty queue while active == 1

	rng    *Source
	halted bool
	fired  uint64
	// laneFired counts events fired from peer lanes (excludes the global
	// queue); batches counts same-timestamp LaneEvent batch firings.
	laneFired uint64
	batches   uint64
	batchID   uint64

	// batch scratch, reused across batches.
	batchEv   []LaneEvent
	batchLane []int32
	byLane    [NumLanes][]int32

	// shards is the worker count for intra-event lane fan-outs (see
	// shard.go). Like MaxEvents it is configuration, so Reset keeps it.
	shards int

	// MaxEvents, when non-zero, aborts Run with ErrEventBudget after that
	// many events have fired. It is a guard against schedule bugs that
	// would otherwise loop forever.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run when MaxEvents is exceeded.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// NewEngine returns an engine with its clock at zero and a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	e := &Engine{rng: NewSource(seed), sole: -1}
	e.merge.init()
	return e
}

// Reset returns the engine to its just-constructed state with a fresh
// deterministic source derived from seed: clock at zero, empty queues,
// zero fired counters, outstanding handles invalidated. The queues'
// backing storage (heap arrays, capped item free-lists) is kept, so a
// reset engine re-runs without re-growing its event machinery — the
// engine-reuse primitive of the parallel trial scheduler. A reset engine
// is indistinguishable from NewEngine(seed) to everything that runs on
// it: the insertion sequence also restarts, so event tie-breaking cannot
// leak across runs.
func (e *Engine) Reset(seed int64) {
	for i := range e.lanes {
		e.lanes[i].reset()
	}
	e.seq = 0
	e.merge.init()
	e.active = 0
	e.sole = -1
	e.now = 0
	e.halted = false
	e.fired = 0
	e.laneFired = 0
	e.batches = 0
	e.batchID = 0
	e.rng = NewSource(seed)
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root random source. Subsystems should derive
// their own named streams via Rand().Stream(name) so that adding a new
// consumer does not perturb the draws seen by existing ones.
func (e *Engine) Rand() *Source { return e.rng }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// LaneEventsFired returns how many fired events came from peer lanes
// (as opposed to the global queue). It is a determinism artifact: for a
// fixed seed it is identical at every shard count.
func (e *Engine) LaneEventsFired() uint64 { return e.laneFired }

// BatchesFired returns how many same-timestamp LaneEvent batches ran.
func (e *Engine) BatchesFired() uint64 { return e.batches }

// BatchID returns the identifier of the current (or most recent) batch.
// Lane-local consumers use it to epoch-stamp per-lane scratch buffers.
func (e *Engine) BatchID() uint64 { return e.batchID }

// headChanged restores the merge invariants after queue lane's head
// changed; emptied reports whether the mutation drained the queue.
//
// The tree invariant: the tournament is maintained only while at least
// two queues are live. Whenever active >= 2, every non-empty queue's
// leaf is accurate and every empty queue's leaf reads emptyAt; whenever
// active < 2, ALL leaves read emptyAt and the tree is never consulted
// (the sole index answers pops directly). The transitions that keep
// this true: a 1→2 wake (queueWoke) syncs both live queues' leaves; a
// drain to active >= 2 clears just the drained leaf; a 2→1 drain clears
// the drained leaf AND the surviving sole's leaf, restoring the
// all-empty state — which is what lets the busy single-queue drain/wake
// cycle skip the tree entirely. An emptied queue's leaf must never
// retain its old key: that key is a just-popped global minimum, which
// would beat every future key and steer the tournament to an empty
// queue.
func (e *Engine) headChanged(lane int32, emptied bool) {
	if emptied {
		e.queueDrained(lane)
		return
	}
	if e.active >= 2 {
		q := &e.lanes[lane]
		e.merge.set(lane, q.keys[0].at, q.keys[0].seq)
	}
}

// queueDrained accounts a queue's non-empty → empty transition under the
// invariant of headChanged: on a 1→0 drain the tree is already all-empty
// and untouched; otherwise the drained leaf is cleared, and on a 2→1
// drain the surviving sole's leaf is cleared too.
func (e *Engine) queueDrained(lane int32) {
	e.active--
	if e.active >= 1 {
		e.merge.set(lane, emptyAt, ^uint64(0))
		if e.active == 1 {
			e.sole = e.findSole()
			e.merge.set(e.sole, emptyAt, ^uint64(0))
		}
	}
}

// queueWoke finishes a queue's empty → non-empty transition after the
// caller has already incremented active past 1. On the 1→2 transition
// the tree wakes from its all-empty idle state: both live queues' leaves
// are written (every other leaf reads emptyAt by invariant).
func (e *Engine) queueWoke(lane int32) {
	if e.active == 2 {
		s := &e.lanes[e.sole]
		e.merge.set(e.sole, s.keys[0].at, s.keys[0].seq)
	}
	q := &e.lanes[lane]
	e.merge.set(lane, q.keys[0].at, q.keys[0].seq)
}

// findSole locates the single non-empty queue (active == 1).
func (e *Engine) findSole() int32 {
	for i := range e.lanes {
		if len(e.lanes[i].items) > 0 {
			return int32(i)
		}
	}
	return -1
}

// minLane returns the queue holding the globally earliest event, or -1.
func (e *Engine) minLane() int32 {
	switch e.active {
	case 0:
		return -1
	case 1:
		return e.sole
	}
	return e.merge.min()
}

// peekMin returns the earliest pending item and its lane without
// removing it; (nil, -1) when all queues are empty.
func (e *Engine) peekMin() (*item, int32) {
	lane := e.minLane()
	if lane < 0 {
		return nil, -1
	}
	return e.lanes[lane].items[0], lane
}

// popMin removes and returns the earliest pending item and its lane.
func (e *Engine) popMin() (*item, int32) {
	lane := e.minLane()
	if lane < 0 {
		return nil, -1
	}
	q := &e.lanes[lane]
	it := q.pop()
	e.headChanged(lane, len(q.items) == 0)
	return it, lane
}

// Schedule enqueues ev to fire at absolute time at on the global queue.
// Scheduling in the past panics: it is always a logic error in a
// discrete-event model. The backing queue slot comes from a per-queue
// free-list, so steady-state scheduling does not allocate.
func (e *Engine) Schedule(at Time, ev Event) Handle {
	return e.ScheduleLane(GlobalLane, at, ev)
}

// ScheduleLane enqueues ev on the given lane's queue (GlobalLane for
// events with no single target peer). Lane placement affects only which
// queue the event waits in — firing order is engine-global — plus
// eligibility for same-timestamp batch firing of LaneEvents. The merge
// tree is touched only when the push changed a queue head the tournament
// cares about; a push behind an existing head costs nothing beyond the
// heap insert.
func (e *Engine) ScheduleLane(lane int, at Time, ev Event) Handle {
	if at < e.now || uint(lane) >= numQueues {
		e.badSchedule(lane, at)
	}
	q := &e.lanes[lane]
	it := q.alloc()
	it.at, it.ev = at, ev
	it.seq = e.seq
	e.seq++
	wasEmpty := len(q.items) == 0
	q.push(it)
	if wasEmpty {
		// queueWoke's 0→1 case, inlined for the serial hot loop; the
		// tree-waking transitions stay out of line.
		if e.active++; e.active == 1 {
			e.sole = int32(lane)
		} else {
			e.queueWoke(int32(lane))
		}
	} else if e.active >= 2 && it.pos == 0 {
		e.merge.set(int32(lane), at, it.seq)
	}
	return Handle{item: it, gen: it.gen, e: e, lane: int32(lane)}
}

// badSchedule reports the two ScheduleLane precondition violations; kept
// out of line so the checks in the hot path are two compares.
func (e *Engine) badSchedule(lane int, at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	panic(fmt.Sprintf("sim: schedule on lane %d, want [0,%d]", lane, NumLanes))
}

// After enqueues ev to fire d time units from now on the global queue.
func (e *Engine) After(d Duration, ev Event) Handle {
	return e.Schedule(e.now+d, ev)
}

// AfterLane is After on a specific lane's queue.
func (e *Engine) AfterLane(lane int, d Duration, ev Event) Handle {
	return e.ScheduleLane(lane, e.now+d, ev)
}

// AfterFunc is After for a plain function.
func (e *Engine) AfterFunc(d Duration, f func(*Engine)) Handle {
	return e.After(d, EventFunc(f))
}

// Halt stops the run loop after the current event (or batch) completes.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the exact number of events still queued. Cancelled
// events are removed from their queue immediately by Handle.Cancel, so
// they never appear in this count.
func (e *Engine) Pending() int {
	n := 0
	for i := range e.lanes {
		n += len(e.lanes[i].items)
	}
	return n
}

// Step fires the earliest pending event, advancing the clock to its time.
// When that event is a batchable LaneEvent co-scheduled with others at
// the same timestamp, the whole batch fires (lane-parallel eval, serial
// commit) as one step. It reports whether anything was fired.
func (e *Engine) Step() bool {
	var lane int32
	switch e.active {
	case 0:
		return false
	case 1:
		lane = e.sole
	default:
		lane = e.merge.min()
	}
	q := &e.lanes[lane]
	var it *item
	if len(q.items) == 1 {
		// Fused pop-to-empty + drain bookkeeping: the busy single-queue
		// cycle (self-rescheduling chains, the whole-run common case)
		// pops its only item and decrements active — the tree is
		// all-empty while active < 2 and stays untouched.
		it = q.items[0]
		it.pos = -1
		// Slot 0 is left dangling past len: the item is recycled into
		// the free-list right below (so nothing extra is retained) and
		// the next push's append overwrites the slot. Skipping the nil
		// store avoids a write barrier on every cycle of the chain.
		q.items = q.items[:0]
		q.keys = q.keys[:0]
		if e.active--; e.active >= 1 {
			e.merge.set(lane, emptyAt, ^uint64(0))
			if e.active == 1 {
				e.sole = e.findSole()
				e.merge.set(e.sole, emptyAt, ^uint64(0))
			}
		}
	} else {
		it = q.pop()
		if e.active >= 2 {
			e.merge.set(lane, q.keys[0].at, q.keys[0].seq)
		}
	}
	e.now = it.at
	ev := it.ev
	// Recycle the slot before firing: handles to this event turn inert,
	// and events scheduled from inside Fire reuse the still-hot item.
	q.release(it)
	e.fired++
	if lane != GlobalLane {
		e.laneFired++
		if le, ok := ev.(LaneEvent); ok && le.Batchable() && e.stepBatch(le, lane) {
			return true
		}
	}
	ev.Fire(e)
	return true
}

// stepBatch tries to extend the already-popped first event into a
// same-timestamp batch of batchable LaneEvents. It reports whether it
// consumed the firing; false means the caller fires first serially (a
// batch of one is equivalent to Fire by the LaneEvent contract, and the
// serial path is cheaper).
func (e *Engine) stepBatch(first LaneEvent, firstLane int32) bool {
	at := e.now
	nxt, lane := e.peekMin()
	if nxt == nil || nxt.at != at || lane == GlobalLane {
		return false
	}
	if le, ok := nxt.ev.(LaneEvent); !ok || !le.Batchable() {
		return false
	}
	e.batchEv = append(e.batchEv[:0], first)
	e.batchLane = append(e.batchLane[:0], firstLane)
	for {
		if e.MaxEvents != 0 && e.fired >= e.MaxEvents {
			break
		}
		nxt, lane := e.peekMin()
		if nxt == nil || nxt.at != at || lane == GlobalLane {
			break
		}
		le, ok := nxt.ev.(LaneEvent)
		if !ok || !le.Batchable() {
			break
		}
		it, _ := e.popMin()
		e.lanes[lane].release(it)
		e.fired++
		e.laneFired++
		e.batchEv = append(e.batchEv, le)
		e.batchLane = append(e.batchLane, lane)
	}
	e.batches++
	e.batchID++
	// Bucket by lane: within a lane, batch order is scheduling (seq)
	// order, which EvalLane must observe for events targeting one peer.
	for i, ln := range e.batchLane {
		e.byLane[ln] = append(e.byLane[ln], int32(i))
	}
	ForLanes(e.shards, NumLanes, func(lane int) {
		for _, i := range e.byLane[lane] {
			e.batchEv[i].EvalLane(e, lane)
		}
	})
	// Serial commit in exactly the order the events would have fired.
	for _, le := range e.batchEv {
		le.CommitLane(e)
	}
	for _, ln := range e.batchLane {
		e.byLane[ln] = e.byLane[ln][:0]
	}
	clear(e.batchEv) // do not retain events past their firing
	return true
}

// RunUntil fires events in order until the clock would pass deadline, the
// queue drains, or Halt is called. The clock is left at the later of its
// current value and deadline so that subsequent scheduling is relative to
// the deadline.
func (e *Engine) RunUntil(deadline Time) error {
	e.halted = false
	for !e.halted {
		it, _ := e.peekMin()
		if it == nil || it.at > deadline {
			break
		}
		if e.MaxEvents != 0 && e.fired >= e.MaxEvents {
			return ErrEventBudget
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Run fires events until the queue drains or Halt is called.
func (e *Engine) Run() error {
	e.halted = false
	for !e.halted {
		if e.MaxEvents != 0 && e.fired >= e.MaxEvents {
			return ErrEventBudget
		}
		if !e.Step() {
			break
		}
	}
	return nil
}

// Ticker invokes fn once per period, starting at the next multiple of
// period after the current time, until fn returns false or the engine
// stops. It is the engine's equivalent of a per-time-unit maintenance loop.
func (e *Engine) Ticker(period Duration, fn func(e *Engine) bool) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	var tick func(*Engine)
	tick = func(e *Engine) {
		if !fn(e) {
			return
		}
		e.After(period, EventFunc(tick))
	}
	e.After(period, EventFunc(tick))
}
