package sim

import (
	"math/rand"
	"testing"
)

// The lane-sharded event plane's contract: lane placement decides which
// queue an event waits in, never when it fires. These tests pin that
// contract directly against the single-queue reference, exercise the
// tie-break across lanes, the same-timestamp batch path, and the
// free-list retention cap.

// laneScript is a pregenerated randomized workload: initial events plus,
// per event, the children it schedules and the events it cancels when it
// fires. The script is lane-annotated but lane-agnostic in meaning — the
// oracle runs it twice, once with every event on the global queue and
// once spread across lanes, and demands identical firing order.
type laneScript struct {
	initial  []scriptEvent
	children map[int][]scriptEvent // fired id -> events it schedules
	cancels  map[int][]int         // fired id -> ids it cancels
}

type scriptEvent struct {
	id   int
	at   Duration // offset from schedule time (absolute for initial)
	lane int
}

func makeLaneScript(seed int64, initial, maxID int) *laneScript {
	rng := rand.New(rand.NewSource(seed))
	s := &laneScript{
		children: make(map[int][]scriptEvent),
		cancels:  make(map[int][]int),
	}
	next := 0
	newEvent := func() scriptEvent {
		ev := scriptEvent{
			id: next,
			// Coarse times force heavy ties; fine times exercise ordering.
			at:   Duration(float64(rng.Intn(50)) + float64(rng.Intn(4))*0.25),
			lane: rng.Intn(numQueues), // includes GlobalLane
		}
		next++
		return ev
	}
	for i := 0; i < initial; i++ {
		s.initial = append(s.initial, newEvent())
	}
	for id := 0; id < maxID; id++ {
		for c := rng.Intn(3); c > 0 && next < maxID; c-- {
			ch := newEvent()
			ch.at = Duration(float64(rng.Intn(8))*0.5 + 0.25)
			s.children[id] = append(s.children[id], ch)
		}
		if rng.Intn(4) == 0 {
			s.cancels[id] = append(s.cancels[id], rng.Intn(maxID))
		}
	}
	return s
}

// run executes the script and returns the fired-id order. useLanes
// selects the lane annotations; false forces everything onto the global
// queue — the pre-sharding single-heap reference.
func (s *laneScript) run(t *testing.T, useLanes bool) []int {
	t.Helper()
	e := NewEngine(9)
	var fired []int
	handles := make(map[int]Handle)
	var fire func(ev scriptEvent) EventFunc
	schedule := func(ev scriptEvent, at Time) {
		lane := GlobalLane
		if useLanes {
			lane = ev.lane
		}
		handles[ev.id] = e.ScheduleLane(lane, at, fire(ev))
	}
	fire = func(ev scriptEvent) EventFunc {
		return func(e *Engine) {
			fired = append(fired, ev.id)
			for _, ch := range s.children[ev.id] {
				schedule(ch, e.Now()+Time(ch.at))
			}
			for _, id := range s.cancels[ev.id] {
				handles[id].Cancel()
			}
		}
	}
	for _, ev := range s.initial {
		schedule(ev, Time(ev.at))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
	return fired
}

// TestLaneShardingOracle is the randomized-interleaving oracle: a scripted
// workload with ties, dynamic scheduling and cancellations must fire in
// exactly the same order whether every event sits in the single global
// queue or is spread across all 65 queues. The engine-global insertion
// sequence is what makes this hold; a per-lane sequence would break ties
// differently the moment two lanes interleave.
func TestLaneShardingOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		s := makeLaneScript(seed, 200, 600)
		ref := s.run(t, false)
		got := s.run(t, true)
		if len(ref) == 0 {
			t.Fatalf("seed %d: empty reference run", seed)
		}
		if len(got) != len(ref) {
			t.Fatalf("seed %d: fired %d events sharded, %d in reference", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: firing order diverges at %d: sharded %d, reference %d",
					seed, i, got[i], ref[i])
			}
		}
	}
}

// TestCrossLaneTieBreakIsFIFO pins the tie-break across queues: events
// scheduled at one timestamp on rotating lanes fire in scheduling order,
// exactly as the single-queue FIFO tie-break test (engine_test.go) pins
// it for one queue.
func TestCrossLaneTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 3*NumLanes; i++ {
		i := i
		e.ScheduleLane((i*7)%numQueues, 5, EventFunc(func(*Engine) { order = append(order, i) }))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3*NumLanes {
		t.Fatalf("fired %d, want %d", len(order), 3*NumLanes)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("cross-lane tie order broke at %d: %v...", i, order[:i+1])
		}
	}
}

// TestMergeTreeLeafClearedOnDrain is the regression test for a stale
// tournament leaf: drain two lanes down to one, run past them, then wake
// two fresh lanes. An emptied queue's leaf that survives the 2→1
// transition holds a just-popped global minimum — (time, seq) keys only
// grow — so the next tournament would steer min() to an empty queue and
// Step would index items[0] out of range. The fix is the headChanged
// invariant: while active < 2 every leaf reads emptyAt.
func TestMergeTreeLeafClearedOnDrain(t *testing.T) {
	e := NewEngine(1)
	ev := EventFunc(func(*Engine) {})
	e.ScheduleLane(1, 1, ev)
	e.ScheduleLane(2, 2, ev)
	if err := e.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	e.ScheduleLane(3, 3, ev)
	e.ScheduleLane(4, 3.5, ev)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 || e.EventsFired() != 4 {
		t.Fatalf("fired %d with %d pending, want 4 fired, 0 pending", e.EventsFired(), e.Pending())
	}
}

// batchRecorder is shared state for batchProbe events. Eval-side writes
// are lane-confined (evalByLane), commit-side writes are serial.
type batchRecorder struct {
	evalByLane [NumLanes][]int
	commits    []int
	serialFire []int
}

// batchProbe is a batchable LaneEvent that records where its halves ran.
type batchProbe struct {
	id   int
	rec  *batchRecorder
	solo bool // when true, refuse batching (exercises the mixed path)
}

func (b *batchProbe) Fire(*Engine)    { b.rec.serialFire = append(b.rec.serialFire, b.id) }
func (b *batchProbe) Batchable() bool { return !b.solo }
func (b *batchProbe) EvalLane(e *Engine, lane int) {
	b.rec.evalByLane[lane] = append(b.rec.evalByLane[lane], b.id)
}
func (b *batchProbe) CommitLane(*Engine) { b.rec.commits = append(b.rec.commits, b.id) }

// TestLaneBatchEvalCommit pins the same-timestamp batch contract: every
// co-scheduled batchable LaneEvent evals on the lane it was scheduled on
// and commits serially in insertion order; global-queue events and
// non-batchable events at the same timestamp fire serially in their
// global positions, unperturbed by the batch machinery around them.
func TestLaneBatchEvalCommit(t *testing.T) {
	e := NewEngine(1)
	e.SetShards(4)
	rec := &batchRecorder{}
	const n = 40
	wantLane := make(map[int]int)
	for i := 0; i < n; i++ {
		lane := (i * 5) % NumLanes
		wantLane[i] = lane
		e.ScheduleLane(lane, 2, &batchProbe{id: i, rec: rec})
	}
	// Same timestamp, global queue: must not join the batch.
	e.Schedule(2, EventFunc(func(*Engine) { rec.serialFire = append(rec.serialFire, -1) }))
	// Same timestamp, lane queue, not batchable: fires serially.
	e.ScheduleLane(3, 2, &batchProbe{id: n, rec: rec, solo: true})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.commits) != n {
		t.Fatalf("%d commits, want %d", len(rec.commits), n)
	}
	for i, id := range rec.commits {
		if id != i {
			t.Fatalf("commit order %v, want insertion order", rec.commits)
		}
	}
	for lane, ids := range rec.evalByLane {
		for _, id := range ids {
			if wantLane[id] != lane {
				t.Errorf("event %d evaled on lane %d, scheduled on %d", id, lane, wantLane[id])
			}
		}
	}
	if want := []int{-1, n}; len(rec.serialFire) != 2 || rec.serialFire[0] != -1 || rec.serialFire[1] != n {
		t.Errorf("serial firings %v, want %v", rec.serialFire, want)
	}
	if e.BatchesFired() == 0 {
		t.Error("no batch fired for 40 co-scheduled batchable events")
	}
	if got := e.LaneEventsFired(); got != n+1 {
		t.Errorf("LaneEventsFired = %d, want %d", got, n+1)
	}
}

// TestShardCountInvariantForBatches runs the batch workload at several
// worker counts and demands identical commit order and counters — the
// engine-level statement of the end-to-end shard-invariance tests.
func TestShardCountInvariantForBatches(t *testing.T) {
	run := func(shards int) ([]int, uint64, uint64) {
		e := NewEngine(1)
		e.SetShards(shards)
		rec := &batchRecorder{}
		for round := 0; round < 5; round++ {
			for i := 0; i < 30; i++ {
				e.ScheduleLane((i*11)%NumLanes, Time(round+1), &batchProbe{id: round*100 + i, rec: rec})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.commits, e.BatchesFired(), e.LaneEventsFired()
	}
	refC, refB, refL := run(1)
	for _, k := range []int{2, 4, 7} {
		c, b, l := run(k)
		if b != refB || l != refL {
			t.Errorf("shards=%d: counters (%d,%d) differ from serial (%d,%d)", k, b, l, refB, refL)
		}
		for i := range refC {
			if c[i] != refC[i] {
				t.Fatalf("shards=%d: commit order diverges at %d", k, i)
			}
		}
	}
}

// TestFreeListCapped pins satellite #1: a burst leaves at most
// maxFreeItems recycled items per queue behind — including the burst
// Engine.Reset releases wholesale — instead of pinning its peak forever.
func TestFreeListCapped(t *testing.T) {
	e := NewEngine(1)
	ev := EventFunc(func(*Engine) {})
	const burst = 4 * maxFreeItems
	for i := 0; i < burst; i++ {
		e.ScheduleLane(5, Time(1+i/100), ev)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.lanes[5].free); got > maxFreeItems {
		t.Errorf("lane free-list holds %d items after burst, cap is %d", got, maxFreeItems)
	}

	// Reset with a deep pending queue: the wholesale release honors the cap.
	for i := 0; i < burst; i++ {
		e.ScheduleLane(7, Time(1e6+float64(i)), ev)
	}
	e.Reset(1)
	for i := range e.lanes {
		if got := len(e.lanes[i].free); got > maxFreeItems {
			t.Errorf("queue %d free-list holds %d items after Reset, cap is %d", i, got, maxFreeItems)
		}
	}
	// The cap must not break steady-state reuse: warm pairs still recycle.
	var loop Event
	loop = EventFunc(func(e *Engine) { e.AfterLane(5, 1, loop) })
	e.AfterLane(5, 1, loop)
	for i := 0; i < 64; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(200, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.2f objects/op after cap, want 0", allocs)
	}
}
