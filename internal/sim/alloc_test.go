package sim

import "testing"

// The engine's scheduling hot path must not allocate in steady state: the
// queue recycles items through a per-engine free-list, so once the
// free-list is warm, Schedule/Step/Cancel are allocation-free. These tests
// pin that property; a regression here silently multiplies GC load by the
// event count of every scenario run.

// TestStepSteadyStateAllocFree: a pre-warmed self-rescheduling engine must
// fire events with zero allocations per Step.
func TestStepSteadyStateAllocFree(t *testing.T) {
	e := NewEngine(1)
	var ev Event
	ev = EventFunc(func(e *Engine) { e.After(1, ev) })
	e.After(1, ev)
	for i := 0; i < 64; i++ { // warm the free-list
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.2f objects/op, want 0", allocs)
	}
}

// TestScheduleCancelAllocFree: the churn-reconnect pattern (schedule a
// timer, cancel it before it fires) must be allocation-free once warm.
func TestScheduleCancelAllocFree(t *testing.T) {
	e := NewEngine(1)
	ev := EventFunc(func(*Engine) {})
	for i := 0; i < 64; i++ {
		e.Schedule(Time(1e6+float64(i)), ev) // keep a deep queue
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.Schedule(5e5, ev)
		h.Cancel()
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel allocates %.2f objects/op, want 0", allocs)
	}
}
