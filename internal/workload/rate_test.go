package workload

import (
	"math"
	"testing"

	"dlm/internal/sim"
)

func TestRampRate(t *testing.T) {
	r := RampRate{Start: 10, End: 20, From: 4, To: 8}
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 4}, {10, 4}, {15, 6}, {20, 8}, {100, 8},
	}
	for _, c := range cases {
		if got := r.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}

	step := RampRate{Start: 5, End: 5, From: 1, To: 9}
	if got := step.At(4); got != 1 {
		t.Errorf("step before = %v, want 1", got)
	}
	if got := step.At(5); got != 9 {
		t.Errorf("step at = %v, want 9", got)
	}

	neg := RampRate{Start: 0, End: 10, From: -4, To: -2}
	if got := neg.At(5); got != 0 {
		t.Errorf("negative ramp clamps to 0, got %v", got)
	}
}

func TestSinusoidRate(t *testing.T) {
	s := SinusoidRate{Amplitude: 6, Period: 100, Origin: 50}
	if got := s.At(50); got != 0 {
		t.Errorf("wave at origin = %v, want 0", got)
	}
	if got := s.At(100); math.Abs(got-6) > 1e-12 {
		t.Errorf("wave at half period = %v, want amplitude 6", got)
	}
	for ti := 0; ti <= 400; ti++ {
		v := s.At(sim.Time(ti))
		if v < 0 || v > 6 {
			t.Fatalf("wave At(%d) = %v outside [0, amplitude]", ti, v)
		}
	}
	// The mean over whole periods is half the amplitude.
	mean := MeanRate(s, 50, 250, 0.25)
	if math.Abs(mean-3) > 0.02 {
		t.Errorf("wave mean = %v, want ~3", mean)
	}
	if got := (SinusoidRate{Amplitude: 6}).At(10); got != 0 {
		t.Errorf("zero-period wave = %v, want 0", got)
	}
}

func TestSumRate(t *testing.T) {
	s := SumRate{ConstantRate(2), RampRate{Start: 0, End: 10, From: 0, To: 10}}
	if got := s.At(5); got != 7 {
		t.Errorf("sum At(5) = %v, want 7", got)
	}
}

// TestRateAccumulatorTracksIntegral drives the accumulator with a
// time-varying rate and checks the emitted event total never drifts from
// the integral of the rate by more than one event — the no-rounding-drift
// contract the scenario driver relies on for its extra-join schedule.
func TestRateAccumulatorTracksIntegral(t *testing.T) {
	r := SumRate{
		RampRate{Start: 100, End: 130, From: 9.7, To: 0},
		SinusoidRate{Amplitude: 3.3, Period: 37},
	}
	var acc RateAccumulator
	var emitted int
	var integral float64
	for ti := 0; ti < 500; ti++ {
		rate := r.At(sim.Time(ti))
		emitted += acc.Take(rate, 1)
		integral += rate
		if d := math.Abs(float64(emitted) - integral); d > 1+1e-6 {
			t.Fatalf("t=%d: emitted %d vs integral %.3f (drift %.3f)", ti, emitted, integral, d)
		}
	}
	if emitted == 0 {
		t.Fatal("accumulator emitted nothing")
	}
}

func TestRateAccumulatorRejectsJunk(t *testing.T) {
	var acc RateAccumulator
	for _, rate := range []float64{math.NaN(), math.Inf(1), -3, 0} {
		if got := acc.Take(rate, 1); got != 0 {
			t.Errorf("Take(%v, 1) = %d, want 0", rate, got)
		}
	}
	if got := acc.Take(5, math.NaN()); got != 0 {
		t.Errorf("Take(5, NaN) = %d, want 0", got)
	}
	if got := acc.Take(5, 1); got != 5 {
		t.Errorf("junk perturbed the accumulator: Take(5,1) = %d, want 5", got)
	}
}

// TestRateStatisticalJoinCount seeds a Bernoulli-thinned arrival process
// from a Rate and checks the realized count lands inside a generous
// binomial band — the style of bound the scenario oracles use (see
// stat_test.go for the pattern).
func TestRateStatisticalJoinCount(t *testing.T) {
	src := sim.NewSource(7).Stream("rate-test")
	const p = 0.5
	r := ConstantRate(8) // 8 candidates/unit, thinned to ~4/unit
	var acc RateAccumulator
	count := 0
	const units = 2000
	for ti := 0; ti < units; ti++ {
		for k := acc.Take(r.At(sim.Time(ti)), 1); k > 0; k-- {
			if src.Float64() < p {
				count++
			}
		}
	}
	mean := float64(units) * 8 * p
	sd := math.Sqrt(float64(units) * 8 * p * (1 - p))
	if lo, hi := mean-5*sd, mean+5*sd; float64(count) < lo || float64(count) > hi {
		t.Fatalf("thinned count %d outside [%.0f, %.0f] (mean %.0f, sd %.1f)", count, lo, hi, mean, sd)
	}
}
