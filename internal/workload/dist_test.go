package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dlm/internal/sim"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f±%.4f", name, got, want, tol)
	}
}

func empiricalMean(d Dist, n int, seed int64) float64 {
	r := sim.NewSource(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestAnalyticMeansMatchEmpirical(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		tol  float64
	}{
		{"constant", Constant(7), 0},
		{"uniform", Uniform{Lo: 2, Hi: 10}, 0.05},
		{"exponential", Exponential{MeanVal: 3}, 0.05},
		{"lognormal", Lognormal{Mu: 1, Sigma: 0.5}, 0.05},
		{"boundedpareto", BoundedPareto{Lo: 1, Hi: 100, Alpha: 1.5}, 0.05},
		{"weibull", Weibull{Scale: 5, Shape: 2}, 0.05},
		{"scaled", Scaled{Base: Uniform{Lo: 0, Hi: 2}, Factor: 3}, 0.05},
	}
	for _, c := range cases {
		got := empiricalMean(c.d, 300000, 11)
		approx(t, c.name+" empirical mean", got, c.d.Mean(), c.tol*math.Max(1, c.d.Mean()))
	}
}

func TestMixtureMeanAndSupport(t *testing.T) {
	m := NewMixture(
		[]Dist{Constant(1), Constant(10)},
		[]float64{3, 1},
	)
	approx(t, "mixture mean", m.Mean(), (3*1+1*10)/4.0, 1e-12)
	r := sim.NewSource(5)
	ones, tens := 0, 0
	for i := 0; i < 100000; i++ {
		switch m.Sample(r) {
		case 1:
			ones++
		case 10:
			tens++
		default:
			t.Fatal("mixture produced value outside components")
		}
	}
	approx(t, "component 0 frequency", float64(ones)/100000, 0.75, 0.01)
	_ = tens
}

func TestMixtureConstructionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewMixture(nil, nil) },
		"mismatch": func() { NewMixture([]Dist{Constant(1)}, []float64{1, 2}) },
		"negative": func() { NewMixture([]Dist{Constant(1)}, []float64{-1}) },
		"zero-sum": func() { NewMixture([]Dist{Constant(1)}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLognormalWithMedian(t *testing.T) {
	l := LognormalWithMedian(60, 1.2)
	approx(t, "median", l.Median(), 60, 1e-9)
	r := sim.NewSource(9)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if l.Sample(r) < 60 {
			below++
		}
	}
	approx(t, "fraction below median", float64(below)/n, 0.5, 0.01)
}

func TestSaroiuMixtureShape(t *testing.T) {
	m := SaroiuBandwidthMixture()
	r := sim.NewSource(17)
	const n = 200000
	var lowEnd, highEnd int
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		if v < 2 || v > 4000 {
			t.Fatalf("capacity %v outside configured support", v)
		}
		if v < 48 {
			lowEnd++
		}
		if v >= 800 {
			highEnd++
		}
	}
	// ~65% of peers below cable speeds, ~2% at the very top: the mix must
	// be heterogeneous, which is the premise of super-peer architectures.
	approx(t, "low-end fraction", float64(lowEnd)/n, 0.65, 0.02)
	approx(t, "high-end fraction", float64(highEnd)/n, 0.02, 0.005)
}

func TestStaticProfile(t *testing.T) {
	p := DefaultProfile()
	r := sim.NewSource(23)
	for i := 0; i < 1000; i++ {
		s := p.NewPeer(0, r)
		if s.Capacity <= 0 || s.Lifetime <= 0 {
			t.Fatalf("non-positive endowment %+v", s)
		}
		if s.Objects < 0 {
			t.Fatalf("negative object count %d", s.Objects)
		}
	}
}

func TestScheduledProfileRegimes(t *testing.T) {
	base := &StaticProfile{Capacity: Constant(100), Lifetime: Constant(60)}
	p := PaperDynamicProfile(base)
	r := sim.NewSource(1)

	s := p.NewPeer(100, r)
	if s.Capacity != 100 || s.Lifetime != 60 {
		t.Fatalf("pre-regime peer %+v, want capacity 100 lifetime 60", s)
	}
	s = p.NewPeer(300, r)
	if s.Capacity != 100 || s.Lifetime != 30 {
		t.Fatalf("t=300 peer %+v, want lifetime halved", s)
	}
	s = p.NewPeer(1500, r)
	if s.Capacity != 200 || s.Lifetime != 30 {
		t.Fatalf("t=1500 peer %+v, want capacity doubled and lifetime still halved", s)
	}
}

func TestScheduledProfileSortsChanges(t *testing.T) {
	base := &StaticProfile{Capacity: Constant(1), Lifetime: Constant(1)}
	p := NewScheduledProfile(base,
		RegimeChange{From: 200, Modifier: Modifier{CapacityFactor: 3, LifetimeFactor: 1}},
		RegimeChange{From: 100, Modifier: Modifier{CapacityFactor: 2, LifetimeFactor: 1}},
	)
	if got := p.ActiveModifier(150).CapacityFactor; got != 2 {
		t.Fatalf("ActiveModifier(150).CapacityFactor = %v, want 2", got)
	}
	if got := p.ActiveModifier(250).CapacityFactor; got != 3 {
		t.Fatalf("ActiveModifier(250).CapacityFactor = %v, want 3", got)
	}
}

func TestPeriodicProfile(t *testing.T) {
	base := &StaticProfile{Capacity: Constant(10), Lifetime: Constant(60)}
	p := PaperPeriodicProfile(base, 200, 400)
	r := sim.NewSource(2)

	if s := p.NewPeer(100, r); s.Capacity != 10 {
		t.Fatalf("pre-start capacity %v, want 10", s.Capacity)
	}
	if s := p.NewPeer(450, r); s.Capacity != 30 {
		t.Fatalf("high phase capacity %v, want 30 (3x)", s.Capacity)
	}
	if s := p.NewPeer(550, r); math.Abs(s.Capacity-10.0/3) > 1e-12 {
		t.Fatalf("low phase capacity %v, want 10/3", s.Capacity)
	}
	if s := p.NewPeer(650, r); s.Capacity != 30 {
		t.Fatalf("second high phase capacity %v, want 30", s.Capacity)
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	z := NewZipf(100, 0.8)
	sum := 0.0
	for i := 0; i < z.N; i++ {
		sum += z.Mass(i)
	}
	approx(t, "zipf total mass", sum, 1, 1e-9)
	if z.Mass(-1) != 0 || z.Mass(100) != 0 {
		t.Fatal("out-of-range mass should be zero")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := sim.NewSource(31)
	counts := make([]int, z.N)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Rank(r)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("zipf not monotone at head: %d, %d, %d", counts[0], counts[1], counts[10])
	}
	approx(t, "rank-0 frequency", float64(counts[0])/n, z.Mass(0), 0.01)
}

// Property: Scaled distribution scales samples exactly.
func TestScaledProperty(t *testing.T) {
	f := func(seed int64, factorRaw uint8) bool {
		factor := float64(factorRaw%10) + 0.5
		base := Uniform{Lo: 1, Hi: 2}
		s := Scaled{Base: base, Factor: factor}
		a := base.Sample(sim.NewSource(seed))
		b := s.Sample(sim.NewSource(seed))
		return math.Abs(b-factor*a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BoundedPareto samples always stay in range.
func TestBoundedParetoRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := sim.NewSource(seed)
		d := BoundedPareto{Lo: 2, Hi: 50, Alpha: 1.2}
		for i := 0; i < 100; i++ {
			v := d.Sample(r)
			if v < 2 || v > 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestModifierString(t *testing.T) {
	m := Modifier{CapacityFactor: 2, LifetimeFactor: 0.5}
	if m.String() != "capacity×2 lifetime×0.5" {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestWeightedSum(t *testing.T) {
	// Paper Definition 1: capacity = Σ w_i·v_i over bandwidth, CPU,
	// storage.
	w := NewWeightedSum(
		[]Dist{Constant(100), Constant(8), Constant(500)},
		[]float64{0.7, 0.2, 0.1},
	)
	r := sim.NewSource(1)
	want := 0.7*100 + 0.2*8 + 0.1*500
	if got := w.Sample(r); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sample = %v, want %v", got, want)
	}
	if math.Abs(w.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", w.Mean(), want)
	}
	// Stochastic components: mean is the weighted sum of means.
	w2 := NewWeightedSum([]Dist{Uniform{Lo: 0, Hi: 10}, Exponential{MeanVal: 3}}, []float64{1, 2})
	if got := empiricalMean(w2, 200000, 5); math.Abs(got-w2.Mean()) > 0.1 {
		t.Fatalf("empirical mean %v vs analytic %v", got, w2.Mean())
	}
}

func TestWeightedSumPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewWeightedSum(nil, nil) },
		"mismatch": func() { NewWeightedSum([]Dist{Constant(1)}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSinusoidalProfile(t *testing.T) {
	base := &StaticProfile{Capacity: Constant(100), Lifetime: Constant(60)}
	p := &SinusoidalProfile{Base: base, Period: 100, CapacityAmplitude: 0.5, LifetimeAmplitude: 0.2}
	r := sim.NewSource(1)
	// Peak of the sine at t = 25 (quarter period).
	if s := p.NewPeer(25, r); math.Abs(s.Capacity-150) > 1e-9 || math.Abs(s.Lifetime-72) > 1e-9 {
		t.Fatalf("peak: %+v", s)
	}
	// Trough at t = 75.
	if s := p.NewPeer(75, r); math.Abs(s.Capacity-50) > 1e-9 || math.Abs(s.Lifetime-48) > 1e-9 {
		t.Fatalf("trough: %+v", s)
	}
	// Zero crossings at t = 0 and t = 50.
	if s := p.NewPeer(0, r); math.Abs(s.Capacity-100) > 1e-9 {
		t.Fatalf("zero crossing: %+v", s)
	}
	// Zero period: identity.
	pz := &SinusoidalProfile{Base: base}
	if s := pz.NewPeer(33, r); s.Capacity != 100 {
		t.Fatalf("zero period modified capacity: %+v", s)
	}
}
