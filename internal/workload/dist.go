// Package workload generates the stochastic inputs of the simulation:
// per-peer capacities and lifetimes, content catalogs, query targets, and
// time-varying regime schedules that reshape those distributions mid-run.
//
// The shapes are the ones the paper calibrates against the measurement
// studies it cites (Saroiu et al. MMCN'02; Gummadi et al. SOSP'03):
// heavy-tailed session lifetimes with a median around an hour, and a
// bandwidth mix spanning dial-up to campus links.
package workload

import (
	"fmt"
	"math"
	"sort"

	"dlm/internal/sim"
)

// Dist is a one-dimensional distribution that can be sampled with a
// deterministic source.
type Dist interface {
	Sample(r *sim.Source) float64
	// Mean returns the analytic mean of the distribution, used by
	// regime schedules to rescale a distribution to a target mean.
	Mean() float64
}

// Constant is a degenerate distribution.
type Constant float64

// Sample implements Dist.
func (c Constant) Sample(*sim.Source) float64 { return float64(c) }

// Mean implements Dist.
func (c Constant) Mean() float64 { return float64(c) }

// Uniform is the uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *sim.Source) float64 { return r.Uniform(u.Lo, u.Hi) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential has the given mean.
type Exponential struct{ MeanVal float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *sim.Source) float64 { return r.Exponential(e.MeanVal) }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Lognormal is parameterized by the mean (Mu) and standard deviation
// (Sigma) of the underlying normal.
type Lognormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l Lognormal) Sample(r *sim.Source) float64 { return r.Lognormal(l.Mu, l.Sigma) }

// Mean implements Dist.
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Median returns exp(Mu), the distribution's median.
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// LognormalWithMedian builds a lognormal with the given median and sigma.
func LognormalWithMedian(median, sigma float64) Lognormal {
	return Lognormal{Mu: math.Log(median), Sigma: sigma}
}

// BoundedPareto is a Pareto(Alpha) truncated to [Lo, Hi].
type BoundedPareto struct{ Lo, Hi, Alpha float64 }

// Sample implements Dist.
func (p BoundedPareto) Sample(r *sim.Source) float64 {
	return r.BoundedPareto(p.Lo, p.Hi, p.Alpha)
}

// Mean implements Dist.
func (p BoundedPareto) Mean() float64 {
	a, l, h := p.Alpha, p.Lo, p.Hi
	if a == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * a / (a - 1) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// Weibull with the given scale and shape.
type Weibull struct{ Scale, Shape float64 }

// Sample implements Dist.
func (w Weibull) Sample(r *sim.Source) float64 { return r.Weibull(w.Scale, w.Shape) }

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Scale * gamma(1+1/w.Shape) }

func gamma(x float64) float64 { return math.Gamma(x) }

// Scaled wraps a distribution and multiplies every sample by Factor.
// Regime schedules use it to halve or double a distribution's mean without
// changing its shape (the paper's dynamic scenarios do exactly this).
type Scaled struct {
	Base   Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(r *sim.Source) float64 { return s.Factor * s.Base.Sample(r) }

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// WeightedSum is the paper's Definition 1 in its general form:
// capacity(d) = Σ w_i·v_i(d), a weighted sum over per-metric draws
// (bandwidth, CPU power, storage space, ...). The paper's evaluation
// collapses it to bandwidth alone; this form supports multi-metric
// capacity scenarios.
type WeightedSum struct {
	Components []Dist
	Weights    []float64
}

// NewWeightedSum builds a weighted sum; it panics on length mismatch or
// an empty component list.
func NewWeightedSum(components []Dist, weights []float64) *WeightedSum {
	if len(components) == 0 || len(components) != len(weights) {
		panic(fmt.Sprintf("workload: weighted sum with %d components, %d weights",
			len(components), len(weights)))
	}
	return &WeightedSum{Components: components, Weights: weights}
}

// Sample implements Dist: each component is drawn independently.
func (w *WeightedSum) Sample(r *sim.Source) float64 {
	var sum float64
	for i, c := range w.Components {
		sum += w.Weights[i] * c.Sample(r)
	}
	return sum
}

// Mean implements Dist.
func (w *WeightedSum) Mean() float64 {
	var mean float64
	for i, c := range w.Components {
		mean += w.Weights[i] * c.Mean()
	}
	return mean
}

// Mixture is a finite mixture of distributions with the given weights.
// Weights need not be normalized.
type Mixture struct {
	Components []Dist
	Weights    []float64
	cum        []float64
	total      float64
}

// NewMixture builds a mixture; it panics on length mismatch or an empty or
// non-positive weight vector, which are always construction bugs.
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic(fmt.Sprintf("workload: mixture with %d components, %d weights",
			len(components), len(weights)))
	}
	m := &Mixture{Components: components, Weights: weights}
	m.cum = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			panic("workload: negative mixture weight")
		}
		m.total += w
		m.cum[i] = m.total
	}
	if m.total <= 0 {
		panic("workload: mixture weights sum to zero")
	}
	return m
}

// Sample implements Dist.
func (m *Mixture) Sample(r *sim.Source) float64 {
	u := r.Float64() * m.total
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(r)
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	var mean float64
	for i, c := range m.Components {
		mean += m.Weights[i] / m.total * c.Mean()
	}
	return mean
}
