package workload

import (
	"math"
	"sort"

	"dlm/internal/sim"
)

// Zipf draws ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. File popularity in the measured file-sharing workloads is
// Zipf-like with exponent a bit below 1; both object placement and query
// targets use this sampler.
type Zipf struct {
	N   int
	S   float64
	cum []float64
}

// NewZipf precomputes the cumulative mass function; it panics for a
// non-positive N.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf over empty support")
	}
	z := &Zipf{N: n, S: s, cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// Rank draws a rank in [0, N).
func (z *Zipf) Rank(r *sim.Source) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= z.N {
		i = z.N - 1
	}
	return i
}

// Mass returns the probability of the given rank.
func (z *Zipf) Mass(rank int) float64 {
	if rank < 0 || rank >= z.N {
		return 0
	}
	if rank == 0 {
		return z.cum[0]
	}
	return z.cum[rank] - z.cum[rank-1]
}
