package workload

import (
	"math"
	"sort"
	"testing"

	"dlm/internal/sim"
)

// Statistical acceptance tests for the workload generators: each pins a
// seed (the draws are deterministic, so these are regression tests with
// statistically-derived tolerances, not flaky sampling tests) and checks
// the generator against the quantity the paper's calibration cites — the
// one-hour median session, the Zipf-like popularity exponent, and the
// measured bandwidth-class proportions.

// TestLifetimeEmpiricalMedian checks the order statistic itself: the
// sample median of the session-length distribution must sit within 5% of
// the configured 60-minute median.
func TestLifetimeEmpiricalMedian(t *testing.T) {
	d := DefaultLifetime()
	r := sim.NewSource(101)
	const n = 100001
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	sort.Float64s(samples)
	median := samples[n/2]
	if math.Abs(median-60)/60 > 0.05 {
		t.Fatalf("empirical median = %.2f, want within 5%% of 60", median)
	}
}

// TestZipfRankFrequencySlope fits the log-log rank-frequency line over
// the head of a Zipf(0.8) sample and checks the slope recovers the
// exponent: log f(k) = c − s·log k, so the least-squares slope over the
// first 100 ranks must be ≈ −0.8.
func TestZipfRankFrequencySlope(t *testing.T) {
	const (
		support = 1000
		s       = 0.8
		n       = 500000
		head    = 100
	)
	z := NewZipf(support, s)
	r := sim.NewSource(103)
	counts := make([]int, support)
	for i := 0; i < n; i++ {
		counts[z.Rank(r)]++
	}
	// Least squares of y = log(count) on x = log(rank+1) over the head,
	// where every rank has enough mass for a stable log.
	var sx, sy, sxx, sxy float64
	for k := 0; k < head; k++ {
		if counts[k] == 0 {
			t.Fatalf("head rank %d unsampled after %d draws", k, n)
		}
		x := math.Log(float64(k + 1))
		y := math.Log(float64(counts[k]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (float64(head)*sxy - sx*sy) / (float64(head)*sxx - sx*sx)
	if math.Abs(slope-(-s)) > 0.05 {
		t.Fatalf("rank-frequency slope = %.3f, want %.3f±0.05", slope, -s)
	}
}

// TestSaroiuClassProportions runs a χ²-style goodness-of-fit check of the
// realized bandwidth-class shares against the configured mixture weights.
// The class supports are disjoint, so the sampled value identifies its
// class. With df = 4 the 99.9th percentile of χ² is 18.47; the pinned
// seed makes the statistic deterministic, so exceeding the bound means
// the mixture weights or supports changed, not bad luck.
func TestSaroiuClassProportions(t *testing.T) {
	classes := []struct {
		name   string
		lo, hi float64
		weight float64
	}{
		{"modem", 2, 8, 0.25},
		{"dsl", 8, 48, 0.40},
		{"cable", 48, 160, 0.25},
		{"t1", 160, 800, 0.08},
		{"t3+", 800, 4000, 0.02},
	}
	m := SaroiuBandwidthMixture()
	r := sim.NewSource(107)
	const n = 100000
	obs := make([]int, len(classes))
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		found := false
		for ci, c := range classes {
			if v >= c.lo && v < c.hi {
				obs[ci]++
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sample %v outside every class support", v)
		}
	}
	chi2 := 0.0
	for ci, c := range classes {
		exp := c.weight * n
		d := float64(obs[ci]) - exp
		chi2 += d * d / exp
	}
	if chi2 > 18.47 {
		t.Fatalf("χ² = %.2f over 18.47 (df=4, p=0.001); class counts %v", chi2, obs)
	}
}
