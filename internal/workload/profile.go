package workload

import "dlm/internal/sim"

// PeerSample is the immutable stochastic endowment of one joining peer.
type PeerSample struct {
	// Capacity abstracts the peer's ability to process and relay queries
	// (the paper uses bandwidth in KB/s as the single capacity metric).
	Capacity float64
	// Lifetime is the session length in time units; the peer leaves the
	// network when its age reaches this value.
	Lifetime float64
	// Objects is the number of content objects the peer shares.
	Objects int
}

// Profile generates peer endowments. Implementations may vary over virtual
// time (regime schedules).
type Profile interface {
	// NewPeer draws the endowment of a peer joining at time now.
	NewPeer(now sim.Time, r *sim.Source) PeerSample
}

// StaticProfile draws every peer from fixed distributions.
type StaticProfile struct {
	Capacity Dist
	Lifetime Dist
	// ObjectsPerPeer is the distribution of the number of shared objects;
	// draws are truncated at zero and rounded.
	ObjectsPerPeer Dist
}

// NewPeer implements Profile.
func (p *StaticProfile) NewPeer(_ sim.Time, r *sim.Source) PeerSample {
	return PeerSample{
		Capacity: p.Capacity.Sample(r),
		Lifetime: p.Lifetime.Sample(r),
		Objects:  sampleCount(p.ObjectsPerPeer, r),
	}
}

func sampleCount(d Dist, r *sim.Source) int {
	if d == nil {
		return 0
	}
	v := d.Sample(r)
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// BandwidthClass is one rung of the measured last-mile bandwidth mix.
type BandwidthClass struct {
	Name   string
	Weight float64
	// Dist generates capacities in KB/s within the class.
	Dist Dist
}

// SaroiuBandwidthMixture reproduces the bandwidth mix reported by the
// Gnutella/Napster measurement study the paper calibrates against:
// a large population of dial-up and broadband consumer links with a thin
// high-capacity tail of campus/backbone peers.
func SaroiuBandwidthMixture() *Mixture {
	classes := []BandwidthClass{
		{Name: "modem", Weight: 0.25, Dist: Uniform{Lo: 2, Hi: 8}},
		{Name: "dsl", Weight: 0.40, Dist: Uniform{Lo: 8, Hi: 48}},
		{Name: "cable", Weight: 0.25, Dist: Uniform{Lo: 48, Hi: 160}},
		{Name: "t1", Weight: 0.08, Dist: Uniform{Lo: 160, Hi: 800}},
		{Name: "t3+", Weight: 0.02, Dist: Uniform{Lo: 800, Hi: 4000}},
	}
	dists := make([]Dist, len(classes))
	weights := make([]float64, len(classes))
	for i, c := range classes {
		dists[i], weights[i] = c.Dist, c.Weight
	}
	return NewMixture(dists, weights)
}

// DefaultLifetime is the measured session-length fit: lognormal with a
// median of about one hour (in minutes) and a heavy upper tail.
func DefaultLifetime() Lognormal { return LognormalWithMedian(60, 1.2) }

// DefaultObjects is the per-peer shared-object count distribution; the
// measurement studies report most peers sharing few files with a heavy
// tail of large sharers (and a significant free-rider population modeled
// by the low end of the bounded Pareto).
func DefaultObjects() Dist { return BoundedPareto{Lo: 1, Hi: 1000, Alpha: 0.8} }

// DefaultProfile assembles the paper's baseline stable-network workload.
func DefaultProfile() *StaticProfile {
	return &StaticProfile{
		Capacity:       SaroiuBandwidthMixture(),
		Lifetime:       DefaultLifetime(),
		ObjectsPerPeer: DefaultObjects(),
	}
}
