package workload

import (
	"math"

	"dlm/internal/sim"
)

// Rate is a time-varying event rate: events per time unit as a function
// of virtual time. The adversarial scenario driver (internal/scenario)
// integrates a Rate tick by tick to schedule extra joins on top of the
// replacement churn — flash-crowd spikes, decays, and diurnal waves are
// all shapes of Rate.
type Rate interface {
	// At returns the instantaneous rate at time now, in events per time
	// unit. Implementations must return a finite value >= 0.
	At(now sim.Time) float64
}

// ConstantRate is a fixed rate.
type ConstantRate float64

// At implements Rate.
func (c ConstantRate) At(sim.Time) float64 { return max(float64(c), 0) }

// RampRate interpolates linearly from From at Start to To at End, holding
// the endpoint values outside the interval. A zero-length interval is a
// step at Start.
type RampRate struct {
	Start, End sim.Time
	From, To   float64
}

// At implements Rate.
func (r RampRate) At(now sim.Time) float64 {
	if r.End <= r.Start { // zero-length interval: a step at Start
		if now < r.Start {
			return max(r.From, 0)
		}
		return max(r.To, 0)
	}
	if now <= r.Start {
		return max(r.From, 0)
	}
	if now >= r.End {
		return max(r.To, 0)
	}
	f := float64(now-r.Start) / float64(r.End-r.Start)
	return max(r.From+f*(r.To-r.From), 0)
}

// SinusoidRate is a diurnal-style wave: the rate swings between 0 and
// Amplitude with the given period, starting at 0 at time Origin (the wave
// is (1 - cos)/2-shaped, so a phase that begins at its own origin ramps
// up from zero rather than jumping to the mean).
type SinusoidRate struct {
	Amplitude float64
	Period    sim.Duration
	Origin    sim.Time
}

// At implements Rate.
func (s SinusoidRate) At(now sim.Time) float64 {
	if s.Period <= 0 || s.Amplitude <= 0 {
		return 0
	}
	phase := 2 * math.Pi * float64(now-s.Origin) / float64(s.Period)
	return s.Amplitude * (1 - math.Cos(phase)) / 2
}

// SumRate adds component rates.
type SumRate []Rate

// At implements Rate.
func (s SumRate) At(now sim.Time) float64 {
	var total float64
	for _, r := range s {
		total += r.At(now)
	}
	return total
}

// MeanRate numerically averages r over [from, to] with the given step —
// the expected event count over the interval is MeanRate · (to-from).
// Tests and scenario budgeting use it; it is not on any hot path.
func MeanRate(r Rate, from, to sim.Time, step sim.Duration) float64 {
	if to <= from || step <= 0 {
		return 0
	}
	var sum float64
	var n int
	for t := from; t < to; t += step {
		sum += r.At(t)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RateAccumulator converts a continuous Rate into integer event counts
// per tick with no long-run rounding drift: fractional events carry over
// to the next tick, so the emitted total tracks the integral of the rate.
type RateAccumulator struct {
	acc float64
}

// Take returns the number of whole events due for a tick that observed
// the instantaneous rate `rate` over `dt` time units, carrying the
// fractional remainder forward. Non-finite or negative input adds
// nothing.
func (a *RateAccumulator) Take(rate float64, dt float64) int {
	if !(rate > 0) || !(dt > 0) || math.IsInf(rate, 0) || math.IsInf(dt, 0) {
		return 0
	}
	a.acc += rate * dt
	n := int(a.acc)
	a.acc -= float64(n)
	return n
}
