package workload

import (
	"fmt"
	"math"
	"sort"

	"dlm/internal/sim"
)

// Modifier rescales the capacity and/or lifetime distributions of newly
// joining peers. A factor of 1 leaves the corresponding distribution
// untouched.
type Modifier struct {
	CapacityFactor float64
	LifetimeFactor float64
}

// identity reports whether the modifier changes nothing.
func (m Modifier) identity() bool {
	return m.CapacityFactor == 1 && m.LifetimeFactor == 1
}

func (m Modifier) String() string {
	return fmt.Sprintf("capacity×%g lifetime×%g", m.CapacityFactor, m.LifetimeFactor)
}

// RegimeChange applies From onward; the active modifier at time t is the
// one with the largest From <= t.
type RegimeChange struct {
	From     sim.Time
	Modifier Modifier
}

// ScheduledProfile wraps a base profile with a piecewise-constant schedule
// of modifiers, reproducing the paper's dynamic scenarios ("starting from
// the 300th time unit, lifetimes of new peers halve"; "from the 1000th,
// capacities double").
type ScheduledProfile struct {
	Base    Profile
	changes []RegimeChange
}

// NewScheduledProfile builds a scheduled profile; changes are sorted by
// start time.
func NewScheduledProfile(base Profile, changes ...RegimeChange) *ScheduledProfile {
	s := &ScheduledProfile{Base: base, changes: append([]RegimeChange(nil), changes...)}
	sort.Slice(s.changes, func(i, j int) bool { return s.changes[i].From < s.changes[j].From })
	return s
}

// ActiveModifier returns the modifier in force at time now.
func (s *ScheduledProfile) ActiveModifier(now sim.Time) Modifier {
	active := Modifier{CapacityFactor: 1, LifetimeFactor: 1}
	for _, c := range s.changes {
		if c.From > now {
			break
		}
		active = c.Modifier
	}
	return active
}

// NewPeer implements Profile.
func (s *ScheduledProfile) NewPeer(now sim.Time, r *sim.Source) PeerSample {
	p := s.Base.NewPeer(now, r)
	m := s.ActiveModifier(now)
	if !m.identity() {
		p.Capacity *= m.CapacityFactor
		p.Lifetime *= m.LifetimeFactor
	}
	return p
}

// PeriodicProfile alternates between two modifiers with the given period,
// reproducing the paper's comparison scenario where the mean capacity of
// new peers is "periodically changed". The first half-period uses High,
// the second Low.
type PeriodicProfile struct {
	Base   Profile
	Period sim.Duration
	High   Modifier
	Low    Modifier
	// Start delays the oscillation; before Start the base profile is used
	// unmodified so the network can warm up.
	Start sim.Time
}

// ActiveModifier returns the modifier in force at time now.
func (p *PeriodicProfile) ActiveModifier(now sim.Time) Modifier {
	if now < p.Start || p.Period <= 0 {
		return Modifier{CapacityFactor: 1, LifetimeFactor: 1}
	}
	phase := math.Mod(float64(now-p.Start), float64(p.Period))
	if phase < float64(p.Period)/2 {
		return p.High
	}
	return p.Low
}

// NewPeer implements Profile.
func (p *PeriodicProfile) NewPeer(now sim.Time, r *sim.Source) PeerSample {
	s := p.Base.NewPeer(now, r)
	m := p.ActiveModifier(now)
	s.Capacity *= m.CapacityFactor
	s.Lifetime *= m.LifetimeFactor
	return s
}

// SinusoidalProfile modulates the capacity and/or lifetime means of new
// joiners smoothly over time — a diurnal pattern rather than the paper's
// step changes: factor(t) = 1 + Amplitude·sin(2πt/Period).
type SinusoidalProfile struct {
	Base Profile
	// Period is the cycle length in time units.
	Period sim.Duration
	// CapacityAmplitude and LifetimeAmplitude are the relative swing of
	// each mean, in [0,1).
	CapacityAmplitude float64
	LifetimeAmplitude float64
}

// ActiveModifier returns the modifier in force at time now.
func (s *SinusoidalProfile) ActiveModifier(now sim.Time) Modifier {
	if s.Period <= 0 {
		return Modifier{CapacityFactor: 1, LifetimeFactor: 1}
	}
	phase := math.Sin(2 * math.Pi * float64(now) / float64(s.Period))
	return Modifier{
		CapacityFactor: 1 + s.CapacityAmplitude*phase,
		LifetimeFactor: 1 + s.LifetimeAmplitude*phase,
	}
}

// NewPeer implements Profile.
func (s *SinusoidalProfile) NewPeer(now sim.Time, r *sim.Source) PeerSample {
	p := s.Base.NewPeer(now, r)
	m := s.ActiveModifier(now)
	p.Capacity *= m.CapacityFactor
	p.Lifetime *= m.LifetimeFactor
	return p
}

// HalfLifetimeAt builds the Figure 4 regime change: from t onward, new
// peers draw lifetimes with half the mean.
func HalfLifetimeAt(t sim.Time) RegimeChange {
	return RegimeChange{From: t, Modifier: Modifier{CapacityFactor: 1, LifetimeFactor: 0.5}}
}

// DoubleCapacityAt builds the Figure 5 regime change: from t onward, new
// peers draw capacities with double the mean. The lifetime factor given
// here preserves whatever lifetime regime is already active at t — the
// paper stacks the capacity change on top of the lifetime change — so the
// caller passes the lifetime factor in force.
func DoubleCapacityAt(t sim.Time, lifetimeFactor float64) RegimeChange {
	return RegimeChange{From: t, Modifier: Modifier{CapacityFactor: 2, LifetimeFactor: lifetimeFactor}}
}

// PaperDynamicProfile is the exact dynamic scenario of Figures 4-6:
// lifetime mean halves at t=300, capacity mean doubles at t=1000 (with the
// halved lifetimes still in force).
func PaperDynamicProfile(base Profile) *ScheduledProfile {
	return NewScheduledProfile(base,
		HalfLifetimeAt(300),
		DoubleCapacityAt(1000, 0.5),
	)
}

// PaperPeriodicProfile is the Figures 7-8 comparison scenario: the mean
// capacity of new peers flips between 3x and 1/3x every period — a strong
// population-mix swing that a fixed capacity threshold translates
// directly into layer-ratio swing.
func PaperPeriodicProfile(base Profile, period sim.Duration, start sim.Time) *PeriodicProfile {
	return &PeriodicProfile{
		Base:   base,
		Period: period,
		Start:  start,
		High:   Modifier{CapacityFactor: 3, LifetimeFactor: 1},
		Low:    Modifier{CapacityFactor: 1.0 / 3, LifetimeFactor: 1},
	}
}
