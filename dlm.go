// Package dlm is the public API of this reproduction of "Dynamic Layer
// Management in Super-peer Architectures" (Zhuang, Liu, Xiao — ICPP 2004).
//
// It re-exports the pieces a downstream user composes:
//
//   - Scenario construction (the paper's Table 2 and scaled variants),
//   - the DLM algorithm parameters,
//   - the scenario runner and the per-figure/table experiment drivers,
//   - ASCII rendering of the resulting figures.
//
// Quick start:
//
//	sc := dlm.Scaled(2000)
//	res, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM})
//	fmt.Println(res.Final.Ratio)
//
// The building blocks (discrete-event engine, overlay, query flooding,
// workload generators) live in internal/ packages; this facade is the
// supported surface.
package dlm

import (
	"io"

	"dlm/internal/config"
	"dlm/internal/core"
	"dlm/internal/experiments"
	"dlm/internal/plot"
	"dlm/internal/stats"
)

// Scenario bundles the structural and workload parameters of a run; see
// internal/config for field documentation.
type Scenario = config.Scenario

// Table2 returns the paper's full-scale simulation parameters
// (n≈50,020, η=40, m=2, k_l=80, k_s=3).
func Table2() Scenario { return config.Table2() }

// Scaled returns a Table 2-shaped scenario resized to n peers.
func Scaled(n int) Scenario { return config.Scaled(n) }

// Params are the DLM algorithm tunables.
type Params = core.Params

// DefaultParams returns the evaluation's DLM tuning.
func DefaultParams() Params { return core.DefaultParams() }

// ManagerKind selects a layer-management policy.
type ManagerKind = experiments.ManagerKind

// The available layer-management policies.
const (
	ManagerDLM           = experiments.ManagerDLM
	ManagerPreconfigured = experiments.ManagerPreconfigured
	ManagerStatic        = experiments.ManagerStatic
	ManagerOracle        = experiments.ManagerOracle
	ManagerNone          = experiments.ManagerNone
)

// RunConfig assembles one simulation run.
type RunConfig = experiments.RunConfig

// RunResult carries a run's series, final snapshot, counters and traffic.
type RunResult = experiments.RunResult

// Run executes one configured simulation.
func Run(rc RunConfig) (*RunResult, error) { return experiments.Run(rc) }

// FigureResult is a rendered figure with labelled series and notes.
type FigureResult = experiments.FigureResult

// Figure4 reproduces the paper's Figure 4 (average age per layer).
func Figure4(sc Scenario) (*FigureResult, error) { return experiments.Figure4(sc) }

// Figure5 reproduces Figure 5 (average capacity per layer).
func Figure5(sc Scenario) (*FigureResult, error) { return experiments.Figure5(sc) }

// Figure6 reproduces Figure 6 (layer sizes, log scale).
func Figure6(sc Scenario) (*FigureResult, error) { return experiments.Figure6(sc) }

// Figure7 reproduces Figure 7 (ratio: DLM vs preconfigured).
func Figure7(sc Scenario) (*FigureResult, error) { return experiments.Figure7(sc) }

// Figure8 reproduces Figure 8 (ages: DLM vs preconfigured).
func Figure8(sc Scenario) (*FigureResult, error) { return experiments.Figure8(sc) }

// Table3Row is one row of the paper's Table 3 (PAO analysis).
type Table3Row = experiments.Table3Row

// Table3 reproduces the PAO/NLCO analysis at the given network sizes.
func Table3(sizes []int, baseSeed int64) ([]Table3Row, error) {
	return experiments.Table3(sizes, baseSeed)
}

// FormatTable3 renders Table 3 rows in the paper's layout.
func FormatTable3(rows []Table3Row) string { return experiments.FormatTable3(rows) }

// OverheadResult quantifies DLM traffic versus search traffic (§6).
type OverheadResult = experiments.OverheadResult

// Overhead runs the §6 traffic study.
func Overhead(sc Scenario) (*OverheadResult, error) { return experiments.Overhead(sc) }

// PolicyAblationRow compares information-exchange policies.
type PolicyAblationRow = experiments.PolicyAblationRow

// PolicyAblation compares event-driven and periodic exchange.
func PolicyAblation(sc Scenario, intervals []float64) ([]PolicyAblationRow, error) {
	return experiments.PolicyAblation(sc, intervals)
}

// FormatPolicyAblation renders policy-ablation rows.
func FormatPolicyAblation(rows []PolicyAblationRow) string {
	return experiments.FormatPolicyAblation(rows)
}

// GainAblationRow sweeps one reconstructed controller gain.
type GainAblationRow = experiments.GainAblationRow

// GainAblation sweeps a named DLM knob across values.
func GainAblation(sc Scenario, knob string, values []float64) ([]GainAblationRow, error) {
	return experiments.GainAblation(sc, knob, values)
}

// FormatGainAblation renders gain-ablation rows.
func FormatGainAblation(rows []GainAblationRow) string {
	return experiments.FormatGainAblation(rows)
}

// SearchRow compares pure-P2P and super-peer search at one TTL.
type SearchRow = experiments.SearchRow

// SearchEfficiency reproduces the motivating pure-vs-super-peer search
// comparison (§1/§3).
func SearchEfficiency(sc Scenario, ttls []int, queriesPerTTL int) ([]SearchRow, error) {
	return experiments.SearchEfficiency(sc, ttls, queriesPerTTL)
}

// FormatSearchRows renders search-efficiency rows.
func FormatSearchRows(rows []SearchRow) string { return experiments.FormatSearchRows(rows) }

// LatencyRow reports DLM behavior under one message-delay setting.
type LatencyRow = experiments.LatencyRow

// LatencyAblation sweeps the one-hop message latency.
func LatencyAblation(sc Scenario, latencies []float64) ([]LatencyRow, error) {
	return experiments.LatencyAblation(sc, latencies)
}

// FormatLatency renders latency-ablation rows.
func FormatLatency(rows []LatencyRow) string { return experiments.FormatLatency(rows) }

// RobustnessRow reports DLM behavior at one message-loss level.
type RobustnessRow = experiments.RobustnessRow

// Robustness sweeps per-message loss against ratio convergence, layer
// separation, and Phase 1 overhead under an adverse network (loss,
// jitter, duplication, reordering).
func Robustness(sc Scenario, lossPct []float64) ([]RobustnessRow, error) {
	return experiments.Robustness(sc, lossPct)
}

// FormatRobustness renders robustness-sweep rows.
func FormatRobustness(rows []RobustnessRow) string { return experiments.FormatRobustness(rows) }

// The settled measurement window shared by the long-horizon experiments
// (figure goldens, robustness sweep): run to SettledWindowEnd, measure
// the tail from SettledWindowStart.
const (
	SettledWindowStart = experiments.SettledWindowStart
	SettledWindowEnd   = experiments.SettledWindowEnd
)

// AdversarialRow reports one adversarial scenario at one population size.
type AdversarialRow = experiments.AdversarialRow

// Adversarial runs the adversarial scenario pack (flash crowds, diurnal
// waves, healing partitions, misreporting peers, mass super-peer exits —
// see internal/scenario) at each population size.
func Adversarial(sizes []int, seed int64) ([]AdversarialRow, error) {
	return experiments.Adversarial(sizes, seed)
}

// FormatAdversarial renders adversarial-pack rows.
func FormatAdversarial(rows []AdversarialRow) string { return experiments.FormatAdversarial(rows) }

// CapRow reports the effect of a per-super leaf-degree cap on DLM.
type CapRow = experiments.CapRow

// CapAblation sweeps a Gnutella-style cap on super-peer leaf degree.
func CapAblation(sc Scenario, capsOverKL []float64) ([]CapRow, error) {
	return experiments.CapAblation(sc, capsOverKL)
}

// FormatCap renders cap-ablation rows.
func FormatCap(rows []CapRow) string { return experiments.FormatCap(rows) }

// FailureResult quantifies recovery from a correlated super-layer crash.
type FailureResult = experiments.FailureResult

// Failure kills a fraction of the super-layer at once and measures
// recovery.
func Failure(sc Scenario, killFraction float64) (*FailureResult, error) {
	return experiments.Failure(sc, killFraction)
}

// FailureSweep runs the failure experiment across kill fractions.
func FailureSweep(sc Scenario, fractions []float64) ([]*FailureResult, error) {
	return experiments.FailureSweep(sc, fractions)
}

// FormatFailure renders failure-sweep rows.
func FormatFailure(rows []*FailureResult) string { return experiments.FormatFailure(rows) }

// RedundancyRow reports reliability metrics for one leaf-redundancy m.
type RedundancyRow = experiments.RedundancyRow

// RedundancySweep varies the leaf redundancy m and measures what it buys.
func RedundancySweep(sc Scenario, ms []int) ([]RedundancyRow, error) {
	return experiments.RedundancySweep(sc, ms)
}

// FormatRedundancy renders redundancy-sweep rows.
func FormatRedundancy(rows []RedundancyRow) string { return experiments.FormatRedundancy(rows) }

// BaselineRow compares layer-management policies.
type BaselineRow = experiments.BaselineRow

// BaselineSweep compares DLM with the preconfigured, static, and oracle
// policies.
func BaselineSweep(sc Scenario) ([]BaselineRow, error) {
	return experiments.BaselineSweep(sc)
}

// FormatBaselineSweep renders baseline-sweep rows.
func FormatBaselineSweep(rows []BaselineRow) string {
	return experiments.FormatBaselineSweep(rows)
}

// ScaleRow is one (population size, shard count) point of the throughput
// scaling sweep.
type ScaleRow = experiments.ScaleRow

// Scale measures end-to-end simulation throughput across population
// sizes (up to millions of peers) and intra-run shard counts; a nil or
// empty shards slice runs serially.
func Scale(sizes []int, shards []int, seed int64) ([]ScaleRow, error) {
	return experiments.Scale(sizes, shards, seed)
}

// FormatScale renders scale-sweep rows.
func FormatScale(rows []ScaleRow) string { return experiments.FormatScale(rows) }

// SetWorkers caps the worker pool every sweep in this package fans trials
// across (0 restores the default, GOMAXPROCS). The sweep outputs are
// byte-identical for any setting — see internal/experiments' scheduler
// notes — so this only trades wall time for memory.
func SetWorkers(n int) { experiments.DefaultWorkers = n }

// SetShards sets the intra-run lane-fan-out worker count for runs whose
// RunConfig leaves Shards zero (0 restores the serial default). The
// fixed-lane tick discipline makes every run byte-identical for any
// value — see internal/sim.ForLanes — so, like SetWorkers, this only
// trades wall time.
func SetShards(n int) { experiments.DefaultShards = n }

// Series is an append-only named time series.
type Series = stats.Series

// PlotOptions configures ASCII figure rendering.
type PlotOptions = plot.Options

// RenderFigure draws a figure's series as an ASCII chart.
func RenderFigure(f *FigureResult, width, height int) string {
	return plot.Render(plot.Options{
		Title:  f.Title,
		Width:  width,
		Height: height,
		LogY:   f.LogY,
		XLabel: "simulation time (minutes)",
	}, f.Series...)
}

// WriteFigureCSV writes a figure's series as CSV with a shared time axis.
func WriteFigureCSV(f *FigureResult, w io.Writer) error {
	var set stats.SeriesSet
	for _, s := range f.Series {
		set.Add(s)
	}
	return set.WriteCSV(w)
}
