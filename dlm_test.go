package dlm_test

import (
	"strings"
	"testing"

	"dlm"
)

// smallScenario keeps facade tests fast.
func smallScenario(t *testing.T) dlm.Scenario {
	t.Helper()
	sc := dlm.Scaled(300)
	sc.Seed = 5
	sc.Duration = 250
	sc.Warmup = 100
	sc.SampleEvery = 10
	return sc
}

func TestFacadeScenarios(t *testing.T) {
	t2 := dlm.Table2()
	if t2.Eta != 40 || t2.N != 50020 {
		t.Fatalf("Table2 = %+v", t2)
	}
	if err := dlm.Scaled(1234).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := dlm.DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRunAndRender(t *testing.T) {
	sc := smallScenario(t)
	res, err := dlm.Run(dlm.RunConfig{Scenario: sc, Manager: dlm.ManagerDLM})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.NumSupers == 0 {
		t.Fatal("no supers")
	}
	fig, err := dlm.Figure4(sc)
	if err != nil {
		t.Fatal(err)
	}
	out := dlm.RenderFigure(fig, 40, 8)
	if !strings.Contains(out, "Figure 4") {
		t.Fatalf("render output:\n%s", out)
	}
	var sb strings.Builder
	if err := dlm.WriteFigureCSV(fig, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "t,") {
		t.Fatalf("csv header: %q", sb.String()[:10])
	}
}

func TestFacadeTablesAndAblations(t *testing.T) {
	rows, err := dlm.Table3([]int{250}, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dlm.FormatTable3(rows), "PAO") {
		t.Fatal("table3 format")
	}

	sc := smallScenario(t)
	sc.QueryRate = 5
	ov, err := dlm.Overhead(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ov.Format(), "piggybacked") {
		t.Fatal("overhead format")
	}

	lat, err := dlm.LatencyAblation(sc, []float64{0})
	if err != nil || len(lat) != 1 {
		t.Fatalf("latency: %v %d", err, len(lat))
	}
	_ = dlm.FormatLatency(lat)

	fail, err := dlm.Failure(sc, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	_ = dlm.FormatFailure([]*dlm.FailureResult{fail})

	red, err := dlm.RedundancySweep(sc, []int{2})
	if err != nil || len(red) != 1 {
		t.Fatalf("redundancy: %v %d", err, len(red))
	}
	_ = dlm.FormatRedundancy(red)

	se, err := dlm.SearchEfficiency(sc, []int{4}, 40)
	if err != nil || len(se) != 1 {
		t.Fatalf("search: %v %d", err, len(se))
	}
	_ = dlm.FormatSearchRows(se)

	bs, err := dlm.BaselineSweep(sc)
	if err != nil || len(bs) != 4 {
		t.Fatalf("baselines: %v %d", err, len(bs))
	}
	_ = dlm.FormatBaselineSweep(bs)

	ga, err := dlm.GainAblation(sc, "rategain", []float64{4})
	if err != nil || len(ga) != 1 {
		t.Fatalf("gain: %v %d", err, len(ga))
	}
	_ = dlm.FormatGainAblation(ga)

	pa, err := dlm.PolicyAblation(sc, []float64{10})
	if err != nil || len(pa) != 2 {
		t.Fatalf("policy: %v %d", err, len(pa))
	}
	_ = dlm.FormatPolicyAblation(pa)
}
